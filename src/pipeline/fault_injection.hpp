#pragma once

// Copy-on-inject fault sessions over a live HDFace pipeline.
//
// The robustness study (paper §7, Table 2) corrupts the *stored* hypervector
// memories of a deployed detector — the pixel/histogram item memories, the
// Bernoulli mask pool (the software analogue of a hardware mask ROM / LFSR
// bank), and the binarized class prototypes — and measures how detection
// quality degrades. A FaultSession materializes one sampled fault pattern
// into those memories in place, so every window the engine scans afterwards
// reads genuinely faulted storage, then restores the clean bits exactly:
//
//   {
//     FaultSession session(pipeline, plan);     // inject (copy-on-inject)
//     auto map = detect_windows_parallel(...);  // scans faulted storage
//     session.restore();                        // restore-verified
//   }                                           // dtor restores if needed
//
// Guarantees:
//   * Copy-on-inject — the clean words of every patched hypervector are
//     snapshotted before the fault mask lands, and the float prototype
//     accumulators are never touched at all (prototype faults go through
//     HdcClassifier's binary-override layer instead).
//   * Restore-verified — restore() first checks the faulted storage still
//     matches the checksum recorded at injection (any concurrent mutation of
//     the patched memories throws std::runtime_error rather than silently
//     "restoring" over it), then writes the clean words back and verifies
//     the restored state checksums to the clean snapshot.
//   * Deterministic — every sampled mask is a pure function of
//     (plan.seed, target plane, element index) via noise::fault_seed, so a
//     session is bit-reproducible across runs and thread counts.
//
// Query-plane faults (noise::FaultTarget::kQuery) are *not* injected here —
// they are transient per-window events applied inside the scan loop (see
// ParallelDetectConfig::fault_plan); a session only owns persistent storage.

#include <cstdint>
#include <vector>

#include "core/hypervector.hpp"
#include "noise/fault_model.hpp"
#include "pipeline/hdface_pipeline.hpp"

namespace hdface::pipeline {

class FaultSession {
 public:
  // Injects per `plan` into `pipeline`'s stored memories. Calls
  // pipeline.prepare_concurrent() first so the mask pool is warmed before it
  // is patched (patching a lazily-filled pool would race the fill). The
  // pipeline must outlive the session. When plan.prototypes is set, the
  // classifier switches to binary Hamming inference against the (possibly
  // faulted) prototype memory — at rate 0 this still changes the inference
  // mode, which keeps clean-baseline cells comparable to faulted ones.
  FaultSession(HdFacePipeline& pipeline, const noise::FaultPlan& plan);

  // Restores on destruction if the caller didn't; destructors swallow the
  // verification error, so call restore() explicitly where it matters.
  ~FaultSession();

  FaultSession(const FaultSession&) = delete;
  FaultSession& operator=(const FaultSession&) = delete;

  // Write every clean snapshot back and clear the prototype override.
  // Idempotent. Throws std::runtime_error if the faulted storage was mutated
  // behind the session's back (checksum mismatch), or if the restored words
  // fail to verify against the clean snapshot.
  void restore();

  bool active() const { return active_; }
  const noise::FaultPlan& plan() const { return plan_; }

  // Stored hypervectors patched in place (prototype overrides not included —
  // they live in a separate override plane, not patched storage).
  std::size_t patched_vectors() const { return patches_.size(); }

  // Total bits that differ from clean across all faulted planes, prototype
  // override included. This is the session's empirical disturbance, which
  // tests compare against noise::expected_disturbed_fraction.
  std::uint64_t disturbed_bits() const { return disturbed_bits_; }

  // Stored bits across all faulted planes (denominator for disturbed_bits()).
  std::uint64_t faultable_bits() const { return faultable_bits_; }

 private:
  void inject(noise::FaultTarget target, std::uint64_t index,
              core::Hypervector& stored);

  HdFacePipeline& pipeline_;
  noise::FaultPlan plan_;

  struct Patch {
    core::Hypervector* target;
    core::Hypervector clean;
  };
  std::vector<Patch> patches_;
  std::uint64_t faulted_checksum_ = 0;
  std::uint64_t disturbed_bits_ = 0;
  std::uint64_t faultable_bits_ = 0;
  bool override_set_ = false;
  bool active_ = false;
};

}  // namespace hdface::pipeline
