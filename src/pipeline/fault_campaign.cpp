#include "pipeline/fault_campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>

#include "core/op_counter.hpp"
#include "core/rng.hpp"
#include "pipeline/fault_injection.hpp"
#include "pipeline/parallel_detect.hpp"

namespace hdface::pipeline {

namespace {

// Salt separating the campaign's per-sample encoding streams from every
// other consumer of the plan seed.
constexpr std::uint64_t kEvalStreamSalt = 0xE7A1CA4AULL;

}  // namespace

FaultCampaign::FaultCampaign(const FaultCampaignConfig& config)
    : config_(config) {
  if (config_.kinds.empty()) {
    throw std::invalid_argument("FaultCampaign: no fault kinds");
  }
  if (config_.rates.empty()) {
    throw std::invalid_argument("FaultCampaign: no rates");
  }
  for (double r : config_.rates) {
    if (r < 0.0 || r > 1.0) {
      throw std::invalid_argument("FaultCampaign: rate outside [0, 1]");
    }
  }
}

void FaultCampaign::add_subject(std::string name,
                                std::shared_ptr<HdFacePipeline> pipeline,
                                std::size_t window) {
  if (!pipeline) throw std::invalid_argument("FaultCampaign: null pipeline");
  if (window == 0) throw std::invalid_argument("FaultCampaign: window 0");
  subjects_.push_back(Subject{std::move(name), std::move(pipeline), window});
}

std::uint64_t FaultCampaign::cell_seed(std::uint64_t campaign_seed,
                                       const std::string& subject,
                                       noise::FaultKind kind, double rate) {
  // Pure function of the cell's identity — never of enumeration order.
  std::uint64_t h = core::mix64(campaign_seed, 0xCE11ULL);
  for (const char c : subject) {
    h = core::mix64(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  h = core::mix64(h, static_cast<std::uint64_t>(kind));
  std::uint64_t rate_bits = 0;
  static_assert(sizeof(rate_bits) == sizeof(rate));
  std::memcpy(&rate_bits, &rate, sizeof(rate_bits));
  return core::mix64(h, rate_bits);
}

std::vector<FaultCampaignCell> FaultCampaign::run(const dataset::Dataset& test) {
  return run_impl(test, nullptr, nullptr);
}

std::vector<FaultCampaignCell> FaultCampaign::run(
    const dataset::Dataset& test, const image::Image& scene,
    const std::vector<Detection>& truth) {
  return run_impl(test, &scene, &truth);
}

std::vector<FaultCampaignCell> FaultCampaign::run_impl(
    const dataset::Dataset& test, const image::Image* scene,
    const std::vector<Detection>* truth) {
  if (subjects_.empty()) throw std::logic_error("FaultCampaign: no subjects");
  if (test.images.empty() || test.images.size() != test.labels.size()) {
    throw std::invalid_argument("FaultCampaign: bad test set");
  }

  // One pool serves every cell (same resolution rules as the detection
  // engine: caller pool > explicit thread count > global pool).
  util::ThreadPool* pool = config_.pool;
  std::unique_ptr<util::ThreadPool> local_pool;
  if (pool == nullptr) {
    if (config_.threads == 0) {
      pool = &util::global_pool();
    } else {
      local_pool = std::make_unique<util::ThreadPool>(config_.threads);
      pool = local_pool.get();
    }
  }

  std::vector<FaultCampaignCell> cells;
  cells.reserve(subjects_.size() * config_.kinds.size() * config_.rates.size());
  // Cells run serially: injection mutates the subject's shared storage, so
  // two cells of one subject must never coexist. All parallelism lives
  // inside evaluate_cell.
  for (auto& subject : subjects_) {
    for (const auto kind : config_.kinds) {
      for (const double rate : config_.rates) {
        noise::FaultPlan plan;
        plan.model = noise::FaultModel{kind, rate};
        plan.seed = cell_seed(config_.seed, subject.name, kind, rate);
        plan.item_memory = config_.item_memory;
        plan.prototypes = config_.prototypes;
        plan.queries = config_.queries;
        cells.push_back(
            evaluate_cell(subject, plan, test, scene, truth, *pool));
      }
    }
  }
  return cells;
}

FaultCampaignCell FaultCampaign::evaluate_cell(
    Subject& subject, const noise::FaultPlan& plan,
    const dataset::Dataset& test, const image::Image* scene,
    const std::vector<Detection>* truth, util::ThreadPool& pool) {
  FaultCampaignCell cell;
  cell.subject = subject.name;
  cell.dim = subject.pipeline->config().dim;
  cell.kind = plan.model.kind;
  cell.rate = plan.model.rate;
  cell.plan_seed = plan.seed;
  cell.samples = test.images.size();

  HdFacePipeline& pipe = *subject.pipeline;
  // Inject once; both the accuracy pass and the scene scan read the same
  // faulted storage, exactly like a deployed detector with bad cells.
  FaultSession session(pipe, plan);
  cell.disturbed_bits = session.disturbed_bits();
  cell.faultable_bits = session.faultable_bits();

  // --- window-classification accuracy --------------------------------------
  // Per-sample reseed makes every encoding a pure function of (pipeline,
  // image, sample index); integer hit shards merge exactly. Both are
  // independent of chunk boundaries, so accuracy is bit-identical at any
  // thread count.
  const std::uint64_t eval_base = core::mix64(plan.seed, kEvalStreamSalt);
  const std::size_t total = test.images.size();
  core::ShardedTally hits(pool.size() * 4 + 1);
  std::atomic<std::size_t> next_shard{0};
  util::parallel_for_chunked(
      pool, 0, total, config_.min_chunk,
      [&pipe, &plan, &test, eval_base, &hits,
       &next_shard](std::size_t lo, std::size_t hi) {
        core::StochasticContext scratch =
            pipe.fork_context(core::mix64(eval_base, lo));
        // Which shard a chunk claims depends on scheduling, but the shard
        // *sum* does not: integer adds commute, so hits.total() is identical
        // at every thread count and interleaving.
        // hdlint: allow(sched-dependent-value)
        std::uint64_t& shard = hits.shard(next_shard.fetch_add(1) %
                                          hits.num_shards());
        for (std::size_t i = lo; i < hi; ++i) {
          scratch.reseed(core::mix64(eval_base, i));
          core::Hypervector feature =
              pipe.encode_image(test.images[i], scratch);
          noise::apply_query_fault(plan, i, feature);
          const auto scores = pipe.classifier().scores(feature);
          const auto pred = static_cast<int>(
              std::max_element(scores.begin(), scores.end()) - scores.begin());
          if (pred == test.labels[i]) ++shard;
        }
      });
  cell.accuracy =
      static_cast<double>(hits.total()) / static_cast<double>(total);

  // --- scene detection quality ---------------------------------------------
  if (scene != nullptr) {
    cell.has_scene = true;
    ParallelDetectConfig engine;
    engine.pool = &pool;
    engine.min_chunk = config_.min_chunk;
    engine.fault_plan = &plan;
    const DetectionMap map = detect_windows_parallel(
        pipe, *scene, subject.window, config_.stride, config_.positive_class,
        engine);
    const auto boxes =
        map_detections(map, config_.positive_class, config_.score_threshold,
                       config_.nms_iou);
    cell.num_detections = boxes.size();
    if (truth != nullptr && !truth->empty()) {
      double sum = 0.0;
      for (const auto& t : *truth) {
        double best = 0.0;
        for (const auto& d : boxes) best = std::max(best, box_iou(t, d));
        sum += best;
      }
      cell.mean_best_iou = sum / static_cast<double>(truth->size());
    }
  }

  session.restore();
  return cell;
}

}  // namespace hdface::pipeline
