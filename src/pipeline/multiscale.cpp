#include "pipeline/multiscale.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "image/transform.hpp"

namespace hdface::pipeline {

double box_iou(const Detection& a, const Detection& b) {
  const double ax1 = static_cast<double>(a.x) + a.size;
  const double ay1 = static_cast<double>(a.y) + a.size;
  const double bx1 = static_cast<double>(b.x) + b.size;
  const double by1 = static_cast<double>(b.y) + b.size;
  const double ix = std::max(0.0, std::min(ax1, bx1) -
                                      std::max<double>(a.x, b.x));
  const double iy = std::max(0.0, std::min(ay1, by1) -
                                      std::max<double>(a.y, b.y));
  const double inter = ix * iy;
  const double uni = static_cast<double>(a.size) * a.size +
                     static_cast<double>(b.size) * b.size - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

bool detection_before(const Detection& a, const Detection& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.y != b.y) return a.y < b.y;
  if (a.x != b.x) return a.x < b.x;
  return a.size < b.size;
}

std::vector<Detection> non_max_suppression(std::vector<Detection> detections,
                                           double iou_threshold) {
  std::sort(detections.begin(), detections.end(), detection_before);
  std::vector<Detection> kept;
  for (const auto& d : detections) {
    bool suppressed = false;
    for (const auto& k : kept) {
      if (box_iou(d, k) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

std::vector<Detection> map_detections(const DetectionMap& map,
                                      int positive_class,
                                      double score_threshold,
                                      double iou_threshold) {
  std::vector<Detection> boxes;
  for (std::size_t sy = 0; sy < map.steps_y; ++sy) {
    for (std::size_t sx = 0; sx < map.steps_x; ++sx) {
      const std::size_t idx = sy * map.steps_x + sx;
      if (map.predictions[idx] != positive_class) continue;
      if (map.scores[idx] < score_threshold) continue;
      boxes.push_back(Detection{sx * map.stride, sy * map.stride, map.window,
                                map.scores[idx]});
    }
  }
  auto kept = non_max_suppression(std::move(boxes), iou_threshold);
  std::sort(kept.begin(), kept.end(), detection_before);
  return kept;
}

image::RgbImage render_detections(const image::Image& scene,
                                  const std::vector<Detection>& detections) {
  image::RgbImage rgb = image::to_rgb(scene);
  auto mark = [&](std::size_t x, std::size_t y) {
    if (x >= rgb.width || y >= rgb.height) return;
    auto& px = rgb.at(x, y);
    px = {60, 120, 255};
  };
  for (const auto& d : detections) {
    for (std::size_t i = 0; i <= d.size; ++i) {
      mark(d.x + i, d.y);
      mark(d.x + i, d.y + d.size);
      mark(d.x, d.y + i);
      mark(d.x + d.size, d.y + i);
    }
  }
  return rgb;
}

ScalePyramid build_pyramid(const image::Image& scene, std::size_t window,
                           const std::vector<double>& scales) {
  ScalePyramid pyramid;
  for (const double scale : scales) {
    const auto sw = static_cast<std::size_t>(
        std::lround(scale * static_cast<double>(scene.width())));
    const auto sh = static_cast<std::size_t>(
        std::lround(scale * static_cast<double>(scene.height())));
    if (sw < window || sh < window) continue;
    pyramid.scales.push_back(scale);
    pyramid.levels.push_back(scale == 1.0 ? scene
                                          : image::resize(scene, sw, sh));
  }
  return pyramid;
}

MultiScaleDetector::MultiScaleDetector(std::shared_ptr<HdFacePipeline> pipeline,
                                       std::size_t window,
                                       const MultiScaleConfig& config)
    : pipeline_(std::move(pipeline)), window_(window), config_(config) {
  if (!pipeline_) {
    throw std::invalid_argument("MultiScaleDetector: null pipeline");
  }
  if (window == 0) throw std::invalid_argument("MultiScaleDetector: window 0");
  if (config.scales.empty()) {
    throw std::invalid_argument("MultiScaleDetector: no scales");
  }
  for (double s : config.scales) {
    if (s <= 0.0 || s > 1.0) {
      throw std::invalid_argument("MultiScaleDetector: scales must be in (0, 1]");
    }
  }
}

MultiScaleDetector::MultiScaleDetector(HdFacePipeline& pipeline,
                                       std::size_t window,
                                       const MultiScaleConfig& config)
    : MultiScaleDetector(
          std::shared_ptr<HdFacePipeline>(&pipeline, [](HdFacePipeline*) {}),
          window, config) {}

std::vector<Detection> MultiScaleDetector::merge_scales(
    const ScalePyramid& pyramid, const std::vector<DetectionMap>& maps) const {
  std::vector<Detection> all;
  for (std::size_t level = 0; level < maps.size(); ++level) {
    const double scale = pyramid.scales[level];
    const DetectionMap& map = maps[level];
    for (std::size_t sy = 0; sy < map.steps_y; ++sy) {
      for (std::size_t sx = 0; sx < map.steps_x; ++sx) {
        const std::size_t idx = sy * map.steps_x + sx;
        if (map.predictions[idx] != 1) continue;
        if (map.scores[idx] < config_.score_threshold) continue;
        Detection d;
        // Map back to scene coordinates.
        d.x = static_cast<std::size_t>(
            std::lround(static_cast<double>(sx * config_.stride) / scale));
        d.y = static_cast<std::size_t>(
            std::lround(static_cast<double>(sy * config_.stride) / scale));
        d.size = static_cast<std::size_t>(
            std::lround(static_cast<double>(window_) / scale));
        d.score = map.scores[idx];
        all.push_back(d);
      }
    }
  }
  auto kept = non_max_suppression(std::move(all), config_.iou_threshold);
  std::sort(kept.begin(), kept.end(), detection_before);
  return kept;
}

std::vector<Detection> MultiScaleDetector::detect(const image::Image& scene) {
  const ScalePyramid pyramid = build_pyramid(scene, window_, config_.scales);
  SlidingWindowDetector single(pipeline_, window_, config_.stride);
  std::vector<DetectionMap> maps;
  maps.reserve(pyramid.levels.size());
  for (const auto& level : pyramid.levels) maps.push_back(single.detect(level));
  return merge_scales(pyramid, maps);
}

std::vector<Detection> MultiScaleDetector::detect(
    const image::Image& scene, const ParallelDetectConfig& engine) {
  // The pyramid is the per-scale resized-image cache: each level is resized
  // once here and then shared read-only by every chunk the engine dispatches.
  const ScalePyramid pyramid = build_pyramid(scene, window_, config_.scales);
  std::vector<DetectionMap> maps;
  maps.reserve(pyramid.levels.size());
  // Levels run sequentially, windows within a level in parallel: window work
  // dominates (levels are few, windows are thousands), and this keeps every
  // level's result bit-identical to its own single-level scan. Each level
  // scans under its own scale_index so the cell-plane encode mode draws an
  // independent deterministic stream per pyramid level (same-sized levels
  // would otherwise share cell seeds).
  for (std::size_t level = 0; level < pyramid.levels.size(); ++level) {
    ParallelDetectConfig level_engine = engine;
    level_engine.scale_index = level;
    // Collect each level's cascade stage counts into a local so callers see
    // both the per-scale breakdown and the merged scan total.
    CascadeStats level_stats;
    if (engine.cascade != nullptr) level_engine.cascade_stats = &level_stats;
    maps.push_back(detect_windows_parallel(*pipeline_, pyramid.levels[level],
                                           window_, config_.stride, 1,
                                           level_engine));
    if (engine.cascade != nullptr) {
      if (engine.cascade_per_scale) engine.cascade_per_scale->push_back(level_stats);
      if (engine.cascade_stats) engine.cascade_stats->merge(level_stats);
    }
  }
  return merge_scales(pyramid, maps);
}

image::RgbImage MultiScaleDetector::render(
    const image::Image& scene, const std::vector<Detection>& detections) const {
  return render_detections(scene, detections);
}

}  // namespace hdface::pipeline
