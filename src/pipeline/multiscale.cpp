#include "pipeline/multiscale.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "image/transform.hpp"

namespace hdface::pipeline {

double box_iou(const Detection& a, const Detection& b) {
  const double ax1 = static_cast<double>(a.x) + a.size;
  const double ay1 = static_cast<double>(a.y) + a.size;
  const double bx1 = static_cast<double>(b.x) + b.size;
  const double by1 = static_cast<double>(b.y) + b.size;
  const double ix = std::max(0.0, std::min(ax1, bx1) -
                                      std::max<double>(a.x, b.x));
  const double iy = std::max(0.0, std::min(ay1, by1) -
                                      std::max<double>(a.y, b.y));
  const double inter = ix * iy;
  const double uni = static_cast<double>(a.size) * a.size +
                     static_cast<double>(b.size) * b.size - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

std::vector<Detection> non_max_suppression(std::vector<Detection> detections,
                                           double iou_threshold) {
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });
  std::vector<Detection> kept;
  for (const auto& d : detections) {
    bool suppressed = false;
    for (const auto& k : kept) {
      if (box_iou(d, k) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

MultiScaleDetector::MultiScaleDetector(HdFacePipeline& pipeline,
                                       std::size_t window,
                                       const MultiScaleConfig& config)
    : pipeline_(pipeline), window_(window), config_(config) {
  if (window == 0) throw std::invalid_argument("MultiScaleDetector: window 0");
  if (config.scales.empty()) {
    throw std::invalid_argument("MultiScaleDetector: no scales");
  }
  for (double s : config.scales) {
    if (s <= 0.0 || s > 1.0) {
      throw std::invalid_argument("MultiScaleDetector: scales must be in (0, 1]");
    }
  }
}

std::vector<Detection> MultiScaleDetector::detect(const image::Image& scene) {
  std::vector<Detection> all;
  SlidingWindowDetector single(pipeline_, window_, config_.stride);
  for (const double scale : config_.scales) {
    const auto sw = static_cast<std::size_t>(
        std::lround(scale * static_cast<double>(scene.width())));
    const auto sh = static_cast<std::size_t>(
        std::lround(scale * static_cast<double>(scene.height())));
    if (sw < window_ || sh < window_) continue;
    const image::Image scaled =
        scale == 1.0 ? scene : image::resize(scene, sw, sh);
    const DetectionMap map = single.detect(scaled);
    for (std::size_t sy = 0; sy < map.steps_y; ++sy) {
      for (std::size_t sx = 0; sx < map.steps_x; ++sx) {
        const std::size_t idx = sy * map.steps_x + sx;
        if (map.predictions[idx] != 1) continue;
        if (map.scores[idx] < config_.score_threshold) continue;
        Detection d;
        // Map back to scene coordinates.
        d.x = static_cast<std::size_t>(
            std::lround(static_cast<double>(sx * config_.stride) / scale));
        d.y = static_cast<std::size_t>(
            std::lround(static_cast<double>(sy * config_.stride) / scale));
        d.size = static_cast<std::size_t>(
            std::lround(static_cast<double>(window_) / scale));
        d.score = map.scores[idx];
        all.push_back(d);
      }
    }
  }
  auto kept = non_max_suppression(std::move(all), config_.iou_threshold);
  std::sort(kept.begin(), kept.end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });
  return kept;
}

image::RgbImage MultiScaleDetector::render(
    const image::Image& scene, const std::vector<Detection>& detections) const {
  image::RgbImage rgb = image::to_rgb(scene);
  auto mark = [&](std::size_t x, std::size_t y) {
    if (x >= rgb.width || y >= rgb.height) return;
    auto& px = rgb.at(x, y);
    px = {60, 120, 255};
  };
  for (const auto& d : detections) {
    for (std::size_t i = 0; i <= d.size; ++i) {
      mark(d.x + i, d.y);
      mark(d.x + i, d.y + d.size);
      mark(d.x, d.y + i);
      mark(d.x + d.size, d.y + i);
    }
  }
  return rgb;
}

}  // namespace hdface::pipeline
