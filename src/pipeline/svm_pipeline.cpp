#include "pipeline/svm_pipeline.hpp"

#include "pipeline/features.hpp"

namespace hdface::pipeline {

SvmPipeline::SvmPipeline(const SvmPipelineConfig& config, std::size_t image_width,
                         std::size_t image_height, std::size_t classes)
    : config_(config), hog_(config.hog) {
  learn::SvmConfig sc;
  sc.input_dim = hog_.feature_size(image_width, image_height);
  sc.classes = classes;
  sc.lambda = config.lambda;
  sc.epochs = config.epochs;
  sc.seed = config.seed;
  svm_ = std::make_unique<learn::LinearSvm>(sc);
}

void SvmPipeline::fit(const dataset::Dataset& train) {
  svm_->fit(extract_hog_features(train, hog_), train.labels);
}

double SvmPipeline::evaluate(const dataset::Dataset& test) {
  return svm_->evaluate(extract_hog_features(test, hog_), test.labels);
}

}  // namespace hdface::pipeline
