#include "pipeline/cascade.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/rng.hpp"
#include "dataset/background_generator.hpp"
#include "dataset/face_generator.hpp"
#include "image/draw.hpp"
#include "image/transform.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "pipeline/parallel_detect.hpp"

namespace hdface::pipeline {

namespace {

// Salt separating the calibration-scene stream from every other consumer of
// a workload seed.
constexpr std::uint64_t kCalibrationSceneSalt = 0xCA5CADE5ULL;

constexpr std::uint32_t kCascadeTableVersion = 1;
// v2 = v1 plus one "prescreen <words> <threshold> <vmax> <spread-floor>"
// line; emitted only when the table carries a prescreen, so prescreen-free
// tables stay byte-identical to every v1 reader/writer.
constexpr std::uint32_t kCascadeTableVersionPrescreen = 2;

void validate_stages(const CascadeTable& table, std::size_t total_words) {
  if (table.stages.empty()) {
    throw std::invalid_argument("Cascade: table has no stages");
  }
  std::size_t prev = 0;
  for (const CascadeStage& s : table.stages) {
    if (s.words <= prev || s.words > total_words) {
      throw std::invalid_argument(
          "Cascade: stage words must be strictly ascending within "
          "(0, feature words]");
    }
    if (!std::isfinite(s.reject_below)) {
      throw std::invalid_argument("Cascade: non-finite stage threshold");
    }
    prev = s.words;
  }
  if (table.prescreen_words > total_words) {
    throw std::invalid_argument(
        "Cascade: prescreen words exceed the feature words");
  }
  if (table.prescreen_words > 0) {
    if (!std::isfinite(table.prescreen_reject_below)) {
      throw std::invalid_argument("Cascade: non-finite prescreen threshold");
    }
    if (!std::isfinite(table.prescreen_vmax) || table.prescreen_vmax <= 0.0) {
      throw std::invalid_argument(
          "Cascade: prescreen normalization scale must be a positive finite "
          "value");
    }
    if (!std::isfinite(table.prescreen_spread_below) ||
        table.prescreen_spread_below < 0.0) {
      throw std::invalid_argument(
          "Cascade: prescreen spread floor must be finite and >= 0");
    }
  }
}

}  // namespace

Cascade::Cascade(const learn::HdcClassifier& classifier,
                 const CascadeTable& table)
    : table_(table) {
  const learn::HdcConfig& cfg = classifier.config();
  if (table.dim != cfg.dim) {
    throw std::invalid_argument(
        "Cascade: table dimensionality mismatches the classifier");
  }
  if (table.classes != cfg.classes) {
    throw std::invalid_argument(
        "Cascade: table class count mismatches the classifier");
  }
  if (cfg.classes < 2) {
    throw std::invalid_argument("Cascade: need at least two classes");
  }
  if (table.positive_class < 0 ||
      static_cast<std::size_t>(table.positive_class) >= cfg.classes) {
    throw std::invalid_argument("Cascade: positive_class out of range");
  }
  // The prefix stages score against the binarized prototypes — the same
  // thresholded representation the binary inference path deploys. Rejection
  // is threshold-gated (never flips a survivor's result), so the cosine/
  // Hamming representational gap is absorbed by calibration: thresholds are
  // learned on exactly this statistic.
  const std::vector<core::Hypervector> protos = classifier.binary_prototypes();
  prototypes_ = core::PrototypeBlock(protos);
  total_words_ = prototypes_.words();
  validate_stages(table_, total_words_);
}

double Cascade::margin_of(std::span<const std::size_t> cum_distances,
                          std::size_t prefix_dims, int positive_class) {
  const auto pos = static_cast<std::size_t>(positive_class);
  std::size_t best_rival = std::numeric_limits<std::size_t>::max();
  for (std::size_t c = 0; c < cum_distances.size(); ++c) {
    if (c == pos) continue;
    best_rival = std::min(best_rival, cum_distances[c]);
  }
  // Positive leads when rivals are FARTHER (larger Hamming distance), so the
  // margin is rival − positive, normalized per prefix dimension.
  return (static_cast<double>(best_rival) -
          static_cast<double>(cum_distances[pos])) /
         static_cast<double>(prefix_dims);
}

Cascade::Result Cascade::classify(const learn::HdcClassifier& classifier,
                                  hog::HdHogExtractor::StagedWindow& window,
                                  Scratch& scratch, CascadeStats& stats,
                                  core::OpCounter* counter) const {
  const std::size_t classes = prototypes_.count();
  const auto pos = static_cast<std::size_t>(table_.positive_class);
  if (stats.stages.size() < table_.stages.size()) {
    stats.stages.resize(table_.stages.size());
  }
  scratch.cum.assign(classes, 0);
  scratch.part.resize(classes);
  ++stats.windows;

  std::size_t prev_words = 0;
  for (std::size_t s = 0; s < table_.stages.size(); ++s) {
    const CascadeStage& stage = table_.stages[s];
    const core::Hypervector& prefix = window.assemble_to(stage.words, counter);
    prototypes_.hamming_many_range(prefix, prev_words, stage.words,
                                   scratch.part, counter);
    for (std::size_t c = 0; c < classes; ++c) scratch.cum[c] += scratch.part[c];
    const std::size_t prefix_dims =
        std::min(prototypes_.dim(), stage.words * 64);
    const double m = margin_of(scratch.cum, prefix_dims,
                               table_.positive_class);
    ++stats.stages[s].entered;
    if (m < stage.reject_below) {
      ++stats.stages[s].rejected;
      Result r;
      r.rejected = true;
      r.stage = s;
      // Best rival by prefix distance (lowest class index wins exact ties —
      // matching argmax-by-first-max of the exact path's tie convention).
      std::size_t best = pos == 0 ? 1 : 0;
      for (std::size_t c = 0; c < classes; ++c) {
        if (c == pos) continue;
        if (scratch.cum[c] < scratch.cum[best]) best = c;
      }
      r.prediction = static_cast<int>(best);
      // Normalized prefix similarity of the positive class, the same
      // δ = 1 − 2H/D statistic the binary inference path reports.
      r.score = 1.0 - 2.0 * static_cast<double>(scratch.cum[pos]) /
                          static_cast<double>(prefix_dims);
      return r;
    }
    prev_words = stage.words;
  }

  // Survivor: full feature, unchanged exact scoring — bit-identical to the
  // non-cascaded scan for this window.
  const core::Hypervector& feature =
      window.assemble_to(window.total_words(), counter);
  const std::vector<double> class_scores = classifier.scores(feature);
  ++stats.exact_scored;
  Result r;
  r.prediction = static_cast<int>(
      std::max_element(class_scores.begin(), class_scores.end()) -
      class_scores.begin());
  r.score = class_scores[pos];
  return r;
}

Cascade::Result Cascade::prescreen(hog::HdHogExtractor::StagedWindow& window,
                                   Scratch& scratch, CascadeStats& stats,
                                   core::OpCounter* counter) const {
  const std::size_t classes = prototypes_.count();
  const auto pos = static_cast<std::size_t>(table_.positive_class);
  scratch.cum.assign(classes, 0);
  ++stats.prescreen_entered;

  // The prescreen bundle (parity cells only) shares nothing with the staged
  // feature, so the whole prefix scores in one range pass into cum directly.
  const core::Hypervector& prefix =
      window.assemble_to(table_.prescreen_words, counter);
  prototypes_.hamming_many_range(prefix, 0, table_.prescreen_words,
                                 scratch.cum, counter);
  const std::size_t prefix_dims =
      std::min(prototypes_.dim(), table_.prescreen_words * 64);
  const double m = margin_of(scratch.cum, prefix_dims, table_.positive_class);
  Result r;
  // Union reject: the prefix-Hamming margin catches windows that resemble a
  // rival class, the orientation-spread floor catches structureless windows
  // whose bundle is far from EVERY prototype (their margin is uninformative —
  // near zero — but their parity cells carry almost no mass off bin 0). Both
  // thresholds are calibrated against the positive minima, so the union keeps
  // the zero-false-reject contract.
  if (m < table_.prescreen_reject_below ||
      window.prescreen_spread() < table_.prescreen_spread_below) {
    ++stats.prescreen_rejected;
    r.rejected = true;
    r.stage = 0;
    // Same rejected-window reporting convention as a stage rejection: best
    // rival by prefix distance (lowest index on exact ties), normalized
    // positive similarity 1 − 2H/d as the score.
    std::size_t best = pos == 0 ? 1 : 0;
    for (std::size_t c = 0; c < classes; ++c) {
      if (c == pos) continue;
      if (scratch.cum[c] < scratch.cum[best]) best = c;
    }
    r.prediction = static_cast<int>(best);
    r.score = 1.0 - 2.0 * static_cast<double>(scratch.cum[pos]) /
                        static_cast<double>(prefix_dims);
  }
  return r;
}

// --- offline calibration ----------------------------------------------------

CascadeTable calibrate_cascade(HdFacePipeline& pipeline,
                               const std::vector<image::Image>& scenes,
                               const CascadeCalibrationConfig& config) {
  if (scenes.empty()) {
    throw std::invalid_argument("calibrate_cascade: no calibration scenes");
  }
  if (config.window == 0 || config.stride == 0) {
    throw std::invalid_argument("calibrate_cascade: zero scan geometry");
  }
  const hog::HdHogExtractor* extractor = pipeline.hd_extractor();
  if (extractor == nullptr) {
    throw std::invalid_argument(
        "calibrate_cascade: cascade calibration requires an HD-HOG pipeline");
  }
  const learn::HdcClassifier& classifier = pipeline.classifier();
  const std::size_t dim = classifier.config().dim;
  const std::size_t classes = classifier.config().classes;
  const std::size_t total_words = (dim + 63) / 64;

  // Map fractions to cumulative word widths (deduplicated, ascending).
  if (config.stage_fractions.empty()) {
    throw std::invalid_argument("calibrate_cascade: no stage fractions");
  }
  std::vector<std::size_t> stage_words;
  for (const double f : config.stage_fractions) {
    if (!std::isfinite(f) || f <= 0.0 || f > 1.0) {
      throw std::invalid_argument(
          "calibrate_cascade: stage fraction outside (0, 1]");
    }
    const auto w = static_cast<std::size_t>(std::max<long long>(
        1, std::llround(f * static_cast<double>(total_words))));
    const std::size_t clamped = std::min(w, total_words);
    if (stage_words.empty() || clamped > stage_words.back()) {
      stage_words.push_back(clamped);
    }
  }

  std::size_t prescreen_words = 0;
  if (config.prescreen) {
    if (!std::isfinite(config.prescreen_fraction) ||
        config.prescreen_fraction <= 0.0 || config.prescreen_fraction > 1.0) {
      throw std::invalid_argument(
          "calibrate_cascade: prescreen fraction outside (0, 1]");
    }
    if (config.stride % extractor->config().hog.cell_size != 0) {
      throw std::invalid_argument(
          "calibrate_cascade: prescreen requires stride % cell_size == 0 so "
          "the plane grid step equals the cell size");
    }
    if (!std::isfinite(config.prescreen_spread_headroom) ||
        config.prescreen_spread_headroom < 0.0 ||
        config.prescreen_spread_headroom > 1.0) {
      throw std::invalid_argument(
          "calibrate_cascade: prescreen spread headroom outside [0, 1]");
    }
    prescreen_words = std::min(
        total_words,
        static_cast<std::size_t>(std::max<long long>(
            1, std::llround(config.prescreen_fraction *
                            static_cast<double>(total_words)))));
  }

  const core::PrototypeBlock block(classifier.binary_prototypes());

  std::vector<double> min_margin(stage_words.size(),
                                 std::numeric_limits<double>::infinity());
  double min_prescreen_margin = std::numeric_limits<double>::infinity();
  double min_prescreen_spread = std::numeric_limits<double>::infinity();
  std::size_t positive_windows = 0;

  ParallelDetectConfig engine;
  engine.threads = config.threads;
  engine.encode_mode = EncodeMode::kCellPlane;

  hog::HdHogExtractor::StagedWindow win(*extractor);
  std::vector<std::size_t> cum(classes);
  std::vector<std::size_t> part(classes);

  // Pass 1: golden maps + eager planes per scene (the exact cell-plane scan
  // the cascade must not falsely reject from, bit-identical at any thread
  // count), plus every positive window's parity-subset vmax. The prescreen
  // normalization scale must be fixed BEFORE any prescreen margin exists, so
  // the vmax statistics are collected up front.
  std::vector<DetectionMap> maps;
  std::vector<hog::CellPlane> planes;
  std::vector<double> positive_subset_vmax;
  const std::size_t cell = extractor->config().hog.cell_size;
  const std::size_t cells_per_side = config.window / cell;
  for (const image::Image& scene : scenes) {
    maps.push_back(detect_windows_parallel(pipeline, scene, config.window,
                                           config.stride,
                                           config.positive_class, engine));
    const std::size_t grid_step = std::gcd(config.stride, cell);
    planes.push_back(build_scene_cell_plane(pipeline, scene, grid_step, engine));
    const DetectionMap& map = maps.back();
    const hog::CellPlane& plane = planes.back();
    const std::size_t total = map.steps_x * map.steps_y;
    for (std::size_t idx = 0; idx < total; ++idx) {
      if (map.predictions[idx] != config.positive_class) continue;
      if (prescreen_words == 0) continue;
      const std::size_t ox = (idx % map.steps_x) * config.stride;
      const std::size_t oy = (idx / map.steps_x) * config.stride;
      double vmax = extractor->config().histogram_floor;
      for (std::size_t cy = 0; cy < cells_per_side; ++cy) {
        for (std::size_t cx = 0; cx < cells_per_side; ++cx) {
          const std::size_t gx = (ox + cx * cell) / plane.grid_step;
          const std::size_t gy = (oy + cy * cell) / plane.grid_step;
          if (gx % 2 != 0 || gy % 2 != 0) continue;
          const double* cached = plane.cell(gx, gy);
          for (std::size_t b = 0; b < plane.bins; ++b) {
            vmax = std::max(vmax, cached[b]);
          }
        }
      }
      positive_subset_vmax.push_back(vmax);
    }
  }
  // Median over the calibration positives: a fixed, deterministic scale that
  // keeps structureless windows at low histogram levels (self-normalization
  // would inflate a flat window's tiny values by their own tiny maximum and
  // make empty background look maximal — inseparable from faces).
  double prescreen_vmax = 0.0;
  if (!positive_subset_vmax.empty()) {
    std::sort(positive_subset_vmax.begin(), positive_subset_vmax.end());
    prescreen_vmax = positive_subset_vmax[positive_subset_vmax.size() / 2];
  }

  // Pass 2: per-positive prescreen and staged margins.
  for (std::size_t si = 0; si < scenes.size(); ++si) {
    const DetectionMap& map = maps[si];
    const hog::CellPlane& plane = planes[si];
    const std::size_t total = map.steps_x * map.steps_y;
    for (std::size_t idx = 0; idx < total; ++idx) {
      if (map.predictions[idx] != config.positive_class) continue;
      ++positive_windows;
      const std::size_t sx = idx % map.steps_x;
      const std::size_t sy = idx / map.steps_x;
      if (prescreen_words > 0) {
        // The prescreen feature (parity cells only) is disjoint from the
        // staged feature, so its margin is computed from its own reset,
        // normalized by the fixed scale the table will deploy.
        win.reset_prescreen(plane, sx * config.stride, sy * config.stride,
                            prescreen_vmax);
        min_prescreen_spread =
            std::min(min_prescreen_spread, win.prescreen_spread());
        const core::Hypervector& prefix = win.assemble_to(prescreen_words);
        std::fill(cum.begin(), cum.end(), 0);
        block.hamming_many_range(prefix, 0, prescreen_words, cum);
        const std::size_t prefix_dims = std::min(dim, prescreen_words * 64);
        min_prescreen_margin =
            std::min(min_prescreen_margin,
                     Cascade::margin_of(cum, prefix_dims,
                                        config.positive_class));
      }
      win.reset(plane, sx * config.stride, sy * config.stride);
      std::fill(cum.begin(), cum.end(), 0);
      std::size_t prev = 0;
      for (std::size_t s = 0; s < stage_words.size(); ++s) {
        const core::Hypervector& prefix = win.assemble_to(stage_words[s]);
        block.hamming_many_range(prefix, prev, stage_words[s], part);
        for (std::size_t c = 0; c < classes; ++c) cum[c] += part[c];
        const std::size_t prefix_dims = std::min(dim, stage_words[s] * 64);
        min_margin[s] =
            std::min(min_margin[s],
                     Cascade::margin_of(cum, prefix_dims,
                                        config.positive_class));
        prev = stage_words[s];
      }
    }
  }
  if (positive_windows == 0) {
    throw std::invalid_argument(
        "calibrate_cascade: calibration scenes contain no positive windows "
        "(a threshold calibrated on nothing would reject everything)");
  }

  CascadeTable table;
  table.version =
      prescreen_words > 0 ? kCascadeTableVersionPrescreen : kCascadeTableVersion;
  table.seed = pipeline.config().seed;
  table.dim = dim;
  table.classes = classes;
  table.positive_class = config.positive_class;
  table.window = config.window;
  table.stride = config.stride;
  if (prescreen_words > 0) {
    table.prescreen_words = prescreen_words;
    // Same zero-false-reject construction as the stages: strictly below every
    // calibration positive's prescreen margin (computed at the deployed
    // normalization scale).
    table.prescreen_reject_below = min_prescreen_margin - config.slack;
    table.prescreen_vmax = prescreen_vmax;
    // Spread floor below every calibration positive's spread by a relative
    // headroom (the spread is an unnormalized energy, so an absolute slack
    // would not transfer across geometries). Empty background sits near zero,
    // far under any positive, so the headroom costs almost no rejection.
    table.prescreen_spread_below =
        std::max(0.0, min_prescreen_spread *
                          (1.0 - config.prescreen_spread_headroom));
  }
  for (std::size_t s = 0; s < stage_words.size(); ++s) {
    CascadeStage stage;
    stage.words = stage_words[s];
    // Strictly below every calibration positive's margin: zero false rejects
    // on the calibration scenes for any slack ≥ 0.
    stage.reject_below = min_margin[s] - config.slack;
    table.stages.push_back(stage);
  }
  return table;
}

// --- threshold table serialization ------------------------------------------

std::string cascade_table_to_text(const CascadeTable& table) {
  // Fixed-format text with %a (hexfloat) thresholds: exact round-trip and a
  // byte stream that is a pure function of the table — the calibration
  // determinism tests diff these bytes directly.
  std::string out;
  char line[128];
  // The emitted version tracks the content, not the struct field: a table
  // without a prescreen always writes v1 bytes (back-compatible with every
  // pre-prescreen reader), one with a prescreen always writes v2.
  const std::uint32_t version = table.prescreen_words > 0
                                    ? kCascadeTableVersionPrescreen
                                    : kCascadeTableVersion;
  std::snprintf(line, sizeof(line), "hdface-cascade-table v%u\n", version);
  out += line;
  std::snprintf(line, sizeof(line), "seed 0x%llx\n",
                static_cast<unsigned long long>(table.seed));
  out += line;
  std::snprintf(line, sizeof(line), "dim %zu\n", table.dim);
  out += line;
  std::snprintf(line, sizeof(line), "classes %zu\n", table.classes);
  out += line;
  std::snprintf(line, sizeof(line), "positive %d\n", table.positive_class);
  out += line;
  std::snprintf(line, sizeof(line), "window %zu\n", table.window);
  out += line;
  std::snprintf(line, sizeof(line), "stride %zu\n", table.stride);
  out += line;
  if (table.prescreen_words > 0) {
    std::snprintf(line, sizeof(line), "prescreen %zu %a %a %a\n",
                  table.prescreen_words, table.prescreen_reject_below,
                  table.prescreen_vmax, table.prescreen_spread_below);
    out += line;
  }
  std::snprintf(line, sizeof(line), "stages %zu\n", table.stages.size());
  out += line;
  for (const CascadeStage& s : table.stages) {
    std::snprintf(line, sizeof(line), "stage %zu %a\n", s.words,
                  s.reject_below);
    out += line;
  }
  return out;
}

namespace {

[[noreturn]] void parse_fail(const std::string& what) {
  throw std::runtime_error("cascade_table_from_text: " + what);
}

// Reads "key value" off one line; value parsing via strtoull/strtod (strtod
// accepts the %a hexfloats the writer emits).
std::string next_line(std::string_view& text) {
  const std::size_t nl = text.find('\n');
  if (nl == std::string_view::npos) parse_fail("truncated table");
  std::string line(text.substr(0, nl));
  text.remove_prefix(nl + 1);
  return line;
}

std::uint64_t parse_u64_field(std::string_view& text, const char* key) {
  const std::string line = next_line(text);
  const std::string prefix = std::string(key) + " ";
  if (line.rfind(prefix, 0) != 0) parse_fail("expected '" + prefix + "...'");
  const char* begin = line.c_str() + prefix.size();
  char* end = nullptr;
  const unsigned long long v = std::strtoull(begin, &end, 0);
  if (end == begin || *end != '\0') parse_fail("malformed value for " + prefix);
  return static_cast<std::uint64_t>(v);
}

}  // namespace

CascadeTable cascade_table_from_text(std::string_view text) {
  CascadeTable table;
  const std::string header = next_line(text);
  unsigned version = 0;
  if (std::sscanf(header.c_str(), "hdface-cascade-table v%u", &version) != 1) {
    parse_fail("bad magic line '" + header + "'");
  }
  if (version != kCascadeTableVersion &&
      version != kCascadeTableVersionPrescreen) {
    parse_fail("unsupported version " + std::to_string(version));
  }
  table.version = version;
  table.seed = parse_u64_field(text, "seed");
  table.dim = static_cast<std::size_t>(parse_u64_field(text, "dim"));
  table.classes = static_cast<std::size_t>(parse_u64_field(text, "classes"));
  table.positive_class =
      static_cast<int>(parse_u64_field(text, "positive"));
  table.window = static_cast<std::size_t>(parse_u64_field(text, "window"));
  table.stride = static_cast<std::size_t>(parse_u64_field(text, "stride"));
  if (version >= kCascadeTableVersionPrescreen) {
    const std::string line = next_line(text);
    if (line.rfind("prescreen ", 0) != 0) parse_fail("expected 'prescreen ...'");
    const char* begin = line.c_str() + 10;
    char* end = nullptr;
    const unsigned long long words = std::strtoull(begin, &end, 10);
    if (end == begin || *end != ' ') parse_fail("malformed prescreen words");
    begin = end + 1;
    const double threshold = std::strtod(begin, &end);
    if (end == begin || *end != ' ') {
      parse_fail("malformed prescreen threshold");
    }
    begin = end + 1;
    const double vmax = std::strtod(begin, &end);
    if (end == begin || *end != ' ') {
      parse_fail("malformed prescreen normalization scale");
    }
    begin = end + 1;
    const double spread_below = std::strtod(begin, &end);
    if (end == begin || *end != '\0') {
      parse_fail("malformed prescreen spread floor");
    }
    if (words == 0) parse_fail("v2 table with zero prescreen words");
    table.prescreen_words = static_cast<std::size_t>(words);
    table.prescreen_reject_below = threshold;
    table.prescreen_vmax = vmax;
    table.prescreen_spread_below = spread_below;
  }
  const auto n_stages =
      static_cast<std::size_t>(parse_u64_field(text, "stages"));
  if (n_stages > 64) parse_fail("implausible stage count");
  for (std::size_t s = 0; s < n_stages; ++s) {
    const std::string line = next_line(text);
    if (line.rfind("stage ", 0) != 0) parse_fail("expected 'stage ...'");
    const char* begin = line.c_str() + 6;
    char* end = nullptr;
    const unsigned long long words = std::strtoull(begin, &end, 10);
    if (end == begin || *end != ' ') parse_fail("malformed stage words");
    begin = end + 1;
    const double threshold = std::strtod(begin, &end);
    if (end == begin || *end != '\0') parse_fail("malformed stage threshold");
    CascadeStage stage;
    stage.words = static_cast<std::size_t>(words);
    stage.reject_below = threshold;
    table.stages.push_back(stage);
  }
  return table;
}

void save_cascade_table(const std::string& path, const CascadeTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_cascade_table: cannot open for write: " +
                             path);
  }
  const std::string text = cascade_table_to_text(table);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) throw std::runtime_error("save_cascade_table: write failed: " + path);
}

CascadeTable load_cascade_table(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_cascade_table: cannot open: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return cascade_table_from_text(buf.str());
}

// --- calibration workload ---------------------------------------------------

std::vector<image::Image> cascade_calibration_scenes(
    std::size_t count, std::size_t window, std::size_t width,
    std::size_t height, std::size_t faces_per_scene, std::uint64_t seed,
    dataset::BackgroundKind background) {
  if (width < window || height < window) {
    throw std::invalid_argument(
        "cascade_calibration_scenes: scene smaller than the window");
  }
  std::vector<image::Image> scenes;
  scenes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::Rng rng(core::mix64(core::mix64(seed, kCalibrationSceneSalt), i));
    image::Image scene(width, height, 0.5f);
    dataset::render_background(scene, background, rng);
    for (std::size_t f = 0; f < faces_per_scene; ++f) {
      const image::Image face =
          dataset::render_face_window(window, rng.next());
      // Paste origins snapped to multiples of 8 so faces sit exactly under a
      // scan window for every stride dividing 8 (the scan grids the golden
      // maps use) — calibration needs the exact path to fire on them.
      const std::size_t max_x = (width - window) / 8;
      const std::size_t max_y = (height - window) / 8;
      const auto x = static_cast<std::ptrdiff_t>(rng.below(max_x + 1) * 8);
      const auto y = static_cast<std::ptrdiff_t>(rng.below(max_y + 1) * 8);
      image::paste(scene, face, x, y);
    }
    // Sensor noise matched to the training windows (face_generator adds
    // the same to every dataset window): a noise-free scene is out of the
    // training distribution, and the classifier's background margins
    // collapse on it — which blunts the cascade's shallow stages.
    image::add_gaussian_noise(scene, rng, 0.03f);
    scenes.push_back(std::move(scene));
  }
  return scenes;
}

}  // namespace hdface::pipeline
