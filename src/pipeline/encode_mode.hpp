#pragma once

// Encode-strategy knob and cache accounting for the batched detection
// engine, split out of parallel_detect.hpp so the public facade
// (api/detector.hpp) can carry them without pulling the engine (and its
// pipeline/thread-pool/cell-plane dependency cone).

#include <cstdint>

namespace hdface::pipeline {

// How the scan turns window pixels into feature hypervectors.
enum class EncodeMode {
  // Seed behavior: every window re-runs the full per-pixel stochastic chain
  // on its own reseeded scratch context.
  kPerWindow,
  // Scene-level cell-plane cache (hog/cell_plane.hpp): the per-pixel chain
  // runs once per grid cell of the whole scene, windows assemble from cached
  // cells. Roughly (window/stride)²-cheaper on the encode stage; results are
  // a (deterministically) different random stream than kPerWindow, still
  // bit-identical at every thread count. Requires an HD-HOG pipeline
  // (kOrigHogEncoder has no hypervector encode to cache — throws
  // std::invalid_argument).
  kCellPlane,
};

// How the cell-plane cache is populated (ignored by kPerWindow scans).
enum class PlaneMode {
  // Seed behavior: build_scene_cell_plane encodes EVERY grid cell up front.
  kEager,
  // Lazy materialization (hog/lazy_cell_plane.hpp): a cell's stochastic chain
  // runs the first time any window reads it. Bit-identical DetectionMaps to
  // kEager by construction (every cell reseeds from the same pure key); the
  // win is cells never read — with a prescreen-carrying cascade, cells that
  // belong only to prescreen-rejected windows are never encoded. Requires
  // EncodeMode::kCellPlane (throws std::invalid_argument otherwise).
  kLazy,
};

// Exact cache accounting for a cell-plane scan, merged from per-chunk shards
// (ShardedTally) after the scan — totals are identical at every thread count.
// The lazy-mode extras are exact too: the SET of materialized cells is a pure
// function of (model, scene, cascade table), not of scheduling, so its size
// and parity-subgrid slice are thread-count invariant.
struct EncodeCacheStats {
  // Cells whose stochastic chain actually ran (the compute side; in lazy mode
  // this is the materialized-cell count, ≤ cells_total).
  std::uint64_t cells_computed = 0;
  // Grid cells the plane geometry holds (eager mode computes all of them).
  // cells_computed / cells_total is the materialized fraction the
  // plane-encode bench gates on.
  std::uint64_t cells_total = 0;
  // Materialized cells on the even/even parity subgrid the cascade prescreen
  // reads — the cells the prescreen driver forced (lazy + prescreen scans
  // only; 0 otherwise).
  std::uint64_t cells_forced_prescreen = 0;
  // Lazy-mode materialization-gate probes (one per window × cell-it-reads).
  // 1 − cells_computed / ensure_checks is the plane hit rate: the fraction of
  // probes answered by an already-materialized cell.
  std::uint64_t ensure_checks = 0;
  // Cached (cell, bin) slot values consumed by window assembly (the hit
  // side; per_window mode would have recomputed each of these). A
  // prescreen-rejected window consumes only its parity-subset slots.
  std::uint64_t slot_reads = 0;
  std::uint64_t windows_assembled = 0;

  void merge(const EncodeCacheStats& other) {
    cells_computed += other.cells_computed;
    cells_total += other.cells_total;
    cells_forced_prescreen += other.cells_forced_prescreen;
    ensure_checks += other.ensure_checks;
    slot_reads += other.slot_reads;
    windows_assembled += other.windows_assembled;
  }
};

}  // namespace hdface::pipeline
