#pragma once

// Encode-strategy knob and cache accounting for the batched detection
// engine, split out of parallel_detect.hpp so the public facade
// (api/detector.hpp) can carry them without pulling the engine (and its
// pipeline/thread-pool/cell-plane dependency cone).

#include <cstdint>

namespace hdface::pipeline {

// How the scan turns window pixels into feature hypervectors.
enum class EncodeMode {
  // Seed behavior: every window re-runs the full per-pixel stochastic chain
  // on its own reseeded scratch context.
  kPerWindow,
  // Scene-level cell-plane cache (hog/cell_plane.hpp): the per-pixel chain
  // runs once per grid cell of the whole scene, windows assemble from cached
  // cells. Roughly (window/stride)²-cheaper on the encode stage; results are
  // a (deterministically) different random stream than kPerWindow, still
  // bit-identical at every thread count. Requires an HD-HOG pipeline
  // (kOrigHogEncoder has no hypervector encode to cache — throws
  // std::invalid_argument).
  kCellPlane,
};

// Exact cache accounting for a cell-plane scan, merged from per-chunk shards
// (ShardedTally) after the scan — totals are identical at every thread count.
struct EncodeCacheStats {
  // Cells whose stochastic chain actually ran (the compute side).
  std::uint64_t cells_computed = 0;
  // Cached (cell, bin) slot values consumed by window assembly (the hit
  // side; per_window mode would have recomputed each of these).
  std::uint64_t slot_reads = 0;
  std::uint64_t windows_assembled = 0;

  void merge(const EncodeCacheStats& other) {
    cells_computed += other.cells_computed;
    slot_reads += other.slot_reads;
    windows_assembled += other.windows_assembled;
  }
};

}  // namespace hdface::pipeline
