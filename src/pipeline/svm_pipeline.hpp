#pragma once

// HOG → linear SVM pipeline (the paper's second classical baseline).

#include <memory>

#include "dataset/dataset.hpp"
#include "hog/hog.hpp"
#include "learn/svm.hpp"

namespace hdface::pipeline {

struct SvmPipelineConfig {
  hog::HogConfig hog;
  double lambda = 1e-4;
  std::size_t epochs = 40;
  std::uint64_t seed = 0x57;
};

class SvmPipeline {
 public:
  SvmPipeline(const SvmPipelineConfig& config, std::size_t image_width,
              std::size_t image_height, std::size_t classes);

  void fit(const dataset::Dataset& train);
  double evaluate(const dataset::Dataset& test);

  const learn::LinearSvm& svm() const { return *svm_; }

 private:
  SvmPipelineConfig config_;
  hog::HogExtractor hog_;
  std::unique_ptr<learn::LinearSvm> svm_;
};

}  // namespace hdface::pipeline
