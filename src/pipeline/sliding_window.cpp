#include "pipeline/sliding_window.hpp"

#include <algorithm>
#include <stdexcept>

#include "image/transform.hpp"
#include "pipeline/parallel_detect.hpp"

namespace hdface::pipeline {

SlidingWindowDetector::SlidingWindowDetector(
    std::shared_ptr<HdFacePipeline> pipeline, std::size_t window,
    std::size_t stride, int positive_class)
    : pipeline_(std::move(pipeline)),
      window_(window),
      stride_(stride),
      positive_class_(positive_class) {
  if (!pipeline_) {
    throw std::invalid_argument("SlidingWindowDetector: null pipeline");
  }
  if (window == 0 || stride == 0) {
    throw std::invalid_argument("SlidingWindowDetector: zero geometry");
  }
}

SlidingWindowDetector::SlidingWindowDetector(HdFacePipeline& pipeline,
                                             std::size_t window,
                                             std::size_t stride,
                                             int positive_class)
    : SlidingWindowDetector(
          std::shared_ptr<HdFacePipeline>(&pipeline, [](HdFacePipeline*) {}),
          window, stride, positive_class) {}

DetectionMap SlidingWindowDetector::detect(const image::Image& scene) {
  if (scene.width() < window_ || scene.height() < window_) {
    throw std::invalid_argument("SlidingWindowDetector: scene smaller than window");
  }
  DetectionMap map;
  map.window = window_;
  map.stride = stride_;
  map.steps_x = (scene.width() - window_) / stride_ + 1;
  map.steps_y = (scene.height() - window_) / stride_ + 1;
  map.predictions.reserve(map.steps_x * map.steps_y);
  map.scores.reserve(map.steps_x * map.steps_y);
  for (std::size_t sy = 0; sy < map.steps_y; ++sy) {
    for (std::size_t sx = 0; sx < map.steps_x; ++sx) {
      const image::Image patch =
          image::crop(scene, sx * stride_, sy * stride_, window_, window_);
      const core::Hypervector feature = pipeline_->encode_image(patch);
      const auto class_scores = pipeline_->classifier().scores(feature);
      const auto pred = static_cast<int>(
          std::max_element(class_scores.begin(), class_scores.end()) -
          class_scores.begin());
      map.predictions.push_back(pred);
      map.scores.push_back(
          class_scores[static_cast<std::size_t>(positive_class_)]);
    }
  }
  return map;
}

DetectionMap SlidingWindowDetector::detect(const image::Image& scene,
                                           const ParallelDetectConfig& config) {
  return detect_windows_parallel(*pipeline_, scene, window_, stride_,
                                 positive_class_, config);
}

image::RgbImage SlidingWindowDetector::render_overlay(
    const image::Image& scene, const DetectionMap& map) const {
  image::RgbImage rgb = image::to_rgb(scene);
  for (std::size_t sy = 0; sy < map.steps_y; ++sy) {
    for (std::size_t sx = 0; sx < map.steps_x; ++sx) {
      if (map.prediction_at(sx, sy) != positive_class_) continue;
      // Blue tint over the detected window (paper Fig 6 coloring).
      for (std::size_t dy = 0; dy < map.window; ++dy) {
        for (std::size_t dx = 0; dx < map.window; ++dx) {
          auto& px = rgb.at(sx * map.stride + dx, sy * map.stride + dy);
          px[0] = static_cast<std::uint8_t>(px[0] * 0.6);
          px[1] = static_cast<std::uint8_t>(px[1] * 0.6);
          px[2] = static_cast<std::uint8_t>(std::min(255.0, px[2] * 0.6 + 100.0));
        }
      }
    }
  }
  return rgb;
}

}  // namespace hdface::pipeline
