#include "pipeline/sliding_window.hpp"

#include <algorithm>
#include <stdexcept>

#include "image/transform.hpp"
#include "pipeline/parallel_detect.hpp"

namespace hdface::pipeline {

SlidingWindowDetector::SlidingWindowDetector(
    std::shared_ptr<HdFacePipeline> pipeline, std::size_t window,
    std::size_t stride, int positive_class)
    : pipeline_(std::move(pipeline)),
      window_(window),
      stride_(stride),
      positive_class_(positive_class) {
  if (!pipeline_) {
    throw std::invalid_argument("SlidingWindowDetector: null pipeline");
  }
  if (window == 0 || stride == 0) {
    throw std::invalid_argument("SlidingWindowDetector: zero geometry");
  }
}

SlidingWindowDetector::SlidingWindowDetector(HdFacePipeline& pipeline,
                                             std::size_t window,
                                             std::size_t stride,
                                             int positive_class)
    : SlidingWindowDetector(
          std::shared_ptr<HdFacePipeline>(&pipeline, [](HdFacePipeline*) {}),
          window, stride, positive_class) {}

DetectionMap SlidingWindowDetector::detect(const image::Image& scene) {
  if (scene.width() < window_ || scene.height() < window_) {
    throw std::invalid_argument("SlidingWindowDetector: scene smaller than window");
  }
  DetectionMap map;
  map.window = window_;
  map.stride = stride_;
  map.steps_x = (scene.width() - window_) / stride_ + 1;
  map.steps_y = (scene.height() - window_) / stride_ + 1;
  map.predictions.reserve(map.steps_x * map.steps_y);
  map.scores.reserve(map.steps_x * map.steps_y);
  // One scratch patch reused across the scan instead of a heap-allocated
  // copy per window.
  image::Image patch;
  for (std::size_t sy = 0; sy < map.steps_y; ++sy) {
    for (std::size_t sx = 0; sx < map.steps_x; ++sx) {
      image::crop_into(scene, sx * stride_, sy * stride_, window_, window_,
                       patch);
      const core::Hypervector feature = pipeline_->encode_image(patch);
      const auto class_scores = pipeline_->classifier().scores(feature);
      const auto pred = static_cast<int>(
          std::max_element(class_scores.begin(), class_scores.end()) -
          class_scores.begin());
      map.predictions.push_back(pred);
      map.scores.push_back(
          class_scores[static_cast<std::size_t>(positive_class_)]);
    }
  }
  return map;
}

DetectionMap SlidingWindowDetector::detect(const image::Image& scene,
                                           const ParallelDetectConfig& config) {
  return detect_windows_parallel(*pipeline_, scene, window_, stride_,
                                 positive_class_, config);
}

image::RgbImage SlidingWindowDetector::render_overlay(
    const image::Image& scene, const DetectionMap& map) const {
  image::RgbImage rgb = image::to_rgb(scene);
  // Coverage mask first, then one tint pass: overlapping positive windows
  // must not stack the tint (repeated 0.6 darkening used to black out dense
  // detection clusters instead of highlighting them).
  std::vector<std::uint8_t> covered(rgb.width * rgb.height, 0);
  for (std::size_t sy = 0; sy < map.steps_y; ++sy) {
    for (std::size_t sx = 0; sx < map.steps_x; ++sx) {
      if (map.prediction_at(sx, sy) != positive_class_) continue;
      for (std::size_t dy = 0; dy < map.window; ++dy) {
        const std::size_t row = (sy * map.stride + dy) * rgb.width;
        for (std::size_t dx = 0; dx < map.window; ++dx) {
          covered[row + sx * map.stride + dx] = 1;
        }
      }
    }
  }
  // Blue tint over the detected windows (paper Fig 6 coloring), each covered
  // pixel tinted exactly once.
  for (std::size_t y = 0; y < rgb.height; ++y) {
    for (std::size_t x = 0; x < rgb.width; ++x) {
      if (!covered[y * rgb.width + x]) continue;
      auto& px = rgb.at(x, y);
      px[0] = static_cast<std::uint8_t>(px[0] * 0.6);
      px[1] = static_cast<std::uint8_t>(px[1] * 0.6);
      px[2] = static_cast<std::uint8_t>(std::min(255.0, px[2] * 0.6 + 100.0));
    }
  }
  return rgb;
}

}  // namespace hdface::pipeline
