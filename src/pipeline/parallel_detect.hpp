#pragma once

// Parallel batched detection engine.
//
// The sliding-window scan is embarrassingly parallel — the paper's whole
// pitch for HDC arithmetic (§4) is that it is "fully parallel" bitwise work —
// but the seed implementation classified every window serially because the
// stochastic-arithmetic context is single-threaded. This engine partitions
// the window grid into contiguous chunks dispatched on util::ThreadPool; each
// chunk runs on a scratch StochasticContext forked from the pipeline's (same
// basis V₁, same warmed mask pool, independent RNG chain).
//
// Determinism: before each window the scratch RNG is reseeded from
// mix64(pipeline seed, window index), so every window's encoding is a pure
// function of (pipeline state, window pixels, window index) — independent of
// thread count, chunk boundaries, and scheduling order. A 1-thread run and an
// 8-thread run produce bit-identical DetectionMaps. (Note this per-window
// seeding is a different — deterministic — random stream than the legacy
// serial SlidingWindowDetector::detect, whose RNG chain threads sequentially
// through the whole scan; the legacy path is kept for compatibility.)
//
// Op accounting is exact under parallelism: each chunk accumulates into its
// own ShardedOpCounter shard and the shards merge into the caller's counter
// after the scan, so totals are equal at every thread count.

#include <cstddef>

#include "core/op_counter.hpp"
#include "image/image.hpp"
#include "noise/fault_model.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "pipeline/sliding_window.hpp"
#include "util/thread_pool.hpp"

namespace hdface::pipeline {

struct ParallelDetectConfig {
  // 0 = use every worker of the pool; 1 = serial (same code path and same
  // bit-exact results, just no dispatch).
  std::size_t threads = 0;
  // Windows per chunk floor: keeps per-chunk scratch setup amortized.
  std::size_t min_chunk = 4;
  // Pool to dispatch on; nullptr = util::global_pool().
  util::ThreadPool* pool = nullptr;
  // Optional feature-op accounting (merged shard totals; see file comment).
  core::OpCounter* feature_counter = nullptr;
  // Optional query-plane fault injection: when set and the plan targets
  // queries, each window's encoded hypervector is corrupted in flight via
  // noise::apply_query_fault before classification. The fault pattern is a
  // pure function of (plan seed, window index), so faulted scans keep the
  // engine's any-thread-count bit-identical contract. Stored-memory targets
  // of the plan are NOT injected here — wrap the scan in a
  // pipeline::FaultSession for those. Must outlive the call.
  const noise::FaultPlan* fault_plan = nullptr;
};

// Scan `scene` with `window`-sized windows at `stride`, classifying each with
// the trained pipeline. Calls pipeline.prepare_concurrent() internally (the
// one mutation, before any dispatch). Throws std::invalid_argument on zero
// geometry or a scene smaller than the window.
DetectionMap detect_windows_parallel(HdFacePipeline& pipeline,
                                     const image::Image& scene,
                                     std::size_t window, std::size_t stride,
                                     int positive_class,
                                     const ParallelDetectConfig& config = {});

}  // namespace hdface::pipeline
