#pragma once

// Parallel batched detection engine.
//
// The sliding-window scan is embarrassingly parallel — the paper's whole
// pitch for HDC arithmetic (§4) is that it is "fully parallel" bitwise work —
// but the seed implementation classified every window serially because the
// stochastic-arithmetic context is single-threaded. This engine partitions
// the window grid into contiguous chunks dispatched on util::ThreadPool; each
// chunk runs on a scratch StochasticContext forked from the pipeline's (same
// basis V₁, same warmed mask pool, independent RNG chain).
//
// Determinism: before each window the scratch RNG is reseeded from
// mix64(pipeline seed, window index), so every window's encoding is a pure
// function of (pipeline state, window pixels, window index) — independent of
// thread count, chunk boundaries, and scheduling order. A 1-thread run and an
// 8-thread run produce bit-identical DetectionMaps. (Note this per-window
// seeding is a different — deterministic — random stream than the legacy
// serial SlidingWindowDetector::detect, whose RNG chain threads sequentially
// through the whole scan; the legacy path is kept for compatibility.)
//
// Op accounting is exact under parallelism: each chunk accumulates into its
// own ShardedOpCounter shard and the shards merge into the caller's counter
// after the scan, so totals are equal at every thread count.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/op_counter.hpp"
#include "hog/cell_plane.hpp"
#include "image/image.hpp"
#include "noise/fault_model.hpp"
#include "pipeline/cascade_types.hpp"
#include "pipeline/encode_mode.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "pipeline/sliding_window.hpp"
#include "util/thread_pool.hpp"

namespace hdface::pipeline {

class Cascade;

struct ParallelDetectConfig {
  // 0 = use every worker of the pool; 1 = serial (same code path and same
  // bit-exact results, just no dispatch).
  std::size_t threads = 0;
  // Windows per chunk floor: keeps per-chunk scratch setup amortized.
  std::size_t min_chunk = 4;
  // Pool to dispatch on; nullptr = util::global_pool().
  util::ThreadPool* pool = nullptr;
  // Optional feature-op accounting (merged shard totals; see file comment).
  core::OpCounter* feature_counter = nullptr;
  // Optional query-plane fault injection: when set and the plan targets
  // queries, each window's encoded hypervector is corrupted in flight via
  // noise::apply_query_fault before classification. The fault pattern is a
  // pure function of (plan seed, window index), so faulted scans keep the
  // engine's any-thread-count bit-identical contract. Stored-memory targets
  // of the plan are NOT injected here — wrap the scan in a
  // pipeline::FaultSession for those. Must outlive the call.
  const noise::FaultPlan* fault_plan = nullptr;
  // Encode strategy (see EncodeMode). kPerWindow reproduces the engine's
  // historical bit streams exactly; kCellPlane is the fast path.
  EncodeMode encode_mode = EncodeMode::kPerWindow;
  // Pyramid level this scan represents; part of the cell-plane reseed key so
  // every level of a multiscale scan draws an independent deterministic
  // stream (MultiScaleDetector sets it per level). Ignored by kPerWindow.
  std::size_t scale_index = 0;
  // Cell-plane population strategy (see PlaneMode): kEager builds the whole
  // plane before the scan, kLazy materializes each cell on its first window
  // read — bit-identical DetectionMaps, and with a prescreen-carrying
  // cascade most cells of a sparse scene are never encoded. kLazy requires
  // kCellPlane (throws std::invalid_argument otherwise) and is ignored by
  // detect_windows_on_plane (its caller-built plane is already materialized).
  PlaneMode plane_mode = PlaneMode::kEager;
  // Force the reference per-pixel stochastic chain for cell encodes instead
  // of the fused batched kernel (bench/ablation baseline knob; both produce
  // bit-identical cells). Accounting scans (feature_counter set) run the
  // reference chain regardless — op charges are defined on it.
  bool reference_cell_chain = false;
  // Optional cell-plane cache accounting (exact totals at any thread count;
  // untouched in kPerWindow mode).
  EncodeCacheStats* cache_stats = nullptr;
  // Early-reject cascade (pipeline/cascade.hpp): when set, the cell-plane
  // scan scores every window through the cascade's calibrated prefix stages,
  // escalating only survivors to the exact full-D path. Survivor results are
  // bit-identical to a cascade-free scan; rejected windows report the prefix
  // verdict. Requires kCellPlane (the per-window encode has no cheap prefix)
  // and is incompatible with fault_plan (in-flight query faults need the
  // fully assembled feature) — both throw std::invalid_argument. The exact
  // cascade mode is represented by LEAVING this null: the scan then runs
  // today's path untouched. Must outlive the call.
  const Cascade* cascade = nullptr;
  // Optional cascade stage accounting, merged from per-chunk shards after
  // the scan (exact at any thread count; untouched when `cascade` is null).
  CascadeStats* cascade_stats = nullptr;
  // Per-pyramid-level stage accounting: MultiScaleDetector appends one entry
  // per kept scale, in pyramid order. Ignored by single-scale scans.
  std::vector<CascadeStats>* cascade_per_scale = nullptr;
};

// Build the scene-level cell-plane cache the kCellPlane scan uses: the raw
// per-(cell, bin) slot values over the whole scene's cell grid, every cell's
// scratch context reseeded from the pure key (pipeline seed, scale_index,
// gx, gy) — bit-identical at any thread count and reusable across scans of
// the same scene/scale (exposed for benches and tests; detect_windows_parallel
// builds one internally per call). `grid_step` must divide the extractor's
// cell size; pass gcd(stride, cell_size) to cover every window of a scan.
// Calls pipeline.prepare_concurrent() (the one mutation, before dispatch).
// Throws std::invalid_argument unless the pipeline runs HD-HOG.
hog::CellPlane build_scene_cell_plane(HdFacePipeline& pipeline,
                                      const image::Image& scene,
                                      std::size_t grid_step,
                                      const ParallelDetectConfig& config = {});

// Scan-stage entry for a PREBUILT cell plane: classify every window of the
// scan grid against `plane` without re-encoding the scene. This is exactly
// the post-plane half of the kCellPlane scan — a scan on a freshly built
// plane is bit-identical to detect_windows_parallel in kCellPlane mode, and
// config.cascade selects cascaded vs exact scoring just like there. Reuse a
// plane across scans of the SAME scene/scale (threshold sweeps, cascade-vs-
// exact comparisons, re-detection): the plane build is the scan's dominant
// fixed cost, and this entry is how callers amortize it. `scene` supplies
// only the scan-grid geometry (its pixels are not re-read). Throws
// std::invalid_argument on zero geometry, a scene smaller than the window,
// a plane whose cell/bin shape mismatches the pipeline's extractor, or a
// plane too coarse/small to cover every window of the grid.
DetectionMap detect_windows_on_plane(HdFacePipeline& pipeline,
                                     const image::Image& scene,
                                     const hog::CellPlane& plane,
                                     std::size_t window, std::size_t stride,
                                     int positive_class,
                                     const ParallelDetectConfig& config = {});

// Scan `scene` with `window`-sized windows at `stride`, classifying each with
// the trained pipeline. Calls pipeline.prepare_concurrent() internally (the
// one mutation, before any dispatch). Throws std::invalid_argument on zero
// geometry or a scene smaller than the window.
DetectionMap detect_windows_parallel(HdFacePipeline& pipeline,
                                     const image::Image& scene,
                                     std::size_t window, std::size_t stride,
                                     int positive_class,
                                     const ParallelDetectConfig& config = {});

}  // namespace hdface::pipeline
