#pragma once

// Parallel batched detection engine.
//
// The sliding-window scan is embarrassingly parallel — the paper's whole
// pitch for HDC arithmetic (§4) is that it is "fully parallel" bitwise work —
// but the seed implementation classified every window serially because the
// stochastic-arithmetic context is single-threaded. This engine partitions
// the window grid into contiguous chunks dispatched on util::ThreadPool; each
// chunk runs on a scratch StochasticContext forked from the pipeline's (same
// basis V₁, same warmed mask pool, independent RNG chain).
//
// Determinism: before each window the scratch RNG is reseeded from
// mix64(pipeline seed, window index), so every window's encoding is a pure
// function of (pipeline state, window pixels, window index) — independent of
// thread count, chunk boundaries, and scheduling order. A 1-thread run and an
// 8-thread run produce bit-identical DetectionMaps. (Note this per-window
// seeding is a different — deterministic — random stream than the legacy
// serial SlidingWindowDetector::detect, whose RNG chain threads sequentially
// through the whole scan; the legacy path is kept for compatibility.)
//
// Op accounting is exact under parallelism: each chunk accumulates into its
// own ShardedOpCounter shard and the shards merge into the caller's counter
// after the scan, so totals are equal at every thread count.

#include <cstddef>
#include <cstdint>

#include "core/op_counter.hpp"
#include "hog/cell_plane.hpp"
#include "image/image.hpp"
#include "noise/fault_model.hpp"
#include "pipeline/encode_mode.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "pipeline/sliding_window.hpp"
#include "util/thread_pool.hpp"

namespace hdface::pipeline {

struct ParallelDetectConfig {
  // 0 = use every worker of the pool; 1 = serial (same code path and same
  // bit-exact results, just no dispatch).
  std::size_t threads = 0;
  // Windows per chunk floor: keeps per-chunk scratch setup amortized.
  std::size_t min_chunk = 4;
  // Pool to dispatch on; nullptr = util::global_pool().
  util::ThreadPool* pool = nullptr;
  // Optional feature-op accounting (merged shard totals; see file comment).
  core::OpCounter* feature_counter = nullptr;
  // Optional query-plane fault injection: when set and the plan targets
  // queries, each window's encoded hypervector is corrupted in flight via
  // noise::apply_query_fault before classification. The fault pattern is a
  // pure function of (plan seed, window index), so faulted scans keep the
  // engine's any-thread-count bit-identical contract. Stored-memory targets
  // of the plan are NOT injected here — wrap the scan in a
  // pipeline::FaultSession for those. Must outlive the call.
  const noise::FaultPlan* fault_plan = nullptr;
  // Encode strategy (see EncodeMode). kPerWindow reproduces the engine's
  // historical bit streams exactly; kCellPlane is the fast path.
  EncodeMode encode_mode = EncodeMode::kPerWindow;
  // Pyramid level this scan represents; part of the cell-plane reseed key so
  // every level of a multiscale scan draws an independent deterministic
  // stream (MultiScaleDetector sets it per level). Ignored by kPerWindow.
  std::size_t scale_index = 0;
  // Optional cell-plane cache accounting (exact totals at any thread count;
  // untouched in kPerWindow mode).
  EncodeCacheStats* cache_stats = nullptr;
};

// Build the scene-level cell-plane cache the kCellPlane scan uses: the raw
// per-(cell, bin) slot values over the whole scene's cell grid, every cell's
// scratch context reseeded from the pure key (pipeline seed, scale_index,
// gx, gy) — bit-identical at any thread count and reusable across scans of
// the same scene/scale (exposed for benches and tests; detect_windows_parallel
// builds one internally per call). `grid_step` must divide the extractor's
// cell size; pass gcd(stride, cell_size) to cover every window of a scan.
// Calls pipeline.prepare_concurrent() (the one mutation, before dispatch).
// Throws std::invalid_argument unless the pipeline runs HD-HOG.
hog::CellPlane build_scene_cell_plane(HdFacePipeline& pipeline,
                                      const image::Image& scene,
                                      std::size_t grid_step,
                                      const ParallelDetectConfig& config = {});

// Scan `scene` with `window`-sized windows at `stride`, classifying each with
// the trained pipeline. Calls pipeline.prepare_concurrent() internally (the
// one mutation, before any dispatch). Throws std::invalid_argument on zero
// geometry or a scene smaller than the window.
DetectionMap detect_windows_parallel(HdFacePipeline& pipeline,
                                     const image::Image& scene,
                                     std::size_t window, std::size_t stride,
                                     int positive_class,
                                     const ParallelDetectConfig& config = {});

}  // namespace hdface::pipeline
