#pragma once

// Batch feature-extraction helpers shared by the pipelines and benches.

#include <vector>

#include "core/op_counter.hpp"
#include "dataset/dataset.hpp"
#include "hog/hog.hpp"

namespace hdface::pipeline {

// Classical HOG features for every image in the dataset. Fans out over the
// global worker pool; results are bit-identical at every thread count (the
// extractor is deterministic per image) and op totals stay exact via
// sharded accounting.
std::vector<std::vector<float>> extract_hog_features(
    const dataset::Dataset& data, const hog::HogExtractor& extractor,
    core::OpCounter* counter = nullptr);

}  // namespace hdface::pipeline
