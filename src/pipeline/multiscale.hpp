#pragma once

// Multi-scale face detection: an image pyramid feeds the single-scale
// sliding-window detector, detections are mapped back to scene coordinates
// and merged with non-maximum suppression. This is the standard deployment
// wrapper around the paper's Fig 6 single-scale scan (faces in real scenes
// are not window-sized).

#include <vector>

#include "image/image.hpp"
#include "image/pnm.hpp"
#include "pipeline/sliding_window.hpp"

namespace hdface::pipeline {

struct Detection {
  // Box in scene pixel coordinates.
  std::size_t x = 0;
  std::size_t y = 0;
  std::size_t size = 0;  // square box edge
  double score = 0.0;    // positive-class cosine
};

// Intersection-over-union of two square boxes.
double box_iou(const Detection& a, const Detection& b);

// Greedy non-maximum suppression: keeps the highest-scoring box of every
// group overlapping above `iou_threshold`.
std::vector<Detection> non_max_suppression(std::vector<Detection> detections,
                                           double iou_threshold);

struct MultiScaleConfig {
  // Pyramid scales applied to the *scene* (1.0 = native; 0.5 finds faces
  // twice the window size).
  std::vector<double> scales = {1.0, 0.75, 0.5};
  std::size_t stride = 8;           // at window resolution
  double score_threshold = 0.0;     // min positive-class cosine
  double iou_threshold = 0.3;
};

class MultiScaleDetector {
 public:
  MultiScaleDetector(HdFacePipeline& pipeline, std::size_t window,
                     const MultiScaleConfig& config);

  // All post-NMS detections, sorted by descending score.
  std::vector<Detection> detect(const image::Image& scene);

  // Draws detection rectangles onto an RGB copy of the scene.
  image::RgbImage render(const image::Image& scene,
                         const std::vector<Detection>& detections) const;

 private:
  HdFacePipeline& pipeline_;
  std::size_t window_;
  MultiScaleConfig config_;
};

}  // namespace hdface::pipeline
