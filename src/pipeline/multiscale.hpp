#pragma once

// Multi-scale face detection: an image pyramid feeds the single-scale
// sliding-window detector, detections are mapped back to scene coordinates
// and merged with non-maximum suppression. This is the standard deployment
// wrapper around the paper's Fig 6 single-scale scan (faces in real scenes
// are not window-sized).

#include <memory>
#include <vector>

#include "image/image.hpp"
#include "image/pnm.hpp"
#include "pipeline/detection.hpp"
#include "pipeline/parallel_detect.hpp"
#include "pipeline/sliding_window.hpp"

namespace hdface::pipeline {

// Intersection-over-union of two square boxes.
double box_iou(const Detection& a, const Detection& b);

// Deterministic detection ordering: score descending, ties broken by
// position (y, then x) and size ascending. std::sort leaves equal elements
// in unspecified order, so sorting on score alone would let equal-score ties
// — common on synthetic scenes — pick NMS winners by accident of the
// sort implementation. Every detection sort in this module uses this.
bool detection_before(const Detection& a, const Detection& b);

// Greedy non-maximum suppression: keeps the highest-scoring box of every
// group overlapping above `iou_threshold`; equal scores resolve by
// detection_before, so the kept set is a pure function of the input set.
std::vector<Detection> non_max_suppression(std::vector<Detection> detections,
                                           double iou_threshold);

// Collapse a single-scale DetectionMap to boxes: every positive-class window
// scoring at least `score_threshold` becomes a window-sized box, then greedy
// NMS keeps the best of each overlapping group (so a face detected by several
// neighboring strides shows as one box in overlays). Sorted by descending
// score.
std::vector<Detection> map_detections(const DetectionMap& map,
                                      int positive_class = 1,
                                      double score_threshold = 0.0,
                                      double iou_threshold = 0.3);

// Draws detection rectangles onto an RGB copy of the scene.
image::RgbImage render_detections(const image::Image& scene,
                                  const std::vector<Detection>& detections);

struct MultiScaleConfig {
  // Pyramid scales applied to the *scene* (1.0 = native; 0.5 finds faces
  // twice the window size).
  std::vector<double> scales = {1.0, 0.75, 0.5};
  std::size_t stride = 8;           // at window resolution
  double score_threshold = 0.0;     // min positive-class cosine
  double iou_threshold = 0.3;
};

// The resized pyramid levels for one scene, computed once per detect call and
// shared read-only by every scan chunk (levels that cannot fit a window are
// dropped). Exposed so callers scanning one scene repeatedly — or with
// several detectors — can reuse the resize work.
struct ScalePyramid {
  std::vector<double> scales;        // kept scales, same order as config
  std::vector<image::Image> levels;  // resized scene per kept scale
};

ScalePyramid build_pyramid(const image::Image& scene, std::size_t window,
                           const std::vector<double>& scales);

class MultiScaleDetector {
 public:
  MultiScaleDetector(std::shared_ptr<HdFacePipeline> pipeline,
                     std::size_t window, const MultiScaleConfig& config);

  // Deprecated: non-owning reference form (see SlidingWindowDetector).
  MultiScaleDetector(HdFacePipeline& pipeline, std::size_t window,
                     const MultiScaleConfig& config);

  // All post-NMS detections, sorted by descending score. Serial seed path.
  std::vector<Detection> detect(const image::Image& scene);

  // Batched variant: every pyramid level runs through the parallel engine
  // (bit-identical results at every thread count; deterministically different
  // stream than the serial path — see parallel_detect.hpp).
  std::vector<Detection> detect(const image::Image& scene,
                                const ParallelDetectConfig& engine);

  // Draws detection rectangles onto an RGB copy of the scene.
  image::RgbImage render(const image::Image& scene,
                         const std::vector<Detection>& detections) const;

 private:
  std::vector<Detection> merge_scales(const ScalePyramid& pyramid,
                                      const std::vector<DetectionMap>& maps) const;

  std::shared_ptr<HdFacePipeline> pipeline_;
  std::size_t window_;
  MultiScaleConfig config_;
};

}  // namespace hdface::pipeline
