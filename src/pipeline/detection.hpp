#pragma once

// Detection result value types, split out of sliding_window.hpp /
// multiscale.hpp so the public facade (api/detector.hpp) and the serving
// layer (serve/server.hpp) can name results without pulling the pipeline
// machinery. The scan/merge functions stay with their engines.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace hdface::pipeline {

struct Detection {
  // Box in scene pixel coordinates.
  std::size_t x = 0;
  std::size_t y = 0;
  std::size_t size = 0;  // square box edge
  double score = 0.0;    // positive-class cosine
};

struct DetectionMap {
  std::size_t window = 0;
  std::size_t stride = 0;
  std::size_t steps_x = 0;
  std::size_t steps_y = 0;
  // Row-major per-window predicted class (for face detection: 1 = face).
  std::vector<int> predictions;
  // Positive-class cosine score per window.
  std::vector<double> scores;

  int prediction_at(std::size_t sx, std::size_t sy) const {
    check_step(sx, sy);
    return predictions[sy * steps_x + sx];
  }

  double score_at(std::size_t sx, std::size_t sy) const {
    check_step(sx, sy);
    return scores[sy * steps_x + sx];
  }

 private:
  void check_step(std::size_t sx, std::size_t sy) const {
    if (sx >= steps_x || sy >= steps_y) {
      throw std::out_of_range("DetectionMap: step out of range");
    }
  }
};

}  // namespace hdface::pipeline
