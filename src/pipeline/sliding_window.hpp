#pragma once

// Sliding-window detector over a scene image (paper Fig 6): the trained
// HDFace pipeline classifies overlapping windows; windows predicted as the
// positive class are tinted in the visualization overlay.

#include <memory>
#include <stdexcept>
#include <vector>

#include "image/image.hpp"
#include "image/pnm.hpp"
#include "pipeline/detection.hpp"
#include "pipeline/hdface_pipeline.hpp"

namespace hdface::util {
class ThreadPool;
}

namespace hdface::pipeline {

struct ParallelDetectConfig;

class SlidingWindowDetector {
 public:
  // The pipeline's window geometry defines the detector window size. The
  // detector shares ownership of the pipeline (detectors routinely outlive
  // the scope that trained the model).
  SlidingWindowDetector(std::shared_ptr<HdFacePipeline> pipeline,
                        std::size_t window, std::size_t stride,
                        int positive_class = 1);

  // Deprecated: non-owning reference form, kept so pre-facade callers build
  // unchanged. The caller must keep `pipeline` alive for the detector's
  // lifetime. Prefer the shared_ptr constructor or the api::Detector facade.
  SlidingWindowDetector(HdFacePipeline& pipeline, std::size_t window,
                        std::size_t stride, int positive_class = 1);

  // Serial scan on the pipeline's own stochastic context (the seed behavior:
  // one RNG chain threads through the whole scan).
  DetectionMap detect(const image::Image& scene);

  // Batched scan on the parallel engine (see parallel_detect.hpp): windows
  // are seeded per-index, so results are bit-identical at every thread
  // count — but a (deterministically) different stream than detect(scene).
  // The engine config carries the full scan feature set, including the
  // early-reject cascade (config.cascade + cascade_stats); exact mode is a
  // null config.cascade and runs the pre-cascade path untouched.
  DetectionMap detect(const image::Image& scene,
                      const ParallelDetectConfig& config);

  // Overlay: windows predicted positive are tinted blue (Fig 6 rendering).
  image::RgbImage render_overlay(const image::Image& scene,
                                 const DetectionMap& map) const;

 private:
  std::shared_ptr<HdFacePipeline> pipeline_;
  std::size_t window_;
  std::size_t stride_;
  int positive_class_;
};

}  // namespace hdface::pipeline
