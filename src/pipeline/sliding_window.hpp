#pragma once

// Sliding-window detector over a scene image (paper Fig 6): the trained
// HDFace pipeline classifies overlapping windows; windows predicted as the
// positive class are tinted in the visualization overlay.

#include <vector>

#include "image/image.hpp"
#include "image/pnm.hpp"
#include "pipeline/hdface_pipeline.hpp"

namespace hdface::pipeline {

struct DetectionMap {
  std::size_t window = 0;
  std::size_t stride = 0;
  std::size_t steps_x = 0;
  std::size_t steps_y = 0;
  // Row-major per-window predicted class (for face detection: 1 = face).
  std::vector<int> predictions;
  // Positive-class cosine score per window.
  std::vector<double> scores;

  int prediction_at(std::size_t sx, std::size_t sy) const {
    return predictions[sy * steps_x + sx];
  }
};

class SlidingWindowDetector {
 public:
  // The pipeline's window geometry defines the detector window size.
  SlidingWindowDetector(HdFacePipeline& pipeline, std::size_t window,
                        std::size_t stride, int positive_class = 1);

  DetectionMap detect(const image::Image& scene);

  // Overlay: windows predicted positive are tinted blue (Fig 6 rendering).
  image::RgbImage render_overlay(const image::Image& scene,
                                 const DetectionMap& map) const;

 private:
  HdFacePipeline& pipeline_;
  std::size_t window_;
  std::size_t stride_;
  int positive_class_;
};

}  // namespace hdface::pipeline
