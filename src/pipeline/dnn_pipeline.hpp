#pragma once

// HOG → MLP pipeline (the paper's DNN comparator).

#include <memory>
#include <vector>

#include "core/op_counter.hpp"
#include "dataset/dataset.hpp"
#include "hog/hog.hpp"
#include "learn/mlp.hpp"

namespace hdface::pipeline {

struct DnnConfig {
  hog::HogConfig hog;
  std::vector<std::size_t> hidden = {1024, 1024};  // paper's best (Fig 5b)
  double learning_rate = 0.05;
  std::size_t epochs = 30;
  std::size_t batch_size = 16;
  std::uint64_t seed = 0xD22;
};

class DnnPipeline {
 public:
  DnnPipeline(const DnnConfig& config, std::size_t image_width,
              std::size_t image_height, std::size_t classes);

  const DnnConfig& config() const { return config_; }
  const learn::Mlp& mlp() const { return *mlp_; }
  learn::Mlp& mutable_mlp() { return *mlp_; }
  const hog::HogExtractor& hog() const { return hog_; }

  std::vector<std::vector<float>> extract_features(const dataset::Dataset& data,
                                                   core::OpCounter* counter = nullptr);

  void fit(const dataset::Dataset& train);
  void fit_features(const std::vector<std::vector<float>>& features,
                    const std::vector<int>& labels);
  double evaluate(const dataset::Dataset& test);
  double evaluate_features(const std::vector<std::vector<float>>& features,
                           const std::vector<int>& labels) const;

 private:
  DnnConfig config_;
  hog::HogExtractor hog_;
  std::unique_ptr<learn::Mlp> mlp_;
};

}  // namespace hdface::pipeline
