#include "pipeline/features.hpp"

namespace hdface::pipeline {

std::vector<std::vector<float>> extract_hog_features(
    const dataset::Dataset& data, const hog::HogExtractor& extractor,
    core::OpCounter* counter) {
  std::vector<std::vector<float>> out;
  out.reserve(data.size());
  for (const auto& img : data.images) {
    out.push_back(extractor.extract(img, counter));
  }
  return out;
}

}  // namespace hdface::pipeline
