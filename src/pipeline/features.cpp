#include "pipeline/features.hpp"

#include <atomic>

#include "util/thread_pool.hpp"

namespace hdface::pipeline {

std::vector<std::vector<float>> extract_hog_features(
    const dataset::Dataset& data, const hog::HogExtractor& extractor,
    core::OpCounter* counter) {
  const std::size_t total = data.size();
  std::vector<std::vector<float>> out(total);
  // Classical HOG is deterministic per image, so the fan-out is trivially
  // bit-identical at any thread count; only op accounting needs sharding.
  util::ThreadPool& pool = util::global_pool();
  if (pool.size() <= 1 || total <= 1) {
    for (std::size_t i = 0; i < total; ++i) {
      out[i] = extractor.extract(data.images[i], counter);
    }
    return out;
  }
  core::ShardedOpCounter shards(pool.size() * 4 + 1);
  std::atomic<std::size_t> next_shard{0};
  util::parallel_for_chunked(
      pool, 0, total, 1,
      [&extractor, &data, &out, counter, &shards,
       &next_shard](std::size_t lo, std::size_t hi) {
        core::OpCounter* chunk_counter = nullptr;
        if (counter) {
          // hdlint: allow(sched-dependent-value) — shard totals merge with
          // integer adds, so combined() is exact at every thread count.
          chunk_counter = &shards.shard(next_shard.fetch_add(1) %
                                        shards.num_shards());
        }
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = extractor.extract(data.images[i], chunk_counter);
        }
      });
  if (counter) counter->merge(shards.combined());
  return out;
}

}  // namespace hdface::pipeline
