#include "pipeline/dnn_pipeline.hpp"

#include "pipeline/features.hpp"

namespace hdface::pipeline {

DnnPipeline::DnnPipeline(const DnnConfig& config, std::size_t image_width,
                         std::size_t image_height, std::size_t classes)
    : config_(config), hog_(config.hog) {
  learn::MlpConfig mc;
  mc.layers.push_back(hog_.feature_size(image_width, image_height));
  for (auto h : config.hidden) mc.layers.push_back(h);
  mc.layers.push_back(classes);
  mc.learning_rate = config.learning_rate;
  mc.epochs = config.epochs;
  mc.batch_size = config.batch_size;
  mc.seed = config.seed;
  mlp_ = std::make_unique<learn::Mlp>(mc);
}

std::vector<std::vector<float>> DnnPipeline::extract_features(
    const dataset::Dataset& data, core::OpCounter* counter) {
  return extract_hog_features(data, hog_, counter);
}

void DnnPipeline::fit(const dataset::Dataset& train) {
  mlp_->fit(extract_features(train), train.labels);
}

void DnnPipeline::fit_features(const std::vector<std::vector<float>>& features,
                               const std::vector<int>& labels) {
  mlp_->fit(features, labels);
}

double DnnPipeline::evaluate(const dataset::Dataset& test) {
  return mlp_->evaluate(extract_features(test), test.labels);
}

double DnnPipeline::evaluate_features(
    const std::vector<std::vector<float>>& features,
    const std::vector<int>& labels) const {
  return mlp_->evaluate(features, labels);
}

}  // namespace hdface::pipeline
