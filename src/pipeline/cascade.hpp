#pragma once

// Early-reject similarity cascade over the cell-plane scan (DESIGN.md §13).
//
// A staged window scorer: each window's query hypervector is assembled and
// scored one word-prefix at a time (hog::HdHogExtractor::StagedWindow +
// core::PrototypeBlock::hamming_many_range), and a window whose positive-
// class margin falls below the stage's calibrated threshold is rejected
// without ever paying for the rest of the bundle or the full-D score.
// Survivors are escalated to the COMPLETE feature and scored by the
// unchanged classifier path, so a survivor's (prediction, score) is
// bit-identical to the exact scan's — the cascade can only turn
// would-be-detections into rejections (false rejects), never perturb a
// survivor, and calibration picks thresholds with zero false rejects on the
// calibration scenes by construction (τ = min positive margin − slack).
//
// Determinism: staged assembly is bit-identical to one-shot assembly at
// every prefix (see StagedWindow), prefix Hamming tiles exactly to the full
// distance (see hamming_block_range), and the per-stage thresholds are plain
// doubles — so a cascaded scan is a pure function of (model, scene, table),
// independent of thread count; stage statistics merge from per-chunk shards
// with integer adds and are exact at every thread count too.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/op_counter.hpp"
#include "core/prototype_block.hpp"
#include "dataset/background_generator.hpp"
#include "hog/hd_hog.hpp"
#include "image/image.hpp"
#include "learn/hdc_model.hpp"
#include "pipeline/cascade_types.hpp"

namespace hdface::pipeline {

class HdFacePipeline;

// The staged scorer. Immutable after construction; one instance is shared
// read-only by every chunk of a scan (per-chunk scratch lives in Scratch /
// StagedWindow).
class Cascade {
 public:
  // Binarizes the classifier's prototypes into an SoA block for the prefix
  // stages (the same binarization the robustness studies deploy). Throws
  // std::invalid_argument when the table's dim/classes/positive_class
  // mismatch the classifier or its stages are malformed (empty, words not
  // strictly ascending within (0, total words], non-finite thresholds).
  Cascade(const learn::HdcClassifier& classifier, const CascadeTable& table);

  const CascadeTable& table() const { return table_; }
  std::size_t num_stages() const { return table_.stages.size(); }
  std::size_t total_words() const { return total_words_; }
  const core::PrototypeBlock& prototypes() const { return prototypes_; }
  bool has_prescreen() const { return table_.prescreen_words > 0; }

  struct Result {
    int prediction = 0;
    double score = 0.0;
    bool rejected = false;   // true when a prefix stage rejected the window
    std::size_t stage = 0;   // rejecting stage index (valid when rejected)
  };

  // Per-chunk scratch: cumulative and per-range prefix distances.
  struct Scratch {
    std::vector<std::size_t> cum;
    std::vector<std::size_t> part;
  };

  // Score one window. `window` must have been reset() on the window's plane
  // origin. Survivors assemble the full feature and score through
  // classifier.scores() — identical to the exact path. Rejected windows
  // report the best rival class as prediction and the prefix's normalized
  // positive similarity (1 − 2·H/d ∈ [−1, 1]) as score. `stats` is a
  // per-chunk local (merged by the caller); `counter` receives the prefix
  // Hamming + staged bundle op charges.
  Result classify(const learn::HdcClassifier& classifier,
                  hog::HdHogExtractor::StagedWindow& window, Scratch& scratch,
                  CascadeStats& stats, core::OpCounter* counter = nullptr) const;

  // Cell-subset prescreen (valid only when has_prescreen()). `window` must
  // have been reset_prescreen() on the window's plane origin — the feature is
  // bundled from ONLY the window's even/even parity cells, so the prefix is
  // NOT a prefix of the full feature and a survivor must reset() again before
  // classify(). Rejected windows report the same (best rival, 1 − 2H/d)
  // convention as a stage rejection, with stage = 0. Under a lazy plane this
  // is what keeps non-parity cells of all-rejected regions unmaterialized.
  Result prescreen(hog::HdHogExtractor::StagedWindow& window, Scratch& scratch,
                   CascadeStats& stats,
                   core::OpCounter* counter = nullptr) const;

  // The stage statistic: per-dimension lead of the positive class over its
  // best rival after a prefix of `prefix_dims` dimensions. Shared with
  // calibration so calibrated thresholds compare against the exact doubles
  // the scan computes.
  static double margin_of(std::span<const std::size_t> cum_distances,
                          std::size_t prefix_dims, int positive_class);

 private:
  CascadeTable table_;
  core::PrototypeBlock prototypes_;
  std::size_t total_words_ = 0;
};

// --- offline calibration ----------------------------------------------------

struct CascadeCalibrationConfig {
  // Cumulative prefix widths as fractions of the feature's words; each maps
  // to max(1, llround(fraction · words)) and must end strictly ascending.
  std::vector<double> stage_fractions = {0.0625, 0.25};
  // Safety slack subtracted from the minimum positive margin at each stage.
  // Zero false rejects on the calibration scenes holds for ANY slack ≥ 0 (the
  // threshold sits strictly below every calibration positive's margin);
  // slack buys headroom for unseen scenes at the price of pass rate.
  double slack = 0.02;
  std::size_t window = 0;  // scan window (pixels)
  std::size_t stride = 0;  // scan stride (pixels)
  int positive_class = 1;
  // Threads for the golden-map scans (the margins themselves are computed
  // serially; results are identical at any setting).
  std::size_t threads = 1;
  // Calibrate a cell-subset prescreen (CascadeTable::prescreen_words): score
  // each window over only its even/even parity cells before stage 0. Requires
  // stride % cell_size == 0 (so the plane's grid step equals the cell size
  // and the parity subgrid is well defined); throws otherwise.
  bool prescreen = false;
  // Prefix width of the prescreen bundle as a fraction of the feature's
  // words. The prescreen feature is NOT a prefix of the full feature, so this
  // is independent of stage_fractions.
  double prescreen_fraction = 0.25;
  // Relative headroom for the orientation-spread floor
  // (CascadeTable::prescreen_spread_below = (1 − headroom) · minimum positive
  // spread). Relative, not absolute: the spread is an unnormalized energy
  // whose magnitude scales with the window's parity cell count, so a fixed
  // offset would not transfer across geometries. Must lie in [0, 1];
  // 1 disables the floor (threshold 0), 0 pins it at the calibration minimum.
  double prescreen_spread_headroom = 0.1;
};

// Deterministic offline calibration over golden detection maps: runs the
// exact cell-plane scan on every scene, collects the per-stage margins of
// every window the exact path predicts positive, and sets each stage's
// threshold to (minimum positive margin − slack). Pure function of
// (pipeline, scenes, config): two runs emit byte-identical tables
// (cascade_table_to_text). Throws std::invalid_argument on empty scenes,
// malformed fractions, or calibration scenes with no positive windows (a
// threshold calibrated on nothing would reject everything).
CascadeTable calibrate_cascade(HdFacePipeline& pipeline,
                               const std::vector<image::Image>& scenes,
                               const CascadeCalibrationConfig& config);

// --- threshold table serialization ------------------------------------------

// Versioned text form. Thresholds are serialized as C hexfloats ("%a"), so
// the round-trip is exact and the bytes are a pure function of the table —
// the calibration determinism tests diff these strings directly.
std::string cascade_table_to_text(const CascadeTable& table);

// Parses cascade_table_to_text output; throws std::runtime_error on
// malformed or version-mismatched input.
CascadeTable cascade_table_from_text(std::string_view text);

void save_cascade_table(const std::string& path, const CascadeTable& table);
CascadeTable load_cascade_table(const std::string& path);

// --- calibration workload ---------------------------------------------------

// Deterministic sparse-scene family shared by tools/cascade_calibrate,
// bench/cascade and the parity tests: `count` scenes of width × height with
// `faces_per_scene` rendered faces pasted at deterministic positions over a
// `background`-kind texture (plus the training pipeline's sensor noise).
// Sparse scenes are where the cascade pays — almost every window is
// background, and background margins collapse after a short prefix. kMixed
// is the default because it matches the training negatives (which draw a
// random background kind per window): out-of-distribution backgrounds make
// the classifier fire on clutter, and those epsilon-margin positives drag
// every calibrated threshold into the background margin mass.
std::vector<image::Image> cascade_calibration_scenes(
    std::size_t count, std::size_t window, std::size_t width,
    std::size_t height, std::size_t faces_per_scene, std::uint64_t seed,
    dataset::BackgroundKind background = dataset::BackgroundKind::kMixed);

}  // namespace hdface::pipeline
