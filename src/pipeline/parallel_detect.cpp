#include "pipeline/parallel_detect.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>

#include "core/rng.hpp"
#include "image/transform.hpp"

namespace hdface::pipeline {

namespace {

// Salt separating the batched scan's per-window seed stream from every other
// consumer of the pipeline seed.
constexpr std::uint64_t kWindowStreamSalt = 0xBA7C4ED0ULL;

// Classify windows [lo, hi) of the row-major grid into map.predictions /
// map.scores. Pure function of (pipeline, scene, window index) — the scratch
// RNG restarts from the window seed before every window.
void scan_range(const HdFacePipeline& pipeline, const image::Image& scene,
                const DetectionMap& geometry, std::size_t window,
                std::size_t stride, int positive_class, std::uint64_t seed_base,
                const noise::FaultPlan* fault_plan,
                core::StochasticContext& scratch, std::size_t lo, std::size_t hi,
                std::vector<int>& predictions, std::vector<double>& scores) {
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const std::size_t sx = idx % geometry.steps_x;
    const std::size_t sy = idx / geometry.steps_x;
    scratch.reseed(core::mix64(seed_base, idx));
    const image::Image patch =
        image::crop(scene, sx * stride, sy * stride, window, window);
    core::Hypervector feature = pipeline.encode_image(patch, scratch);
    // In-flight query corruption (deterministic in the window index, so the
    // bit-identical-at-any-thread-count contract holds for faulted scans too).
    if (fault_plan) noise::apply_query_fault(*fault_plan, idx, feature);
    const auto class_scores = pipeline.classifier().scores(feature);
    predictions[idx] = static_cast<int>(
        std::max_element(class_scores.begin(), class_scores.end()) -
        class_scores.begin());
    scores[idx] = class_scores[static_cast<std::size_t>(positive_class)];
  }
}

}  // namespace

DetectionMap detect_windows_parallel(HdFacePipeline& pipeline,
                                     const image::Image& scene,
                                     std::size_t window, std::size_t stride,
                                     int positive_class,
                                     const ParallelDetectConfig& config) {
  if (window == 0 || stride == 0) {
    throw std::invalid_argument("detect_windows_parallel: zero geometry");
  }
  if (scene.width() < window || scene.height() < window) {
    throw std::invalid_argument(
        "detect_windows_parallel: scene smaller than window");
  }
  DetectionMap map;
  map.window = window;
  map.stride = stride;
  map.steps_x = (scene.width() - window) / stride + 1;
  map.steps_y = (scene.height() - window) / stride + 1;
  const std::size_t total = map.steps_x * map.steps_y;
  map.predictions.assign(total, 0);
  map.scores.assign(total, 0.0);

  // The one mutation, before any dispatch: freeze the shared mask pool.
  pipeline.prepare_concurrent();
  const std::uint64_t seed_base =
      core::mix64(pipeline.config().seed, kWindowStreamSalt);
  const HdFacePipeline& frozen = pipeline;

  // Resolve the execution resource. threads == 1 never dispatches; a caller
  // pool wins over the threads knob; otherwise 0 = global pool and N spins up
  // a call-local pool of exactly N workers.
  util::ThreadPool* pool = config.pool;
  std::unique_ptr<util::ThreadPool> local_pool;
  if (pool == nullptr && config.threads != 1) {
    if (config.threads == 0) {
      pool = &util::global_pool();
    } else {
      local_pool = std::make_unique<util::ThreadPool>(config.threads);
      pool = local_pool.get();
    }
  }

  if (pool == nullptr || pool->size() <= 1) {
    core::StochasticContext scratch = frozen.fork_context(seed_base);
    core::OpCounter local;
    if (config.feature_counter) scratch.set_counter(&local);
    scan_range(frozen, scene, map, window, stride, positive_class, seed_base,
               config.fault_plan, scratch, 0, total, map.predictions,
               map.scores);
    if (config.feature_counter) config.feature_counter->merge(local);
    return map;
  }

  // One counter shard per chunk, claimed in dispatch order. Shard totals
  // merge after the scan; addition commutes, so the merged counts are exact
  // and identical at every thread count.
  core::ShardedOpCounter shards(pool->size() * 4 + 1);
  std::atomic<std::size_t> next_shard{0};
  util::parallel_for_chunked(
      *pool, 0, total, config.min_chunk,
      [&](std::size_t lo, std::size_t hi) {
        core::StochasticContext scratch =
            frozen.fork_context(core::mix64(seed_base, lo));
        core::OpCounter* shard = nullptr;
        if (config.feature_counter) {
          // Shard choice is scheduling-dependent; shard totals are merged
          // with integer adds (commutative), so combined() is exact and
          // identical at every thread count.
          // hdlint: allow(sched-dependent-value)
          shard = &shards.shard(next_shard.fetch_add(1) %
                                shards.num_shards());
          scratch.set_counter(shard);
        }
        scan_range(frozen, scene, map, window, stride, positive_class,
                   seed_base, config.fault_plan, scratch, lo, hi,
                   map.predictions, map.scores);
      });
  if (config.feature_counter) config.feature_counter->merge(shards.combined());
  return map;
}

}  // namespace hdface::pipeline
