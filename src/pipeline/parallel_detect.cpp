#include "pipeline/parallel_detect.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "core/rng.hpp"
#include "hog/gradient.hpp"
#include "hog/lazy_cell_plane.hpp"
#include "image/transform.hpp"
#include "pipeline/cascade.hpp"

namespace hdface::pipeline {

namespace {

// Salt separating the batched scan's per-window seed stream from every other
// consumer of the pipeline seed.
constexpr std::uint64_t kWindowStreamSalt = 0xBA7C4ED0ULL;

// Resolve the execution resource. threads == 1 never dispatches; a caller
// pool wins over the threads knob; otherwise 0 = global pool and N spins up
// a call-local pool of exactly N workers.
struct PoolChoice {
  util::ThreadPool* pool = nullptr;
  std::unique_ptr<util::ThreadPool> local;
  bool serial() const { return pool == nullptr || pool->size() <= 1; }
};

PoolChoice resolve_pool(const ParallelDetectConfig& config) {
  PoolChoice choice;
  choice.pool = config.pool;
  if (choice.pool == nullptr && config.threads != 1) {
    if (config.threads == 0) {
      choice.pool = &util::global_pool();
    } else {
      choice.local = std::make_unique<util::ThreadPool>(config.threads);
      choice.pool = choice.local.get();
    }
  }
  return choice;
}

DetectionMap make_map_geometry(const image::Image& scene, std::size_t window,
                               std::size_t stride) {
  if (window == 0 || stride == 0) {
    throw std::invalid_argument("detect_windows_parallel: zero geometry");
  }
  if (scene.width() < window || scene.height() < window) {
    throw std::invalid_argument(
        "detect_windows_parallel: scene smaller than window");
  }
  DetectionMap map;
  map.window = window;
  map.stride = stride;
  map.steps_x = (scene.width() - window) / stride + 1;
  map.steps_y = (scene.height() - window) / stride + 1;
  const std::size_t total = map.steps_x * map.steps_y;
  map.predictions.assign(total, 0);
  map.scores.assign(total, 0.0);
  return map;
}

// Classify windows [lo, hi) of the row-major grid into map.predictions /
// map.scores. Pure function of (pipeline, scene, window index) — the scratch
// RNG restarts from the window seed before every window.
void scan_range(const HdFacePipeline& pipeline, const image::Image& scene,
                const DetectionMap& geometry, std::size_t window,
                std::size_t stride, int positive_class, std::uint64_t seed_base,
                const noise::FaultPlan* fault_plan,
                core::StochasticContext& scratch, std::size_t lo, std::size_t hi,
                std::vector<int>& predictions, std::vector<double>& scores) {
  // One scratch patch per chunk, reused across its windows (crop_into).
  image::Image patch;
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const std::size_t sx = idx % geometry.steps_x;
    const std::size_t sy = idx / geometry.steps_x;
    scratch.reseed(core::mix64(seed_base, idx));
    image::crop_into(scene, sx * stride, sy * stride, window, window, patch);
    core::Hypervector feature = pipeline.encode_image(patch, scratch);
    // In-flight query corruption (deterministic in the window index, so the
    // bit-identical-at-any-thread-count contract holds for faulted scans too).
    if (fault_plan) noise::apply_query_fault(*fault_plan, idx, feature);
    const auto class_scores = pipeline.classifier().scores(feature);
    predictions[idx] = static_cast<int>(
        std::max_element(class_scores.begin(), class_scores.end()) -
        class_scores.begin());
    scores[idx] = class_scores[static_cast<std::size_t>(positive_class)];
  }
}

// Cell-plane window assembly for windows [lo, hi): only the cheap per-window
// tail runs here (plane slicing, vmax normalization, level lookup, weighted
// bundling) — no stochastic context at all, so the result is trivially
// independent of scheduling.
void assemble_range(const HdFacePipeline& pipeline,
                    const hog::HdHogExtractor& extractor,
                    const hog::CellPlane& plane, const DetectionMap& geometry,
                    std::size_t stride, int positive_class,
                    const noise::FaultPlan* fault_plan,
                    core::OpCounter* counter, std::size_t lo, std::size_t hi,
                    std::vector<int>& predictions, std::vector<double>& scores) {
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const std::size_t sx = idx % geometry.steps_x;
    const std::size_t sy = idx / geometry.steps_x;
    core::Hypervector feature =
        extractor.extract_from_plane(plane, sx * stride, sy * stride, counter);
    if (fault_plan) noise::apply_query_fault(*fault_plan, idx, feature);
    const auto class_scores = pipeline.classifier().scores(feature);
    predictions[idx] = static_cast<int>(
        std::max_element(class_scores.begin(), class_scores.end()) -
        class_scores.begin());
    scores[idx] = class_scores[static_cast<std::size_t>(positive_class)];
  }
}

// Number of even values in [g0, g0 + count) — the parity-subgrid cell count
// along one axis of a window (prescreen geometry has grid step 1 per cell).
std::size_t even_count(std::size_t g0, std::size_t count) {
  return (count + 1 - (g0 & 1)) / 2;
}

// Cascaded cell-plane scan for windows [lo, hi): staged prefix scoring with
// early rejection (see pipeline/cascade.hpp), preceded by the table's
// parity-cell prescreen when it carries one. Shares the plane with the exact
// path; survivors produce bit-identical (prediction, score). Stage counters
// accumulate into the chunk-local `stats`, slot-read accounting into the
// chunk-local `estats` (a prescreen-rejected window consumes only its parity
// slots, so the geometric total·slots formula no longer applies here).
void cascade_range(const HdFacePipeline& pipeline,
                   const hog::HdHogExtractor& extractor,
                   const hog::CellPlane& plane, const DetectionMap& geometry,
                   std::size_t stride, const Cascade& cascade,
                   core::OpCounter* counter, CascadeStats& stats,
                   EncodeCacheStats& estats, std::size_t lo, std::size_t hi,
                   std::vector<int>& predictions, std::vector<double>& scores) {
  hog::HdHogExtractor::StagedWindow win(extractor);
  Cascade::Scratch scratch;
  const bool prescreen = cascade.has_prescreen();
  const std::size_t cells_per_side =
      geometry.window / extractor.config().hog.cell_size;
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const std::size_t sx = idx % geometry.steps_x;
    const std::size_t sy = idx / geometry.steps_x;
    const std::size_t ox = sx * stride;
    const std::size_t oy = sy * stride;
    ++estats.windows_assembled;
    if (prescreen) {
      // Prescreen geometry requires grid_step == cell_size (validated by the
      // caller), so the window's cells sit at consecutive grid coordinates.
      estats.slot_reads += even_count(ox / plane.grid_step, cells_per_side) *
                           even_count(oy / plane.grid_step, cells_per_side) *
                           plane.bins;
      win.reset_prescreen(plane, ox, oy, cascade.table().prescreen_vmax);
      const Cascade::Result r = cascade.prescreen(win, scratch, stats, counter);
      if (r.rejected) {
        predictions[idx] = r.prediction;
        scores[idx] = r.score;
        continue;
      }
    }
    estats.slot_reads += extractor.slots();
    win.reset(plane, ox, oy);
    const Cascade::Result r =
        cascade.classify(pipeline.classifier(), win, scratch, stats, counter);
    predictions[idx] = r.prediction;
    scores[idx] = r.score;
  }
}

// Shared cascade-config validation: the same throws whether the caller goes
// through detect_windows_parallel (fast-fail, before the plane build) or
// detect_windows_on_plane.
void validate_cascade_config(const ParallelDetectConfig& config,
                             int positive_class) {
  if (config.cascade == nullptr) return;
  if (config.fault_plan != nullptr) {
    throw std::invalid_argument(
        "detect_windows_parallel: cascade scans are incompatible with "
        "fault_plan (in-flight query faults need the full feature)");
  }
  if (config.cascade->table().positive_class != positive_class) {
    throw std::invalid_argument(
        "detect_windows_parallel: cascade table positive_class mismatches "
        "the scan");
  }
}

// Lazy cell-plane scan (PlaneMode::kLazy): the plane starts empty and a cell
// is encoded the first time any window reads it (hog/lazy_cell_plane.hpp).
// With a prescreen-carrying cascade each window first materializes only its
// even/even parity cells, prescreens on them, and escalates to the full cell
// set only on survival — cells belonging exclusively to prescreen-rejected
// windows are never encoded. Every cell reseeds from the same pure
// (seed, scale, gx, gy) key as the eager build, so the DetectionMap is
// bit-identical to kEager at any thread count and any scheduling: laziness
// changes WHEN (and whether) a cell's bytes are computed, never the bytes.
DetectionMap detect_windows_lazy_plane(HdFacePipeline& pipeline,
                                       const image::Image& scene,
                                       std::size_t window, std::size_t stride,
                                       int positive_class,
                                       const ParallelDetectConfig& config) {
  DetectionMap map = make_map_geometry(scene, window, stride);
  const std::size_t total = map.steps_x * map.steps_y;
  validate_cascade_config(config, positive_class);

  const hog::HdHogExtractor* extractor = pipeline.hd_extractor();
  if (extractor == nullptr) {
    throw std::invalid_argument(
        "detect_windows_parallel: cell_plane encode requires an HD-HOG "
        "pipeline (kOrigHogEncoder has no hypervector encode to cache)");
  }
  const std::size_t cell = extractor->config().hog.cell_size;
  const std::size_t bins = extractor->config().hog.bins;
  const std::size_t grid_step = std::gcd(stride, cell);
  const bool prescreen =
      config.cascade != nullptr && config.cascade->has_prescreen();
  if (prescreen && grid_step != cell) {
    throw std::invalid_argument(
        "detect_windows_parallel: a prescreen-carrying cascade table needs "
        "stride % cell_size == 0 so the parity subgrid is well defined");
  }

  hog::LazyCellPlane lazy(hog::make_cell_plane_geometry(
      scene.width(), scene.height(), cell, bins, grid_step,
      config.scale_index));
  const hog::CellPlane& plane = lazy.plane();
  const std::size_t cells_per_side = window / cell;
  if (!plane.window_on_grid(0, 0, cells_per_side, cells_per_side) ||
      !plane.window_on_grid((map.steps_x - 1) * stride,
                            (map.steps_y - 1) * stride, cells_per_side,
                            cells_per_side)) {
    throw std::invalid_argument(
        "detect_windows_parallel: lazy cell plane does not cover the scan "
        "grid");
  }
  // Grid cells between adjacent window cells (1 when grid_step == cell).
  const std::size_t gstep = cell / plane.grid_step;

  // The one mutation, before any dispatch: freeze the shared mask pool.
  pipeline.prepare_concurrent();
  const std::uint64_t seed = pipeline.config().seed;
  const HdFacePipeline& frozen = pipeline;
  // Scene-scale pixel→level planar pass shared by every cell encode (see
  // build_scene_cell_plane).
  const hog::LevelIndexPlane levels =
      hog::build_level_index_plane(scene, extractor->item_memory());

  // Window work for [lo, hi): materialize the cells the window actually
  // reads, then score it exactly like the eager paths. Threads write disjoint
  // cells (the once-gate serializes racers per cell) and read only cells they
  // ensured, so the plane needs no further locking.
  const auto run_range = [&](core::StochasticContext& scratch,
                             core::OpCounter* counter, CascadeStats& cstats,
                             EncodeCacheStats& estats, std::size_t lo,
                             std::size_t hi) {
    hog::HdHogExtractor::StagedWindow win(*extractor);
    Cascade::Scratch cascade_scratch;
    const auto ensure = [&](std::size_t gx, std::size_t gy) {
      ++estats.ensure_checks;
      lazy.ensure_cell(gx, gy, [&](double* out) {
        scratch.reseed(hog::cell_plane_seed(seed, config.scale_index, gx, gy));
        extractor->cell_raw_values(scene, &levels, gx * plane.grid_step,
                                   gy * plane.grid_step, scratch, out,
                                   config.reference_cell_chain);
      });
    };
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const std::size_t sx = idx % map.steps_x;
      const std::size_t sy = idx / map.steps_x;
      const std::size_t ox = sx * stride;
      const std::size_t oy = sy * stride;
      const std::size_t gx0 = ox / plane.grid_step;
      const std::size_t gy0 = oy / plane.grid_step;
      ++estats.windows_assembled;
      if (prescreen) {
        // Parity pass: only the window's even/even cells (gstep == 1 here —
        // grid_step == cell was validated above).
        std::size_t parity_cells = 0;
        for (std::size_t cy = 0; cy < cells_per_side; ++cy) {
          const std::size_t gy = gy0 + cy;
          if (gy % 2 != 0) continue;
          for (std::size_t cx = 0; cx < cells_per_side; ++cx) {
            const std::size_t gx = gx0 + cx;
            if (gx % 2 != 0) continue;
            ensure(gx, gy);
            ++parity_cells;
          }
        }
        estats.slot_reads += parity_cells * bins;
        win.reset_prescreen(plane, ox, oy,
                            config.cascade->table().prescreen_vmax);
        const Cascade::Result r =
            config.cascade->prescreen(win, cascade_scratch, cstats, counter);
        if (r.rejected) {
          map.predictions[idx] = r.prediction;
          map.scores[idx] = r.score;
          continue;
        }
      }
      for (std::size_t cy = 0; cy < cells_per_side; ++cy) {
        for (std::size_t cx = 0; cx < cells_per_side; ++cx) {
          ensure(gx0 + cx * gstep, gy0 + cy * gstep);
        }
      }
      estats.slot_reads += extractor->slots();
      if (config.cascade != nullptr) {
        win.reset(plane, ox, oy);
        const Cascade::Result r = config.cascade->classify(
            frozen.classifier(), win, cascade_scratch, cstats, counter);
        map.predictions[idx] = r.prediction;
        map.scores[idx] = r.score;
      } else {
        core::Hypervector feature =
            extractor->extract_from_plane(plane, ox, oy, counter);
        if (config.fault_plan) {
          noise::apply_query_fault(*config.fault_plan, idx, feature);
        }
        const auto class_scores = frozen.classifier().scores(feature);
        map.predictions[idx] = static_cast<int>(
            std::max_element(class_scores.begin(), class_scores.end()) -
            class_scores.begin());
        map.scores[idx] =
            class_scores[static_cast<std::size_t>(positive_class)];
      }
    }
  };

  PoolChoice exec = resolve_pool(config);
  if (exec.serial()) {
    core::StochasticContext scratch = frozen.fork_context(seed);
    core::OpCounter local;
    if (config.feature_counter) scratch.set_counter(&local);
    CascadeStats cascade_local;
    EncodeCacheStats cache_local;
    run_range(scratch, config.feature_counter ? &local : nullptr,
              cascade_local, cache_local, 0, total);
    if (config.feature_counter) config.feature_counter->merge(local);
    if (config.cascade != nullptr && config.cascade_stats) {
      config.cascade_stats->merge(cascade_local);
    }
    if (config.cache_stats) config.cache_stats->merge(cache_local);
  } else {
    core::ShardedOpCounter shards(exec.pool->size() * 4 + 1);
    std::vector<CascadeStats> stat_shards(shards.num_shards());
    std::vector<EncodeCacheStats> cache_shards(shards.num_shards());
    std::atomic<std::size_t> next_shard{0};
    util::parallel_for_chunked(
        *exec.pool, 0, total, config.min_chunk,
        [&run_range, &frozen, &config, &shards, &stat_shards, &cache_shards,
         &next_shard, seed](std::size_t lo, std::size_t hi) {
          core::StochasticContext scratch =
              frozen.fork_context(core::mix64(seed, lo));
          // hdlint: allow(sched-dependent-value) — shard totals merge with
          // integer adds, so combined() is exact at every thread count.
          const std::size_t slot = next_shard.fetch_add(1) %
                                   shards.num_shards();
          core::OpCounter* shard = nullptr;
          if (config.feature_counter) {
            shard = &shards.shard(slot);
            scratch.set_counter(shard);
          }
          run_range(scratch, shard, stat_shards[slot], cache_shards[slot], lo,
                    hi);
        });
    if (config.feature_counter) config.feature_counter->merge(shards.combined());
    if (config.cascade != nullptr && config.cascade_stats) {
      for (const CascadeStats& s : stat_shards) config.cascade_stats->merge(s);
    }
    if (config.cache_stats) {
      for (const EncodeCacheStats& s : cache_shards) {
        config.cache_stats->merge(s);
      }
    }
  }
  if (config.cache_stats) {
    // Compute-side accounting from the materialization flags: the SET of
    // materialized cells is a pure function of (model, scene, table) — which
    // thread filled a cell varies, whether it got filled does not.
    config.cache_stats->cells_total += plane.cells();
    config.cache_stats->cells_computed += lazy.count_materialized(false);
    if (prescreen) {
      config.cache_stats->cells_forced_prescreen +=
          lazy.count_materialized(true);
    }
  }
  return map;
}

DetectionMap detect_windows_cell_plane(HdFacePipeline& pipeline,
                                       const image::Image& scene,
                                       std::size_t window, std::size_t stride,
                                       int positive_class,
                                       const ParallelDetectConfig& config) {
  if (config.plane_mode == PlaneMode::kLazy) {
    return detect_windows_lazy_plane(pipeline, scene, window, stride,
                                     positive_class, config);
  }
  // Fast-fail on scan-config errors before paying for the plane build
  // (detect_windows_on_plane re-validates; both are cheap).
  (void)make_map_geometry(scene, window, stride);
  validate_cascade_config(config, positive_class);

  const hog::HdHogExtractor* extractor = pipeline.hd_extractor();
  // build_scene_cell_plane re-validates, but the error should name the scan.
  if (extractor == nullptr) {
    throw std::invalid_argument(
        "detect_windows_parallel: cell_plane encode requires an HD-HOG "
        "pipeline (kOrigHogEncoder has no hypervector encode to cache)");
  }
  const std::size_t cell = extractor->config().hog.cell_size;
  const std::size_t grid_step = std::gcd(stride, cell);
  const hog::CellPlane plane =
      build_scene_cell_plane(pipeline, scene, grid_step, config);
  return detect_windows_on_plane(pipeline, scene, plane, window, stride,
                                 positive_class, config);
}

}  // namespace

DetectionMap detect_windows_on_plane(HdFacePipeline& pipeline,
                                     const image::Image& scene,
                                     const hog::CellPlane& plane,
                                     std::size_t window, std::size_t stride,
                                     int positive_class,
                                     const ParallelDetectConfig& config) {
  DetectionMap map = make_map_geometry(scene, window, stride);
  const std::size_t total = map.steps_x * map.steps_y;
  validate_cascade_config(config, positive_class);

  const hog::HdHogExtractor* extractor = pipeline.hd_extractor();
  if (extractor == nullptr) {
    throw std::invalid_argument(
        "detect_windows_on_plane: pipeline has no HD-HOG extractor");
  }
  const std::size_t cell = extractor->config().hog.cell_size;
  const std::size_t bins = extractor->config().hog.bins;
  if (plane.cell_size != cell || plane.bins != bins) {
    throw std::invalid_argument(
        "detect_windows_on_plane: plane cell/bin shape mismatches the "
        "pipeline's extractor");
  }
  // Every scan window must land on the plane's grid with its far corner
  // inside. Origins are the multiples of stride, so stride % grid_step == 0
  // puts every origin on the grid; the far-corner extent is monotone in the
  // origin, so checking the last window covers the rest.
  const std::size_t cells_per_side = window / cell;
  if (plane.grid_step == 0 || stride % plane.grid_step != 0 ||
      !plane.window_on_grid(0, 0, cells_per_side, cells_per_side) ||
      !plane.window_on_grid((map.steps_x - 1) * stride,
                            (map.steps_y - 1) * stride, cells_per_side,
                            cells_per_side)) {
    throw std::invalid_argument(
        "detect_windows_on_plane: plane does not cover the scan grid (build "
        "it with grid_step = gcd(stride, cell_size) over the same scene)");
  }
  if (config.cascade != nullptr && config.cascade->has_prescreen() &&
      plane.grid_step != cell) {
    throw std::invalid_argument(
        "detect_windows_on_plane: a prescreen-carrying cascade table needs "
        "the plane grid step to equal the cell size (stride % cell_size == 0) "
        "so the parity subgrid is well defined");
  }

  // The one mutation, before any dispatch: freeze the shared mask pool.
  pipeline.prepare_concurrent();
  const HdFacePipeline& frozen = pipeline;
  const std::size_t slots_per_window = extractor->slots();

  PoolChoice exec = resolve_pool(config);
  if (exec.serial()) {
    core::OpCounter local;
    CascadeStats cascade_local;
    EncodeCacheStats cache_local;
    if (config.cascade != nullptr) {
      cascade_range(frozen, *extractor, plane, map, stride, *config.cascade,
                    config.feature_counter ? &local : nullptr, cascade_local,
                    cache_local, 0, total, map.predictions, map.scores);
    } else {
      assemble_range(frozen, *extractor, plane, map, stride, positive_class,
                     config.fault_plan,
                     config.feature_counter ? &local : nullptr, 0, total,
                     map.predictions, map.scores);
    }
    if (config.feature_counter) config.feature_counter->merge(local);
    if (config.cascade != nullptr && config.cascade_stats) {
      config.cascade_stats->merge(cascade_local);
    }
    if (config.cascade != nullptr && config.cache_stats) {
      config.cache_stats->merge(cache_local);
    }
  } else {
    core::ShardedOpCounter shards(exec.pool->size() * 4 + 1);
    // Stage counters shard exactly like op counters: each chunk claims one
    // padded slot, totals merge with integer adds after the scan, so the
    // combined stats are exact and identical at every thread count.
    std::vector<CascadeStats> stat_shards(
        config.cascade != nullptr ? shards.num_shards() : 0);
    std::vector<EncodeCacheStats> cache_shards(
        config.cascade != nullptr ? shards.num_shards() : 0);
    std::atomic<std::size_t> next_shard{0};
    util::parallel_for_chunked(
        *exec.pool, 0, total, config.min_chunk,
        [&config, &shards, &stat_shards, &cache_shards, &next_shard, &frozen,
         &extractor, &plane, &map, stride,
         positive_class](std::size_t lo, std::size_t hi) {
          core::OpCounter* shard = nullptr;
          std::size_t slot = 0;
          if (config.feature_counter || config.cascade != nullptr) {
            // hdlint: allow(sched-dependent-value) — shard totals merge with
            // integer adds, so combined() is exact at every thread count.
            slot = next_shard.fetch_add(1) % shards.num_shards();
            if (config.feature_counter) shard = &shards.shard(slot);
          }
          if (config.cascade != nullptr) {
            cascade_range(frozen, *extractor, plane, map, stride,
                          *config.cascade, shard, stat_shards[slot],
                          cache_shards[slot], lo, hi, map.predictions,
                          map.scores);
          } else {
            assemble_range(frozen, *extractor, plane, map, stride,
                           positive_class, config.fault_plan, shard, lo, hi,
                           map.predictions, map.scores);
          }
        });
    if (config.feature_counter) config.feature_counter->merge(shards.combined());
    if (config.cascade != nullptr && config.cascade_stats) {
      for (const CascadeStats& s : stat_shards) config.cascade_stats->merge(s);
    }
    if (config.cascade != nullptr && config.cache_stats) {
      for (const EncodeCacheStats& s : cache_shards) {
        config.cache_stats->merge(s);
      }
    }
  }
  if (config.cache_stats && config.cascade == nullptr) {
    // Assembly-side accounting is a pure function of the grid geometry (every
    // window reads exactly slots() cached values), so the totals are exact by
    // construction; the compute side was tallied by build_scene_cell_plane.
    // Cascaded scans account per window inside cascade_range instead — a
    // prescreen-rejected window reads only its parity slots.
    config.cache_stats->slot_reads +=
        static_cast<std::uint64_t>(total) * slots_per_window;
    config.cache_stats->windows_assembled += total;
  }
  return map;
}

hog::CellPlane build_scene_cell_plane(HdFacePipeline& pipeline,
                                      const image::Image& scene,
                                      std::size_t grid_step,
                                      const ParallelDetectConfig& config) {
  const hog::HdHogExtractor* extractor = pipeline.hd_extractor();
  if (extractor == nullptr) {
    throw std::invalid_argument(
        "build_scene_cell_plane: pipeline has no HD-HOG extractor");
  }
  const hog::HdHogConfig& hd = extractor->config();
  hog::CellPlane plane = hog::make_cell_plane_geometry(
      scene.width(), scene.height(), hd.hog.cell_size, hd.hog.bins, grid_step,
      config.scale_index);
  const std::size_t total = plane.cells();

  // The one mutation, before any dispatch: freeze the shared mask pool.
  pipeline.prepare_concurrent();
  const std::uint64_t seed = pipeline.config().seed;
  const HdFacePipeline& frozen = pipeline;

  // Scene-scale planar pass shared by every cell: quantize each pixel to its
  // item-memory level index once, so the per-cell chain (which reads border
  // pixels up to four times, and shared borders once per adjacent cell) does
  // table lookups instead of repeated level searches.
  const hog::LevelIndexPlane levels =
      hog::build_level_index_plane(scene, extractor->item_memory());

  // Per-cell work on [lo, hi): reseed from the pure (seed, scale, gx, gy)
  // key, then run the cell's stochastic chain into the plane.
  const auto fill_range = [&](core::StochasticContext& scratch, std::size_t lo,
                              std::size_t hi) {
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const std::size_t gx = idx % plane.grid_x;
      const std::size_t gy = idx / plane.grid_x;
      scratch.reseed(
          hog::cell_plane_seed(seed, config.scale_index, gx, gy));
      extractor->cell_raw_values(scene, &levels, gx * plane.grid_step,
                                 gy * plane.grid_step, scratch,
                                 plane.mutable_cell(gx, gy),
                                 config.reference_cell_chain);
    }
  };

  PoolChoice exec = resolve_pool(config);
  if (exec.serial()) {
    core::StochasticContext scratch = frozen.fork_context(seed);
    core::OpCounter local;
    if (config.feature_counter) scratch.set_counter(&local);
    fill_range(scratch, 0, total);
    if (config.feature_counter) config.feature_counter->merge(local);
  } else {
    core::ShardedOpCounter shards(exec.pool->size() * 4 + 1);
    std::atomic<std::size_t> next_shard{0};
    util::parallel_for_chunked(
        *exec.pool, 0, total, config.min_chunk,
        [&frozen, seed, &config, &shards, &next_shard,
         &fill_range](std::size_t lo, std::size_t hi) {
          core::StochasticContext scratch =
              frozen.fork_context(core::mix64(seed, lo));
          if (config.feature_counter) {
            // hdlint: allow(sched-dependent-value) — shard totals merge with
            // integer adds, so combined() is exact at every thread count.
            scratch.set_counter(&shards.shard(next_shard.fetch_add(1) %
                                              shards.num_shards()));
          }
          fill_range(scratch, lo, hi);
        });
    if (config.feature_counter) config.feature_counter->merge(shards.combined());
  }
  if (config.cache_stats) {
    config.cache_stats->cells_computed += total;
    config.cache_stats->cells_total += total;
  }
  return plane;
}

DetectionMap detect_windows_parallel(HdFacePipeline& pipeline,
                                     const image::Image& scene,
                                     std::size_t window, std::size_t stride,
                                     int positive_class,
                                     const ParallelDetectConfig& config) {
  if (config.plane_mode == PlaneMode::kLazy &&
      config.encode_mode != EncodeMode::kCellPlane) {
    throw std::invalid_argument(
        "detect_windows_parallel: plane_mode kLazy requires "
        "EncodeMode::kCellPlane (the per-window encode has no plane to "
        "materialize)");
  }
  if (config.encode_mode == EncodeMode::kCellPlane) {
    return detect_windows_cell_plane(pipeline, scene, window, stride,
                                     positive_class, config);
  }
  DetectionMap map = make_map_geometry(scene, window, stride);
  const std::size_t total = map.steps_x * map.steps_y;

  // The one mutation, before any dispatch: freeze the shared mask pool.
  pipeline.prepare_concurrent();
  const std::uint64_t seed_base =
      core::mix64(pipeline.config().seed, kWindowStreamSalt);
  const HdFacePipeline& frozen = pipeline;

  PoolChoice exec = resolve_pool(config);
  if (exec.serial()) {
    core::StochasticContext scratch = frozen.fork_context(seed_base);
    core::OpCounter local;
    if (config.feature_counter) scratch.set_counter(&local);
    scan_range(frozen, scene, map, window, stride, positive_class, seed_base,
               config.fault_plan, scratch, 0, total, map.predictions,
               map.scores);
    if (config.feature_counter) config.feature_counter->merge(local);
    return map;
  }

  // One counter shard per chunk, claimed in dispatch order. Shard totals
  // merge after the scan; addition commutes, so the merged counts are exact
  // and identical at every thread count.
  core::ShardedOpCounter shards(exec.pool->size() * 4 + 1);
  std::atomic<std::size_t> next_shard{0};
  util::parallel_for_chunked(
      *exec.pool, 0, total, config.min_chunk,
      [&frozen, &scene, &map, window, stride, positive_class, seed_base,
       &config, &shards, &next_shard](std::size_t lo, std::size_t hi) {
        core::StochasticContext scratch =
            frozen.fork_context(core::mix64(seed_base, lo));
        core::OpCounter* shard = nullptr;
        if (config.feature_counter) {
          // Shard choice is scheduling-dependent; shard totals are merged
          // with integer adds (commutative), so combined() is exact and
          // identical at every thread count.
          // hdlint: allow(sched-dependent-value)
          shard = &shards.shard(next_shard.fetch_add(1) %
                                shards.num_shards());
          scratch.set_counter(shard);
        }
        scan_range(frozen, scene, map, window, stride, positive_class,
                   seed_base, config.fault_plan, scratch, lo, hi,
                   map.predictions, map.scores);
      });
  if (config.feature_counter) config.feature_counter->merge(shards.combined());
  return map;
}

}  // namespace hdface::pipeline
