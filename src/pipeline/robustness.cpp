#include "pipeline/robustness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "noise/bit_flip.hpp"

namespace hdface::pipeline {

double hdc_binary_accuracy_under_errors(
    const learn::HdcClassifier& classifier,
    const std::vector<core::Hypervector>& features,
    const std::vector<int>& labels, double rate, std::uint64_t seed) {
  if (features.size() != labels.size() || features.empty()) {
    throw std::invalid_argument("hdc_binary_accuracy_under_errors: bad inputs");
  }
  core::Rng rng(core::mix64(seed, 0xB17E));
  std::vector<core::Hypervector> prototypes = classifier.binary_prototypes();
  for (auto& p : prototypes) p = noise::flip_bits(p, rate, rng);
  // The corrupted prototypes are fixed for the whole sweep: pack once and
  // score every test feature through the SoA kernel path.
  const core::PrototypeBlock block(prototypes);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    const core::Hypervector noisy = noise::flip_bits(features[i], rate, rng);
    if (learn::HdcClassifier::predict_binary(block, noisy) == labels[i]) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(features.size());
}

namespace {

// Round-trips a descriptor through 16-bit fixed point with per-bit errors.
void corrupt_fixed16(std::vector<float>& values, double rate, core::Rng& rng) {
  float max_abs = 1e-6f;
  for (float v : values) max_abs = std::max(max_abs, std::fabs(v));
  const float step = max_abs / 32767.0f;
  std::vector<std::int32_t> words;
  words.reserve(values.size());
  for (float v : values) {
    words.push_back(static_cast<std::int32_t>(std::lround(v / step)));
  }
  noise::flip_fixed_bits(words, 16, rate, rng);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(words[i]) * step;
  }
}

}  // namespace

double hdc_orig_rep_accuracy_under_errors(
    const learn::HdcClassifier& classifier, const learn::NonlinearEncoder& encoder,
    const std::vector<std::vector<float>>& hog_features,
    const std::vector<int>& labels, double rate, std::uint64_t seed,
    FeatureCorruption corruption) {
  if (hog_features.size() != labels.size() || hog_features.empty()) {
    throw std::invalid_argument("hdc_orig_rep_accuracy_under_errors: bad inputs");
  }
  core::Rng rng(core::mix64(seed, 0x0716));
  std::size_t hits = 0;
  for (std::size_t i = 0; i < hog_features.size(); ++i) {
    std::vector<float> corrupted = hog_features[i];
    if (corruption == FeatureCorruption::kFloat32) {
      noise::flip_float_bits(corrupted, rate, rng);
    } else {
      corrupt_fixed16(corrupted, rate, rng);
    }
    const core::Hypervector query = encoder.encode(corrupted);
    if (classifier.predict(query) == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(hog_features.size());
}

double dnn_accuracy_under_errors(learn::QuantizedMlp& mlp,
                                 const std::vector<std::vector<float>>& features,
                                 const std::vector<int>& labels, double rate,
                                 std::uint64_t seed) {
  core::Rng rng(core::mix64(seed, 0xD2E2));
  mlp.reset();
  mlp.inject_bit_errors(rate, rng);
  const double acc = mlp.evaluate(features, labels);
  mlp.reset();
  return acc;
}

}  // namespace hdface::pipeline
