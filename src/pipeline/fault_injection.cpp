#include "pipeline/fault_injection.hpp"

#include <stdexcept>

#include "core/rng.hpp"
#include "util/check.hpp"

namespace hdface::pipeline {

namespace {

std::uint64_t words_checksum(const std::vector<core::Hypervector*>& targets) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (const auto* v : targets) {
    for (const std::uint64_t w : v->words()) h = core::mix64(h, w);
  }
  return h;
}

}  // namespace

void FaultSession::inject(noise::FaultTarget target, std::uint64_t index,
                          core::Hypervector& stored) {
  core::Rng rng(noise::fault_seed(plan_.seed, target, index));
  const noise::FaultMask mask =
      noise::sample_fault_mask(plan_.model, stored.dim(), rng);
  // Each fault plane indexes the same packed words as the storage it patches;
  // a width disagreement would read/write past the shorter word array.
  HD_CHECK(mask.clear.dim() == stored.dim() && mask.set.dim() == stored.dim() &&
               mask.flip.dim() == stored.dim(),
           "inject: fault-plane width does not match the target storage");
  patches_.push_back(Patch{&stored, stored});
  mask.apply(stored);
  disturbed_bits_ += core::hamming(patches_.back().clean, stored);
  faultable_bits_ += stored.dim();
}

FaultSession::FaultSession(HdFacePipeline& pipeline,
                           const noise::FaultPlan& plan)
    : pipeline_(pipeline), plan_(plan) {
  if (plan.model.rate < 0.0 || plan.model.rate > 1.0) {
    throw std::invalid_argument("FaultSession: rate must be in [0, 1]");
  }
  // Warm the shared mask pool *before* patching it: a lazily-filled pool
  // would race the fill, and fork_context() requires a warmed pool anyway.
  pipeline_.prepare_concurrent();

  if (plan_.item_memory) {
    if (auto* ext = pipeline_.hd_extractor()) {
      auto& im = ext->mutable_item_memory();
      for (std::size_t i = 0; i < im.levels(); ++i) {
        inject(noise::FaultTarget::kItemMemory, i, im.mutable_level(i));
      }
      auto& hm = ext->mutable_histogram_memory();
      for (std::size_t i = 0; i < hm.levels(); ++i) {
        inject(noise::FaultTarget::kHistogramMemory, i, hm.mutable_level(i));
      }
    }
    auto& ctx = pipeline_.context();
    std::uint64_t entry_index = 0;
    for (std::size_t b = 0; b < ctx.pool_buckets(); ++b) {
      for (auto& entry : ctx.mutable_pool_bucket(b)) {
        inject(noise::FaultTarget::kMaskPool, entry_index++, entry);
      }
    }
  }

  if (plan_.prototypes) {
    auto protos = pipeline_.mutable_classifier().binary_prototypes();
    for (std::size_t c = 0; c < protos.size(); ++c) {
      core::Rng rng(
          noise::fault_seed(plan_.seed, noise::FaultTarget::kPrototype, c));
      const noise::FaultMask mask =
          noise::sample_fault_mask(plan_.model, protos[c].dim(), rng);
      const core::Hypervector clean = protos[c];
      mask.apply(protos[c]);
      disturbed_bits_ += core::hamming(clean, protos[c]);
      faultable_bits_ += protos[c].dim();
    }
    pipeline_.mutable_classifier().set_binary_override(std::move(protos));
    override_set_ = true;
  }

  std::vector<core::Hypervector*> targets;
  targets.reserve(patches_.size());
  for (const auto& p : patches_) targets.push_back(p.target);
  faulted_checksum_ = words_checksum(targets);
  active_ = true;
}

void FaultSession::restore() {
  if (!active_) return;

  std::vector<core::Hypervector*> targets;
  targets.reserve(patches_.size());
  for (const auto& p : patches_) targets.push_back(p.target);

  // Refuse to "restore" over storage someone else mutated mid-session: the
  // clean snapshots would silently erase their writes.
  if (words_checksum(targets) != faulted_checksum_) {
    throw std::runtime_error(
        "FaultSession::restore: faulted storage was mutated behind the "
        "session's back (checksum mismatch)");
  }

  for (auto& p : patches_) *p.target = p.clean;
  for (const auto& p : patches_) {
    if (core::hamming(*p.target, p.clean) != 0) {
      throw std::runtime_error("FaultSession::restore: verification failed");
    }
  }
  patches_.clear();

  if (override_set_) {
    pipeline_.mutable_classifier().clear_binary_override();
    override_set_ = false;
  }
  active_ = false;
}

FaultSession::~FaultSession() {
  try {
    restore();
  } catch (...) {
    // A throwing destructor would terminate; explicit restore() reports.
  }
}

}  // namespace hdface::pipeline
