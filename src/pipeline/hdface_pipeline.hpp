#pragma once

// End-to-end HDFace pipeline (paper Fig 1 / §6.2).
//
// Two configurations, matching the paper's evaluation:
//   kHdHog          — HOG runs in hyperspace (HD-HOG); extracted features are
//                     already hypervectors and feed the HDC learner directly
//                     ("no encoding module").
//   kOrigHogEncoder — HOG runs on the original float representation; the
//                     nonlinear encoder maps the descriptor into hyperspace
//                     before HDC learning.
//
// Feature-extraction work and learning work are charged to two separate
// OpCounters so the benches can reproduce the paper's §2 observation that
// feature extraction dominates training cost.

#include <memory>
#include <vector>

#include "core/hypervector.hpp"
#include "core/op_counter.hpp"
#include "core/stochastic.hpp"
#include "dataset/dataset.hpp"
#include "hog/hd_hog.hpp"
#include "hog/hog.hpp"
#include "learn/encoder.hpp"
#include "learn/hdc_model.hpp"

namespace hdface::pipeline {

enum class HdFaceMode { kHdHog, kOrigHogEncoder };

struct HdFaceConfig {
  std::size_t dim = 4096;
  HdFaceMode mode = HdFaceMode::kHdHog;
  hog::HogConfig hog;  // geometry shared by both modes
  hog::HdHogMode hd_hog_mode = hog::HdHogMode::kFaithful;
  std::size_t epochs = 10;
  double learning_rate = 1.0;
  bool adaptive = true;
  double encoder_gamma = 1.0;
  std::uint64_t seed = 0xFACE;
};

class HdFacePipeline {
 public:
  // Built for a fixed window geometry and class count.
  HdFacePipeline(const HdFaceConfig& config, std::size_t image_width,
                 std::size_t image_height, std::size_t classes);

  const HdFaceConfig& config() const { return config_; }
  core::StochasticContext& context() { return ctx_; }
  const learn::HdcClassifier& classifier() const { return *classifier_; }

  // Fault-injection hooks: mutable access to the classifier (to set/clear a
  // faulted binary-prototype override) and to the HD-HOG extractor's stored
  // item memories. hd_extractor() is nullptr in kOrigHogEncoder mode, which
  // has no hypervector item memory to corrupt. See pipeline::FaultSession.
  learn::HdcClassifier& mutable_classifier() { return *classifier_; }
  hog::HdHogExtractor* hd_extractor() { return hd_extractor_.get(); }

  // Image → feature hypervector (the encoder must be calibrated first in
  // kOrigHogEncoder mode; fit() and encode_dataset() handle that).
  core::Hypervector encode_image(const image::Image& img);

  // --- concurrent encoding ---------------------------------------------------
  //
  // The single-argument encode_image draws from the pipeline's own stochastic
  // context and is therefore single-threaded. For batched scans, each worker
  // owns a scratch context forked from the pipeline's (same basis, same
  // warmed mask pool, independent RNG chain) and passes it here; this method
  // touches no mutable pipeline state. Reseed the scratch before each window
  // to make results independent of work distribution (see
  // StochasticContext::fork for the determinism contract).
  core::Hypervector encode_image(const image::Image& img,
                                 core::StochasticContext& scratch) const;

  // Warm the shared mask pool so fork_context() is cheap and race-free.
  // Idempotent; call once before any concurrent encoding.
  void prepare_concurrent() { ctx_.warm_pool(); }

  // Scratch context for one worker (requires prepare_concurrent() first).
  core::StochasticContext fork_context(std::uint64_t stream_seed) const {
    return ctx_.fork(stream_seed);
  }

  // Batch feature extraction over the global worker pool. Feature [idx] is a
  // pure function of (config seed, idx): each image encodes on a scratch
  // context reseeded from mix64(mix64(seed, dataset salt), idx), so the
  // result is bit-identical at every thread count (fit() keeps its serial
  // update order, so trained models stay bit-identical too). The per-image
  // keying is a deterministically different stream than the pipeline
  // context's serial chain that encode_image(img) consumes.
  std::vector<core::Hypervector> encode_dataset(const dataset::Dataset& data);

  // Train on a dataset (extracts features, then fits the HDC classifier).
  void fit(const dataset::Dataset& train);

  // Train on pre-extracted features (for dimensionality sweeps).
  void fit_features(const std::vector<core::Hypervector>& features,
                    const std::vector<int>& labels);

  int predict(const image::Image& img);
  double evaluate(const dataset::Dataset& test);
  double evaluate_features(const std::vector<core::Hypervector>& features,
                           const std::vector<int>& labels) const;

  // Instrumentation: feature-extraction ops vs learning ops.
  void set_counters(core::OpCounter* feature_counter,
                    core::OpCounter* learn_counter);

 private:
  void ensure_encoder_calibrated(const dataset::Dataset& data);

  HdFaceConfig config_;
  std::size_t classes_;
  core::StochasticContext ctx_;
  // kHdHog mode.
  std::unique_ptr<hog::HdHogExtractor> hd_extractor_;
  // kOrigHogEncoder mode.
  std::unique_ptr<hog::HogExtractor> hog_extractor_;
  std::unique_ptr<learn::NonlinearEncoder> encoder_;
  std::unique_ptr<learn::HdcClassifier> classifier_;
  core::OpCounter* feature_counter_ = nullptr;
};

}  // namespace hdface::pipeline
