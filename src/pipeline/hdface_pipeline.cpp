#include "pipeline/hdface_pipeline.hpp"

#include <stdexcept>

namespace hdface::pipeline {

HdFacePipeline::HdFacePipeline(const HdFaceConfig& config, std::size_t image_width,
                               std::size_t image_height, std::size_t classes)
    : config_(config),
      classes_(classes),
      ctx_(core::StochasticConfig{.dim = config.dim,
                                  .seed = core::mix64(config.seed, 0xC0DE)}) {
  if (config_.mode == HdFaceMode::kHdHog) {
    hog::HdHogConfig hd;
    hd.hog = config_.hog;
    hd.hog.block_normalize = false;  // HD-HOG emits raw cell histograms
    hd.mode = config_.hd_hog_mode;
    hd_extractor_ = std::make_unique<hog::HdHogExtractor>(ctx_, hd, image_width,
                                                          image_height);
  } else {
    hog_extractor_ = std::make_unique<hog::HogExtractor>(config_.hog);
    learn::EncoderConfig ec;
    ec.dim = config_.dim;
    ec.input_dim = hog_extractor_->feature_size(image_width, image_height);
    ec.gamma = config_.encoder_gamma;
    ec.seed = core::mix64(config_.seed, 0xE2C);
    encoder_ = std::make_unique<learn::NonlinearEncoder>(ec);
  }
  learn::HdcConfig hc;
  hc.dim = config_.dim;
  hc.classes = classes;
  hc.learning_rate = config_.learning_rate;
  hc.epochs = config_.epochs;
  hc.adaptive = config_.adaptive;
  hc.seed = core::mix64(config_.seed, 0x11D);
  classifier_ = std::make_unique<learn::HdcClassifier>(hc);
}

void HdFacePipeline::set_counters(core::OpCounter* feature_counter,
                                  core::OpCounter* learn_counter) {
  feature_counter_ = feature_counter;
  ctx_.set_counter(feature_counter);
  classifier_->set_counter(learn_counter);
}

core::Hypervector HdFacePipeline::encode_image(const image::Image& img) {
  if (config_.mode == HdFaceMode::kHdHog) {
    return hd_extractor_->extract(img);
  }
  const std::vector<float> hog_features =
      hog_extractor_->extract(img, feature_counter_);
  return encoder_->encode(hog_features, feature_counter_);
}

core::Hypervector HdFacePipeline::encode_image(
    const image::Image& img, core::StochasticContext& scratch) const {
  if (config_.mode == HdFaceMode::kHdHog) {
    return hd_extractor_->extract(img, scratch);
  }
  // The classical HOG extractor and the nonlinear encoder are stateless at
  // inference; only op accounting flows through the scratch's counter.
  const std::vector<float> hog_features =
      hog_extractor_->extract(img, scratch.counter());
  return encoder_->encode(hog_features, scratch.counter());
}

void HdFacePipeline::ensure_encoder_calibrated(const dataset::Dataset& data) {
  if (config_.mode != HdFaceMode::kOrigHogEncoder || encoder_->calibrated()) {
    return;
  }
  std::vector<std::vector<float>> features;
  features.reserve(data.size());
  for (const auto& img : data.images) {
    features.push_back(hog_extractor_->extract(img, nullptr));
  }
  encoder_->calibrate(features);
}

std::vector<core::Hypervector> HdFacePipeline::encode_dataset(
    const dataset::Dataset& data) {
  ensure_encoder_calibrated(data);
  std::vector<core::Hypervector> out;
  out.reserve(data.size());
  for (const auto& img : data.images) out.push_back(encode_image(img));
  return out;
}

void HdFacePipeline::fit(const dataset::Dataset& train) {
  train.validate();
  if (train.num_classes() != classes_) {
    throw std::invalid_argument("HdFacePipeline::fit: class count mismatch");
  }
  const auto features = encode_dataset(train);
  classifier_->fit(features, train.labels);
}

void HdFacePipeline::fit_features(const std::vector<core::Hypervector>& features,
                                  const std::vector<int>& labels) {
  classifier_->fit(features, labels);
}

int HdFacePipeline::predict(const image::Image& img) {
  return classifier_->predict(encode_image(img));
}

double HdFacePipeline::evaluate(const dataset::Dataset& test) {
  const auto features = encode_dataset(test);
  return classifier_->evaluate(features, test.labels);
}

double HdFacePipeline::evaluate_features(
    const std::vector<core::Hypervector>& features,
    const std::vector<int>& labels) const {
  return classifier_->evaluate(features, labels);
}

}  // namespace hdface::pipeline
