#include "pipeline/hdface_pipeline.hpp"

#include <atomic>
#include <stdexcept>

#include "pipeline/features.hpp"
#include "util/thread_pool.hpp"

namespace hdface::pipeline {

namespace {
// Salt separating the dataset-encode seed stream from every other consumer
// of the pipeline seed (the batched scan salts with 0xBA7C4ED0, cell planes
// with their own pure key — see parallel_detect.cpp / cell_plane.hpp).
constexpr std::uint64_t kDatasetStreamSalt = 0xDA7A5E7DULL;
}  // namespace

HdFacePipeline::HdFacePipeline(const HdFaceConfig& config, std::size_t image_width,
                               std::size_t image_height, std::size_t classes)
    : config_(config),
      classes_(classes),
      ctx_(core::StochasticConfig{.dim = config.dim,
                                  .seed = core::mix64(config.seed, 0xC0DE)}) {
  if (config_.mode == HdFaceMode::kHdHog) {
    hog::HdHogConfig hd;
    hd.hog = config_.hog;
    hd.hog.block_normalize = false;  // HD-HOG emits raw cell histograms
    hd.mode = config_.hd_hog_mode;
    hd_extractor_ = std::make_unique<hog::HdHogExtractor>(ctx_, hd, image_width,
                                                          image_height);
  } else {
    hog_extractor_ = std::make_unique<hog::HogExtractor>(config_.hog);
    learn::EncoderConfig ec;
    ec.dim = config_.dim;
    ec.input_dim = hog_extractor_->feature_size(image_width, image_height);
    ec.gamma = config_.encoder_gamma;
    ec.seed = core::mix64(config_.seed, 0xE2C);
    encoder_ = std::make_unique<learn::NonlinearEncoder>(ec);
  }
  learn::HdcConfig hc;
  hc.dim = config_.dim;
  hc.classes = classes;
  hc.learning_rate = config_.learning_rate;
  hc.epochs = config_.epochs;
  hc.adaptive = config_.adaptive;
  hc.seed = core::mix64(config_.seed, 0x11D);
  classifier_ = std::make_unique<learn::HdcClassifier>(hc);
}

void HdFacePipeline::set_counters(core::OpCounter* feature_counter,
                                  core::OpCounter* learn_counter) {
  feature_counter_ = feature_counter;
  ctx_.set_counter(feature_counter);
  classifier_->set_counter(learn_counter);
}

core::Hypervector HdFacePipeline::encode_image(const image::Image& img) {
  if (config_.mode == HdFaceMode::kHdHog) {
    return hd_extractor_->extract(img);
  }
  const std::vector<float> hog_features =
      hog_extractor_->extract(img, feature_counter_);
  return encoder_->encode(hog_features, feature_counter_);
}

core::Hypervector HdFacePipeline::encode_image(
    const image::Image& img, core::StochasticContext& scratch) const {
  if (config_.mode == HdFaceMode::kHdHog) {
    return hd_extractor_->extract(img, scratch);
  }
  // The classical HOG extractor and the nonlinear encoder are stateless at
  // inference; only op accounting flows through the scratch's counter.
  const std::vector<float> hog_features =
      hog_extractor_->extract(img, scratch.counter());
  return encoder_->encode(hog_features, scratch.counter());
}

void HdFacePipeline::ensure_encoder_calibrated(const dataset::Dataset& data) {
  if (config_.mode != HdFaceMode::kOrigHogEncoder || encoder_->calibrated()) {
    return;
  }
  // Calibration statistics come from the batch extraction helper, which fans
  // out over the worker pool and is bit-identical at every thread count.
  encoder_->calibrate(extract_hog_features(data, *hog_extractor_, nullptr));
}

std::vector<core::Hypervector> HdFacePipeline::encode_dataset(
    const dataset::Dataset& data) {
  ensure_encoder_calibrated(data);
  const std::size_t total = data.size();
  std::vector<core::Hypervector> out(total);
  // Image idx encodes on a scratch context reseeded from the pure key
  // mix64(seed_base, idx), so feature [idx] is a function of (config seed,
  // idx) alone — independent of chunking, thread count, and the pipeline's
  // own context (which fit order still consumes serially). This is a
  // deterministically *different* stream than the old serial-chain encode;
  // any fixed thread count reproduces it exactly.
  prepare_concurrent();
  const std::uint64_t seed_base = core::mix64(config_.seed, kDatasetStreamSalt);
  const HdFacePipeline& frozen = *this;
  const auto encode_range = [&](core::StochasticContext& scratch,
                                std::size_t lo, std::size_t hi) {
    for (std::size_t idx = lo; idx < hi; ++idx) {
      scratch.reseed(core::mix64(seed_base, idx));
      out[idx] = frozen.encode_image(data.images[idx], scratch);
    }
  };

  util::ThreadPool& pool = util::global_pool();
  if (pool.size() <= 1 || total <= 1) {
    core::StochasticContext scratch = fork_context(seed_base);
    core::OpCounter local;
    if (feature_counter_) scratch.set_counter(&local);
    encode_range(scratch, 0, total);
    if (feature_counter_) feature_counter_->merge(local);
    return out;
  }
  core::ShardedOpCounter shards(pool.size() * 4 + 1);
  std::atomic<std::size_t> next_shard{0};
  util::parallel_for_chunked(
      pool, 0, total, 1,
      [this, &frozen, seed_base, &shards, &next_shard,
       &encode_range](std::size_t lo, std::size_t hi) {
        core::StochasticContext scratch =
            frozen.fork_context(core::mix64(seed_base, lo));
        if (feature_counter_) {
          // hdlint: allow(sched-dependent-value) — shard totals merge with
          // integer adds, so combined() is exact at every thread count.
          scratch.set_counter(&shards.shard(next_shard.fetch_add(1) %
                                            shards.num_shards()));
        }
        encode_range(scratch, lo, hi);
      });
  if (feature_counter_) feature_counter_->merge(shards.combined());
  return out;
}

void HdFacePipeline::fit(const dataset::Dataset& train) {
  train.validate();
  if (train.num_classes() != classes_) {
    throw std::invalid_argument("HdFacePipeline::fit: class count mismatch");
  }
  const auto features = encode_dataset(train);
  classifier_->fit(features, train.labels);
}

void HdFacePipeline::fit_features(const std::vector<core::Hypervector>& features,
                                  const std::vector<int>& labels) {
  classifier_->fit(features, labels);
}

int HdFacePipeline::predict(const image::Image& img) {
  return classifier_->predict(encode_image(img));
}

double HdFacePipeline::evaluate(const dataset::Dataset& test) {
  const auto features = encode_dataset(test);
  return classifier_->evaluate(features, test.labels);
}

double HdFacePipeline::evaluate_features(
    const std::vector<core::Hypervector>& features,
    const std::vector<int>& labels) const {
  return classifier_->evaluate(features, labels);
}

}  // namespace hdface::pipeline
