#pragma once

// Fault-injection campaign runner: the end-to-end robustness sweep behind
// Table 2 and the §2 motivation numbers, generalized to the full fault
// taxonomy of noise/fault_model.hpp.
//
// A campaign sweeps a (subject × fault kind × error rate) grid. A *subject*
// is one trained detector — typically one dimensionality of the same
// workload — so a dimensionality sweep registers one subject per D. For each
// grid cell the runner:
//
//   1. derives the cell's FaultPlan seed with cell_seed() — a pure function
//      of (campaign seed, subject name, kind, rate), never of enumeration
//      order, so adding a rate or reordering kinds shifts no other cell;
//   2. opens a pipeline::FaultSession (copy-on-inject into item memories,
//      mask pool and binarized prototypes; restore-verified on close);
//   3. measures window-classification accuracy over a held-out dataset, with
//      per-query transient faults applied in flight;
//   4. optionally scans a scene through the parallel detection engine and
//      scores the resulting boxes against ground-truth boxes (mean best-IoU);
//   5. restores and moves to the next cell.
//
// Parallelism: cells run *serially* — injection mutates the subject's shared
// storage, so two cells of one subject cannot coexist — while the evaluation
// inside a cell fans out over util::parallel_for_chunked. Hit counts
// aggregate through core::ShardedTally (exact integer merge) and every
// per-sample encoding reseeds from the sample index, so a campaign's results
// are bit-identical at any thread count — the same determinism contract the
// clean detection engine makes.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataset/dataset.hpp"
#include "image/image.hpp"
#include "noise/fault_model.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "pipeline/multiscale.hpp"
#include "util/thread_pool.hpp"

namespace hdface::pipeline {

struct FaultCampaignConfig {
  std::vector<noise::FaultKind> kinds = {
      noise::FaultKind::kTransientFlip, noise::FaultKind::kStuckAtZero,
      noise::FaultKind::kStuckAtOne, noise::FaultKind::kWordBurst};
  // Include 0.0 to get the clean reference row (same binary-inference mode
  // as the faulted cells, so the comparison isolates the faults).
  std::vector<double> rates = {0.0, 0.02, 0.05, 0.10, 0.15};
  std::uint64_t seed = 0xCA4A16;
  // Which storage planes every cell's plan targets.
  bool item_memory = true;
  bool prototypes = true;
  bool queries = true;
  // Evaluation parallelism (same conventions as ParallelDetectConfig).
  std::size_t threads = 0;
  std::size_t min_chunk = 4;
  util::ThreadPool* pool = nullptr;
  // Scene-scan settings (used only when run() is given a scene).
  std::size_t stride = 8;
  double score_threshold = 0.0;
  double nms_iou = 0.3;
  int positive_class = 1;
};

struct FaultCampaignCell {
  std::string subject;
  std::size_t dim = 0;
  noise::FaultKind kind = noise::FaultKind::kTransientFlip;
  double rate = 0.0;
  std::uint64_t plan_seed = 0;

  // Window-classification accuracy over the held-out set under fault.
  double accuracy = 0.0;
  std::uint64_t samples = 0;

  // Scene detection quality: mean over truth boxes of the best IoU any
  // detection achieves. Only meaningful when has_scene is set.
  bool has_scene = false;
  double mean_best_iou = 0.0;
  std::size_t num_detections = 0;

  // Empirical disturbance of the stored planes (from the FaultSession), for
  // sanity-checking the sweep against expected_disturbed_fraction.
  std::uint64_t disturbed_bits = 0;
  std::uint64_t faultable_bits = 0;
};

class FaultCampaign {
 public:
  explicit FaultCampaign(const FaultCampaignConfig& config = {});

  // Register one trained detector as a grid subject. The pipeline must stay
  // alive (and untrained-upon) for the duration of run().
  void add_subject(std::string name, std::shared_ptr<HdFacePipeline> pipeline,
                   std::size_t window);

  std::size_t num_subjects() const { return subjects_.size(); }
  const FaultCampaignConfig& config() const { return config_; }

  // Sweep the full grid. Cells come back in (subject, kind, rate) order.
  std::vector<FaultCampaignCell> run(const dataset::Dataset& test);
  std::vector<FaultCampaignCell> run(const dataset::Dataset& test,
                                     const image::Image& scene,
                                     const std::vector<Detection>& truth);

  // The cell seed schedule — exposed so tests can pin individual cells.
  static std::uint64_t cell_seed(std::uint64_t campaign_seed,
                                 const std::string& subject,
                                 noise::FaultKind kind, double rate);

 private:
  struct Subject {
    std::string name;
    std::shared_ptr<HdFacePipeline> pipeline;
    std::size_t window;
  };

  std::vector<FaultCampaignCell> run_impl(const dataset::Dataset& test,
                                          const image::Image* scene,
                                          const std::vector<Detection>* truth);
  FaultCampaignCell evaluate_cell(Subject& subject, const noise::FaultPlan& plan,
                                  const dataset::Dataset& test,
                                  const image::Image* scene,
                                  const std::vector<Detection>* truth,
                                  util::ThreadPool& pool);

  FaultCampaignConfig config_;
  std::vector<Subject> subjects_;
};

}  // namespace hdface::pipeline
