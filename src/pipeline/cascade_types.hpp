#pragma once

// Early-reject cascade value types, split out of pipeline/cascade.hpp so the
// public facade (api/types.hpp) can carry a threshold table and stage
// telemetry without pulling the cascade engine (and its classifier /
// prototype-block dependency cone) — the same layering as encode_mode.hpp.
//
// The cascade exploits the holographic geometry of binary HDC: class
// evidence is spread uniformly across the hypervector, so the Hamming
// distance over a short word prefix is an unbiased 1/k-scale predictor of
// the full-D distance (Laplace-HDC; uHD — see PAPERS.md). A staged scorer
// evaluates cheap prefixes first and escalates only survivors to exact
// full-D scoring; per-stage rejection thresholds are calibrated offline
// against golden detection maps (tools/cascade_calibrate) so calibration
// scenes see zero false rejects by construction. See DESIGN.md §13.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hdface::pipeline {

enum class CascadeMode {
  // Bypass every stage: the scan runs today's exact path, bit-identical to a
  // cascade-free scan (the engine is never even consulted).
  kExact,
  // Staged prefix scoring with the table's calibrated thresholds.
  kCalibrated,
};

// One stage: score the query's first `words` 64-bit words against every
// prototype and reject the window when its normalized margin falls below
// `reject_below`. The margin after a prefix of d dimensions is
//
//   m = (min_{c ≠ positive} H_c − H_positive) / d
//
// i.e. how far the positive class leads its best rival, in per-dimension
// Hamming units. Positive-predicted windows have large margins; background
// windows have strongly negative ones, so a threshold just below the
// calibration minimum rejects most background after a tiny prefix while
// letting every calibration positive through.
struct CascadeStage {
  std::size_t words = 0;       // cumulative prefix width (64-bit words)
  double reject_below = 0.0;   // margin threshold τ (reject when m < τ)
};

// Versioned calibrated threshold table (the artifact tools/cascade_calibrate
// emits and api::DetectOptions::cascade loads). The metadata pins the model
// and scan geometry the calibration ran against; the engine validates dim /
// classes / positive_class on load, the rest is provenance.
struct CascadeTable {
  std::uint32_t version = 1;   // serialization format version
  std::uint64_t seed = 0;      // pipeline seed the calibration ran under
  std::size_t dim = 0;         // hypervector dimensionality
  std::size_t classes = 0;     // prototype count
  int positive_class = 1;
  std::size_t window = 0;      // calibration scan window (provenance)
  std::size_t stride = 0;      // calibration scan stride (provenance)
  // Optional cell-subset prescreen (the lazy-plane driver, DESIGN.md §14):
  // before stage 0, each window is scored over ONLY its cells on the plane's
  // even/even parity subgrid (≈¼ of its cells, shared across overlapping
  // windows), bundled to a `prescreen_words` prefix and margin-thresholded
  // like a stage. Under a lazy plane a prescreen-rejected window forces no
  // cells beyond the parity subgrid, which is what keeps most of the plane
  // unmaterialized. 0 = disabled (tables serialize byte-identically to v1).
  std::size_t prescreen_words = 0;
  double prescreen_reject_below = 0.0;
  // Calibrated normalization constant for the prescreen gather: subset slot
  // values are divided by THIS (clamped to 1.0) instead of the window's own
  // subset vmax. Self-normalization would make structureless windows look
  // maximal (a flat cell's tiny values divide by their own tiny max); a fixed
  // scale keeps weak-gradient windows at low histogram levels, which is what
  // separates empty background from faces at prescreen time. Calibrated as
  // the median parity-subset vmax over the calibration positives; must be
  // > 0 when prescreen_words > 0.
  double prescreen_vmax = 0.0;
  // Orientation-spread floor: a window whose parity subset carries less raw
  // histogram mass off bin 0 than this is rejected by the prescreen even when
  // its prefix margin survives. Zero gradient resolves to bin 0, so empty
  // background scores near zero here while every calibration positive scores
  // well above (faces are oriented texture); calibrated to the minimum
  // positive spread scaled by a headroom factor, so the zero-false-reject
  // contract extends to this test. 0.0 disables the test (spread ≥ 0 always).
  double prescreen_spread_below = 0.0;
  std::vector<CascadeStage> stages;  // strictly ascending words
};

// What api::DetectOptions::cascade carries: a mode and, for kCalibrated, the
// threshold table.
struct CascadeConfig {
  CascadeMode mode = CascadeMode::kExact;
  CascadeTable table;
};

// Per-stage counters of one scan (or one pyramid level). entered ≥ rejected;
// pass rate of stage s = 1 − rejected/entered.
struct CascadeStageCounters {
  std::uint64_t entered = 0;
  std::uint64_t rejected = 0;
};

// Stage accounting for a cascaded scan, merged from per-chunk shards after
// the scan (ShardedOpCounter-style) — totals are exact and identical at
// every thread count. Untouched by kExact scans.
struct CascadeStats {
  std::vector<CascadeStageCounters> stages;
  std::uint64_t windows = 0;       // windows entering the staged cascade
  std::uint64_t exact_scored = 0;  // survivors escalated to full-D scoring
  // Prescreen accounting (zero unless the table carries a prescreen). A
  // prescreen-rejected window never enters the staged cascade, so the total
  // window count of a scan is windows + prescreen_rejected.
  std::uint64_t prescreen_entered = 0;
  std::uint64_t prescreen_rejected = 0;

  void merge(const CascadeStats& other) {
    if (stages.size() < other.stages.size()) stages.resize(other.stages.size());
    for (std::size_t s = 0; s < other.stages.size(); ++s) {
      stages[s].entered += other.stages[s].entered;
      stages[s].rejected += other.stages[s].rejected;
    }
    windows += other.windows;
    exact_scored += other.exact_scored;
    prescreen_entered += other.prescreen_entered;
    prescreen_rejected += other.prescreen_rejected;
  }
};

}  // namespace hdface::pipeline
