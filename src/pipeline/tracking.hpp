#pragma once

// Face tracking across frames (the paper's §1 motivating application:
// "face tracking for surveillance").
//
// Frame-by-frame detections (from the single- or multi-scale detectors)
// associate with existing tracks by greedy IoU matching; matched tracks are
// exponentially smoothed, unmatched detections open new tracks, and tracks
// that miss too many consecutive frames retire. Decoupled from the detector
// so it is testable with synthetic detection streams.

#include <cstdint>
#include <vector>

#include "pipeline/multiscale.hpp"

namespace hdface::pipeline {

struct TrackerConfig {
  double iou_match_threshold = 0.3;  // min IoU to continue a track
  double position_alpha = 0.5;       // EMA weight of the new observation
  std::size_t max_missed_frames = 3; // frames a track survives unmatched
  std::size_t min_hits_to_confirm = 2;
};

struct Track {
  std::uint64_t id = 0;
  Detection box;               // smoothed
  std::size_t hits = 0;        // matched frames
  std::size_t missed = 0;      // consecutive unmatched frames
};

class FaceTracker {
 public:
  explicit FaceTracker(const TrackerConfig& config);

  // Consumes one frame's detections; returns the live tracks after update.
  const std::vector<Track>& update(const std::vector<Detection>& detections);

  const std::vector<Track>& tracks() const { return tracks_; }

  // Tracks that have been confirmed (matched at least min_hits frames).
  std::vector<Track> confirmed_tracks() const;

 private:
  TrackerConfig config_;
  std::vector<Track> tracks_;
  std::uint64_t next_id_ = 1;
};

}  // namespace hdface::pipeline
