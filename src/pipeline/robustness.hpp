#pragma once

// Bit-error robustness evaluation (paper §6.6, Table 2, and the §2
// motivation numbers).
//
// Three systems under fault injection, matching the paper's rows:
//   * HDFace+HoG+Learn — fully hyperspace pipeline: errors land in the binary
//     feature hypervectors and the binarized class prototypes.
//   * HDFace+Learn — HOG computed on the original float representation:
//     errors land in the float HOG descriptor words before encoding
//     (the configuration the paper shows loses all robustness).
//   * DNN — errors land in the quantized weight words (16/8/4-bit models).

#include <cstdint>
#include <vector>

#include "core/hypervector.hpp"
#include "learn/encoder.hpp"
#include "learn/hdc_model.hpp"
#include "learn/quantized_mlp.hpp"

namespace hdface::pipeline {

// Binary-inference accuracy with per-bit error `rate` injected into both the
// query hypervectors and the binarized class prototypes.
double hdc_binary_accuracy_under_errors(
    const learn::HdcClassifier& classifier,
    const std::vector<core::Hypervector>& features,
    const std::vector<int>& labels, double rate, std::uint64_t seed);

// Storage format of the original-representation HOG descriptor under fault
// injection: IEEE-754 words (exponent flips cause unbounded excursions) or
// 16-bit fixed point (bounded excursions — the representation an embedded
// implementation would hold the descriptor in).
enum class FeatureCorruption { kFloat32, kFixed16 };

// Accuracy when the HOG descriptor words suffer per-bit errors before the
// nonlinear encoding; the HDC model itself is clean.
double hdc_orig_rep_accuracy_under_errors(
    const learn::HdcClassifier& classifier, const learn::NonlinearEncoder& encoder,
    const std::vector<std::vector<float>>& hog_features,
    const std::vector<int>& labels, double rate, std::uint64_t seed,
    FeatureCorruption corruption = FeatureCorruption::kFixed16);

// Quantized-DNN accuracy with per-bit weight errors (restores clean weights
// afterwards).
double dnn_accuracy_under_errors(learn::QuantizedMlp& mlp,
                                 const std::vector<std::vector<float>>& features,
                                 const std::vector<int>& labels, double rate,
                                 std::uint64_t seed);

}  // namespace hdface::pipeline
