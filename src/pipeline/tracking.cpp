#include "pipeline/tracking.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hdface::pipeline {

FaceTracker::FaceTracker(const TrackerConfig& config) : config_(config) {
  if (config.iou_match_threshold <= 0.0 || config.iou_match_threshold >= 1.0) {
    throw std::invalid_argument("FaceTracker: iou_match_threshold in (0,1)");
  }
  if (config.position_alpha <= 0.0 || config.position_alpha > 1.0) {
    throw std::invalid_argument("FaceTracker: position_alpha in (0,1]");
  }
}

const std::vector<Track>& FaceTracker::update(
    const std::vector<Detection>& detections) {
  std::vector<bool> detection_used(detections.size(), false);

  // Greedy association: highest-IoU (track, detection) pairs first.
  struct Pair {
    std::size_t track;
    std::size_t det;
    double iou;
  };
  std::vector<Pair> pairs;
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    for (std::size_t d = 0; d < detections.size(); ++d) {
      const double iou = box_iou(tracks_[t].box, detections[d]);
      if (iou >= config_.iou_match_threshold) pairs.push_back({t, d, iou});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.iou > b.iou; });

  std::vector<bool> track_matched(tracks_.size(), false);
  const double a = config_.position_alpha;
  for (const auto& p : pairs) {
    if (track_matched[p.track] || detection_used[p.det]) continue;
    track_matched[p.track] = true;
    detection_used[p.det] = true;
    Track& tr = tracks_[p.track];
    const Detection& d = detections[p.det];
    // EMA smoothing of geometry and score.
    tr.box.x = static_cast<std::size_t>(
        std::lround((1 - a) * static_cast<double>(tr.box.x) + a * d.x));
    tr.box.y = static_cast<std::size_t>(
        std::lround((1 - a) * static_cast<double>(tr.box.y) + a * d.y));
    tr.box.size = static_cast<std::size_t>(
        std::lround((1 - a) * static_cast<double>(tr.box.size) + a * d.size));
    tr.box.score = (1 - a) * tr.box.score + a * d.score;
    tr.hits++;
    tr.missed = 0;
  }

  // Unmatched tracks age; expired ones retire.
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    if (!track_matched[t]) tracks_[t].missed++;
  }
  tracks_.erase(std::remove_if(tracks_.begin(), tracks_.end(),
                               [&](const Track& tr) {
                                 return tr.missed > config_.max_missed_frames;
                               }),
                tracks_.end());

  // Unmatched detections open new tracks.
  for (std::size_t d = 0; d < detections.size(); ++d) {
    if (detection_used[d]) continue;
    Track tr;
    tr.id = next_id_++;
    tr.box = detections[d];
    tr.hits = 1;
    tracks_.push_back(tr);
  }
  return tracks_;
}

std::vector<Track> FaceTracker::confirmed_tracks() const {
  std::vector<Track> out;
  for (const auto& tr : tracks_) {
    if (tr.hits >= config_.min_hits_to_confirm) out.push_back(tr);
  }
  return out;
}

}  // namespace hdface::pipeline
