#pragma once

// Random bit-error injection (paper §6.6, Table 2).
//
// The paper's robustness study flips random bits in the computation/storage
// of each pipeline: hypervector payloads for HDFace, quantized weight words
// for the DNN, and raw float feature words for feature extraction performed
// in the original data representation. Holographic representations degrade
// gracefully (each bit carries 1/D of the information); positional binary
// representations do not (one exponent bit can swing a value by orders of
// magnitude).

#include <cstdint>
#include <span>
#include <vector>

#include "core/hypervector.hpp"
#include "core/rng.hpp"
#include "image/image.hpp"

namespace hdface::noise {

// Flips each dimension of v independently with probability `rate`.
core::Hypervector flip_bits(const core::Hypervector& v, double rate,
                            core::Rng& rng);

// Flips each bit of each 32-bit float independently with probability `rate`.
// NaN/Inf results are left as-is: that is exactly the failure mode the paper
// measures (downstream code must tolerate them).
void flip_float_bits(std::span<float> values, double rate, core::Rng& rng);

// Flips each bit of fixed-point words with the given bit width (for the
// quantized DNN study). Values are stored in the low `bits` of each word.
void flip_fixed_bits(std::span<std::int32_t> words, int bits, double rate,
                     core::Rng& rng);

// Flips bits of the 8-bit pixel representation of an image.
image::Image flip_image_bits(const image::Image& img, double rate, core::Rng& rng);

// Expected fraction of dimensions differing after flipping (for tests):
// similarity of a flipped hypervector with its original is 1 − 2·rate.
double expected_similarity_after_flips(double rate);

}  // namespace hdface::noise
