#include "noise/bit_flip.hpp"

#include <bit>
#include <cstring>

namespace hdface::noise {

core::Hypervector flip_bits(const core::Hypervector& v, double rate,
                            core::Rng& rng) {
  core::Hypervector out = v;
  if (rate <= 0.0) return out;
  for (std::size_t i = 0; i < v.dim(); ++i) {
    if (rng.uniform() < rate) out.flip(i);
  }
  return out;
}

void flip_float_bits(std::span<float> values, double rate, core::Rng& rng) {
  if (rate <= 0.0) return;
  for (auto& v : values) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 32; ++b) {
      if (rng.uniform() < rate) bits ^= (1u << b);
    }
    std::memcpy(&v, &bits, sizeof(bits));
  }
}

void flip_fixed_bits(std::span<std::int32_t> words, int bits, double rate,
                     core::Rng& rng) {
  if (rate <= 0.0) return;
  for (auto& w : words) {
    auto u = static_cast<std::uint32_t>(w);
    for (int b = 0; b < bits; ++b) {
      if (rng.uniform() < rate) u ^= (1u << b);
    }
    // Sign-extend from the quantized width so the value stays in range
    // semantics of the fixed-point format.
    const std::uint32_t sign_bit = 1u << (bits - 1);
    if (bits < 32 && (u & sign_bit)) {
      u |= ~((sign_bit << 1) - 1);
    } else if (bits < 32) {
      u &= (sign_bit << 1) - 1;
    }
    w = static_cast<std::int32_t>(u);
  }
}

image::Image flip_image_bits(const image::Image& img, double rate, core::Rng& rng) {
  image::Image out = img;
  if (rate <= 0.0) return out;
  for (auto& p : out.pixels()) {
    std::uint8_t byte = image::to_u8(p);
    for (int b = 0; b < 8; ++b) {
      if (rng.uniform() < rate) byte ^= static_cast<std::uint8_t>(1u << b);
    }
    p = image::from_u8(byte);
  }
  return out;
}

double expected_similarity_after_flips(double rate) { return 1.0 - 2.0 * rate; }

}  // namespace hdface::noise
