#pragma once

// Fault models for the end-to-end robustness campaign (paper §2/§6.6 plus the
// device-level fault modes that motivate in-memory HDC deployments).
//
// The seed repository only modeled *transient* faults: fresh i.i.d. bit flips
// drawn once per query (noise/bit_flip.hpp). Real hypervector storage — item
// memories, mask ROMs / LFSR banks, binarized class prototypes — additionally
// suffers *persistent* faults: cells stuck at 0 or 1 for every subsequent
// read, and word-granular bursts when a whole memory row goes bad. This
// header models all of them behind one abstraction:
//
//   FaultModel  — kind + per-bit rate (what the hardware suffers)
//   FaultMask   — one concrete sampled pattern (clear/set/flip planes)
//   FaultPlan   — model + seed + which detector storage sites to hit
//
// Deterministic seed schedule: every sampled pattern is a pure function of
// (plan seed, target site, element index) via fault_seed(). No pattern
// depends on sampling order, prior draws, or thread count, so a fault
// campaign is bit-reproducible at any parallelism — the same contract the
// batched detection engine makes for clean scans.

#include <cstdint>

#include "core/hypervector.hpp"
#include "core/rng.hpp"

namespace hdface::noise {

enum class FaultKind {
  // Fresh i.i.d. flips per query (soft errors in flight). For stored targets
  // the pattern is sampled once per injection session — the paper's Table 2
  // convention, where prototypes are corrupted once per evaluation.
  kTransientFlip,
  // Persistent cells stuck at 0 / 1 (in-memory HDC device faults): each bit
  // is selected independently with probability `rate` and forced to the
  // stuck value on every read until restored.
  kStuckAtZero,
  kStuckAtOne,
  // Word-aligned burst: each 64-bit storage word fails as a unit with
  // probability `rate`, inverting all of its bits (a bad row/line). Same
  // expected disturbed fraction as transient flips, much heavier tail.
  kWordBurst,
};

constexpr const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kTransientFlip: return "transient_flip";
    case FaultKind::kStuckAtZero: return "stuck_at_0";
    case FaultKind::kStuckAtOne: return "stuck_at_1";
    case FaultKind::kWordBurst: return "word_burst";
  }
  return "unknown";
}

struct FaultModel {
  FaultKind kind = FaultKind::kTransientFlip;
  // Per-bit fault probability (per-word for kWordBurst); 0 disables.
  double rate = 0.0;
};

// One sampled fault pattern over a hypervector-shaped storage site, kept as
// three planes applied as v' = ((v & ~clear) | set) ^ flip. Stuck-at faults
// populate clear/set (idempotent under re-application, as real stuck cells
// are); transient and burst faults populate flip.
struct FaultMask {
  core::Hypervector clear;
  core::Hypervector set;
  core::Hypervector flip;

  void apply(core::Hypervector& v) const;
  core::Hypervector applied(const core::Hypervector& v) const;

  // Number of storage cells the pattern touches (selected, not necessarily
  // value-changing: a stuck-at-0 cell that already held 0 is still faulty).
  std::size_t selected_bits() const;
};

// Samples one concrete pattern. All randomness comes from `rng`; with a
// fault_seed()-derived Rng the pattern is schedule-deterministic.
FaultMask sample_fault_mask(const FaultModel& model, std::size_t dim,
                            core::Rng& rng);

// Expected fraction of bits of a *fair random* hypervector whose value
// changes under the model (stuck-at faults only change a cell with
// probability 1/2): transient/burst → rate, stuck-at → rate/2.
double expected_disturbed_fraction(const FaultModel& model);

// Expected δ(v, faulted(v)) for a fair random v: 1 − 2·disturbed fraction.
double expected_similarity_after_fault(const FaultModel& model);

// --- seed schedule ----------------------------------------------------------

// Detector storage sites a plan can target. Each site gets its own seed
// stream so adding/removing one target never shifts another's patterns.
enum class FaultTarget : std::uint64_t {
  kItemMemory = 1,       // pixel-level item memory (one pattern per level)
  kHistogramMemory = 2,  // histogram-level item memory (one per level)
  kMaskPool = 3,         // stochastic selection-mask ROM (one per entry)
  kPrototype = 4,        // binarized class prototypes (one per class)
  kQuery = 5,            // per-window query hypervectors (one per window)
};

// Pure function of (plan seed, target, element index) — the whole schedule.
constexpr std::uint64_t fault_seed(std::uint64_t plan_seed, FaultTarget target,
                                   std::uint64_t index) {
  return core::mix64(
      core::mix64(plan_seed, 0xFA017ED5ULL + static_cast<std::uint64_t>(target)),
      index);
}

// What to inject where. The stored-memory targets are patched by
// pipeline::FaultSession (copy-on-inject, restore-verified); the query target
// is applied in-flight by the detection engine via apply_query_fault.
struct FaultPlan {
  FaultModel model;
  std::uint64_t seed = 0xFA117;
  // Level item memories + the stochastic mask pool (the stored hypervector
  // material feature extraction reads).
  bool item_memory = true;
  // Binarized class prototypes: inference switches to the binary Hamming
  // path (the storage the paper's robustness study corrupts) against a
  // faulted prototype copy; the float accumulators are never touched.
  bool prototypes = true;
  // Per-window query hypervectors. Transient faults draw a fresh pattern per
  // window; persistent kinds model one faulty query buffer — the same
  // pattern for every window.
  bool queries = true;
};

// Applies the plan's query-target fault to one in-flight query hypervector;
// no-op when queries are untargeted or the rate is zero. Deterministic in
// (plan seed, query_index) — independent of thread count and scan order.
void apply_query_fault(const FaultPlan& plan, std::uint64_t query_index,
                       core::Hypervector& query);

}  // namespace hdface::noise
