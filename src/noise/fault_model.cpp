#include "noise/fault_model.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace hdface::noise {

void FaultMask::apply(core::Hypervector& v) const {
  v.apply_fault_pattern(clear, set, flip);
}

core::Hypervector FaultMask::applied(const core::Hypervector& v) const {
  core::Hypervector out = v;
  apply(out);
  return out;
}

std::size_t FaultMask::selected_bits() const {
  return clear.popcount() + set.popcount() + flip.popcount();
}

FaultMask sample_fault_mask(const FaultModel& model, std::size_t dim,
                            core::Rng& rng) {
  if (dim == 0) throw std::invalid_argument("sample_fault_mask: dim 0");
  if (model.rate < 0.0 || model.rate > 1.0) {
    throw std::invalid_argument("sample_fault_mask: rate outside [0, 1]");
  }
  FaultMask mask{core::Hypervector(dim), core::Hypervector(dim),
                 core::Hypervector(dim)};
  if (model.rate <= 0.0) return mask;
  switch (model.kind) {
    case FaultKind::kTransientFlip:
      mask.flip = core::Hypervector::bernoulli(dim, model.rate, rng);
      break;
    case FaultKind::kStuckAtZero:
      mask.clear = core::Hypervector::bernoulli(dim, model.rate, rng);
      break;
    case FaultKind::kStuckAtOne:
      mask.set = core::Hypervector::bernoulli(dim, model.rate, rng);
      break;
    case FaultKind::kWordBurst: {
      // One Bernoulli draw per 64-bit word; a failed word inverts wholesale.
      // The tail word participates like any other (apply_fault_pattern
      // re-masks the out-of-range bits).
      auto words = mask.flip.mutable_words();
      for (auto& w : words) {
        if (rng.uniform() < model.rate) w = ~0ULL;
      }
      mask.flip.mask_tail();
      break;
    }
  }
  return mask;
}

double expected_disturbed_fraction(const FaultModel& model) {
  switch (model.kind) {
    case FaultKind::kStuckAtZero:
    case FaultKind::kStuckAtOne:
      // A stuck cell only changes the stored value when it held the opposite
      // bit — probability 1/2 for fair random storage.
      return model.rate / 2.0;
    case FaultKind::kTransientFlip:
    case FaultKind::kWordBurst:
      return model.rate;
  }
  HD_UNREACHABLE("expected_disturbed_fraction: FaultKind outside the enum");
}

double expected_similarity_after_fault(const FaultModel& model) {
  return 1.0 - 2.0 * expected_disturbed_fraction(model);
}

void apply_query_fault(const FaultPlan& plan, std::uint64_t query_index,
                       core::Hypervector& query) {
  if (!plan.queries || plan.model.rate <= 0.0) return;
  // Persistent kinds model one faulty query buffer: the same physical cells
  // fail for every window, so the pattern ignores the window index.
  const std::uint64_t index =
      plan.model.kind == FaultKind::kTransientFlip ? query_index : 0;
  core::Rng rng(fault_seed(plan.seed, FaultTarget::kQuery, index));
  sample_fault_mask(plan.model, query.dim(), rng).apply(query);
}

}  // namespace hdface::noise
