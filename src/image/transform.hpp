#pragma once

// Geometric / photometric transforms shared by dataset generation and the
// sliding-window detector.

#include "image/image.hpp"

namespace hdface::image {

// Bilinear resize to (new_w, new_h).
Image resize(const Image& src, std::size_t new_w, std::size_t new_h);

// Crop the rectangle [x, x+w) × [y, y+h); must lie inside the source.
Image crop(const Image& src, std::size_t x, std::size_t y, std::size_t w,
           std::size_t h);

// Allocation-free crop into a caller-owned scratch image: dst is resized only
// when its geometry differs, so a scan loop cropping thousands of same-sized
// windows reuses one buffer instead of heap-allocating per window.
void crop_into(const Image& src, std::size_t x, std::size_t y, std::size_t w,
               std::size_t h, Image& dst);

// Paste src into dst with its top-left corner at (x, y); pixels falling
// outside dst are dropped.
void paste(Image& dst, const Image& src, std::ptrdiff_t x, std::ptrdiff_t y);

// Horizontal mirror.
Image flip_horizontal(const Image& src);

// Separable Gaussian blur with the given sigma (pixels).
Image gaussian_blur(const Image& src, double sigma);

// Linear remap so that pixel range becomes exactly [0, 1] (no-op for a
// constant image).
Image normalize_range(const Image& src);

// Rotate around the center by `angle` radians with bilinear sampling; pixels
// sampled outside the source read the clamped edge.
Image rotate(const Image& src, double angle);

// Quantize to n bits and back (models the paper's n-bit pixel precision).
Image quantize(const Image& src, int bits);

}  // namespace hdface::image
