#pragma once

// Procedural drawing primitives for the synthetic dataset renderers.
//
// All primitives blend with the existing image content using an `alpha`
// opacity and write intensity `value` ∈ [0, 1]. Anti-aliasing is a simple
// 1-pixel soft edge, enough to avoid stair-step gradients that would make
// HOG features trivially synthetic.

#include "core/rng.hpp"
#include "image/image.hpp"

namespace hdface::image {

// Filled axis-aligned ellipse centered at (cx, cy) with radii (rx, ry),
// rotated by `angle` radians.
void fill_ellipse(Image& img, double cx, double cy, double rx, double ry,
                  float value, float alpha = 1.0f, double angle = 0.0);

// Anti-aliased line segment of the given thickness.
void draw_line(Image& img, double x0, double y0, double x1, double y1,
               float value, double thickness = 1.0, float alpha = 1.0f);

// Filled axis-aligned rectangle.
void fill_rect(Image& img, double x0, double y0, double x1, double y1,
               float value, float alpha = 1.0f);

// Additive Gaussian intensity blob.
void add_gaussian_blob(Image& img, double cx, double cy, double sigma,
                       float amplitude);

// Quadratic Bézier arc (used for mouths / brows), thickness in pixels.
void draw_arc(Image& img, double x0, double y0, double cx, double cy, double x1,
              double y1, float value, double thickness = 1.0, float alpha = 1.0f);

// Smooth value-noise texture in [0,1] with `octaves` octaves, written over the
// whole image scaled by `amplitude` around 0.5 (background clutter).
void add_value_noise(Image& img, core::Rng& rng, double base_scale, int octaves,
                     float amplitude);

// Linear illumination gradient along direction `angle`, strength in [0,1].
void add_linear_gradient(Image& img, double angle, float strength);

// Per-pixel i.i.d. Gaussian noise.
void add_gaussian_noise(Image& img, core::Rng& rng, float sigma);

// Per-pixel salt & pepper noise with probability p (half salt, half pepper).
void add_salt_pepper(Image& img, core::Rng& rng, double p);

}  // namespace hdface::image
