#include "image/image.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hdface::image {

Image::Image(std::size_t width, std::size_t height, float fill)
    : width_(width), height_(height), data_(width * height, fill) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("Image: dimensions must be > 0");
  }
}

float Image::at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const {
  x = std::clamp<std::ptrdiff_t>(x, 0, static_cast<std::ptrdiff_t>(width_) - 1);
  y = std::clamp<std::ptrdiff_t>(y, 0, static_cast<std::ptrdiff_t>(height_) - 1);
  return data_[static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)];
}

void Image::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Image::clamp() {
  for (auto& p : data_) p = std::clamp(p, 0.0f, 1.0f);
}

float Image::min() const { return *std::min_element(data_.begin(), data_.end()); }
float Image::max() const { return *std::max_element(data_.begin(), data_.end()); }

double Image::mean() const {
  double s = 0.0;
  for (auto p : data_) s += p;
  return data_.empty() ? 0.0 : s / static_cast<double>(data_.size());
}

double Image::variance() const {
  const double m = mean();
  double s = 0.0;
  for (auto p : data_) s += (p - m) * (p - m);
  return data_.empty() ? 0.0 : s / static_cast<double>(data_.size());
}

std::uint8_t to_u8(float v) {
  const float c = std::clamp(v, 0.0f, 1.0f);
  return static_cast<std::uint8_t>(std::lround(c * 255.0f));
}

float from_u8(std::uint8_t v) { return static_cast<float>(v) / 255.0f; }

}  // namespace hdface::image
