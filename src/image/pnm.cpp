#include "image/pnm.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hdface::image {

namespace {
// Skips whitespace and `#` comments in a PNM header.
void skip_pnm_separators(std::istream& in) {
  for (;;) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (std::isspace(c)) {
      in.get();
    } else {
      return;
    }
  }
}

std::size_t read_pnm_number(std::istream& in) {
  skip_pnm_separators(in);
  std::size_t v = 0;
  if (!(in >> v)) throw std::runtime_error("PNM: malformed header number");
  return v;
}
}  // namespace

void write_pgm(const Image& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << img.width() << " " << img.height() << "\n255\n";
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      out.put(static_cast<char>(to_u8(img.at(x, y))));
    }
  }
  if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pgm: cannot open " + path);
  std::string magic(2, '\0');
  in.read(magic.data(), 2);
  if (magic != "P5") throw std::runtime_error("read_pgm: not a binary PGM: " + path);
  const std::size_t w = read_pnm_number(in);
  const std::size_t h = read_pnm_number(in);
  const std::size_t maxval = read_pnm_number(in);
  // Validate before allocating: zero/absurd dimensions come from corrupt
  // files and must not turn into multi-gigabyte allocations.
  constexpr std::size_t kMaxSide = 1u << 16;
  if (w == 0 || h == 0 || w > kMaxSide || h > kMaxSide) {
    throw std::runtime_error("read_pgm: implausible dimensions");
  }
  if (maxval == 0 || maxval > 255) {
    throw std::runtime_error("read_pgm: unsupported maxval");
  }
  in.get();  // single whitespace after maxval
  Image img(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const int c = in.get();
      if (c == EOF) throw std::runtime_error("read_pgm: truncated pixel data");
      img.at(x, y) = static_cast<float>(c) / static_cast<float>(maxval);
    }
  }
  return img;
}

RgbImage to_rgb(const Image& img) {
  RgbImage rgb(img.width(), img.height());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const std::uint8_t g = to_u8(img.at(x, y));
      rgb.at(x, y) = {g, g, g};
    }
  }
  return rgb;
}

void write_ppm(const RgbImage& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
  out << "P6\n" << img.width << " " << img.height << "\n255\n";
  for (const auto& px : img.pixels) {
    out.put(static_cast<char>(px[0]));
    out.put(static_cast<char>(px[1]));
    out.put(static_cast<char>(px[2]));
  }
  if (!out) throw std::runtime_error("write_ppm: write failed for " + path);
}

}  // namespace hdface::image
