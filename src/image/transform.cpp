#include "image/transform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace hdface::image {

namespace {
float sample_bilinear(const Image& src, double x, double y) {
  const auto x0 = static_cast<std::ptrdiff_t>(std::floor(x));
  const auto y0 = static_cast<std::ptrdiff_t>(std::floor(y));
  const float fx = static_cast<float>(x - static_cast<double>(x0));
  const float fy = static_cast<float>(y - static_cast<double>(y0));
  const float v00 = src.at_clamped(x0, y0);
  const float v10 = src.at_clamped(x0 + 1, y0);
  const float v01 = src.at_clamped(x0, y0 + 1);
  const float v11 = src.at_clamped(x0 + 1, y0 + 1);
  return v00 * (1 - fx) * (1 - fy) + v10 * fx * (1 - fy) + v01 * (1 - fx) * fy +
         v11 * fx * fy;
}
}  // namespace

Image resize(const Image& src, std::size_t new_w, std::size_t new_h) {
  Image dst(new_w, new_h);
  const double sx = static_cast<double>(src.width()) / static_cast<double>(new_w);
  const double sy = static_cast<double>(src.height()) / static_cast<double>(new_h);
  for (std::size_t y = 0; y < new_h; ++y) {
    for (std::size_t x = 0; x < new_w; ++x) {
      dst.at(x, y) = sample_bilinear(src, (x + 0.5) * sx - 0.5, (y + 0.5) * sy - 0.5);
    }
  }
  return dst;
}

Image crop(const Image& src, std::size_t x, std::size_t y, std::size_t w,
           std::size_t h) {
  Image dst;
  crop_into(src, x, y, w, h, dst);
  return dst;
}

void crop_into(const Image& src, std::size_t x, std::size_t y, std::size_t w,
               std::size_t h, Image& dst) {
  if (x + w > src.width() || y + h > src.height()) {
    throw std::invalid_argument("crop: rectangle out of bounds");
  }
  if (dst.width() != w || dst.height() != h) dst = Image(w, h);
  const std::span<const float> src_px = src.pixels();
  const std::span<float> dst_px = dst.pixels();
  for (std::size_t j = 0; j < h; ++j) {
    const float* row = src_px.data() + (y + j) * src.width() + x;
    std::copy(row, row + w, dst_px.data() + j * w);
  }
}

void paste(Image& dst, const Image& src, std::ptrdiff_t x, std::ptrdiff_t y) {
  for (std::size_t j = 0; j < src.height(); ++j) {
    const std::ptrdiff_t dy = y + static_cast<std::ptrdiff_t>(j);
    if (dy < 0 || dy >= static_cast<std::ptrdiff_t>(dst.height())) continue;
    for (std::size_t i = 0; i < src.width(); ++i) {
      const std::ptrdiff_t dx = x + static_cast<std::ptrdiff_t>(i);
      if (dx < 0 || dx >= static_cast<std::ptrdiff_t>(dst.width())) continue;
      dst.at(static_cast<std::size_t>(dx), static_cast<std::size_t>(dy)) = src.at(i, j);
    }
  }
}

Image flip_horizontal(const Image& src) {
  Image dst(src.width(), src.height());
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      dst.at(x, y) = src.at(src.width() - 1 - x, y);
    }
  }
  return dst;
}

Image gaussian_blur(const Image& src, double sigma) {
  if (sigma <= 0.0) return src;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<float> kernel(2 * radius + 1);
  float sum = 0.0f;
  for (int k = -radius; k <= radius; ++k) {
    const float v = static_cast<float>(std::exp(-(k * k) / (2.0 * sigma * sigma)));
    kernel[static_cast<std::size_t>(k + radius)] = v;
    sum += v;
  }
  for (auto& v : kernel) v /= sum;

  Image tmp(src.width(), src.height());
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      float acc = 0.0f;
      for (int k = -radius; k <= radius; ++k) {
        acc += kernel[static_cast<std::size_t>(k + radius)] *
               src.at_clamped(static_cast<std::ptrdiff_t>(x) + k,
                              static_cast<std::ptrdiff_t>(y));
      }
      tmp.at(x, y) = acc;
    }
  }
  Image dst(src.width(), src.height());
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      float acc = 0.0f;
      for (int k = -radius; k <= radius; ++k) {
        acc += kernel[static_cast<std::size_t>(k + radius)] *
               tmp.at_clamped(static_cast<std::ptrdiff_t>(x),
                              static_cast<std::ptrdiff_t>(y) + k);
      }
      dst.at(x, y) = acc;
    }
  }
  return dst;
}

Image normalize_range(const Image& src) {
  const float lo = src.min();
  const float hi = src.max();
  Image dst = src;
  if (hi - lo < 1e-12f) return dst;
  for (auto& p : dst.pixels()) p = (p - lo) / (hi - lo);
  return dst;
}

Image rotate(const Image& src, double angle) {
  Image dst(src.width(), src.height());
  const double cx = static_cast<double>(src.width()) / 2.0;
  const double cy = static_cast<double>(src.height()) / 2.0;
  const double ca = std::cos(-angle);
  const double sa = std::sin(-angle);
  for (std::size_t y = 0; y < dst.height(); ++y) {
    for (std::size_t x = 0; x < dst.width(); ++x) {
      const double dx = static_cast<double>(x) - cx;
      const double dy = static_cast<double>(y) - cy;
      const double sx_pos = cx + dx * ca - dy * sa;
      const double sy_pos = cy + dx * sa + dy * ca;
      dst.at(x, y) = sample_bilinear(src, sx_pos, sy_pos);
    }
  }
  return dst;
}

Image quantize(const Image& src, int bits) {
  if (bits < 1 || bits > 16) throw std::invalid_argument("quantize: bits out of range");
  const float levels = static_cast<float>((1 << bits) - 1);
  Image dst = src;
  for (auto& p : dst.pixels()) {
    p = std::round(std::clamp(p, 0.0f, 1.0f) * levels) / levels;
  }
  return dst;
}

}  // namespace hdface::image
