#include "image/draw.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hdface::image {

namespace {

void blend(Image& img, std::ptrdiff_t x, std::ptrdiff_t y, float value, float alpha) {
  if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(img.width()) ||
      y >= static_cast<std::ptrdiff_t>(img.height())) {
    return;
  }
  alpha = std::clamp(alpha, 0.0f, 1.0f);
  float& p = img.at(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
  p = p * (1.0f - alpha) + value * alpha;
}

// Soft coverage from a signed distance-like field: 1 inside, 0 outside,
// linear ramp over one pixel.
float soft_cover(double d) {
  return static_cast<float>(std::clamp(0.5 - d, 0.0, 1.0));
}

}  // namespace

void fill_ellipse(Image& img, double cx, double cy, double rx, double ry,
                  float value, float alpha, double angle) {
  if (rx <= 0.0 || ry <= 0.0) return;
  const double extent = std::max(rx, ry) + 1.5;
  const auto x_lo = static_cast<std::ptrdiff_t>(std::floor(cx - extent));
  const auto x_hi = static_cast<std::ptrdiff_t>(std::ceil(cx + extent));
  const auto y_lo = static_cast<std::ptrdiff_t>(std::floor(cy - extent));
  const auto y_hi = static_cast<std::ptrdiff_t>(std::ceil(cy + extent));
  const double ca = std::cos(angle);
  const double sa = std::sin(angle);
  for (std::ptrdiff_t y = y_lo; y <= y_hi; ++y) {
    for (std::ptrdiff_t x = x_lo; x <= x_hi; ++x) {
      const double dx = static_cast<double>(x) - cx;
      const double dy = static_cast<double>(y) - cy;
      const double u = (dx * ca + dy * sa) / rx;
      const double v = (-dx * sa + dy * ca) / ry;
      const double r = std::sqrt(u * u + v * v);
      // Approximate pixel distance to the boundary.
      const double d = (r - 1.0) * std::min(rx, ry);
      const float cover = soft_cover(d);
      if (cover > 0.0f) blend(img, x, y, value, alpha * cover);
    }
  }
}

void draw_line(Image& img, double x0, double y0, double x1, double y1,
               float value, double thickness, float alpha) {
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  const double len2 = dx * dx + dy * dy;
  const double half = thickness / 2.0;
  const double pad = half + 1.5;
  const auto lo_x = static_cast<std::ptrdiff_t>(std::floor(std::min(x0, x1) - pad));
  const auto hi_x = static_cast<std::ptrdiff_t>(std::ceil(std::max(x0, x1) + pad));
  const auto lo_y = static_cast<std::ptrdiff_t>(std::floor(std::min(y0, y1) - pad));
  const auto hi_y = static_cast<std::ptrdiff_t>(std::ceil(std::max(y0, y1) + pad));
  for (std::ptrdiff_t y = lo_y; y <= hi_y; ++y) {
    for (std::ptrdiff_t x = lo_x; x <= hi_x; ++x) {
      const double px = static_cast<double>(x) - x0;
      const double py = static_cast<double>(y) - y0;
      double t = len2 > 0.0 ? (px * dx + py * dy) / len2 : 0.0;
      t = std::clamp(t, 0.0, 1.0);
      const double qx = px - t * dx;
      const double qy = py - t * dy;
      const double d = std::sqrt(qx * qx + qy * qy) - half;
      const float cover = soft_cover(d);
      if (cover > 0.0f) blend(img, x, y, value, alpha * cover);
    }
  }
}

void fill_rect(Image& img, double x0, double y0, double x1, double y1,
               float value, float alpha) {
  if (x1 < x0) std::swap(x0, x1);
  if (y1 < y0) std::swap(y0, y1);
  const auto lo_x = static_cast<std::ptrdiff_t>(std::floor(x0));
  const auto hi_x = static_cast<std::ptrdiff_t>(std::ceil(x1));
  const auto lo_y = static_cast<std::ptrdiff_t>(std::floor(y0));
  const auto hi_y = static_cast<std::ptrdiff_t>(std::ceil(y1));
  for (std::ptrdiff_t y = lo_y; y <= hi_y; ++y) {
    for (std::ptrdiff_t x = lo_x; x <= hi_x; ++x) {
      // Coverage = product of per-axis overlap of the pixel with the rect.
      const double ox = std::min<double>(x + 1.0, x1) - std::max<double>(x, x0);
      const double oy = std::min<double>(y + 1.0, y1) - std::max<double>(y, y0);
      if (ox <= 0.0 || oy <= 0.0) continue;
      blend(img, x, y, value,
            alpha * static_cast<float>(std::min(1.0, ox) * std::min(1.0, oy)));
    }
  }
}

void add_gaussian_blob(Image& img, double cx, double cy, double sigma,
                       float amplitude) {
  if (sigma <= 0.0) return;
  const double extent = 3.0 * sigma;
  const auto lo_x = static_cast<std::ptrdiff_t>(std::floor(cx - extent));
  const auto hi_x = static_cast<std::ptrdiff_t>(std::ceil(cx + extent));
  const auto lo_y = static_cast<std::ptrdiff_t>(std::floor(cy - extent));
  const auto hi_y = static_cast<std::ptrdiff_t>(std::ceil(cy + extent));
  for (std::ptrdiff_t y = std::max<std::ptrdiff_t>(lo_y, 0);
       y <= std::min<std::ptrdiff_t>(hi_y, static_cast<std::ptrdiff_t>(img.height()) - 1); ++y) {
    for (std::ptrdiff_t x = std::max<std::ptrdiff_t>(lo_x, 0);
         x <= std::min<std::ptrdiff_t>(hi_x, static_cast<std::ptrdiff_t>(img.width()) - 1); ++x) {
      const double dx = static_cast<double>(x) - cx;
      const double dy = static_cast<double>(y) - cy;
      const double g = std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
      img.at(static_cast<std::size_t>(x), static_cast<std::size_t>(y)) +=
          amplitude * static_cast<float>(g);
    }
  }
}

void draw_arc(Image& img, double x0, double y0, double cx, double cy, double x1,
              double y1, float value, double thickness, float alpha) {
  // Flatten the Bézier into short segments.
  const int segments = 16;
  double px = x0;
  double py = y0;
  for (int s = 1; s <= segments; ++s) {
    const double t = static_cast<double>(s) / segments;
    const double omt = 1.0 - t;
    const double qx = omt * omt * x0 + 2.0 * omt * t * cx + t * t * x1;
    const double qy = omt * omt * y0 + 2.0 * omt * t * cy + t * t * y1;
    draw_line(img, px, py, qx, qy, value, thickness, alpha);
    px = qx;
    py = qy;
  }
}

void add_value_noise(Image& img, core::Rng& rng, double base_scale, int octaves,
                     float amplitude) {
  if (octaves < 1) return;
  const std::size_t w = img.width();
  const std::size_t h = img.height();
  std::vector<float> accum(w * h, 0.0f);
  double scale = std::max(base_scale, 2.0);
  float octave_amp = 1.0f;
  float total_amp = 0.0f;
  for (int o = 0; o < octaves; ++o) {
    // Lattice of random values, bilinearly interpolated.
    const auto gw = static_cast<std::size_t>(std::ceil(w / scale)) + 2;
    const auto gh = static_cast<std::size_t>(std::ceil(h / scale)) + 2;
    std::vector<float> grid(gw * gh);
    for (auto& g : grid) g = static_cast<float>(rng.uniform());
    for (std::size_t y = 0; y < h; ++y) {
      const double gy = y / scale;
      const auto y0 = static_cast<std::size_t>(gy);
      const float fy = static_cast<float>(gy - static_cast<double>(y0));
      for (std::size_t x = 0; x < w; ++x) {
        const double gx = x / scale;
        const auto x0 = static_cast<std::size_t>(gx);
        const float fx = static_cast<float>(gx - static_cast<double>(x0));
        const float v00 = grid[y0 * gw + x0];
        const float v10 = grid[y0 * gw + x0 + 1];
        const float v01 = grid[(y0 + 1) * gw + x0];
        const float v11 = grid[(y0 + 1) * gw + x0 + 1];
        const float v = v00 * (1 - fx) * (1 - fy) + v10 * fx * (1 - fy) +
                        v01 * (1 - fx) * fy + v11 * fx * fy;
        accum[y * w + x] += octave_amp * v;
      }
    }
    total_amp += octave_amp;
    octave_amp *= 0.5f;
    scale = std::max(2.0, scale / 2.0);
  }
  for (std::size_t i = 0; i < accum.size(); ++i) {
    const float centered = accum[i] / total_amp - 0.5f;
    img.pixels()[i] += amplitude * centered * 2.0f;
  }
  img.clamp();
}

void add_linear_gradient(Image& img, double angle, float strength) {
  const double ca = std::cos(angle);
  const double sa = std::sin(angle);
  const double diag = std::sqrt(static_cast<double>(img.width() * img.width() +
                                                    img.height() * img.height()));
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const double proj = (x * ca + y * sa) / diag;  // roughly [-1, 1]
      img.at(x, y) += strength * static_cast<float>(proj);
    }
  }
  img.clamp();
}

void add_gaussian_noise(Image& img, core::Rng& rng, float sigma) {
  for (auto& p : img.pixels()) {
    p += sigma * static_cast<float>(rng.gaussian());
  }
  img.clamp();
}

void add_salt_pepper(Image& img, core::Rng& rng, double p) {
  for (auto& px : img.pixels()) {
    const double u = rng.uniform();
    if (u < p / 2.0) {
      px = 0.0f;
    } else if (u < p) {
      px = 1.0f;
    }
  }
}

}  // namespace hdface::image
