#pragma once

// Grayscale image container used throughout the pipelines.
//
// Pixels are stored row-major as floats in [0, 1] (0 = black, 1 = white,
// matching the paper's normalization before hypervector construction).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hdface::image {

class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, float fill = 0.0f);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t x, std::size_t y) { return data_[y * width_ + x]; }
  float at(std::size_t x, std::size_t y) const { return data_[y * width_ + x]; }

  // Clamped access: out-of-range coordinates read the nearest edge pixel.
  float at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const;

  std::span<float> pixels() { return data_; }
  std::span<const float> pixels() const { return data_; }

  void fill(float v);

  // Clamps every pixel into [0, 1].
  void clamp();

  float min() const;
  float max() const;
  double mean() const;
  double variance() const;

  bool operator==(const Image& o) const = default;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<float> data_;
};

// 8-bit quantization helpers (the paper's n-bit pixel representation).
std::uint8_t to_u8(float v);
float from_u8(std::uint8_t v);

}  // namespace hdface::image
