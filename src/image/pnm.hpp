#pragma once

// Binary PGM (P5) / PPM (P6) reader & writer — dependency-free image I/O for
// dataset import/export and the Fig 6 detection-map visualizations.

#include <array>
#include <string>

#include "image/image.hpp"

namespace hdface::image {

// Writes `img` as an 8-bit binary PGM. Throws std::runtime_error on I/O error.
void write_pgm(const Image& img, const std::string& path);

// Reads an 8-bit binary PGM (P5). Throws std::runtime_error on parse error.
Image read_pgm(const std::string& path);

// RGB overlay image for detection visualizations.
struct RgbImage {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::array<std::uint8_t, 3>> pixels;

  RgbImage() = default;
  RgbImage(std::size_t w, std::size_t h)
      : width(w), height(h), pixels(w * h, {0, 0, 0}) {}

  std::array<std::uint8_t, 3>& at(std::size_t x, std::size_t y) {
    return pixels[y * width + x];
  }
  const std::array<std::uint8_t, 3>& at(std::size_t x, std::size_t y) const {
    return pixels[y * width + x];
  }
};

// Grayscale image lifted to RGB.
RgbImage to_rgb(const Image& img);

// Writes an RGB image as binary PPM (P6).
void write_ppm(const RgbImage& img, const std::string& path);

}  // namespace hdface::image
