// hdlint: allow-file(wall-clock) — the load generator reads the steady clock
// to pace open-loop arrivals and measure run duration. Time never selects
// request content: every Request is a pure function of (config.seed, index)
// via RequestFactory::make, which is what lets the bench replay the exact
// stream against direct detect calls.

#include "serve/load_gen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "dataset/background_generator.hpp"
#include "dataset/face_generator.hpp"
#include "image/transform.hpp"
#include "util/check.hpp"

namespace hdface::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSceneSalt = 0x5CEC3;
constexpr std::uint64_t kKindSalt = 0x417D;
constexpr std::uint64_t kFaultSalt = 0xFA017;
constexpr std::uint64_t kArrivalSalt = 0xA221;

// A window-or-wider scene with clutter and one planted face — enough signal
// that detection results are non-trivial, cheap enough to render a pool at
// factory construction.
image::Image render_scene(std::size_t side, std::size_t window,
                          std::uint64_t seed) {
  image::Image scene(side, side, 0.5f);
  core::Rng rng(seed);
  dataset::render_background(scene, dataset::BackgroundKind::kMixed, rng);
  const std::size_t max_off = side - window;
  const std::size_t fx = max_off == 0 ? 0 : rng.below(max_off + 1);
  const std::size_t fy = max_off == 0 ? 0 : rng.below(max_off + 1);
  image::paste(scene, dataset::render_face_window(window, rng.next()),
               static_cast<std::ptrdiff_t>(fx), static_cast<std::ptrdiff_t>(fy));
  return scene;
}

}  // namespace

RequestFactory::RequestFactory(std::size_t window, const LoadGenConfig& config)
    : window_(window), config_(config) {
  HD_CHECK(window_ > 0, "RequestFactory: window 0");
  const std::size_t pool = std::max<std::size_t>(1, config_.scene_pool);
  window_scenes_.reserve(pool);
  wide_scenes_.reserve(pool);
  for (std::size_t i = 0; i < pool; ++i) {
    window_scenes_.push_back(
        render_scene(window_, window_, core::mix64(config_.seed, kSceneSalt + 2 * i)));
    wide_scenes_.push_back(render_scene(
        3 * window_, window_, core::mix64(config_.seed, kSceneSalt + 2 * i + 1)));
  }
}

MixKind RequestFactory::kind_of(std::uint64_t index) const {
  core::Rng rng(core::mix64(core::mix64(config_.seed, kKindSalt), index));
  const double total = config_.mix.single_window + config_.mix.multiscale_scene +
                       config_.mix.faulted_query;
  if (total <= 0.0) return MixKind::kSingleWindow;
  const double u = rng.uniform() * total;
  if (u < config_.mix.single_window) return MixKind::kSingleWindow;
  if (u < config_.mix.single_window + config_.mix.multiscale_scene) {
    return MixKind::kMultiscaleScene;
  }
  return MixKind::kFaultedQuery;
}

api::Request RequestFactory::make(std::uint64_t index) const {
  api::Request request;
  request.id = index;
  request.tenant = static_cast<std::uint32_t>(
      index % std::max<std::size_t>(1, config_.tenants));
  request.options.threads = 1;
  request.options.stride = config_.stride;

  core::Rng rng(core::mix64(core::mix64(config_.seed, kSceneSalt), index));
  switch (kind_of(index)) {
    case MixKind::kSingleWindow:
      request.scene = window_scenes_[rng.below(window_scenes_.size())];
      // One window: the scene IS the window.
      request.options.stride = window_;
      break;
    case MixKind::kMultiscaleScene:
      request.scene = wide_scenes_[rng.below(wide_scenes_.size())];
      request.options.scales = {1.0, 0.5};
      request.options.nms = true;
      break;
    case MixKind::kFaultedQuery: {
      request.scene = wide_scenes_[rng.below(wide_scenes_.size())];
      noise::FaultPlan plan;
      plan.model.kind = noise::FaultKind::kTransientFlip;
      plan.model.rate = config_.fault_rate;
      plan.seed = core::mix64(core::mix64(config_.seed, kFaultSalt), index);
      request.options.fault_plan = plan;
      break;
    }
  }
  return request;
}

LoadReport run_closed_loop(DetectionServer& server,
                           const RequestFactory& factory,
                           const LoadGenConfig& config) {
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> retries{0};

  const auto client = [&] {
    for (;;) {
      // hdlint: allow(sched-dependent-value) — work-stealing index: which
      // client claims which index varies with scheduling, but each index in
      // [0, requests) is claimed exactly once and Request content is a pure
      // function of (seed, index), so the processed set — and every per-request
      // detection result — is schedule-independent.
      const std::uint64_t i = next.fetch_add(1);
      if (i >= config.requests) return;
      const api::Request request = factory.make(i);
      for (;;) {
        auto submission = server.submit(request);
        if (submission.admitted()) {
          admitted.fetch_add(1);
          const auto outcome = submission.response.get();
          if (outcome.ok()) {
            completed.fetch_add(1);
          } else {
            errors.fetch_add(1);
          }
          break;
        }
        // Closed-loop convention: a rejected client backs off and retries —
        // offered load adapts until the server admits.
        rejected.fetch_add(1);
        retries.fetch_add(1);
        // hdlint: allow(sleep-as-sync) — backpressure pacing, not a
        // synchronization substitute: correctness never depends on the nap
        // (the retry loop re-checks admission), it only throttles offered
        // load while the queue is full.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  };

  const auto start = Clock::now();
  std::vector<std::thread> clients;
  const std::size_t n_clients = std::max<std::size_t>(1, config.concurrency);
  clients.reserve(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) clients.emplace_back(client);
  for (auto& t : clients) t.join();
  const double duration_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  LoadReport report;
  report.offered = config.requests;
  report.admitted = admitted.load();
  report.rejected = rejected.load();
  report.completed = completed.load();
  report.errors = errors.load();
  report.retries = retries.load();
  report.duration_s = duration_s;
  report.achieved_rps =
      duration_s > 0.0 ? static_cast<double>(report.completed) / duration_s : 0.0;
  report.server = server.stats();
  return report;
}

LoadReport run_open_loop(DetectionServer& server, const RequestFactory& factory,
                         const LoadGenConfig& config) {
  HD_CHECK(config.offered_rps > 0.0, "run_open_loop: offered_rps must be > 0");
  // Pre-computed Poisson process: arrival offsets are a pure function of
  // (seed, rate), so two runs at the same config offer the same schedule.
  std::vector<double> arrival_s(config.requests);
  core::Rng rng(core::mix64(config.seed, kArrivalSalt));
  double t = 0.0;
  for (auto& a : arrival_s) {
    const double u = rng.uniform();
    t += -std::log1p(-u) / config.offered_rps;  // Exp(rate) inter-arrival
    a = t;
  }

  std::vector<std::future<api::Outcome<api::Response>>> pending;
  pending.reserve(config.requests);
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;

  const auto start = Clock::now();
  for (std::size_t i = 0; i < config.requests; ++i) {
    // hdlint: allow(sleep-as-sync) — open-loop arrival pacing: the sleep
    // *is* the workload (seeded-Poisson offered rate), not a stand-in for
    // synchronization; detection results never depend on the schedule.
    std::this_thread::sleep_until(
        start + std::chrono::duration<double>(arrival_s[i]));
    auto submission = server.submit(factory.make(i));
    if (submission.admitted()) {
      admitted += 1;
      pending.push_back(std::move(submission.response));
    } else {
      // Open loop never retries: the rejection rate is the signal.
      rejected += 1;
    }
  }

  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  for (auto& future : pending) {
    const auto outcome = future.get();
    if (outcome.ok()) {
      completed += 1;
    } else {
      errors += 1;
    }
  }
  const double duration_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  LoadReport report;
  report.offered = config.requests;
  report.admitted = admitted;
  report.rejected = rejected;
  report.completed = completed;
  report.errors = errors;
  report.duration_s = duration_s;
  report.offered_rps = config.offered_rps;
  report.achieved_rps =
      duration_s > 0.0 ? static_cast<double>(completed) / duration_s : 0.0;
  report.server = server.stats();
  return report;
}

}  // namespace hdface::serve
