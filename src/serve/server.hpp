#pragma once

// Detection-as-a-service: a long-running serving layer over api::Detector.
//
// The paper's claim is robustness under heavy, noisy, concurrent load; every
// bench before this layer was one-shot. DetectionServer turns the detector
// into a service:
//
//   submit() ── admission ──► bounded MPMC queue ──► worker pool ──► future
//                  │                                     │
//                  ├─ validate(options)  → kInvalidOptions (typed, no queue)
//                  ├─ per-tenant cap     → kTenantOverLimit
//                  ├─ queue at capacity  → kQueueFull  (backpressure)
//                  └─ shutting down      → kShutdown
//
// Every rejection is a typed api::Error returned synchronously — a rejected
// request never consumes queue space or a worker. Admitted requests resolve
// through a std::future with an api::Outcome<api::Response>, so a request
// that fails *during* execution (kInternal) still resolves its future; a
// worker never dies on input.
//
// Latency accounting: each worker owns a shard of three
// util::LatencyHistogram (queue-wait, execute, end-to-end) plus completion
// counters; stats() merges the shards. Merging is exact (see
// latency_histogram.hpp), so p50/p99/p999 are identical no matter how many
// workers served the load or in which order shards merge.
//
// Queue-accounting conservation (the invariant the serving CI job gates
// on): every submit() lands in exactly one of {admitted, rejected_*}, and
// every admitted request in exactly one of {completed, failed, in flight}.
// ServerStats::conserved() checks it; shutdown() drains the queue, so after
// shutdown in_flight is 0 and admitted == completed + failed.
//
// Determinism: detection results ride the engine's bit-identical contract —
// a served request returns exactly the detections Detector::detect would
// return for the same (scene, options), at any worker count and any
// interleaving (the serving bench verifies this per request). Latency
// numbers are of course timing-dependent; only the *results* are not.
//
// Fault-plan requests mutate shared pipeline storage for the duration of
// their scan (pipeline::FaultSession, copy-on-inject + restore-verified);
// the server runs them under an exclusive model lock while clean requests
// share it, so a faulted query can never corrupt a concurrent clean scan.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "api/detector.hpp"
#include "pipeline/cascade_types.hpp"
#include "pipeline/encode_mode.hpp"
#include "util/bounded_queue.hpp"
#include "util/latency_histogram.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace hdface::serve {

struct ServerConfig {
  // Bounded request-queue depth; submissions beyond it are rejected with
  // kQueueFull (clamped to >= 1).
  std::size_t queue_depth = 64;
  // Worker threads executing requests; 0 = hardware concurrency. Ignored
  // when start_workers is false.
  std::size_t workers = 0;
  // Per-tenant in-flight cap (queued + executing). 0 = unlimited.
  std::size_t per_tenant_inflight = 0;
  // Engine threads *inside* one request's scan. Serving keeps this at 1:
  // under load, request-level parallelism across workers beats intra-scan
  // parallelism, and results are bit-identical at any setting.
  std::size_t engine_threads = 1;
  // false: start no worker threads; admitted requests queue until step()
  // executes them on the calling thread. This is the deterministic mode the
  // admission-control tests drive — with no concurrent consumer, rejection
  // counts under a fixed submission schedule are exact.
  bool start_workers = true;
};

// Monotonic admission/completion counters. Every field only increments;
// all are updated under one admission lock, so a stats() snapshot is
// internally consistent.
struct Counters {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_tenant = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t completed = 0;  // future resolved with an ok Outcome
  std::uint64_t failed = 0;     // future resolved with an error Outcome

  std::uint64_t rejected_total() const {
    return rejected_queue_full + rejected_tenant + rejected_invalid +
           rejected_shutdown;
  }
};

struct ServerStats {
  Counters counters;
  std::size_t queue_depth = 0;  // snapshot at stats() time
  std::size_t queue_capacity = 0;
  std::size_t in_flight = 0;  // admitted, not yet resolved (queued + executing)
  std::size_t workers = 0;
  // Merged across worker shards; exact at any worker count and merge order.
  util::LatencyHistogram queue_wait;
  util::LatencyHistogram execute;
  util::LatencyHistogram e2e;
  // Fleet-wide scan accounting, merged across worker shards exactly like the
  // histograms (integer adds commute — totals are identical at any worker
  // count and merge order). encode_cache carries the lazy-plane behavior the
  // plane-encode work gates on: cells_computed / cells_total is the
  // materialized fraction, cells_forced_prescreen the prescreen driver's
  // share, 1 − cells_computed / ensure_checks the plane hit rate. cascade
  // carries per-stage entered/rejected plus prescreen counters. Both stay
  // zero when no served request ran the corresponding mode.
  pipeline::EncodeCacheStats encode_cache;
  pipeline::CascadeStats cascade;

  // Queue-accounting conservation: no request dropped-but-uncounted.
  bool conserved() const {
    return counters.submitted ==
               counters.admitted + counters.rejected_total() &&
           counters.admitted ==
               counters.completed + counters.failed + in_flight;
  }
};

class DetectionServer {
 public:
  // The synchronous half of submit(): either a typed rejection or a future,
  // plus the queue occupancy at admission — the backpressure signal a
  // well-behaved client throttles on.
  struct Submission {
    std::optional<api::Error> rejected;  // set when not admitted
    std::future<api::Outcome<api::Response>> response;  // valid when admitted
    std::size_t queue_depth = 0;     // occupancy right after this admission
    std::size_t queue_capacity = 0;

    bool admitted() const { return !rejected.has_value(); }
  };

  // Takes the detector by value (cheap: shared_ptr pipeline) and warms its
  // shared stochastic context once, before any concurrency.
  DetectionServer(api::Detector detector, ServerConfig config);
  // shutdown() — drains the queue and joins workers.
  ~DetectionServer();

  DetectionServer(const DetectionServer&) = delete;
  DetectionServer& operator=(const DetectionServer&) = delete;

  // Admission control; never blocks on detection work. Requests that set
  // options.kernel_backend are rejected kInvalidOptions: the backend force
  // is process-global and would race concurrent workers.
  Submission submit(api::Request request) HD_EXCLUDES(admission_mutex_);

  // Manual mode (start_workers == false): execute one queued request on the
  // calling thread. Returns false when the queue is empty. Also used by
  // shutdown() to drain a worker-less server.
  bool step() HD_EXCLUDES(admission_mutex_, model_mutex_);

  // Stop admitting (kShutdown), drain every queued request, join workers.
  // Idempotent; after it returns, stats().in_flight == 0.
  void shutdown() HD_EXCLUDES(admission_mutex_, model_mutex_);

  std::size_t queue_depth() const { return queue_.size(); }
  const api::Detector& detector() const { return detector_; }
  ServerStats stats() const HD_EXCLUDES(admission_mutex_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    api::Request request;
    std::promise<api::Outcome<api::Response>> promise;
    Clock::time_point admitted_at{};
  };

  // Per-worker statistics shard. Shard 0 doubles as the step() shard; the
  // mutex only contends with stats() snapshots, never with other workers.
  struct Shard {
    mutable util::Mutex mutex;
    util::LatencyHistogram queue_wait HD_GUARDED_BY(mutex);
    util::LatencyHistogram execute HD_GUARDED_BY(mutex);
    util::LatencyHistogram e2e HD_GUARDED_BY(mutex);
    pipeline::EncodeCacheStats encode_cache HD_GUARDED_BY(mutex);
    pipeline::CascadeStats cascade HD_GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t shard_index)
      HD_EXCLUDES(admission_mutex_, model_mutex_);
  void execute_job(Job job, Shard& shard)
      HD_EXCLUDES(admission_mutex_, model_mutex_, shard.mutex);

  // Admission checks, in rejection-priority order. Returns the typed
  // rejection (and bumps its counter) or nullopt to admit. Split out of
  // submit() so the REQUIRES annotation states the contract the analysis
  // then enforces on every caller: admission decisions read shutdown_ /
  // tenant_inflight_ and must hold the admission lock.
  std::optional<api::Error> check_admission_locked(const api::Request& request)
      HD_REQUIRES(admission_mutex_);

  // Completion bookkeeping for one finished job (conservation invariant:
  // every admitted request decrements in_flight_ exactly once).
  void finish_job_locked(std::uint32_t tenant, bool ok)
      HD_REQUIRES(admission_mutex_);

  api::Detector detector_;
  ServerConfig config_;
  util::BoundedMpmcQueue<Job> queue_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;

  // Admission state: counters + in-flight tracking, one lock. Completion
  // also runs through it, so Counters snapshots are always conserved.
  mutable util::Mutex admission_mutex_;
  Counters counters_ HD_GUARDED_BY(admission_mutex_);
  std::map<std::uint32_t, std::size_t> tenant_inflight_
      HD_GUARDED_BY(admission_mutex_);
  std::size_t in_flight_ HD_GUARDED_BY(admission_mutex_) = 0;
  bool shutdown_ HD_GUARDED_BY(admission_mutex_) = false;

  // Clean scans share the model; fault-plan scans (which patch shared
  // pipeline storage via FaultSession) take it exclusively. The capability
  // guards the *pipeline storage behind detector_* (item memories, mask
  // pool, prototypes) — state the analysis cannot name directly, so the
  // acquire sites in execute_job() carry the contract instead of a
  // HD_GUARDED_BY on a member.
  util::SharedMutex model_mutex_;
};

}  // namespace hdface::serve
