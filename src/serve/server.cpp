// hdlint: allow-file(wall-clock) — the serving layer reads the steady clock
// to *measure* queue-wait/execute/e2e latency. Elapsed time feeds histograms
// and the Response::timing report only; detection results remain a pure
// function of (model, scene, options) — the bit-identity bench gate proves
// served results equal direct Detector::detect calls.

#include "serve/server.hpp"

#include <string>
#include <utility>

#include "pipeline/hdface_pipeline.hpp"
#include "util/check.hpp"

namespace hdface::serve {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

DetectionServer::DetectionServer(api::Detector detector, ServerConfig config)
    : detector_(std::move(detector)),
      config_(config),
      queue_(config.queue_depth) {
  // Warm the shared stochastic context before any concurrency: the engine's
  // per-scan prepare_concurrent() becomes a no-op, so concurrent workers
  // never race the lazy mask-pool fill.
  detector_.pipeline()->prepare_concurrent();

  std::size_t n_workers = 0;
  if (config_.start_workers) {
    n_workers = config_.workers != 0
                    ? config_.workers
                    : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // Shard 0 exists even without workers: step() records there.
  const std::size_t n_shards = std::max<std::size_t>(1, n_workers);
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

DetectionServer::~DetectionServer() { shutdown(); }

std::optional<api::Error> DetectionServer::check_admission_locked(
    const api::Request& request) {
  if (shutdown_) {
    counters_.rejected_shutdown += 1;
    return api::Error::shutdown("server is shutting down");
  }
  if (auto err = api::validate(request.options)) {
    counters_.rejected_invalid += 1;
    return std::move(*err);
  }
  if (request.options.kernel_backend.has_value()) {
    counters_.rejected_invalid += 1;
    return api::Error::invalid_options(
        "Request: kernel_backend is a process-global force and cannot be set "
        "on served requests");
  }
  if (request.scene.width() < detector_.window() ||
      request.scene.height() < detector_.window()) {
    counters_.rejected_invalid += 1;
    return api::Error::invalid_options(
        "Request: scene smaller than the detector window");
  }
  if (config_.per_tenant_inflight != 0) {
    const auto it = tenant_inflight_.find(request.tenant);
    if (it != tenant_inflight_.end() &&
        it->second >= config_.per_tenant_inflight) {
      counters_.rejected_tenant += 1;
      return api::Error::tenant_over_limit(
          "Request: tenant " + std::to_string(request.tenant) + " already has " +
          std::to_string(it->second) + " requests in flight");
    }
  }
  return std::nullopt;
}

DetectionServer::Submission DetectionServer::submit(api::Request request) {
  Submission submission;
  submission.queue_capacity = queue_.capacity();

  const util::MutexLock lock(admission_mutex_);
  counters_.submitted += 1;
  submission.queue_depth = queue_.size();

  if (auto rejected = check_admission_locked(request)) {
    submission.rejected = std::move(rejected);
    return submission;
  }

  Job job;
  const std::uint32_t tenant = request.tenant;
  job.request = std::move(request);
  job.admitted_at = Clock::now();
  submission.response = job.promise.get_future();
  if (!queue_.try_push(job)) {
    counters_.rejected_queue_full += 1;
    submission.rejected = api::Error::queue_full(
        "Request: queue at capacity (" + std::to_string(queue_.capacity()) +
        ")");
    submission.response = {};
    return submission;
  }
  counters_.admitted += 1;
  in_flight_ += 1;
  tenant_inflight_[tenant] += 1;
  submission.queue_depth = queue_.size();
  return submission;
}

void DetectionServer::worker_loop(std::size_t shard_index) {
  while (auto job = queue_.pop()) {
    execute_job(std::move(*job), *shards_[shard_index]);
  }
}

bool DetectionServer::step() {
  auto job = queue_.try_pop();
  if (!job) return false;
  execute_job(std::move(*job), *shards_.front());
  return true;
}

void DetectionServer::execute_job(Job job, Shard& shard) {
  const auto dequeued_at = Clock::now();
  api::Request request = std::move(job.request);
  request.options.threads = config_.engine_threads;

  // Route the scan's cache/cascade accounting through job-local sinks so the
  // server can aggregate plane behavior fleet-wide (ServerStats), while the
  // caller's own sinks (telemetry or the deprecated aliases — whichever
  // engine_config would have honored) still receive exactly the totals a
  // direct Detector::detect call would have merged into them.
  pipeline::EncodeCacheStats job_cache;
  pipeline::CascadeStats job_cascade;
  api::Telemetry telemetry;
  if (request.options.telemetry) {
    telemetry = *request.options.telemetry;
  } else {
    telemetry.feature_ops = request.options.feature_counter;
    telemetry.encode_cache = request.options.encode_cache_stats;
  }
  pipeline::EncodeCacheStats* caller_cache = telemetry.encode_cache;
  pipeline::CascadeStats* caller_cascade = telemetry.cascade;
  telemetry.encode_cache = &job_cache;
  telemetry.cascade = &job_cascade;
  request.options.telemetry = telemetry;

  api::Outcome<api::Response> outcome = [&] {
    if (request.options.fault_plan.has_value()) {
      // FaultSession patches shared pipeline storage (item memories, mask
      // pool, prototypes) for the scan's duration — exclusive.
      const util::WriterMutexLock model_lock(model_mutex_);
      return detector_.detect(request);
    }
    const util::ReaderMutexLock model_lock(model_mutex_);
    return detector_.detect(request);
  }();

  const auto done_at = Clock::now();
  const std::uint64_t wait_ns = elapsed_ns(job.admitted_at, dequeued_at);
  const std::uint64_t exec_ns = elapsed_ns(dequeued_at, done_at);
  const std::uint64_t total_ns = elapsed_ns(job.admitted_at, done_at);
  if (outcome.ok()) {
    outcome.value().timing = {wait_ns, exec_ns, total_ns};
  }
  if (caller_cache) caller_cache->merge(job_cache);
  if (caller_cascade) caller_cascade->merge(job_cascade);
  {
    const util::MutexLock shard_lock(shard.mutex);
    shard.queue_wait.record(wait_ns);
    shard.execute.record(exec_ns);
    shard.e2e.record(total_ns);
    shard.encode_cache.merge(job_cache);
    shard.cascade.merge(job_cascade);
  }
  {
    const util::MutexLock lock(admission_mutex_);
    finish_job_locked(request.tenant, outcome.ok());
  }
  job.promise.set_value(std::move(outcome));
}

void DetectionServer::finish_job_locked(std::uint32_t tenant, bool ok) {
  if (ok) {
    counters_.completed += 1;
  } else {
    counters_.failed += 1;
  }
  HD_CHECK(in_flight_ > 0, "DetectionServer: completion without admission");
  in_flight_ -= 1;
  const auto it = tenant_inflight_.find(tenant);
  HD_CHECK(it != tenant_inflight_.end() && it->second > 0,
           "DetectionServer: tenant accounting underflow");
  if (--it->second == 0) tenant_inflight_.erase(it);
}

void DetectionServer::shutdown() {
  {
    const util::MutexLock lock(admission_mutex_);
    shutdown_ = true;
  }
  queue_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Worker-less (manual) servers still owe completion to everything they
  // admitted: drain on this thread so conservation holds after shutdown.
  while (step()) {
  }
}

ServerStats DetectionServer::stats() const {
  ServerStats stats;
  {
    const util::MutexLock lock(admission_mutex_);
    stats.counters = counters_;
    stats.in_flight = in_flight_;
  }
  stats.queue_depth = queue_.size();
  stats.queue_capacity = queue_.capacity();
  stats.workers = workers_.size();
  for (const auto& shard : shards_) {
    const util::MutexLock shard_lock(shard->mutex);
    stats.queue_wait.merge(shard->queue_wait);
    stats.execute.merge(shard->execute);
    stats.e2e.merge(shard->e2e);
    stats.encode_cache.merge(shard->encode_cache);
    stats.cascade.merge(shard->cascade);
  }
  return stats;
}

}  // namespace hdface::serve
