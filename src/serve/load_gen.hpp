#pragma once

// Load generation against a DetectionServer: the measurement half of
// detection-as-a-service.
//
// Two classical load models (the Nighthawk distinction):
//
//   closed loop — `concurrency` clients each keep exactly one request in
//     flight; the next submission waits for the previous response. Offered
//     load adapts to the server, so the sweep over concurrency traces the
//     throughput ceiling (saturation = achieved rps stops growing).
//
//   open loop — request i arrives at a pre-computed, seed-deterministic
//     exponential arrival time for the configured rate, whether or not the
//     server keeps up. Rejections are not retried: the kQueueFull rate IS
//     the saturation signal, and latency-vs-offered-load curves come from
//     sweeping the rate past the closed-loop ceiling.
//
// Both loops draw requests from a RequestFactory whose make(i) is a pure
// function of (config, window, i): the same factory replays the identical
// request stream against direct Detector::detect calls, which is how the
// serving bench proves served results are bit-identical to one-shot calls.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "api/types.hpp"
#include "serve/server.hpp"

namespace hdface::serve {

// The three request shapes of the serving mix.
enum class MixKind : std::uint8_t {
  kSingleWindow = 0,    // window-sized scene: one classification
  kMultiscaleScene,     // 3x-window scene, two pyramid scales + NMS
  kFaultedQuery,        // single-scale scene scanned under a fault plan
};

constexpr std::string_view mix_kind_name(MixKind k) {
  switch (k) {
    case MixKind::kSingleWindow: return "single_window";
    case MixKind::kMultiscaleScene: return "multiscale_scene";
    case MixKind::kFaultedQuery: return "faulted_query";
  }
  return "unknown";
}

struct MixWeights {
  double single_window = 0.6;
  double multiscale_scene = 0.25;
  double faulted_query = 0.15;
};

struct LoadGenConfig {
  std::uint64_t seed = 0x5E12E;
  // Total requests per run (closed loop: completions; open loop: arrivals).
  std::size_t requests = 64;
  // Closed-loop client count.
  std::size_t concurrency = 4;
  // Open-loop arrival rate, requests per second.
  double offered_rps = 100.0;
  MixWeights mix;
  // Distinct pre-rendered scenes per mix kind (requests index into the pool
  // deterministically; rendering stays off the submission path).
  std::size_t scene_pool = 4;
  // Requests carry tenant = index % tenants.
  std::size_t tenants = 1;
  // Base scan stride for every mix kind.
  std::size_t stride = 8;
  // Per-bit transient-flip rate of the faulted-query mix.
  double fault_rate = 2e-3;
};

// Deterministic request source. Scenes are rendered once at construction
// (seed-pure); make(i) assembles a Request whose every field — scene choice,
// mix kind, tenant, options, fault plan — is a pure function of
// (config.seed, i).
class RequestFactory {
 public:
  RequestFactory(std::size_t window, const LoadGenConfig& config);

  api::Request make(std::uint64_t index) const;
  MixKind kind_of(std::uint64_t index) const;
  const LoadGenConfig& config() const { return config_; }

 private:
  std::size_t window_;
  LoadGenConfig config_;
  std::vector<image::Image> window_scenes_;  // window-sized, one window each
  std::vector<image::Image> wide_scenes_;    // 3x window, multiscale/faulted
};

struct LoadReport {
  // Distinct requests the loop tried to serve.
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  // Admission rejections observed by clients (closed loop: pre-retry count;
  // open loop: final rejections — these requests were never served).
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;  // ok outcomes
  std::uint64_t errors = 0;     // error outcomes (kInternal etc.)
  std::uint64_t retries = 0;    // closed-loop re-submissions after rejection
  double duration_s = 0.0;
  double offered_rps = 0.0;   // open loop: configured rate; closed loop: 0
  double achieved_rps = 0.0;  // completions / duration
  // Final merged server snapshot (histograms, counters, conservation).
  ServerStats server;
};

LoadReport run_closed_loop(DetectionServer& server,
                           const RequestFactory& factory,
                           const LoadGenConfig& config);

LoadReport run_open_loop(DetectionServer& server, const RequestFactory& factory,
                         const LoadGenConfig& config);

}  // namespace hdface::serve
