#pragma once

// Annotated capability types over the std synchronization primitives.
//
// This is the only file in the linted tree (hdlint rule `raw-mutex-type`)
// that may name std::mutex / std::shared_mutex / std::condition_variable,
// and the only one that may call .lock()/.unlock() directly (rule
// `manual-lock-unlock`). Everything else declares a util::Mutex or
// util::SharedMutex, marks the data it protects `HD_GUARDED_BY(mu_)`, and
// holds the lock through the RAII guards below — which is exactly the shape
// Clang's thread-safety analysis (-Wthread-safety, the `thread-safety`
// preset) can prove correct on every path.
//
// The wrappers are zero-cost: each holds exactly the std primitive, every
// method is a single inlined forwarding call, and no behavior changes —
// the serving and parallel-engine bit-identity suites pin that.
//
// Condition variables: util::CondVar::wait(mu) releases and reacquires the
// *annotated* mutex (via std::unique_lock + adopt/release, so it is still
// a plain std::condition_variable wait underneath — no condition_variable_any
// overhead). The analysis cannot see through wait predicates captured in
// lambdas, so annotated call sites use the explicit loop form:
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(mutex_);   // ready_ is HD_GUARDED_BY(mutex_)
//
// which is also the shape clang-tidy's
// bugprone-spuriously-wake-up-functions wants.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace hdface::util {

// Exclusive capability wrapping std::mutex.
class HD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HD_ACQUIRE() { mu_.lock(); }
  void unlock() HD_RELEASE() { mu_.unlock(); }
  bool try_lock() HD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Shared/exclusive capability wrapping std::shared_mutex (reader-writer).
class HD_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() HD_ACQUIRE() { mu_.lock(); }
  void unlock() HD_RELEASE() { mu_.unlock(); }
  void lock_shared() HD_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() HD_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive guard over Mutex (the std::lock_guard of this layer).
class HD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HD_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive guard over SharedMutex (writer side).
class HD_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) HD_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() HD_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared guard over SharedMutex (reader side).
class HD_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) HD_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() HD_RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to util::Mutex. wait() requires the caller to
// hold the mutex — the analysis checks it — and waits on the *underlying*
// std::mutex through an adopting unique_lock, so the fast native
// std::condition_variable path is preserved exactly.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Releases mu, blocks until notified (or spuriously woken), reacquires mu.
  // Callers re-test their condition in a while loop.
  void wait(Mutex& mu) HD_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hdface::util
