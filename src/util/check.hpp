#pragma once

// Contract-checking layer (the HDFACE_CHECKED build mode).
//
// HDFace's determinism and memory-safety invariants — hypervector dimension
// agreement before any bitwise op, packed-word index bounds, stochastic
// divide/sqrt domains, prototype/query width match — are hardware contracts
// in the in-memory HDC deployments the paper targets. The default build
// trusts callers on hot paths (the seed behavior); configuring with
// -DHDFACE_CHECKED=ON compiles every HD_CHECK into a fatal, diagnosable trap
// instead of silent undefined behavior.
//
//   HD_CHECK(cond, msg)   API-boundary contract. Active in HDFACE_CHECKED
//                         builds regardless of NDEBUG; the check must be
//                         cheap relative to the operation it guards.
//   HD_DCHECK(cond, msg)  Per-element hot-loop invariant (e.g. bit-index
//                         bounds). Active only in HDFACE_CHECKED builds that
//                         also keep assert() (no NDEBUG), because it costs a
//                         branch per element access.
//   HD_UNREACHABLE(msg)   Marks control flow the surrounding invariants rule
//                         out. Traps when checked; __builtin_unreachable()
//                         otherwise (the seed behavior).
//
// A failed contract is a *programming error*, so it aborts (death-testable
// under GTest) rather than throwing: unwinding past a violated invariant
// would run destructors over the very state the check found corrupt.
// Environmental errors — unreadable files, malformed .hdc headers, truncated
// streams — keep throwing std::runtime_error unconditionally in every build
// mode; see src/util/bytes.hpp and src/learn/serialize.cpp.
//
// The condition expression must be side-effect free: unchecked builds do not
// evaluate it (it is only compiled, inside a dead branch, so both modes keep
// each other honest).

namespace hdface::util {

// Prints "<kind> failed: <expr>\n  at <file>:<line>\n  <msg>" to stderr and
// aborts. Out-of-line so the macro expansion stays one test + one call.
[[noreturn]] void contract_failure(const char* kind, const char* file, int line,
                                   const char* expr, const char* msg) noexcept;

}  // namespace hdface::util

#if defined(HDFACE_CHECKED)
#define HDFACE_CHECK_ENABLED 1
#else
#define HDFACE_CHECK_ENABLED 0
#endif

#if HDFACE_CHECK_ENABLED && !defined(NDEBUG)
#define HDFACE_DCHECK_ENABLED 1
#else
#define HDFACE_DCHECK_ENABLED 0
#endif

#if HDFACE_CHECK_ENABLED
#define HD_CHECK(cond, msg)                                                 \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::hdface::util::contract_failure("HD_CHECK", __FILE__, __LINE__,      \
                                       #cond, msg);                         \
    }                                                                       \
  } while (false)
#define HD_UNREACHABLE(msg)                                                 \
  ::hdface::util::contract_failure("HD_UNREACHABLE", __FILE__, __LINE__,    \
                                   "unreachable code executed", msg)
#else
#define HD_CHECK(cond, msg)                                                 \
  do {                                                                      \
    if (false) {                                                            \
      (void)(cond);                                                         \
    }                                                                       \
  } while (false)
#define HD_UNREACHABLE(msg) __builtin_unreachable()
#endif

#if HDFACE_DCHECK_ENABLED
#define HD_DCHECK(cond, msg)                                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::hdface::util::contract_failure("HD_DCHECK", __FILE__, __LINE__,     \
                                       #cond, msg);                         \
    }                                                                       \
  } while (false)
#else
#define HD_DCHECK(cond, msg)                                                \
  do {                                                                      \
    if (false) {                                                            \
      (void)(cond);                                                         \
    }                                                                       \
  } while (false)
#endif
