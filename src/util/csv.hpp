#pragma once

// CSV writer for experiment outputs (plot-ready companions to the ASCII
// tables the benches print).

#include <fstream>
#include <string>
#include <vector>

namespace hdface::util {

class CsvWriter {
 public:
  // Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void add_row(const std::vector<std::string>& row);

 private:
  std::ofstream out_;
  std::size_t arity_;
};

// Quotes a field if it contains separators/quotes.
std::string csv_escape(const std::string& field);

}  // namespace hdface::util
