#include "util/thread_pool.hpp"

#include <algorithm>

namespace hdface::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  auto fut = wrapped.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.size();
  if (workers <= 1 || n < 2) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(workers * 4, n);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& f : futs) f.get();  // propagates exceptions
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hdface::util
