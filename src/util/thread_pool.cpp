#include "util/thread_pool.hpp"

#include <algorithm>

namespace hdface::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  auto fut = wrapped.get_future();
  {
    const MutexLock lock(mutex_);
    tasks_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  const MutexLock lock(mutex_);
  while (!tasks_.empty() || active_ != 0) idle_cv_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      const MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      const MutexLock lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

namespace {

// Wait for every future, then rethrow the first stored exception (in chunk
// order). Waiting for all of them before any rethrow keeps the caller's frame
// — which owns the loop body — alive until no task can still be running it.
void drain_and_rethrow(std::vector<std::future<void>>& futs) {
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.size();
  if (workers <= 1 || n < 2) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(workers * 4, n);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  drain_and_rethrow(futs);
}

void parallel_for_chunked(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t min_chunk,
                          const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (min_chunk == 0) min_chunk = 1;
  const std::size_t workers = pool.size();
  // Chunk geometry depends only on (n, workers, min_chunk): ~4 chunks per
  // worker for load balancing, but never smaller than min_chunk.
  std::size_t chunks = std::max<std::size_t>(1, std::min(workers * 4, n / min_chunk));
  const std::size_t chunk = (n + chunks - 1) / chunks;
  if (workers <= 1 || chunks <= 1) {
    body(begin, end);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futs.push_back(pool.submit([lo, hi, &body] { body(lo, hi); }));
  }
  drain_and_rethrow(futs);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hdface::util
