#pragma once

// The single allowlisted byte-I/O shim.
//
// Every raw byte-level (de)serialization in the repository flows through
// these helpers so that tools/hdlint can ban naked reinterpret_cast
// everywhere else: this file is the one entry in the linter's cast
// allowlist. The shim only punning-casts types that are statically proven
// trivially copyable, rejects short reads with std::runtime_error (an
// environmental error, thrown in every build mode — corruption is not a
// programming contract, see util/check.hpp), and gives loaders a
// header-validation helper so magic/version/shape are checked *before* any
// payload-sized allocation happens.

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace hdface::io {

// --- scalar / array writes --------------------------------------------------

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "write_pod: only trivially copyable types have a defined "
                "byte representation");
  out.write(reinterpret_cast<const char*>(&value),
            static_cast<std::streamsize>(sizeof(T)));
}

template <typename T>
void write_array(std::ostream& out, const T* data, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>,
                "write_array: only trivially copyable types have a defined "
                "byte representation");
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

// --- scalar / array reads (short reads rejected) ----------------------------

template <typename T>
T read_pod(std::istream& in, const char* what) {
  static_assert(std::is_trivially_copyable_v<T>,
                "read_pod: only trivially copyable types can be rebuilt "
                "from raw bytes");
  T value{};
  in.read(reinterpret_cast<char*>(&value),
          static_cast<std::streamsize>(sizeof(T)));
  if (!in || in.gcount() != static_cast<std::streamsize>(sizeof(T))) {
    throw std::runtime_error(std::string("serialize: truncated ") + what);
  }
  return value;
}

template <typename T>
void read_array(std::istream& in, T* data, std::size_t count,
                const char* what) {
  static_assert(std::is_trivially_copyable_v<T>,
                "read_array: only trivially copyable types can be rebuilt "
                "from raw bytes");
  const auto bytes = static_cast<std::streamsize>(count * sizeof(T));
  in.read(reinterpret_cast<char*>(data), bytes);
  if (!in || in.gcount() != bytes) {
    throw std::runtime_error(std::string("serialize: truncated ") + what);
  }
}

// --- header validation ------------------------------------------------------

// Reads and validates a `magic, version` header. Loaders call this before
// reading any payload size, and bound-check sizes (see read_checked_size)
// before allocating, so a corrupted or adversarial file can never drive an
// implausible allocation.
inline void expect_header(std::istream& in, std::uint32_t magic,
                          std::uint32_t version, const char* what) {
  if (read_pod<std::uint32_t>(in, what) != magic) {
    throw std::runtime_error(std::string("serialize: bad magic for ") + what);
  }
  if (read_pod<std::uint32_t>(in, what) != version) {
    throw std::runtime_error(
        std::string("serialize: unsupported version for ") + what);
  }
}

// Reads a u64 element count and rejects anything outside (0, max_plausible]
// before the caller allocates storage for it.
inline std::uint64_t read_checked_size(std::istream& in,
                                       std::uint64_t max_plausible,
                                       const char* what) {
  const auto n = read_pod<std::uint64_t>(in, what);
  if (n == 0 || n > max_plausible) {
    throw std::runtime_error(std::string("serialize: implausible size for ") +
                             what);
  }
  return n;
}

}  // namespace hdface::io
