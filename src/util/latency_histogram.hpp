#pragma once

// HDR-style streaming latency histogram (the Nighthawk typed-statistics
// idiom): log-bucketed counts with a fixed number of significant bits, so
// recording is O(1), memory is a small fixed table, and two histograms merge
// by adding bucket counts.
//
// Contract (what the serving layer and its tests rely on):
//   * record() never allocates after construction and never loses a sample
//     (the top bucket absorbs any value up to 2^64-1 ns ≈ 584 years).
//   * Values below kSubBucketCount are exact; larger values land in a bucket
//     whose width is at most value / kSubBucketHalf — a relative quantile
//     error bound of 1/kSubBucketHalf (< 1.6% at the default 7 sub-bucket
//     bits).
//   * merge() is exact: bucket counts, count, sum, min and max add/compose
//     associatively and commutatively, so quantiles computed from shards
//     merged in ANY order and ANY partition are bit-identical to the
//     histogram that saw every sample directly. Per-worker shards + one
//     merge at stats() time need no locks on the hot path.
//   * quantile(q) is deterministic: the upper edge of the first bucket whose
//     cumulative count reaches ceil(q * count), clamped to the observed max.
//
// Units are whatever the caller records — the serving layer records
// nanoseconds.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hdface::util {

class LatencyHistogram {
 public:
  // Sub-bucket resolution: values are resolved to this many significant
  // bits. 7 → 128 linear buckets per octave-half, ≤1/64 relative error.
  static constexpr std::size_t kSubBucketBits = 7;
  static constexpr std::uint64_t kSubBucketCount = std::uint64_t{1}
                                                   << kSubBucketBits;
  static constexpr std::uint64_t kSubBucketHalf = kSubBucketCount / 2;

  LatencyHistogram();

  void record(std::uint64_t value);
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  // 0 when empty.
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // q in [0, 1]. Returns 0 on an empty histogram. q = 0 returns min().
  std::uint64_t quantile(double q) const;

  // Nonzero buckets for export: (inclusive upper edge, count), ascending.
  struct Bucket {
    std::uint64_t upper = 0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> nonzero_buckets() const;

  // Bucket math, exposed for tests.
  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_upper(std::size_t index);
  static std::size_t bucket_count();

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace hdface::util
