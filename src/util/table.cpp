#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hdface::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " |";
    }
    os << "\n";
  };
  auto emit_sep = [&] {
    os << "+";
    for (auto w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  emit_sep();
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace hdface::util
