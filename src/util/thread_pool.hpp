#pragma once

// Minimal fixed-size thread pool with a parallel_for helper.
//
// HDFace pipelines are embarrassingly parallel across images; the pool lets
// dataset generation, feature extraction and evaluation scale with cores while
// degrading gracefully to serial execution on single-core machines.
//
// The queue state (tasks_, active_, stop_) is guarded by an annotated
// util::Mutex capability; -Wthread-safety proves every access happens under
// the lock and the condition-variable waits hold it.

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace hdface::util {

class ThreadPool {
 public:
  // threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task; the returned future reports completion / exceptions.
  std::future<void> submit(std::function<void()> task) HD_EXCLUDES(mutex_);

  // Block until every task submitted so far has completed.
  void wait_idle() HD_EXCLUDES(mutex_);

 private:
  void worker_loop() HD_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  CondVar idle_cv_;
  std::queue<std::packaged_task<void()>> tasks_ HD_GUARDED_BY(mutex_);
  std::size_t active_ HD_GUARDED_BY(mutex_) = 0;
  bool stop_ HD_GUARDED_BY(mutex_) = false;
};

// Run body(i) for i in [begin, end). Serial when the pool has one worker or
// the range is tiny; otherwise splits the range into contiguous chunks.
// body must be safe to call concurrently for distinct i. If any invocation
// throws, every spawned chunk still runs to completion (or observes its own
// exception) before the first exception rethrows on the caller — the caller's
// frame, which owns `body`, never unwinds under a still-running task.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

// Chunked variant: splits [begin, end) into contiguous chunks of at least
// `min_chunk` items and calls body(lo, hi) once per chunk. This is the shape
// batch engines want — a worker can set up per-chunk scratch state once and
// sweep a contiguous range. Chunk boundaries are a pure function of
// (range, pool size, min_chunk), never of scheduling, so deterministic
// algorithms can rely on them. Exceptions propagate as in parallel_for:
// all chunks finish, then the first chunk's exception (in chunk order)
// rethrows.
void parallel_for_chunked(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t min_chunk,
                          const std::function<void(std::size_t, std::size_t)>& body);

// Shared process-wide pool (constructed on first use).
ThreadPool& global_pool();

}  // namespace hdface::util
