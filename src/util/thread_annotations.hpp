#pragma once

// Clang thread-safety-analysis attribute shim ("capability annotations").
//
// The repository's concurrency contracts — which fields a mutex guards,
// which methods must (or must not) be called with a lock held — used to
// live in comments. These macros turn them into compiler-checked facts:
// under Clang, `-Wthread-safety -Wthread-safety-beta` (the `thread-safety`
// CMake preset / CI leg) proves lock discipline on *every* path at compile
// time, complementing TSan, which only sees the interleavings a test
// happens to execute. See Hutchins, Ballman, Sutherland, "C/C++ Thread
// Safety Analysis" (CGO 2014) and the Clang ThreadSafetyAnalysis docs.
//
// On GCC and MSVC every macro expands to nothing, so the annotations cost
// zero in the default build and the tree stays compiler-portable.
//
// Usage lives in src/util/mutex.hpp: annotate the *capability types*
// (util::Mutex, util::SharedMutex) once, then declare data as
// `HD_GUARDED_BY(mutex_)` and helpers as `HD_REQUIRES(mutex_)`. Code
// outside util/ should never name a raw std::mutex (hdlint rule
// `raw-mutex-type`) or call .lock()/.unlock() manually (rule
// `manual-lock-unlock`); the annotated RAII guards are the only doorway.

#if defined(__clang__) && (!defined(SWIG))
#define HD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HD_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// Declares a type to be a capability (a lock). The string names the
// capability kind in diagnostics ("mutex", "shared_mutex").
#define HD_CAPABILITY(x) HD_THREAD_ANNOTATION(capability(x))

// Declares an RAII type whose constructor acquires and destructor releases
// a capability (util::MutexLock and friends).
#define HD_SCOPED_CAPABILITY HD_THREAD_ANNOTATION(scoped_lockable)

// Data members: readable/writable only while holding the named capability.
#define HD_GUARDED_BY(x) HD_THREAD_ANNOTATION(guarded_by(x))
// Pointer members: the *pointee* is guarded by the named capability.
#define HD_PT_GUARDED_BY(x) HD_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: the caller must hold the capability (exclusively / shared).
#define HD_REQUIRES(...) \
  HD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HD_REQUIRES_SHARED(...) \
  HD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Functions: acquire/release the capability (must not / must be held on
// entry). Used on the capability wrappers and the RAII guard ctors/dtors.
#define HD_ACQUIRE(...) \
  HD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HD_ACQUIRE_SHARED(...) \
  HD_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define HD_RELEASE(...) \
  HD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HD_RELEASE_SHARED(...) \
  HD_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// Functions: acquire only when returning the given value.
#define HD_TRY_ACQUIRE(...) \
  HD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Functions: the caller must NOT hold the capability (deadlock guard for
// public entry points that take the lock themselves).
#define HD_EXCLUDES(...) HD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Asserts (at runtime, to the analysis) that the capability is held —
// for code reachable only under a lock the analysis cannot see.
#define HD_ASSERT_CAPABILITY(x) HD_THREAD_ANNOTATION(assert_capability(x))

// Functions returning a reference to a capability (lock accessors).
#define HD_RETURN_CAPABILITY(x) HD_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables analysis for one function. Every use carries a
// justification comment, mirroring the hdlint allow() convention.
#define HD_NO_THREAD_SAFETY_ANALYSIS \
  HD_THREAD_ANNOTATION(no_thread_safety_analysis)
