#include "util/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace hdface::util {

namespace {

// Highest exponent shift a 64-bit value can need: bit_width 64 → shift 57
// at 7 sub-bucket bits.
constexpr std::size_t kMaxShift = 64 - LatencyHistogram::kSubBucketBits;

}  // namespace

std::size_t LatencyHistogram::bucket_count() {
  return static_cast<std::size_t>(kSubBucketCount) +
         kMaxShift * static_cast<std::size_t>(kSubBucketHalf);
}

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubBucketCount) return static_cast<std::size_t>(value);
  // value has bit_width > kSubBucketBits; keep the top kSubBucketBits bits.
  const std::size_t shift =
      static_cast<std::size_t>(std::bit_width(value)) - kSubBucketBits;
  const std::uint64_t mantissa = value >> shift;  // in [kSubBucketHalf*2/2, ...)
  return static_cast<std::size_t>(kSubBucketCount) +
         (shift - 1) * static_cast<std::size_t>(kSubBucketHalf) +
         static_cast<std::size_t>(mantissa - kSubBucketHalf);
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t index) {
  if (index < kSubBucketCount) return index;  // exact range: upper == value
  const std::size_t offset = index - static_cast<std::size_t>(kSubBucketCount);
  const std::size_t shift = offset / static_cast<std::size_t>(kSubBucketHalf) + 1;
  const std::uint64_t mantissa =
      kSubBucketHalf + (offset % static_cast<std::size_t>(kSubBucketHalf));
  return ((mantissa + 1) << shift) - 1;
}

LatencyHistogram::LatencyHistogram() : counts_(bucket_count(), 0) {}

void LatencyHistogram::record(std::uint64_t value) {
  counts_[bucket_index(value)] += 1;
  count_ += 1;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  HD_CHECK(counts_.size() == other.counts_.size(),
           "LatencyHistogram: merging incompatible layouts");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank: the ceil keeps p50 of {a, b} at a (the conventional lower
  // median) and p100 at the max. Rank arithmetic is integer, so the result
  // depends only on bucket counts — merge-order invariant by construction.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  // Rank 1 addresses the smallest sample, which is tracked exactly; the
  // bucket walk would report its bucket's upper edge instead.
  if (rank == 1) return min_;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      // The bucket's upper edge can exceed the largest sample it holds;
      // clamping to the exact observed extremes keeps q=1 equal to max().
      return std::clamp(bucket_upper(i), min_, max_);
    }
  }
  return max_;  // unreachable: cumulative reaches count_ >= rank
}

std::vector<LatencyHistogram::Bucket> LatencyHistogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) out.push_back({bucket_upper(i), counts_[i]});
  }
  return out;
}

}  // namespace hdface::util
