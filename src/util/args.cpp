#include "util/args.hpp"

#include <stdexcept>

namespace hdface::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      positional_.push_back(std::move(a));
      continue;
    }
    a = a.substr(2);
    const auto eq = a.find('=');
    if (eq != std::string::npos) {
      kv_[a.substr(0, eq)] = a.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[a] = argv[++i];
    } else {
      kv_[a] = "true";  // bare flag
    }
  }
}

bool Args::has(const std::string& key) const { return kv_.count(key) != 0; }

std::string Args::get(const std::string& key, const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::stoll(it->second);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::stod(it->second);
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace hdface::util
