#pragma once

// Bounded multi-producer multi-consumer queue — the admission-control
// primitive of the serving layer (serve/server.hpp).
//
// Design points:
//   * try_push never blocks: a full (or closed) queue rejects immediately.
//     Admission control wants reject-with-backpressure, not producer
//     convoys — the caller turns the false into a typed kQueueFull error.
//   * pop blocks until an item, close(), or both; after close() consumers
//     drain the remaining items and then see nullopt, so every admitted
//     item is consumed exactly once (the queue-accounting conservation the
//     serving tests gate on).
//   * try_pop never blocks (manual stepping in deterministic admission
//     tests and single-threaded drains).
//   * T needs move construction only (jobs carry std::promise).
//
// Plain mutex + condition variable: request service times are milliseconds,
// so queue synchronization is noise; correctness and fairness beat lock-free
// cleverness here. The mutex is an annotated util::Mutex capability, so the
// lock discipline below — every touch of items_/closed_ under mutex_,
// notifies outside it — is compiler-checked under -Wthread-safety.

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace hdface::util {

template <typename T>
class BoundedMpmcQueue {
 public:
  // capacity 0 is clamped to 1: a zero-capacity queue would reject every
  // request, which is never what a config meant.
  explicit BoundedMpmcQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  // Non-blocking admission: false when the queue is at capacity or closed
  // (the value is returned to the caller untouched in spirit — it is simply
  // not enqueued; move it again on retry).
  bool try_push(T& value) HD_EXCLUDES(mutex_) {
    {
      const MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocking consumer: nullopt once the queue is closed and drained.
  std::optional<T> pop() HD_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) not_empty_.wait(mutex_);
    return pop_locked();
  }

  // Non-blocking consumer: nullopt when currently empty.
  std::optional<T> try_pop() HD_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return pop_locked();
  }

  // Stop admitting; wake every blocked consumer. Idempotent.
  void close() HD_EXCLUDES(mutex_) {
    {
      const MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const HD_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const HD_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::optional<T> pop_locked() HD_REQUIRES(mutex_) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    return value;
  }

  mutable Mutex mutex_;
  CondVar not_empty_;
  std::deque<T> items_ HD_GUARDED_BY(mutex_);
  const std::size_t capacity_;  // immutable after construction: unguarded
  bool closed_ HD_GUARDED_BY(mutex_) = false;
};

}  // namespace hdface::util
