#pragma once

// Bounded multi-producer multi-consumer queue — the admission-control
// primitive of the serving layer (serve/server.hpp).
//
// Design points:
//   * try_push never blocks: a full (or closed) queue rejects immediately.
//     Admission control wants reject-with-backpressure, not producer
//     convoys — the caller turns the false into a typed kQueueFull error.
//   * pop blocks until an item, close(), or both; after close() consumers
//     drain the remaining items and then see nullopt, so every admitted
//     item is consumed exactly once (the queue-accounting conservation the
//     serving tests gate on).
//   * try_pop never blocks (manual stepping in deterministic admission
//     tests and single-threaded drains).
//   * T needs move construction only (jobs carry std::promise).
//
// Plain mutex + condition variable: request service times are milliseconds,
// so queue synchronization is noise; correctness and fairness beat lock-free
// cleverness here.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace hdface::util {

template <typename T>
class BoundedMpmcQueue {
 public:
  // capacity 0 is clamped to 1: a zero-capacity queue would reject every
  // request, which is never what a config meant.
  explicit BoundedMpmcQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  // Non-blocking admission: false when the queue is at capacity or closed
  // (the value is returned to the caller untouched in spirit — it is simply
  // not enqueued; move it again on retry).
  bool try_push(T& value) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocking consumer: nullopt once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return pop_locked();
  }

  // Non-blocking consumer: nullopt when currently empty.
  std::optional<T> try_pop() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return pop_locked();
  }

  // Stop admitting; wake every blocked consumer. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::optional<T> pop_locked() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    return value;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace hdface::util
