#pragma once

// Fixed-width ASCII table printer used by the benchmark harness to emit the
// paper's tables/figure series in a readable, diffable form.

#include <iosfwd>
#include <string>
#include <vector>

namespace hdface::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string percent(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hdface::util
