#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace hdface::util {

void contract_failure(const char* kind, const char* file, int line,
                      const char* expr, const char* msg) noexcept {
  std::fprintf(stderr, "%s failed: %s\n  at %s:%d\n  %s\n", kind, expr, file,
               line, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace hdface::util
