#pragma once

// Wall-clock stopwatch for coarse pipeline timing (benches report model-based
// cycle counts for the paper's platforms; the stopwatch covers host timing).
//
// hdlint: allow-file(wall-clock) — measurement only: elapsed time is reported
// to the operator and never feeds encoding, detection, or fault schedules.

#include <chrono>

namespace hdface::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hdface::util
