#pragma once

// Structured FPGA datapath model — the derivation layer behind the Kintex-7
// platform constants (the offline substitution for the paper's Verilog +
// Vivado implementation, see DESIGN.md §3).
//
// The model allocates the device's LUT/DSP budget to a hypervector datapath
// (bitwise lanes + popcount compressor trees + LFSR mask banks) and a float
// datapath (DSP MAC array + a few CORDIC/divider cores), derives each
// operation class's sustained throughput, and checks the allocation against
// the device budget. kintex7_fpga() in platform.cpp uses throughput numbers
// consistent with this derivation; the unit tests tie them together.

#include <cstdint>
#include <string>

#include "core/op_counter.hpp"

namespace hdface::perf {

struct FpgaDevice {
  std::string name = "Kintex-7 KC705 (XC7K325T)";
  std::uint64_t luts = 203'800;
  std::uint64_t dsp_slices = 840;
  double clock_hz = 2.0e8;
};

struct DatapathPlan {
  // Hypervector datapath.
  std::uint64_t hv_lane_bits = 16'384;  // bitwise lane width per cycle
  // Popcount tree width (bits reduced per cycle).
  std::uint64_t popcount_bits = 8'192;
  // LFSR bank width (random bits per cycle).
  std::uint64_t lfsr_bits = 16'384;
  // Float datapath.
  std::uint64_t mac_units = 256;   // DSP-based fused MACs per cycle
  std::uint64_t cordic_cores = 2;  // shared sqrt/div/atan cores
  std::uint64_t cordic_latency = 16;  // cycles per transcendental (II > 1)
};

struct ResourceUsage {
  std::uint64_t luts = 0;
  std::uint64_t dsps = 0;
  double lut_utilization = 0.0;
  double dsp_utilization = 0.0;
  bool fits = false;
};

class FpgaDatapath {
 public:
  FpgaDatapath(const FpgaDevice& device, const DatapathPlan& plan);

  const FpgaDevice& device() const { return device_; }
  const DatapathPlan& plan() const { return plan_; }

  // LUT/DSP cost of the plan and whether it fits the device.
  ResourceUsage resource_usage() const;

  // Sustained throughput (operations per cycle) for an op class under the
  // plan. Word-granular classes count 64-bit words.
  double ops_per_cycle(core::OpKind kind) const;

  // Cycle estimate for a counted workload (sequential-phase model, matching
  // PlatformModel's convention).
  double estimate_cycles(const core::OpCounter& counter) const;
  double estimate_seconds(const core::OpCounter& counter) const;

 private:
  FpgaDevice device_;
  DatapathPlan plan_;
};

// The datapath plan behind the published kintex7_fpga() constants.
const FpgaDatapath& kintex7_reference_datapath();

}  // namespace hdface::perf
