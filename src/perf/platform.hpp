#pragma once

// Hardware cost models for the paper's two platforms (§6.1): an ARM Cortex
// A53 embedded CPU (Raspberry Pi 3B+) and a Kintex-7 FPGA (KC705).
//
// The authors measured wall-clock and power on physical hardware; offline we
// substitute an analytical model driven by *exact* operation counts from the
// instrumented pipelines (core::OpCounter). Each platform specifies, per
// operation class, a sustained throughput (operations per cycle, reflecting
// SIMD width / LUT parallelism / DSP count) and an energy per operation.
//
//   time   = Σ_k count_k / throughput_k / clock
//   energy = Σ_k count_k · energy_k
//
// The sequential-sum timing model is conservative (no overlap between op
// classes); since Fig 7 reports HDFace/DNN *ratios*, shared modeling slack
// largely cancels. Constants are order-of-magnitude figures from embedded
// CPU and 28 nm FPGA literature (Horowitz, ISSCC'14 energy tables; Xilinx
// KC705 datasheets) and are all in one place below for scrutiny.

#include <array>
#include <string>

#include "core/op_counter.hpp"

namespace hdface::perf {

struct CostEstimate {
  double cycles = 0.0;
  double seconds = 0.0;
  double micro_joules = 0.0;
};

class PlatformModel {
 public:
  struct OpCost {
    double ops_per_cycle = 1.0;  // sustained throughput
    double energy_pj = 1.0;      // per operation
  };

  PlatformModel(std::string name, double clock_hz,
                std::array<OpCost, core::kOpKindCount> costs);

  const std::string& name() const { return name_; }
  double clock_hz() const { return clock_hz_; }
  const OpCost& cost(core::OpKind kind) const {
    return costs_[static_cast<std::size_t>(kind)];
  }

  CostEstimate estimate(const core::OpCounter& counter) const;

 private:
  std::string name_;
  double clock_hz_;
  std::array<OpCost, core::kOpKindCount> costs_;
};

// Raspberry Pi 3B+ class in-order ARM CPU (NEON 128-bit SIMD, 1.4 GHz).
const PlatformModel& arm_a53();

// Kintex-7 KC705 class FPGA (200 MHz fabric, ~200k LUTs, 840 DSP48 slices).
// Bitwise hypervector lanes map onto LUTs (a 4096-bit datapath ≈ 64 words
// per cycle); float pipelines contend for DSPs and CORDIC blocks.
const PlatformModel& kintex7_fpga();

}  // namespace hdface::perf
