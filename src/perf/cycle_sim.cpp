#include "perf/cycle_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace hdface::perf {

PipelineSimulator::PipelineSimulator(std::vector<PipelineStage> stages)
    : stages_(std::move(stages)) {
  if (stages_.empty()) throw std::invalid_argument("PipelineSimulator: no stages");
  for (const auto& s : stages_) {
    if (s.latency == 0 || s.ii == 0 || s.items == 0) {
      throw std::invalid_argument("PipelineSimulator: stage " + s.name +
                                  " has zero latency/ii/items");
    }
  }
  for (std::size_t i = 1; i < stages_.size(); ++i) {
    const auto prev = stages_[i - 1].items;
    const auto cur = stages_[i].items;
    if (cur > prev || prev % cur != 0) {
      throw std::invalid_argument(
          "PipelineSimulator: stage item counts must decimate integrally");
    }
  }
}

CycleReport PipelineSimulator::run(double clock_hz) const {
  const std::size_t n = stages_.size();
  // Per-stage state: items accepted, cycle at which the stage can next
  // accept, and the completion cycle of each handed-off item (the downstream
  // stage consumes groups of prev_items/cur_items completions).
  struct State {
    std::uint64_t accepted = 0;
    std::uint64_t next_free = 0;   // earliest cycle the stage may accept again
    std::uint64_t busy = 0;
    std::vector<std::uint64_t> completions;
  };
  std::vector<State> st(n);
  for (std::size_t i = 0; i < n; ++i) {
    st[i].completions.reserve(stages_[i].items);
  }

  // Event-driven over item acceptances (equivalent to cycle stepping for a
  // linear chain, but runs in O(total items)).
  // Stage 0 inputs are available from cycle 0.
  for (std::uint64_t k = 0; k < stages_[0].items; ++k) {
    const std::uint64_t start = std::max(st[0].next_free,
                                         static_cast<std::uint64_t>(0));
    st[0].next_free = start + stages_[0].ii;
    st[0].busy += stages_[0].ii;
    st[0].completions.push_back(start + stages_[0].latency);
    st[0].accepted++;
  }
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint64_t group =
        stages_[i - 1].items / stages_[i].items;  // completions per input item
    for (std::uint64_t k = 0; k < stages_[i].items; ++k) {
      // Ready when the whole group of upstream completions has arrived.
      const std::uint64_t ready = st[i - 1].completions[(k + 1) * group - 1];
      const std::uint64_t start = std::max(st[i].next_free, ready);
      st[i].next_free = start + stages_[i].ii;
      st[i].busy += stages_[i].ii;
      st[i].completions.push_back(start + stages_[i].latency);
      st[i].accepted++;
    }
  }

  CycleReport report;
  report.total_cycles = st.back().completions.back();
  report.seconds = static_cast<double>(report.total_cycles) / clock_hz;
  double worst = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    StageReport sr;
    sr.name = stages_[i].name;
    sr.busy_cycles = st[i].busy;
    sr.items = st[i].accepted;
    sr.utilization = static_cast<double>(st[i].busy) /
                     static_cast<double>(report.total_cycles);
    if (sr.utilization > worst) {
      worst = sr.utilization;
      report.bottleneck = sr.name;
    }
    report.stages.push_back(std::move(sr));
  }
  return report;
}

std::uint64_t PipelineSimulator::analytic_bound() const {
  std::uint64_t fill = 0;
  std::uint64_t steady = 0;
  for (const auto& s : stages_) {
    fill += s.latency;
    steady = std::max(steady, (s.items - 1) * s.ii);
  }
  return fill + steady;
}

PipelineSimulator make_classification_pipeline(const FpgaDatapath& datapath,
                                               std::size_t dim,
                                               std::size_t window,
                                               std::size_t cell_size,
                                               std::size_t bins,
                                               std::size_t classes) {
  if (window % cell_size != 0) {
    throw std::invalid_argument("make_classification_pipeline: cells must tile");
  }
  const std::uint64_t pixels = window * window;
  const std::uint64_t cells = (window / cell_size) * (window / cell_size);
  const std::uint64_t words = (dim + 63) / 64;
  const auto& plan = datapath.plan();
  const std::uint64_t lane_words = std::max<std::uint64_t>(1, plan.hv_lane_bits / 64);
  // Cycles to stream one hypervector through the bitwise lanes.
  const auto hv_pass = [&](std::uint64_t passes) {
    return std::max<std::uint64_t>(1, passes * words / lane_words);
  };
  const int sqrt_iters = 7;  // ≈ log2(√D) for D = 4k..10k

  std::vector<PipelineStage> stages;
  // Item memory: one hypervector read per pixel (plus neighbors streamed by
  // the same port group; modeled as 4 passes).
  stages.push_back({"item memory", 2, hv_pass(4), pixels});
  // Gradient: two weighted averages (mask fetch + select), 2 passes each.
  stages.push_back({"gradient", 3, hv_pass(4), pixels});
  // Magnitude: squares + sqrt binary search (compare per iteration).
  stages.push_back({"magnitude", 4,
                    hv_pass(2 + 3 * static_cast<std::uint64_t>(sqrt_iters)),
                    pixels});
  // Orientation bin: sign decodes + boundary compares.
  stages.push_back({"bin select", 3, hv_pass(2 + bins / 4), pixels});
  // Cell accumulation: one running-average pass per pixel.
  stages.push_back({"cell average", 2, hv_pass(2), pixels});
  // Bundle: one bound add per (cell,bin) slot.
  stages.push_back({"bundle", 2, hv_pass(2 * bins), cells});
  // Similarity search: one Hamming pass per class over the final vector.
  stages.push_back({"similarity", 2, hv_pass(classes), 1});
  return PipelineSimulator(std::move(stages));
}

}  // namespace hdface::perf
