#pragma once

// Cycle-level pipeline simulator for the FPGA classification datapath.
//
// The paper's evaluation uses "a cycle-accurate simulator ... that emulates
// HDFace functionality during classification" (§6.1). This is our equivalent:
// a discrete-time simulation of the window-classification pipeline — pixels
// stream through item-memory lookup, gradient selection, the magnitude
// square/sqrt chain and orientation binning; cells drain into the bundler and
// the final similarity search. Each stage has a latency (pipeline depth) and
// an initiation interval (cycles between accepted items) derived from the
// datapath plan in fpga_datapath.hpp.
//
// The simulator advances cycle by cycle with explicit stage occupancy — no
// closed-form shortcuts — and reports total cycles, per-stage busy counts and
// the bottleneck stage. A unit test cross-checks the simulation against the
// analytic fill + (n−1)·max(II) bound.

#include <cstdint>
#include <string>
#include <vector>

#include "perf/fpga_datapath.hpp"

namespace hdface::perf {

struct PipelineStage {
  std::string name;
  std::uint64_t latency = 1;  // cycles from accept to hand-off
  std::uint64_t ii = 1;       // min cycles between accepted items
  std::uint64_t items = 0;    // how many items this stage must process
};

struct StageReport {
  std::string name;
  std::uint64_t busy_cycles = 0;
  std::uint64_t items = 0;
  double utilization = 0.0;  // busy / total
};

struct CycleReport {
  std::uint64_t total_cycles = 0;
  double seconds = 0.0;
  std::string bottleneck;
  std::vector<StageReport> stages;
};

class PipelineSimulator {
 public:
  // Stages form a linear chain; stage i+1 consumes stage i's output items.
  // Every stage must declare the same item count as its predecessor or an
  // integer decimation of it (e.g. pixels → cells).
  explicit PipelineSimulator(std::vector<PipelineStage> stages);

  // Discrete simulation at the given clock; returns the full report.
  CycleReport run(double clock_hz) const;

  // Analytic lower bound: Σ latencies + (max_items − 1) · max(II).
  std::uint64_t analytic_bound() const;

 private:
  std::vector<PipelineStage> stages_;
};

// Builds the classification pipeline for one window under a datapath plan:
// dim-dependent IIs (wider lanes accept an item sooner), HOG geometry from
// the window/cell sizes.
PipelineSimulator make_classification_pipeline(const FpgaDatapath& datapath,
                                               std::size_t dim,
                                               std::size_t window,
                                               std::size_t cell_size,
                                               std::size_t bins,
                                               std::size_t classes);

}  // namespace hdface::perf
