#include "perf/fpga_datapath.hpp"

#include <stdexcept>

namespace hdface::perf {

FpgaDatapath::FpgaDatapath(const FpgaDevice& device, const DatapathPlan& plan)
    : device_(device), plan_(plan) {
  if (plan.hv_lane_bits == 0 || plan.mac_units == 0) {
    throw std::invalid_argument("FpgaDatapath: empty datapath");
  }
}

ResourceUsage FpgaDatapath::resource_usage() const {
  ResourceUsage u;
  // LUT costs (6-input LUTs, 28 nm generation rules of thumb):
  //  * 1 LUT per bitwise lane bit (a LUT6 computes any 2-3 input bit op),
  //  * popcount compressor trees: ~1.25 LUTs per reduced bit,
  //  * LFSR banks: ~0.5 LUT per random bit per cycle,
  //  * MAC array control/routing: ~60 LUTs per DSP,
  //  * CORDIC cores: ~900 LUTs each.
  u.luts = plan_.hv_lane_bits +
           plan_.popcount_bits + plan_.popcount_bits / 4 +
           plan_.lfsr_bits / 2 +
           60 * plan_.mac_units +
           900 * plan_.cordic_cores;
  u.dsps = plan_.mac_units;  // one DSP48 per fused MAC
  u.lut_utilization = static_cast<double>(u.luts) / static_cast<double>(device_.luts);
  u.dsp_utilization = static_cast<double>(u.dsps) / static_cast<double>(device_.dsp_slices);
  u.fits = u.luts <= device_.luts && u.dsps <= device_.dsp_slices;
  return u;
}

double FpgaDatapath::ops_per_cycle(core::OpKind kind) const {
  using core::OpKind;
  switch (kind) {
    case OpKind::kWordLogic:
      return static_cast<double>(plan_.hv_lane_bits) / 64.0;
    case OpKind::kPopcount:
      return static_cast<double>(plan_.popcount_bits) / 64.0;
    case OpKind::kRngWord:
      return static_cast<double>(plan_.lfsr_bits) / 64.0;
    case OpKind::kIntAdd:
      // Integer accumulators ride the popcount adder fabric.
      return static_cast<double>(plan_.popcount_bits) / 128.0;
    case OpKind::kFloatAdd:
    case OpKind::kFloatMul:
      return static_cast<double>(plan_.mac_units);
    case OpKind::kFloatDiv:
    case OpKind::kFloatSqrt:
      return static_cast<double>(plan_.cordic_cores * 2) /
             static_cast<double>(plan_.cordic_latency / 8);
    case OpKind::kFloatTrig:
      return static_cast<double>(plan_.cordic_cores * 2) /
             static_cast<double>(plan_.cordic_latency / 8) / 2.0;
    case OpKind::kFloatCmp:
      return static_cast<double>(plan_.hv_lane_bits) / 256.0;
    case OpKind::kCount:
      break;
  }
  throw std::invalid_argument("FpgaDatapath: bad op kind");
}

double FpgaDatapath::estimate_cycles(const core::OpCounter& counter) const {
  double cycles = 0.0;
  for (std::size_t k = 0; k < core::kOpKindCount; ++k) {
    const double n = static_cast<double>(counter.counts[k]);
    if (n > 0.0) cycles += n / ops_per_cycle(static_cast<core::OpKind>(k));
  }
  return cycles;
}

double FpgaDatapath::estimate_seconds(const core::OpCounter& counter) const {
  return estimate_cycles(counter) / device_.clock_hz;
}

const FpgaDatapath& kintex7_reference_datapath() {
  static const FpgaDatapath datapath{FpgaDevice{}, DatapathPlan{}};
  return datapath;
}

}  // namespace hdface::perf
