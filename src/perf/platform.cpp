#include "perf/platform.hpp"

namespace hdface::perf {

PlatformModel::PlatformModel(std::string name, double clock_hz,
                             std::array<OpCost, core::kOpKindCount> costs)
    : name_(std::move(name)), clock_hz_(clock_hz), costs_(costs) {}

CostEstimate PlatformModel::estimate(const core::OpCounter& counter) const {
  CostEstimate e;
  for (std::size_t k = 0; k < core::kOpKindCount; ++k) {
    const double n = static_cast<double>(counter.counts[k]);
    e.cycles += n / costs_[k].ops_per_cycle;
    e.micro_joules += n * costs_[k].energy_pj * 1e-6;
  }
  e.seconds = e.cycles / clock_hz_;
  return e;
}

namespace {

using core::OpKind;

std::array<PlatformModel::OpCost, core::kOpKindCount> make_costs(
    std::initializer_list<std::pair<OpKind, PlatformModel::OpCost>> entries) {
  std::array<PlatformModel::OpCost, core::kOpKindCount> costs{};
  for (const auto& [kind, cost] : entries) {
    costs[static_cast<std::size_t>(kind)] = cost;
  }
  return costs;
}

}  // namespace

const PlatformModel& arm_a53() {
  // A53 @ 1.4 GHz, dual-issue in-order, 128-bit NEON.
  //  - 64-bit logic ops vectorize 2-wide → 2/cycle; ~6 pJ each (embedded
  //    core, including pipeline/register overheads).
  //  - popcount: NEON cnt + pairwise adds ≈ 1 word/cycle.
  //  - RNG words: xoshiro256** scalar chain ≈ 1 word / 4 cycles.
  //  - f32 mul/add: NEON 4-wide but memory-bound GEMMs sustain ≈ 2/cycle.
  //  - div/sqrt not pipelined; atan2/cos ≈ 40-cycle libm sequences.
  static const PlatformModel model(
      "ARM Cortex A53 (CPU)", 1.4e9,
      make_costs({
          {OpKind::kWordLogic, {2.0, 6.0}},
          {OpKind::kPopcount, {1.0, 8.0}},
          {OpKind::kRngWord, {0.25, 30.0}},
          {OpKind::kIntAdd, {2.0, 5.0}},
          {OpKind::kFloatAdd, {2.0, 9.0}},
          {OpKind::kFloatMul, {2.0, 12.0}},
          {OpKind::kFloatDiv, {0.1, 80.0}},
          {OpKind::kFloatSqrt, {0.08, 90.0}},
          {OpKind::kFloatTrig, {0.025, 250.0}},
          {OpKind::kFloatCmp, {2.0, 5.0}},
      }));
  return model;
}

const PlatformModel& kintex7_fpga() {
  // Kintex-7 @ 200 MHz.
  //  - Bitwise hypervector lanes on LUTs: a 16k-bit datapath (≈16k of 200k
  //    LUTs) processes 256 words/cycle at ~1 pJ per 64-bit op (28 nm LUT
  //    dynamic energy).
  //  - Popcount: pipelined compressor trees, 128 words/cycle.
  //  - RNG: parallel LFSR banks alongside the datapath, 256 words/cycle.
  //  - Float add/mul contend for DSP48 slices: ~256 sustained MACs/cycle
  //    (840 DSPs minus control/routing), ~20 pJ per op (DSP + routing).
  //  - div/sqrt/atan2: deeply pipelined CORDIC/divider cores; few instances
  //    fit beside the MAC array → low sustained throughput, high energy.
  static const PlatformModel model(
      "Kintex-7 (FPGA)", 2.0e8,
      make_costs({
          {OpKind::kWordLogic, {256.0, 1.0}},
          {OpKind::kPopcount, {128.0, 2.0}},
          {OpKind::kRngWord, {256.0, 1.5}},
          {OpKind::kIntAdd, {64.0, 2.0}},
          {OpKind::kFloatAdd, {256.0, 15.0}},
          {OpKind::kFloatMul, {256.0, 20.0}},
          {OpKind::kFloatDiv, {4.0, 120.0}},
          {OpKind::kFloatSqrt, {4.0, 120.0}},
          {OpKind::kFloatTrig, {2.0, 300.0}},
          {OpKind::kFloatCmp, {64.0, 2.0}},
      }));
  return model;
}

}  // namespace hdface::perf
