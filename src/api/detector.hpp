#pragma once

// hdface::api — the unified public facade.
//
// Everything an application needs — training a model, classifying single
// windows, scanning scenes (single- or multi-scale, serial or parallel),
// and rendering overlays — behind two types:
//
//   api::Detector det = api::DetectorBuilder()
//                           .window(32)
//                           .classes(2)
//                           .dim(4096)
//                           .build();
//   det.fit(train);
//   auto boxes = det.detect(scene, {.threads = 8, .scales = {1.0, 0.5}});
//
// The facade owns the pipeline via shared_ptr, so detectors are cheap to
// copy/move and every lower-level component (SlidingWindowDetector,
// MultiScaleDetector, FaceTracker feeds) can share the same trained model.
// The same builder serves face and emotion workloads — a workload is just a
// (window, classes, dataset) triple.
//
// Lower-level headers (pipeline/*.hpp) remain public for research code; this
// layer is what examples, benches and deployments should use.

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "core/kernels/kernels.hpp"
#include "core/op_counter.hpp"
#include "dataset/dataset.hpp"
#include "image/image.hpp"
#include "image/pnm.hpp"
#include "noise/fault_model.hpp"
#include "pipeline/fault_injection.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "pipeline/multiscale.hpp"
#include "pipeline/parallel_detect.hpp"
#include "pipeline/sliding_window.hpp"

namespace hdface::api {

// Per-call scan options. The defaults reproduce the seed's behavior: native
// scale, stride 8, no NMS — but batched across all cores.
struct DetectOptions {
  // Worker threads for the batched engine. 0 = all hardware cores,
  // 1 = serial. Results are bit-identical at every setting (see
  // pipeline/parallel_detect.hpp for the determinism contract).
  std::size_t threads = 0;
  // Window step in pixels (at window resolution for multiscale scans).
  std::size_t stride = 8;
  // Pyramid scales in (0, 1]; {1.0} = single-scale.
  std::vector<double> scales = {1.0};
  // Greedy non-maximum suppression over the resulting boxes. Off by default:
  // the raw map view (one entry per window) is the paper's Fig 6 artifact.
  bool nms = false;
  double nms_iou = 0.3;
  // Minimum positive-class cosine for a window to become a detection box.
  double score_threshold = 0.0;
  // Class treated as "detection" in binary workloads.
  int positive_class = 1;
  // Optional feature-op accounting (exact totals at any thread count).
  core::OpCounter* feature_counter = nullptr;
  // Encode strategy for the batched engine. kPerWindow (default) reproduces
  // the engine's historical bit streams exactly; kCellPlane computes the
  // per-pixel stochastic chain once per scene cell and assembles windows from
  // the cache — roughly (window/stride)²-cheaper on the encode stage, still
  // bit-identical at every thread count, but a (deterministically) different
  // random stream than kPerWindow. Requires an HD-HOG pipeline.
  pipeline::EncodeMode encode_mode = pipeline::EncodeMode::kPerWindow;
  // Optional cell-plane cache accounting (cells computed / cached slot reads /
  // windows assembled; exact at any thread count, untouched in kPerWindow).
  pipeline::EncodeCacheStats* encode_cache_stats = nullptr;
  // Fault-injection plan for robustness studies. When set, the scan runs
  // against a detector whose stored hypervector memories (item memories,
  // mask pool, binarized prototypes) carry the plan's sampled faults —
  // injected copy-on-inject via pipeline::FaultSession before the scan and
  // restore-verified after, so the detector is bit-identical to a
  // never-faulted one once the call returns. Query-plane faults are applied
  // in flight per window. Note: when the plan targets prototypes, inference
  // switches to the binary Hamming path even at rate 0 (clean-baseline cells
  // of a sweep stay comparable to faulted ones).
  std::optional<noise::FaultPlan> fault_plan;
  // SIMD kernel backend for this scan's packed-word hot loops. nullopt
  // (default) keeps the process-wide choice (HDFACE_KERNEL_BACKEND env
  // override, else the best backend the CPU supports). Every backend is
  // bit-identical — results and op charges never change, only speed. Forced
  // process-wide for the duration of the call (the dispatch table is global),
  // so don't race scans with different backends; throws
  // std::invalid_argument when the backend is not available on this
  // build/CPU.
  std::optional<core::kernels::Backend> kernel_backend;
};

class Detector {
 public:
  // Most callers build via DetectorBuilder; wrapping an existing pipeline is
  // for code migrating from the pipeline layer.
  Detector(std::shared_ptr<pipeline::HdFacePipeline> pipeline,
           std::size_t window);

  // --- training / classification ------------------------------------------

  // Train on window-sized images (faces, emotions, any labeled windows).
  void fit(const dataset::Dataset& train);
  double evaluate(const dataset::Dataset& test);
  int predict(const image::Image& window_img);

  // --- scene scanning -------------------------------------------------------

  // Single-scale batched scan: the full per-window map (paper Fig 6 shape).
  // Uses options.threads/stride; scales/nms do not apply to the map view.
  pipeline::DetectionMap detect_map(const image::Image& scene,
                                    const DetectOptions& options = {});

  // Boxes after scale merge (and NMS when enabled): single-scale when
  // options.scales == {1.0}, image-pyramid otherwise. Sorted by descending
  // score.
  std::vector<pipeline::Detection> detect(const image::Image& scene,
                                          const DetectOptions& options = {});

  // --- rendering ------------------------------------------------------------

  image::RgbImage render_overlay(const image::Image& scene,
                                 const pipeline::DetectionMap& map,
                                 int positive_class = 1) const;
  image::RgbImage render(const image::Image& scene,
                         const std::vector<pipeline::Detection>& detections) const;

  // --- escape hatches -------------------------------------------------------

  std::size_t window() const { return window_; }
  const std::shared_ptr<pipeline::HdFacePipeline>& pipeline() const {
    return pipeline_;
  }

 private:
  pipeline::ParallelDetectConfig engine_config(const DetectOptions& options) const;

  std::shared_ptr<pipeline::HdFacePipeline> pipeline_;
  std::size_t window_;
};

// Fluent construction of a Detector. Every knob has the repository-standard
// default, so `DetectorBuilder().window(32).build()` is a working binary
// face/no-face detector awaiting fit().
class DetectorBuilder {
 public:
  DetectorBuilder& window(std::size_t w) { window_ = w; return *this; }
  DetectorBuilder& classes(std::size_t c) { classes_ = c; return *this; }
  DetectorBuilder& dim(std::size_t d) { config_.dim = d; return *this; }
  DetectorBuilder& mode(pipeline::HdFaceMode m) { config_.mode = m; return *this; }
  DetectorBuilder& hd_hog_mode(hog::HdHogMode m) {
    config_.hd_hog_mode = m;
    return *this;
  }
  DetectorBuilder& cell_size(std::size_t c) {
    config_.hog.cell_size = c;
    return *this;
  }
  DetectorBuilder& bins(std::size_t b) { config_.hog.bins = b; return *this; }
  DetectorBuilder& epochs(std::size_t e) { config_.epochs = e; return *this; }
  DetectorBuilder& seed(std::uint64_t s) { config_.seed = s; return *this; }
  // Full pipeline-config override for knobs without a dedicated setter.
  DetectorBuilder& config(const pipeline::HdFaceConfig& c) {
    config_ = c;
    return *this;
  }

  // Throws std::invalid_argument on unusable geometry (window 0, classes < 2,
  // window not tiled by cells — the same validation the pipeline applies).
  Detector build() const;

 private:
  std::size_t window_ = 32;
  std::size_t classes_ = 2;
  pipeline::HdFaceConfig config_ = [] {
    pipeline::HdFaceConfig c;
    c.hog.cell_size = 4;
    return c;
  }();
};

}  // namespace hdface::api
