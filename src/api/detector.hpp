#pragma once

// hdface::api — the unified public facade.
//
// Everything an application needs — training a model, classifying single
// windows, scanning scenes (single- or multi-scale, serial or parallel),
// and rendering overlays — behind two types:
//
//   api::Detector det = api::DetectorBuilder()
//                           .window(32)
//                           .classes(2)
//                           .dim(4096)
//                           .build();
//   det.fit(train);
//   auto boxes = det.detect(scene, {.threads = 8, .scales = {1.0, 0.5}});
//
// or, in the redesigned request/response form shared with the serving layer
// (serve/server.hpp):
//
//   api::Outcome<api::Response> out = det.detect(api::Request{
//       .id = 1, .scene = scene, .options = {.threads = 8}});
//   if (out.ok()) use(out.value().detections);
//
// The facade owns the pipeline via shared_ptr, so detectors are cheap to
// copy/move and every lower-level component (SlidingWindowDetector,
// MultiScaleDetector, FaceTracker feeds) can share the same trained model.
// The same builder serves face and emotion workloads — a workload is just a
// (window, classes, dataset) triple.
//
// This header is deliberately light: it includes only the api value types
// (api/types.hpp) and forward-declares the pipeline machinery, so facade
// users compile standalone and a pipeline-internal edit no longer rebuilds
// every downstream TU (tests/api/header_standalone.cpp pins this). Lower-
// level headers (pipeline/*.hpp) remain public for research code; include
// them directly where their types are used.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "api/types.hpp"

namespace hdface::dataset {
struct Dataset;
}
namespace hdface::image {
struct RgbImage;
}
namespace hdface::hog {
enum class HdHogMode;
}
namespace hdface::pipeline {
class Cascade;
class HdFacePipeline;
struct HdFaceConfig;
enum class HdFaceMode;
struct ParallelDetectConfig;
}

namespace hdface::api {

class Detector {
 public:
  // Most callers build via DetectorBuilder; wrapping an existing pipeline is
  // for code migrating from the pipeline layer.
  Detector(std::shared_ptr<pipeline::HdFacePipeline> pipeline,
           std::size_t window);

  // --- training / classification ------------------------------------------

  // Train on window-sized images (faces, emotions, any labeled windows).
  void fit(const dataset::Dataset& train);
  double evaluate(const dataset::Dataset& test);
  int predict(const image::Image& window_img);

  // --- scene scanning -------------------------------------------------------

  // The redesigned entry point: one request schema for one-shot, batched and
  // served execution. Never throws on a malformed request — returns a typed
  // kInvalidOptions Error (or kInternal if execution raises), so serving
  // workers survive any input. Detections are bit-identical to
  // detect(request.scene, request.options).
  Outcome<Response> detect(const Request& request);

  // Single-scale batched scan: the full per-window map (paper Fig 6 shape).
  // Uses options.threads/stride; scales/nms do not apply to the map view.
  // Throws InvalidOptionsError (a std::invalid_argument) on bad options.
  pipeline::DetectionMap detect_map(const image::Image& scene,
                                    const DetectOptions& options = {});

  // Boxes after scale merge (and NMS when enabled): single-scale when
  // options.scales == {1.0}, image-pyramid otherwise. Sorted by descending
  // score. Throws InvalidOptionsError (a std::invalid_argument) on bad
  // options.
  std::vector<pipeline::Detection> detect(const image::Image& scene,
                                          const DetectOptions& options = {});

  // --- rendering ------------------------------------------------------------

  image::RgbImage render_overlay(const image::Image& scene,
                                 const pipeline::DetectionMap& map,
                                 int positive_class = 1) const;
  image::RgbImage render(const image::Image& scene,
                         const std::vector<pipeline::Detection>& detections) const;

  // --- escape hatches -------------------------------------------------------

  std::size_t window() const { return window_; }
  const std::shared_ptr<pipeline::HdFacePipeline>& pipeline() const {
    return pipeline_;
  }

 private:
  // `cascade` is the per-call staged scorer built from options.cascade (null
  // for exact mode — the engine then runs the pre-cascade path untouched);
  // it must outlive the scan the returned config drives.
  pipeline::ParallelDetectConfig engine_config(
      const DetectOptions& options,
      const pipeline::Cascade* cascade = nullptr) const;
  std::vector<pipeline::Detection> detect_validated(const image::Image& scene,
                                                    const DetectOptions& options);

  std::shared_ptr<pipeline::HdFacePipeline> pipeline_;
  std::size_t window_;
};

// Fluent construction of a Detector. Every knob has the repository-standard
// default, so `DetectorBuilder().window(32).build()` is a working binary
// face/no-face detector awaiting fit(). The pipeline config lives behind a
// unique_ptr (deep-copied with the builder) so this header does not pull
// pipeline/hdface_pipeline.hpp.
class DetectorBuilder {
 public:
  DetectorBuilder();
  ~DetectorBuilder();
  DetectorBuilder(const DetectorBuilder& other);
  DetectorBuilder& operator=(const DetectorBuilder& other);
  DetectorBuilder(DetectorBuilder&&) noexcept;
  DetectorBuilder& operator=(DetectorBuilder&&) noexcept;

  DetectorBuilder& window(std::size_t w);
  DetectorBuilder& classes(std::size_t c);
  DetectorBuilder& dim(std::size_t d);
  DetectorBuilder& mode(pipeline::HdFaceMode m);
  DetectorBuilder& hd_hog_mode(hog::HdHogMode m);
  DetectorBuilder& cell_size(std::size_t c);
  DetectorBuilder& bins(std::size_t b);
  DetectorBuilder& epochs(std::size_t e);
  DetectorBuilder& seed(std::uint64_t s);
  // Full pipeline-config override for knobs without a dedicated setter.
  DetectorBuilder& config(const pipeline::HdFaceConfig& c);

  // Throws std::invalid_argument on unusable geometry (window 0, classes < 2,
  // window not tiled by cells — the same validation the pipeline applies).
  Detector build() const;

 private:
  std::size_t window_ = 32;
  std::size_t classes_ = 2;
  std::unique_ptr<pipeline::HdFaceConfig> config_;
};

}  // namespace hdface::api
