#include "api/detector.hpp"

#include <stdexcept>

namespace hdface::api {

Detector::Detector(std::shared_ptr<pipeline::HdFacePipeline> pipeline,
                   std::size_t window)
    : pipeline_(std::move(pipeline)), window_(window) {
  if (!pipeline_) throw std::invalid_argument("Detector: null pipeline");
  if (window_ == 0) throw std::invalid_argument("Detector: window 0");
}

void Detector::fit(const dataset::Dataset& train) { pipeline_->fit(train); }

double Detector::evaluate(const dataset::Dataset& test) {
  return pipeline_->evaluate(test);
}

int Detector::predict(const image::Image& window_img) {
  return pipeline_->predict(window_img);
}

pipeline::ParallelDetectConfig Detector::engine_config(
    const DetectOptions& options) const {
  pipeline::ParallelDetectConfig engine;
  engine.threads = options.threads;
  engine.feature_counter = options.feature_counter;
  // Points into the caller's options, which outlive the scan call.
  engine.fault_plan = options.fault_plan ? &*options.fault_plan : nullptr;
  engine.encode_mode = options.encode_mode;
  engine.cache_stats = options.encode_cache_stats;
  return engine;
}

pipeline::DetectionMap Detector::detect_map(const image::Image& scene,
                                            const DetectOptions& options) {
  if (options.stride == 0) throw std::invalid_argument("DetectOptions: stride 0");
  const core::kernels::ScopedBackend backend(options.kernel_backend);
  if (options.fault_plan) {
    // Inject the plan's stored-memory faults for the duration of the scan;
    // restore() is explicit so verification errors surface to the caller.
    pipeline::FaultSession session(*pipeline_, *options.fault_plan);
    auto map = pipeline::detect_windows_parallel(*pipeline_, scene, window_,
                                                 options.stride,
                                                 options.positive_class,
                                                 engine_config(options));
    session.restore();
    return map;
  }
  return pipeline::detect_windows_parallel(*pipeline_, scene, window_,
                                           options.stride,
                                           options.positive_class,
                                           engine_config(options));
}

std::vector<pipeline::Detection> Detector::detect(const image::Image& scene,
                                                  const DetectOptions& options) {
  if (options.stride == 0) throw std::invalid_argument("DetectOptions: stride 0");
  const core::kernels::ScopedBackend backend(options.kernel_backend);
  const bool single_scale =
      options.scales.size() == 1 && options.scales.front() == 1.0;
  if (single_scale) {
    const auto map = detect_map(scene, options);
    // NMS off: every positive window is its own box (the raw Fig 6 view);
    // iou_threshold > 1 means nothing ever suppresses.
    const double iou = options.nms ? options.nms_iou : 2.0;
    return pipeline::map_detections(map, options.positive_class,
                                    options.score_threshold, iou);
  }
  pipeline::MultiScaleConfig ms;
  ms.scales = options.scales;
  ms.stride = options.stride;
  ms.score_threshold = options.score_threshold;
  // The multiscale merge always suppresses cross-scale duplicates of one
  // face; options.nms_iou only tunes how aggressively.
  ms.iou_threshold = options.nms ? options.nms_iou : 0.3;
  pipeline::MultiScaleDetector det(pipeline_, window_, ms);
  if (options.fault_plan) {
    // One session spans every pyramid level: a persistent storage fault
    // corrupts all scales of a scan, not each independently.
    pipeline::FaultSession session(*pipeline_, *options.fault_plan);
    auto boxes = det.detect(scene, engine_config(options));
    session.restore();
    return boxes;
  }
  return det.detect(scene, engine_config(options));
}

image::RgbImage Detector::render_overlay(const image::Image& scene,
                                         const pipeline::DetectionMap& map,
                                         int positive_class) const {
  pipeline::SlidingWindowDetector det(pipeline_, map.window, map.stride,
                                      positive_class);
  return det.render_overlay(scene, map);
}

image::RgbImage Detector::render(
    const image::Image& scene,
    const std::vector<pipeline::Detection>& detections) const {
  return pipeline::render_detections(scene, detections);
}

Detector DetectorBuilder::build() const {
  if (classes_ < 2) throw std::invalid_argument("DetectorBuilder: classes < 2");
  if (config_.hog.cell_size == 0 || window_ % config_.hog.cell_size != 0) {
    // The HOG layers silently drop partial cells; at the facade a window that
    // is not a whole number of cells is almost certainly a typo.
    throw std::invalid_argument("DetectorBuilder: window not tiled by cell_size");
  }
  auto pipeline = std::make_shared<pipeline::HdFacePipeline>(
      config_, window_, window_, classes_);
  return Detector(std::move(pipeline), window_);
}

}  // namespace hdface::api
