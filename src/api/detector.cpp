#include "api/detector.hpp"

#include <stdexcept>
#include <utility>

#include "core/kernels/kernels.hpp"
#include "core/op_counter.hpp"
#include "dataset/dataset.hpp"
#include "image/pnm.hpp"
#include "pipeline/cascade.hpp"
#include "pipeline/fault_injection.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "pipeline/multiscale.hpp"
#include "pipeline/parallel_detect.hpp"
#include "pipeline/sliding_window.hpp"

namespace hdface::api {

namespace {

// Options validation shared by every detect entry point: the Request path
// returns the Error, the legacy wrappers throw it.
void validate_or_throw(const DetectOptions& options) {
  if (auto err = validate(options)) throw InvalidOptionsError(std::move(*err));
}

// Builds the per-call staged scorer for calibrated cascade requests (exact
// mode and cascade-free calls return nullopt — the engine then runs the
// pre-cascade path untouched). The Cascade constructor re-validates the
// table against the trained classifier (dim/classes/positive_class), so a
// table calibrated for a different model throws std::invalid_argument —
// typed kInvalidOptions on the Request path.
std::optional<pipeline::Cascade> make_cascade(
    const pipeline::HdFacePipeline& pipeline, const DetectOptions& options) {
  if (!options.cascade ||
      options.cascade->mode != pipeline::CascadeMode::kCalibrated) {
    return std::nullopt;
  }
  return pipeline::Cascade(pipeline.classifier(), options.cascade->table);
}

}  // namespace

Detector::Detector(std::shared_ptr<pipeline::HdFacePipeline> pipeline,
                   std::size_t window)
    : pipeline_(std::move(pipeline)), window_(window) {
  if (!pipeline_) throw std::invalid_argument("Detector: null pipeline");
  if (window_ == 0) throw std::invalid_argument("Detector: window 0");
}

void Detector::fit(const dataset::Dataset& train) { pipeline_->fit(train); }

double Detector::evaluate(const dataset::Dataset& test) {
  return pipeline_->evaluate(test);
}

int Detector::predict(const image::Image& window_img) {
  return pipeline_->predict(window_img);
}

pipeline::ParallelDetectConfig Detector::engine_config(
    const DetectOptions& options, const pipeline::Cascade* cascade) const {
  pipeline::ParallelDetectConfig engine;
  engine.threads = options.threads;
  // Telemetry wins wholesale over the deprecated alias fields (see
  // api/types.hpp). Both point into caller-owned sinks that outlive the call.
  if (options.telemetry) {
    engine.feature_counter = options.telemetry->feature_ops;
    engine.cache_stats = options.telemetry->encode_cache;
    engine.cascade_stats = options.telemetry->cascade;
    engine.cascade_per_scale = options.telemetry->cascade_per_scale;
  } else {
    engine.feature_counter = options.feature_counter;
    engine.cache_stats = options.encode_cache_stats;
  }
  // Points into the caller's options, which outlive the scan call.
  engine.fault_plan = options.fault_plan ? &*options.fault_plan : nullptr;
  engine.encode_mode = options.encode_mode;
  engine.plane_mode = options.plane_mode;
  engine.cascade = cascade;
  return engine;
}

pipeline::DetectionMap Detector::detect_map(const image::Image& scene,
                                            const DetectOptions& options) {
  validate_or_throw(options);
  const core::kernels::ScopedBackend backend(options.kernel_backend);
  if (options.fault_plan) {
    // Inject the plan's stored-memory faults for the duration of the scan;
    // restore() is explicit so verification errors surface to the caller.
    // (validate() already rejected cascade+fault_plan, so no cascade here.)
    pipeline::FaultSession session(*pipeline_, *options.fault_plan);
    auto map = pipeline::detect_windows_parallel(*pipeline_, scene, window_,
                                                 options.stride,
                                                 options.positive_class,
                                                 engine_config(options));
    session.restore();
    return map;
  }
  const std::optional<pipeline::Cascade> cascade =
      make_cascade(*pipeline_, options);
  return pipeline::detect_windows_parallel(
      *pipeline_, scene, window_, options.stride, options.positive_class,
      engine_config(options, cascade ? &*cascade : nullptr));
}

std::vector<pipeline::Detection> Detector::detect_validated(
    const image::Image& scene, const DetectOptions& options) {
  const core::kernels::ScopedBackend backend(options.kernel_backend);
  const bool single_scale =
      options.scales.size() == 1 && options.scales.front() == 1.0;
  if (single_scale) {
    const auto map = detect_map(scene, options);
    // NMS off: every positive window is its own box (the raw Fig 6 view);
    // iou_threshold > 1 means nothing ever suppresses.
    const double iou = options.nms ? options.nms_iou : 2.0;
    return pipeline::map_detections(map, options.positive_class,
                                    options.score_threshold, iou);
  }
  pipeline::MultiScaleConfig ms;
  ms.scales = options.scales;
  ms.stride = options.stride;
  ms.score_threshold = options.score_threshold;
  // The multiscale merge always suppresses cross-scale duplicates of one
  // face; options.nms_iou only tunes how aggressively.
  ms.iou_threshold = options.nms ? options.nms_iou : 0.3;
  pipeline::MultiScaleDetector det(pipeline_, window_, ms);
  if (options.fault_plan) {
    // One session spans every pyramid level: a persistent storage fault
    // corrupts all scales of a scan, not each independently.
    // (validate() already rejected cascade+fault_plan, so no cascade here.)
    pipeline::FaultSession session(*pipeline_, *options.fault_plan);
    auto boxes = det.detect(scene, engine_config(options));
    session.restore();
    return boxes;
  }
  const std::optional<pipeline::Cascade> cascade =
      make_cascade(*pipeline_, options);
  return det.detect(scene,
                    engine_config(options, cascade ? &*cascade : nullptr));
}

std::vector<pipeline::Detection> Detector::detect(const image::Image& scene,
                                                  const DetectOptions& options) {
  validate_or_throw(options);
  return detect_validated(scene, options);
}

Outcome<Response> Detector::detect(const Request& request) {
  if (auto err = validate(request.options)) return std::move(*err);
  if (request.scene.width() < window_ || request.scene.height() < window_) {
    return Error::invalid_options("Request: scene smaller than the detector window");
  }
  Response response;
  response.id = request.id;
  response.tenant = request.tenant;
  try {
    response.detections = detect_validated(request.scene, request.options);
  } catch (const std::invalid_argument& e) {
    // Engine-level rejections (unavailable kernel backend, encode mode
    // unsupported by this pipeline, degenerate geometry) stay typed.
    return Error::invalid_options(e.what());
  } catch (const std::exception& e) {
    return Error::internal(e.what());
  }
  return response;
}

image::RgbImage Detector::render_overlay(const image::Image& scene,
                                         const pipeline::DetectionMap& map,
                                         int positive_class) const {
  pipeline::SlidingWindowDetector det(pipeline_, map.window, map.stride,
                                      positive_class);
  return det.render_overlay(scene, map);
}

image::RgbImage Detector::render(
    const image::Image& scene,
    const std::vector<pipeline::Detection>& detections) const {
  return pipeline::render_detections(scene, detections);
}

// --- DetectorBuilder --------------------------------------------------------

namespace {

pipeline::HdFaceConfig default_builder_config() {
  pipeline::HdFaceConfig c;
  c.hog.cell_size = 4;
  return c;
}

}  // namespace

DetectorBuilder::DetectorBuilder()
    : config_(std::make_unique<pipeline::HdFaceConfig>(default_builder_config())) {}

DetectorBuilder::~DetectorBuilder() = default;

DetectorBuilder::DetectorBuilder(const DetectorBuilder& other)
    : window_(other.window_),
      classes_(other.classes_),
      config_(std::make_unique<pipeline::HdFaceConfig>(*other.config_)) {}

DetectorBuilder& DetectorBuilder::operator=(const DetectorBuilder& other) {
  if (this != &other) {
    window_ = other.window_;
    classes_ = other.classes_;
    *config_ = *other.config_;
  }
  return *this;
}

DetectorBuilder::DetectorBuilder(DetectorBuilder&&) noexcept = default;
DetectorBuilder& DetectorBuilder::operator=(DetectorBuilder&&) noexcept = default;

DetectorBuilder& DetectorBuilder::window(std::size_t w) {
  window_ = w;
  return *this;
}
DetectorBuilder& DetectorBuilder::classes(std::size_t c) {
  classes_ = c;
  return *this;
}
DetectorBuilder& DetectorBuilder::dim(std::size_t d) {
  config_->dim = d;
  return *this;
}
DetectorBuilder& DetectorBuilder::mode(pipeline::HdFaceMode m) {
  config_->mode = m;
  return *this;
}
DetectorBuilder& DetectorBuilder::hd_hog_mode(hog::HdHogMode m) {
  config_->hd_hog_mode = m;
  return *this;
}
DetectorBuilder& DetectorBuilder::cell_size(std::size_t c) {
  config_->hog.cell_size = c;
  return *this;
}
DetectorBuilder& DetectorBuilder::bins(std::size_t b) {
  config_->hog.bins = b;
  return *this;
}
DetectorBuilder& DetectorBuilder::epochs(std::size_t e) {
  config_->epochs = e;
  return *this;
}
DetectorBuilder& DetectorBuilder::seed(std::uint64_t s) {
  config_->seed = s;
  return *this;
}
DetectorBuilder& DetectorBuilder::config(const pipeline::HdFaceConfig& c) {
  *config_ = c;
  return *this;
}

Detector DetectorBuilder::build() const {
  if (classes_ < 2) throw std::invalid_argument("DetectorBuilder: classes < 2");
  if (config_->hog.cell_size == 0 || window_ % config_->hog.cell_size != 0) {
    // The HOG layers silently drop partial cells; at the facade a window that
    // is not a whole number of cells is almost certainly a typo.
    throw std::invalid_argument("DetectorBuilder: window not tiled by cell_size");
  }
  auto pipeline = std::make_shared<pipeline::HdFacePipeline>(
      *config_, window_, window_, classes_);
  return Detector(std::move(pipeline), window_);
}

}  // namespace hdface::api
