#pragma once

// hdface::api value types — the one request/response schema shared by
// one-shot Detector::detect calls, batched scans, and the serving layer
// (serve/server.hpp).
//
// The redesign (PR 6) routes every execution mode through the same three
// types:
//
//   api::Request  — what to scan (scene + DetectOptions + routing ids)
//   api::Response — the detections plus per-stage timing
//   api::Error    — a typed, code-carrying failure (admission rejections,
//                   invalid options, execution faults)
//
// plus api::Outcome<T>, a minimal value-or-Error carrier (std::expected is
// C++23; this repository builds as C++20). Errors are values, not
// exceptions, on every serving path — a malformed request must never take
// down a worker. The legacy convenience wrappers
// (Detector::detect(scene, options)) throw api::InvalidOptionsError, which
// derives from std::invalid_argument so pre-redesign callers keep working.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/kernels/backend.hpp"
#include "image/image.hpp"
#include "noise/fault_model.hpp"
#include "pipeline/cascade_types.hpp"
#include "pipeline/detection.hpp"
#include "pipeline/encode_mode.hpp"

namespace hdface::core {
struct OpCounter;
}

namespace hdface::api {

// ---------------------------------------------------------------------------
// Errors

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  // DetectOptions failed validate(): empty scales, scale outside (0,1],
  // stride 0, non-finite thresholds, or a scene smaller than the window.
  kInvalidOptions,
  // Admission control: the bounded request queue is at capacity. The caller
  // should back off and retry (the serving layer's backpressure signal).
  kQueueFull,
  // Admission control: the request's tenant already has its configured
  // maximum number of requests in flight.
  kTenantOverLimit,
  // The server is shutting down and no longer admits requests.
  kShutdown,
  // Execution raised an unexpected exception; message carries what().
  kInternal,
};

constexpr std::string_view error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidOptions: return "invalid_options";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kTenantOverLimit: return "tenant_over_limit";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

struct Error {
  ErrorCode code = ErrorCode::kOk;
  std::string message;

  bool ok() const { return code == ErrorCode::kOk; }

  static Error invalid_options(std::string msg) {
    return {ErrorCode::kInvalidOptions, std::move(msg)};
  }
  static Error queue_full(std::string msg) {
    return {ErrorCode::kQueueFull, std::move(msg)};
  }
  static Error tenant_over_limit(std::string msg) {
    return {ErrorCode::kTenantOverLimit, std::move(msg)};
  }
  static Error shutdown(std::string msg) {
    return {ErrorCode::kShutdown, std::move(msg)};
  }
  static Error internal(std::string msg) {
    return {ErrorCode::kInternal, std::move(msg)};
  }
};

// Exception form of a kInvalidOptions Error, thrown by the legacy
// convenience wrappers. Derives from std::invalid_argument — the exception
// those wrappers threw before the redesign — so existing catch sites and
// tests keep working.
class InvalidOptionsError : public std::invalid_argument {
 public:
  explicit InvalidOptionsError(Error error)
      : std::invalid_argument(error.message), error_(std::move(error)) {}
  const Error& error() const { return error_; }

 private:
  Error error_;
};

// ---------------------------------------------------------------------------
// Outcome<T> — value or Error

template <typename T>
class Outcome {
 public:
  Outcome(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Outcome(Error error) : error_(std::move(error)) {  // NOLINT(google-explicit-constructor)
    if (error_.ok()) {
      throw std::logic_error("api::Outcome: error-state Outcome with code kOk");
    }
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return checked(); }
  T& value() & {
    checked();
    return *value_;
  }
  T&& take() && {
    checked();
    return std::move(*value_);
  }
  // kOk when ok() — callers can always log error().code.
  const Error& error() const { return error_; }

 private:
  const T& checked() const {
    if (!value_) {
      throw std::logic_error("api::Outcome: value() on error outcome: " +
                             error_.message);
    }
    return *value_;
  }

  std::optional<T> value_;
  Error error_;
};

// ---------------------------------------------------------------------------
// Telemetry

// Optional observability sinks for one detect call. Replaces the raw
// observer pointers that used to live directly on DetectOptions
// (feature_counter / encode_cache_stats — still present as deprecated
// aliases for one release; when `telemetry` is set it wins wholesale and
// the legacy fields are ignored).
//
// Lifetime contract: every sink must stay alive until the detect call
// returns — for served requests, until the response future resolves. Sinks
// receive exact merged shard totals after the scan (identical at any thread
// count). A sink must not be shared by two requests that can be in flight
// concurrently: the post-scan merge into the sink is not synchronized.
struct Telemetry {
  // Feature-op accounting (exact totals at any thread count).
  core::OpCounter* feature_ops = nullptr;
  // Cell-plane cache accounting (untouched in kPerWindow mode).
  pipeline::EncodeCacheStats* encode_cache = nullptr;
  // Cascade stage accounting (untouched unless the call runs a calibrated
  // cascade): per-stage entered/rejected counts plus exact-scored survivors,
  // merged from per-chunk shards — exact at any thread count.
  pipeline::CascadeStats* cascade = nullptr;
  // Per-pyramid-level cascade stage accounting: one entry per kept scale in
  // pyramid order. Only filled by multiscale cascaded scans.
  std::vector<pipeline::CascadeStats>* cascade_per_scale = nullptr;
};

// ---------------------------------------------------------------------------
// DetectOptions

// Per-call scan options. The defaults reproduce the seed's behavior: native
// scale, stride 8, no NMS — but batched across all cores. Validated by
// api::validate(); the Request path returns a typed kInvalidOptions Error,
// the legacy wrappers throw InvalidOptionsError.
struct DetectOptions {
  // Worker threads for the batched engine. 0 = all hardware cores,
  // 1 = serial. Results are bit-identical at every setting (see
  // pipeline/parallel_detect.hpp for the determinism contract).
  std::size_t threads = 0;
  // Window step in pixels (at window resolution for multiscale scans).
  std::size_t stride = 8;
  // Pyramid scales in (0, 1]; {1.0} = single-scale.
  std::vector<double> scales = {1.0};
  // Greedy non-maximum suppression over the resulting boxes. Off by default:
  // the raw map view (one entry per window) is the paper's Fig 6 artifact.
  bool nms = false;
  double nms_iou = 0.3;
  // Minimum positive-class cosine for a window to become a detection box.
  double score_threshold = 0.0;
  // Class treated as "detection" in binary workloads.
  int positive_class = 1;
  // Deprecated alias (one release): use telemetry.feature_ops. Ignored when
  // `telemetry` is set.
  core::OpCounter* feature_counter = nullptr;
  // Encode strategy for the batched engine. kPerWindow (default) reproduces
  // the engine's historical bit streams exactly; kCellPlane computes the
  // per-pixel stochastic chain once per scene cell and assembles windows from
  // the cache — roughly (window/stride)²-cheaper on the encode stage, still
  // bit-identical at every thread count, but a (deterministically) different
  // random stream than kPerWindow. Requires an HD-HOG pipeline.
  pipeline::EncodeMode encode_mode = pipeline::EncodeMode::kPerWindow;
  // Cell-plane population strategy for kCellPlane scans (ignored by
  // kPerWindow). kEager (default) builds the whole scene plane before
  // scanning; kLazy materializes each cell on its first window read — the
  // DetectionMap is bit-identical (every cell reseeds from the same pure
  // per-cell key), and with a prescreen-carrying calibrated cascade most
  // cells of a sparse scene are never encoded at all. validate() rejects
  // kLazy without kCellPlane.
  pipeline::PlaneMode plane_mode = pipeline::PlaneMode::kEager;
  // Deprecated alias (one release): use telemetry.encode_cache. Ignored when
  // `telemetry` is set.
  pipeline::EncodeCacheStats* encode_cache_stats = nullptr;
  // Observability sinks for this call (see Telemetry for the lifetime
  // contract). When set, the deprecated alias fields above are ignored.
  std::optional<Telemetry> telemetry;
  // Fault-injection plan for robustness studies. When set, the scan runs
  // against a detector whose stored hypervector memories (item memories,
  // mask pool, binarized prototypes) carry the plan's sampled faults —
  // injected copy-on-inject via pipeline::FaultSession before the scan and
  // restore-verified after, so the detector is bit-identical to a
  // never-faulted one once the call returns. Query-plane faults are applied
  // in flight per window. Note: when the plan targets prototypes, inference
  // switches to the binary Hamming path even at rate 0 (clean-baseline cells
  // of a sweep stay comparable to faulted ones). The serving layer runs
  // fault-plan requests under an exclusive lock (see serve/server.hpp).
  std::optional<noise::FaultPlan> fault_plan;
  // Early-reject similarity cascade (pipeline/cascade.hpp). kExact (the
  // default-constructed mode) bypasses the stages entirely — the scan runs
  // the pre-cascade path untouched and stays bit-identical to it. kCalibrated
  // scores every window through the table's calibrated prefix stages and
  // escalates only survivors to the exact full-D path; survivor results are
  // bit-identical to an exact scan. Calibrated mode requires
  // encode_mode == kCellPlane (the per-window encode has no cheap prefix), a
  // table whose positive_class matches this call's, and no fault_plan —
  // validate() rejects those combinations with typed errors, along with
  // structurally malformed tables (no stages, non-ascending stage words,
  // non-finite thresholds).
  std::optional<pipeline::CascadeConfig> cascade;
  // SIMD kernel backend for this scan's packed-word hot loops. nullopt
  // (default) keeps the process-wide choice (HDFACE_KERNEL_BACKEND env
  // override, else the best backend the CPU supports). Every backend is
  // bit-identical — results and op charges never change, only speed. Forced
  // process-wide for the duration of the call (the dispatch table is global),
  // so don't race scans with different backends; throws
  // std::invalid_argument when the backend is not available on this
  // build/CPU. The serving layer rejects requests that set this (a
  // process-global force would race concurrent workers).
  std::optional<core::kernels::Backend> kernel_backend;
};

// Fail-fast options validation: empty scales, scale outside (0,1], stride 0,
// non-finite nms_iou/score_threshold — plus the cross-field contracts the
// engine would otherwise only trip deep inside a scan: a fault_plan on the
// cell-plane encode path without an encode-cache stats sink (fault campaigns
// on a shared plane cache must stay auditable), and a calibrated cascade
// without kCellPlane, with a fault_plan, with a positive_class mismatched
// against its table, or with a structurally malformed table. Returns nullopt
// when the options are usable. Shared by the Request path (typed Error), the
// legacy wrappers (InvalidOptionsError) and serving admission (rejected
// before queueing).
std::optional<Error> validate(const DetectOptions& options);

// ---------------------------------------------------------------------------
// Request / Response

struct Request {
  // Caller-chosen correlation id, echoed on the Response. The load
  // generator uses the request index; the serving layer never interprets it.
  std::uint64_t id = 0;
  // Tenant for per-tenant admission caps (serve::ServerConfig).
  std::uint32_t tenant = 0;
  image::Image scene;
  DetectOptions options;
};

// Per-stage latency of one served request, nanoseconds. Filled by the
// serving layer (the synchronous Detector::detect(Request) wrapper leaves it
// zero — the facade never reads clocks; see tools/hdlint wall-clock rule).
struct StageNanos {
  std::uint64_t queue_wait = 0;  // admission → dequeue
  std::uint64_t execute = 0;     // dequeue → detections ready
  std::uint64_t total = 0;       // admission → response ready
};

struct Response {
  std::uint64_t id = 0;       // echoed Request::id
  std::uint32_t tenant = 0;   // echoed Request::tenant
  // Boxes after scale merge (and NMS when enabled), sorted by descending
  // score — exactly what Detector::detect(scene, options) returns for the
  // same (scene, options): served execution is bit-identical to direct
  // calls.
  std::vector<pipeline::Detection> detections;
  StageNanos timing;
};

}  // namespace hdface::api
