#include "api/types.hpp"

#include <cmath>
#include <string>

namespace hdface::api {

std::optional<Error> validate(const DetectOptions& options) {
  if (options.stride == 0) {
    return Error::invalid_options("DetectOptions: stride must be > 0");
  }
  if (options.scales.empty()) {
    return Error::invalid_options("DetectOptions: scales must not be empty");
  }
  for (const double s : options.scales) {
    if (!std::isfinite(s) || s <= 0.0 || s > 1.0) {
      return Error::invalid_options("DetectOptions: scale outside (0, 1]: " +
                                    std::to_string(s));
    }
  }
  if (!std::isfinite(options.nms_iou) || options.nms_iou < 0.0 ||
      options.nms_iou > 1.0) {
    return Error::invalid_options("DetectOptions: nms_iou outside [0, 1]: " +
                                  std::to_string(options.nms_iou));
  }
  if (!std::isfinite(options.score_threshold)) {
    return Error::invalid_options("DetectOptions: score_threshold not finite");
  }
  // Cross-field: a fault campaign on the cell-plane path runs its injected
  // stored-memory faults through the shared scene cache; without an
  // encode-cache stats sink the campaign's cache coverage is unauditable and
  // the engine used to proceed silently. Either sink form (telemetry or the
  // deprecated alias) satisfies the contract.
  if (options.fault_plan &&
      options.encode_mode == pipeline::EncodeMode::kCellPlane) {
    const pipeline::EncodeCacheStats* sink = options.telemetry
                                                 ? options.telemetry->encode_cache
                                                 : options.encode_cache_stats;
    if (sink == nullptr) {
      return Error::invalid_options(
          "DetectOptions: fault_plan with encode_mode=cell_plane requires an "
          "encode-cache stats sink (telemetry.encode_cache)");
    }
  }
  if (options.plane_mode == pipeline::PlaneMode::kLazy &&
      options.encode_mode != pipeline::EncodeMode::kCellPlane) {
    return Error::invalid_options(
        "DetectOptions: plane_mode=lazy requires encode_mode=cell_plane (the "
        "per-window encode has no plane to materialize)");
  }
  if (options.cascade &&
      options.cascade->mode == pipeline::CascadeMode::kCalibrated) {
    if (options.encode_mode != pipeline::EncodeMode::kCellPlane) {
      return Error::invalid_options(
          "DetectOptions: calibrated cascade requires encode_mode=cell_plane");
    }
    if (options.fault_plan) {
      return Error::invalid_options(
          "DetectOptions: calibrated cascade is incompatible with fault_plan");
    }
    const pipeline::CascadeTable& table = options.cascade->table;
    if (table.positive_class != options.positive_class) {
      return Error::invalid_options(
          "DetectOptions: cascade table positive_class " +
          std::to_string(table.positive_class) +
          " does not match options.positive_class " +
          std::to_string(options.positive_class));
    }
    if (table.dim == 0 || table.classes < 2) {
      return Error::invalid_options(
          "DetectOptions: cascade table has degenerate dim/classes");
    }
    if (table.stages.empty()) {
      return Error::invalid_options(
          "DetectOptions: cascade table has no stages");
    }
    std::size_t prev_words = 0;
    for (const pipeline::CascadeStage& stage : table.stages) {
      if (stage.words <= prev_words) {
        return Error::invalid_options(
            "DetectOptions: cascade stage words must be strictly ascending");
      }
      if (!std::isfinite(stage.reject_below)) {
        return Error::invalid_options(
            "DetectOptions: cascade stage threshold not finite");
      }
      prev_words = stage.words;
    }
    if (table.prescreen_words > 0) {
      if (!std::isfinite(table.prescreen_reject_below)) {
        return Error::invalid_options(
            "DetectOptions: cascade prescreen threshold not finite");
      }
      if (!std::isfinite(table.prescreen_vmax) || table.prescreen_vmax <= 0.0) {
        return Error::invalid_options(
            "DetectOptions: cascade prescreen normalization scale must be "
            "positive and finite");
      }
      if (!std::isfinite(table.prescreen_spread_below) ||
          table.prescreen_spread_below < 0.0) {
        return Error::invalid_options(
            "DetectOptions: cascade prescreen spread floor must be finite "
            "and >= 0");
      }
    }
  }
  return std::nullopt;
}

}  // namespace hdface::api
