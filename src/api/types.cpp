#include "api/types.hpp"

#include <cmath>
#include <string>

namespace hdface::api {

std::optional<Error> validate(const DetectOptions& options) {
  if (options.stride == 0) {
    return Error::invalid_options("DetectOptions: stride must be > 0");
  }
  if (options.scales.empty()) {
    return Error::invalid_options("DetectOptions: scales must not be empty");
  }
  for (const double s : options.scales) {
    if (!std::isfinite(s) || s <= 0.0 || s > 1.0) {
      return Error::invalid_options("DetectOptions: scale outside (0, 1]: " +
                                    std::to_string(s));
    }
  }
  if (!std::isfinite(options.nms_iou) || options.nms_iou < 0.0 ||
      options.nms_iou > 1.0) {
    return Error::invalid_options("DetectOptions: nms_iou outside [0, 1]: " +
                                  std::to_string(options.nms_iou));
  }
  if (!std::isfinite(options.score_threshold)) {
    return Error::invalid_options("DetectOptions: score_threshold not finite");
  }
  return std::nullopt;
}

}  // namespace hdface::api
