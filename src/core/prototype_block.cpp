#include "core/prototype_block.hpp"

#include <array>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "core/kernels/kernels.hpp"
#include "util/check.hpp"

namespace hdface::core {

namespace {
// Lanes per 64-byte cache line; the stride is rounded up to this so every
// hamming_block row starts a fresh line and the widest backend (8×64-bit)
// can always load a full vector of lanes.
constexpr std::size_t kLaneRound = 8;
constexpr std::size_t kAlignBytes = 64;
constexpr std::size_t kAlignSlackWords = kAlignBytes / sizeof(std::uint64_t) - 1;
}  // namespace

void PrototypeBlock::align_and_zero() {
  const std::size_t payload = words_ * stride_;
  if (payload == 0) {
    storage_.clear();
    data_ = nullptr;
    return;
  }
  storage_.assign(payload + kAlignSlackWords, 0);
  void* p = storage_.data();
  std::size_t space = storage_.size() * sizeof(std::uint64_t);
  void* aligned = std::align(kAlignBytes, payload * sizeof(std::uint64_t), p,
                             space);
  HD_CHECK(aligned != nullptr,
           "PrototypeBlock: alignment slack too small for a 64-byte base");
  data_ = static_cast<std::uint64_t*>(aligned);
}

PrototypeBlock::PrototypeBlock(std::span<const Hypervector> prototypes) {
  if (prototypes.empty()) return;
  count_ = prototypes.size();
  dim_ = prototypes.front().dim();
  for (const Hypervector& p : prototypes) {
    if (p.dim() != dim_) {
      throw std::invalid_argument("PrototypeBlock: dimensionality mismatch");
    }
  }
  words_ = prototypes.front().num_words();
  stride_ = (count_ + kLaneRound - 1) / kLaneRound * kLaneRound;
  align_and_zero();
  for (std::size_t c = 0; c < count_; ++c) {
    const std::span<const std::uint64_t> pw = prototypes[c].words();
    for (std::size_t w = 0; w < words_; ++w) {
      data_[w * stride_ + c] = pw[w];
    }
  }
}

PrototypeBlock::PrototypeBlock(const PrototypeBlock& o)
    : count_(o.count_), dim_(o.dim_), words_(o.words_), stride_(o.stride_) {
  // The alignment offset differs between buffers, so the payload is re-laid
  // out from the aligned base rather than the vector copied verbatim.
  align_and_zero();
  if (data_ != nullptr) {
    std::memcpy(data_, o.data_, words_ * stride_ * sizeof(std::uint64_t));
  }
}

PrototypeBlock& PrototypeBlock::operator=(const PrototypeBlock& o) {
  if (this == &o) return *this;
  count_ = o.count_;
  dim_ = o.dim_;
  words_ = o.words_;
  stride_ = o.stride_;
  align_and_zero();
  if (data_ != nullptr) {
    std::memcpy(data_, o.data_, words_ * stride_ * sizeof(std::uint64_t));
  }
  return *this;
}

PrototypeBlock::PrototypeBlock(PrototypeBlock&& o) noexcept
    : count_(o.count_),
      dim_(o.dim_),
      words_(o.words_),
      stride_(o.stride_),
      storage_(std::move(o.storage_)),
      data_(o.data_) {  // vector move keeps the heap buffer, so data_ holds
  o.count_ = o.dim_ = o.words_ = o.stride_ = 0;
  o.storage_.clear();
  o.data_ = nullptr;
}

PrototypeBlock& PrototypeBlock::operator=(PrototypeBlock&& o) noexcept {
  if (this == &o) return *this;
  count_ = o.count_;
  dim_ = o.dim_;
  words_ = o.words_;
  stride_ = o.stride_;
  storage_ = std::move(o.storage_);
  data_ = o.data_;
  o.count_ = o.dim_ = o.words_ = o.stride_ = 0;
  o.storage_.clear();
  o.data_ = nullptr;
  return *this;
}

Hypervector PrototypeBlock::get(std::size_t c) const {
  if (c >= count_) {
    throw std::out_of_range("PrototypeBlock: prototype index out of range");
  }
  Hypervector v(dim_);
  const std::span<std::uint64_t> vw = v.mutable_words();
  for (std::size_t w = 0; w < words_; ++w) {
    vw[w] = data_[w * stride_ + c];
  }
  return v;
}

void PrototypeBlock::hamming_many(const Hypervector& query,
                                  std::span<std::size_t> out,
                                  OpCounter* counter) const {
  if (out.size() != count_) {
    throw std::invalid_argument("PrototypeBlock: output size mismatch");
  }
  if (count_ == 0) return;
  if (query.dim() != dim_) {
    throw std::invalid_argument("PrototypeBlock: dimensionality mismatch");
  }
  // The kernel writes uint64 lane sums; size_t may be a distinct type, so
  // stage through a word buffer (stack for the common few-class case).
  std::array<std::uint64_t, 64> stack{};
  std::vector<std::uint64_t> heap;
  std::uint64_t* sums = stack.data();
  if (count_ > stack.size()) {
    heap.resize(count_);
    sums = heap.data();
  }
  kernels::active().hamming_block(query.words().data(), data_, words_, count_,
                                  stride_, sums);
  for (std::size_t c = 0; c < count_; ++c) {
    out[c] = static_cast<std::size_t>(sums[c]);
  }
  if (counter) {
    const auto ops = static_cast<std::uint64_t>(words_) * count_;
    counter->add(OpKind::kWordLogic, ops);
    counter->add(OpKind::kPopcount, ops);
  }
}

std::vector<std::size_t> PrototypeBlock::hamming_many(const Hypervector& query,
                                                      OpCounter* counter) const {
  std::vector<std::size_t> out(count_);
  hamming_many(query, out, counter);
  return out;
}

void PrototypeBlock::hamming_many_range(const Hypervector& query,
                                        std::size_t word_lo,
                                        std::size_t word_hi,
                                        std::span<std::size_t> out,
                                        OpCounter* counter) const {
  if (out.size() != count_) {
    throw std::invalid_argument("PrototypeBlock: output size mismatch");
  }
  if (count_ == 0) return;
  if (query.dim() != dim_) {
    throw std::invalid_argument("PrototypeBlock: dimensionality mismatch");
  }
  if (word_lo > word_hi || word_hi > words_) {
    throw std::invalid_argument("PrototypeBlock: word range out of bounds");
  }
  std::array<std::uint64_t, 64> stack{};
  std::vector<std::uint64_t> heap;
  std::uint64_t* sums = stack.data();
  if (count_ > stack.size()) {
    heap.resize(count_);
    sums = heap.data();
  }
  kernels::active().hamming_block_range(query.words().data(), data_, word_lo,
                                        word_hi, count_, stride_, sums);
  for (std::size_t c = 0; c < count_; ++c) {
    out[c] = static_cast<std::size_t>(sums[c]);
  }
  if (counter) {
    const auto ops = static_cast<std::uint64_t>(word_hi - word_lo) * count_;
    counter->add(OpKind::kWordLogic, ops);
    counter->add(OpKind::kPopcount, ops);
  }
}

}  // namespace hdface::core
