#pragma once

// SoA prototype block for batched similarity search.
//
// The associative-memory stage compares one query against every class
// prototype. Stored as separate Hypervectors (AoS), each comparison chases a
// different heap allocation and the inner loop reloads the query word per
// prototype. This block interleaves the prototypes word-first —
//
//   data[w * stride + c] = word w of prototype c
//
// — with `stride` = count rounded up to 8 lanes (one 64-byte cache line) and
// the base pointer 64-byte aligned, so kernels::hamming_block streams one
// broadcast query word against a full cache line of prototype words per
// step. Padding lanes c ∈ [count, stride) hold zeros; backends may read them
// but never write their results out.
//
// Results are bit-identical to calling hamming() per prototype, and the
// op-counter charge (words × count word-XORs and popcounts, padding
// excluded) matches the AoS hamming_many path exactly, so swapping a
// prototype vector for a block never changes an op total.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/hypervector.hpp"
#include "core/op_counter.hpp"

namespace hdface::core {

class PrototypeBlock {
 public:
  PrototypeBlock() = default;

  // Packs the given prototypes (all must share one dimensionality; an empty
  // span yields an empty block). Throws std::invalid_argument on a mismatch.
  explicit PrototypeBlock(std::span<const Hypervector> prototypes);

  PrototypeBlock(const PrototypeBlock& o);
  PrototypeBlock& operator=(const PrototypeBlock& o);
  PrototypeBlock(PrototypeBlock&& o) noexcept;
  PrototypeBlock& operator=(PrototypeBlock&& o) noexcept;
  ~PrototypeBlock() = default;

  std::size_t count() const { return count_; }
  std::size_t dim() const { return dim_; }
  std::size_t words() const { return words_; }
  std::size_t stride() const { return stride_; }
  bool empty() const { return count_ == 0; }

  // 64-byte-aligned word-interleaved payload (words() rows of stride()
  // lanes); null when empty.
  const std::uint64_t* data() const { return data_; }

  // Reconstructs prototype c (bounds-checked; for tests and serialization).
  Hypervector get(std::size_t c) const;

  // out[c] = hamming(query, prototype c) for every lane, via the active
  // kernel backend's SoA hamming_block. Exactly equal to the per-prototype
  // hamming() loop; charges words × count kWordLogic + kPopcount to
  // `counter` (the same as the AoS hamming_many). Throws
  // std::invalid_argument on dimensionality or size mismatch.
  void hamming_many(const Hypervector& query, std::span<std::size_t> out,
                    OpCounter* counter = nullptr) const;

  // Convenience allocation form.
  std::vector<std::size_t> hamming_many(const Hypervector& query,
                                        OpCounter* counter = nullptr) const;

  // Prefix/range variant for the early-reject cascade (pipeline/cascade.hpp):
  // out[c] = Hamming distance over only the words [word_lo, word_hi), so the
  // partial sums over a tiling of [0, words()) add up to exactly
  // hamming_many's result per lane. Bits of `query` outside the range are
  // ignored (a partially assembled query is fine as long as the range's words
  // are final). Charges (word_hi − word_lo) × count kWordLogic + kPopcount —
  // the exact prefix share of the full charge. Throws std::invalid_argument
  // on dimensionality/size mismatch or a range outside [0, words()].
  void hamming_many_range(const Hypervector& query, std::size_t word_lo,
                          std::size_t word_hi, std::span<std::size_t> out,
                          OpCounter* counter = nullptr) const;

 private:
  void align_and_zero();  // (re)derives data_ from storage_

  std::size_t count_ = 0;
  std::size_t dim_ = 0;
  std::size_t words_ = 0;
  std::size_t stride_ = 0;
  std::vector<std::uint64_t> storage_;  // payload + 64-byte alignment slack
  std::uint64_t* data_ = nullptr;       // aligned view into storage_
};

}  // namespace hdface::core
