#pragma once

// Integer bundling accumulator.
//
// Bundling many binary hypervectors by repeated pairwise majority loses
// information; the standard implementation keeps a per-dimension signed
// counter (each vote adds ±1) and thresholds once at the end. The accumulator
// also serves as the mutable class-prototype representation for HDC learning
// (paper §5), where adaptive updates add weighted bipolar queries.

#include <cstdint>
#include <vector>

#include "core/hypervector.hpp"
#include "core/op_counter.hpp"
#include "core/rng.hpp"

namespace hdface::core {

class Accumulator {
 public:
  Accumulator() = default;
  explicit Accumulator(std::size_t dim);

  std::size_t dim() const { return counts_.size(); }
  bool empty() const { return counts_.empty(); }

  // Adds `weight` × bipolar(v) to the counters (weight may be negative).
  void add(const Hypervector& v, double weight = 1.0);

  // Exactly add(a ^ b, weight) without materializing the XOR: the word-wise
  // loop selects ±weight per bit (IEEE sign flip is exact, so the counters
  // are bit-identical to the two-step form) and skips the temporary
  // hypervector allocation. This is the bundling hot path for window
  // assembly from the cell-plane cache. Counts the XOR's kWordLogic here
  // (callers must not count it again) plus the usual kIntAdd per dimension.
  void add_xor(const Hypervector& a, const Hypervector& b, double weight = 1.0);

  void reset();

  double count(std::size_t i) const { return counts_[i]; }
  const std::vector<double>& counts() const { return counts_; }

  // Replaces the counter vector (deserialization); size must match dim().
  void set_counts(std::vector<double> counts);

  // Majority threshold: dimension i becomes +1 if its counter is positive,
  // −1 if negative; exact zeros are broken by fair coin flips from rng.
  Hypervector threshold(Rng& rng) const;

  // Cosine similarity with a bipolar view of a binary hypervector.
  // Returns 0 for an all-zero accumulator.
  double cosine(const Hypervector& v) const;

  // L2 norm of the counter vector.
  double norm() const;

  // Optional op accounting (kIntAdd per dimension touched).
  void set_counter(OpCounter* counter) { op_counter_ = counter; }

 private:
  std::vector<double> counts_;
  OpCounter* op_counter_ = nullptr;
};

}  // namespace hdface::core
