#include "core/hypervector.hpp"

#include <stdexcept>

#include "core/kernels/kernels.hpp"
#include "util/check.hpp"

namespace hdface::core {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t dim) { return (dim + kWordBits - 1) / kWordBits; }

std::uint64_t tail_mask(std::size_t dim) {
  const std::size_t rem = dim % kWordBits;
  return rem == 0 ? ~0ULL : ((1ULL << rem) - 1);
}
}  // namespace

Hypervector::Hypervector(std::size_t dim) : dim_(dim), words_(words_for(dim), 0) {
  if (dim == 0) throw std::invalid_argument("Hypervector: dim must be > 0");
}

Hypervector Hypervector::random(std::size_t dim, Rng& rng) {
  Hypervector v(dim);
  for (auto& w : v.words_) w = rng.next();
  v.mask_tail();
  return v;
}

Hypervector Hypervector::bernoulli(std::size_t dim, double p, Rng& rng) {
  Hypervector v(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    if (rng.uniform() < p) v.set(i, true);
  }
  return v;
}

bool Hypervector::get(std::size_t i) const {
  HD_DCHECK(i < dim_, "bit index past the hypervector dimension reads an "
                      "out-of-bounds packed word");
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void Hypervector::set(std::size_t i, bool value) {
  HD_DCHECK(i < dim_, "bit index past the hypervector dimension writes an "
                      "out-of-bounds packed word");
  const std::uint64_t bit = 1ULL << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= bit;
  } else {
    words_[i / kWordBits] &= ~bit;
  }
}

void Hypervector::flip(std::size_t i) {
  HD_DCHECK(i < dim_, "bit index past the hypervector dimension flips an "
                      "out-of-bounds packed word");
  words_[i / kWordBits] ^= 1ULL << (i % kWordBits);
}

std::size_t Hypervector::popcount() const {
  return static_cast<std::size_t>(
      kernels::active().popcount_words(words_.data(), words_.size()));
}

void Hypervector::check_compatible(const Hypervector& o) const {
  if (dim_ != o.dim_) {
    throw std::invalid_argument("Hypervector: dimensionality mismatch");
  }
}

Hypervector Hypervector::operator^(const Hypervector& o) const {
  check_compatible(o);
  Hypervector r(dim_);
  kernels::active().xor_words(words_.data(), o.words_.data(), r.words_.data(),
                              words_.size());
  return r;
}

Hypervector Hypervector::operator&(const Hypervector& o) const {
  check_compatible(o);
  Hypervector r(dim_);
  kernels::active().and_words(words_.data(), o.words_.data(), r.words_.data(),
                              words_.size());
  return r;
}

Hypervector Hypervector::operator|(const Hypervector& o) const {
  check_compatible(o);
  Hypervector r(dim_);
  kernels::active().or_words(words_.data(), o.words_.data(), r.words_.data(),
                             words_.size());
  return r;
}

Hypervector Hypervector::operator~() const {
  Hypervector r(dim_);
  kernels::active().not_words(words_.data(), r.words_.data(), words_.size());
  r.mask_tail();
  return r;
}

Hypervector& Hypervector::operator^=(const Hypervector& o) {
  check_compatible(o);
  kernels::active().xor_words(words_.data(), o.words_.data(), words_.data(),
                              words_.size());
  return *this;
}

Hypervector Hypervector::rotated(std::size_t k) const {
  HD_CHECK(dim_ > 0, "rotating a default-constructed (dimension-0) "
                     "hypervector divides by zero");
  Hypervector r(dim_);
  k %= dim_;
  if (k == 0) return *this;
  // Bit i of the result takes bit (i - k) mod dim of the source.
  for (std::size_t i = 0; i < dim_; ++i) {
    const std::size_t src = (i + dim_ - k) % dim_;
    if (get(src)) r.set(i, true);
  }
  return r;
}

void Hypervector::mask_tail() {
  if (!words_.empty()) words_.back() &= tail_mask(dim_);
}

void Hypervector::apply_fault_pattern(const Hypervector& clear,
                                      const Hypervector& set,
                                      const Hypervector& flip) {
  check_compatible(clear);
  check_compatible(set);
  check_compatible(flip);
  const auto cw = clear.words();
  const auto sw = set.words();
  const auto fw = flip.words();
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = ((words_[i] & ~cw[i]) | sw[i]) ^ fw[i];
  }
  mask_tail();
}

std::size_t hamming(const Hypervector& a, const Hypervector& b) {
  if (a.dim() != b.dim()) {
    throw std::invalid_argument("hamming: dimensionality mismatch");
  }
  const auto wa = a.words();
  return static_cast<std::size_t>(
      kernels::active().hamming_words(wa.data(), b.words().data(), wa.size()));
}

void hamming_many(const Hypervector& query,
                  std::span<const Hypervector> prototypes,
                  std::span<std::size_t> out, OpCounter* counter) {
  if (out.size() != prototypes.size()) {
    throw std::invalid_argument("hamming_many: output size mismatch");
  }
  for (const auto& p : prototypes) {
    if (p.dim() != query.dim()) {
      throw std::invalid_argument("hamming_many: dimensionality mismatch");
    }
  }
  const auto qw = query.words();
  const std::size_t nw = qw.size();
  // AoS prototypes can't use the SoA hamming_block kernel; one dispatched
  // hamming_words pass per prototype still vectorizes the word loop. Hot
  // callers pack a core::PrototypeBlock instead.
  const kernels::KernelTable& k = kernels::active();
  for (std::size_t c = 0; c < prototypes.size(); ++c) {
    out[c] = static_cast<std::size_t>(
        k.hamming_words(qw.data(), prototypes[c].words().data(), nw));
  }
  if (counter) {
    const auto ops = static_cast<std::uint64_t>(nw) * prototypes.size();
    counter->add(OpKind::kWordLogic, ops);
    counter->add(OpKind::kPopcount, ops);
  }
}

std::vector<std::size_t> hamming_many(const Hypervector& query,
                                      std::span<const Hypervector> prototypes,
                                      OpCounter* counter) {
  std::vector<std::size_t> out(prototypes.size());
  hamming_many(query, prototypes, out, counter);
  return out;
}

double similarity(const Hypervector& a, const Hypervector& b) {
  return 1.0 - 2.0 * static_cast<double>(hamming(a, b)) / static_cast<double>(a.dim());
}

}  // namespace hdface::core
