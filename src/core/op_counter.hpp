#pragma once

// Operation-count instrumentation shared by every compute layer.
//
// HDFace's efficiency claims (paper Fig 7) are about *operation mix*: the HDC
// pipeline is bitwise-word-parallel while the float pipeline is multiply/
// transcendental heavy. Every substrate in this repository reports its work
// through an OpCounter; src/perf maps the counts onto CPU/FPGA cycle and
// energy models.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace hdface::core {

enum class OpKind : std::size_t {
  kWordLogic = 0,  // 64-bit AND/OR/XOR/NOT over hypervector words
  kPopcount,       // 64-bit population count
  kRngWord,        // 64 random bits drawn (mask generation)
  kIntAdd,         // integer add/sub (accumulators, histograms)
  kFloatAdd,       // float add/sub/accumulate
  kFloatMul,       // float multiply (MACs count one mul + one add)
  kFloatDiv,       // float divide
  kFloatSqrt,      // float square root
  kFloatTrig,      // atan2 / cos / sin / exp class transcendental
  kFloatCmp,       // float compare / select
  kCount
};

constexpr std::size_t kOpKindCount = static_cast<std::size_t>(OpKind::kCount);

constexpr std::string_view op_kind_name(OpKind k) {
  constexpr std::string_view names[kOpKindCount] = {
      "word_logic", "popcount",  "rng_word",  "int_add",  "float_add",
      "float_mul",  "float_div", "float_sqrt", "float_trig", "float_cmp"};
  return names[static_cast<std::size_t>(k)];
}

// Plain counter bucket. Not thread-safe by design: use one per worker and
// merge() afterwards.
struct OpCounter {
  std::array<std::uint64_t, kOpKindCount> counts{};

  void add(OpKind kind, std::uint64_t n) {
    counts[static_cast<std::size_t>(kind)] += n;
  }
  std::uint64_t get(OpKind kind) const {
    return counts[static_cast<std::size_t>(kind)];
  }
  void reset() { counts.fill(0); }
  void merge(const OpCounter& other) {
    for (std::size_t i = 0; i < kOpKindCount; ++i) counts[i] += other.counts[i];
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : counts) t += c;
    return t;
  }
};

// Thread-safe accumulation mode: one cache-line-padded OpCounter per worker
// shard, merged on read. Distinct shards may be written concurrently without
// synchronization (no shared cache lines, no atomics on the hot path); the
// merged totals are exact because addition is order-independent. This is the
// counter the parallel detection engine hands to its workers.
//
// Sharded counters are deliberately *outside* the capability-annotation
// layer (util/thread_annotations.hpp): there is no lock to name. Safety
// rests on an ownership discipline instead — shard(i) is exclusively the
// claiming worker's for the duration of the dispatch, and combined()/total()
// run only after the parallel region joins. hdlint's
// ref-capture-thread-lambda rule keeps the claim sites explicit (each
// worker lambda names the sharded counter it captures), and the tsan preset
// exercises the discipline under load.
class ShardedOpCounter {
 public:
  explicit ShardedOpCounter(std::size_t shards) : shards_(shards ? shards : 1) {}

  std::size_t num_shards() const { return shards_.size(); }

  // Shard i is exclusively the caller's; concurrent use of distinct shards
  // is safe, concurrent use of one shard is not.
  OpCounter& shard(std::size_t i) { return shards_[i].counter; }

  OpCounter combined() const {
    OpCounter out;
    for (const auto& s : shards_) out.merge(s.counter);
    return out;
  }

  void reset() {
    for (auto& s : shards_) s.counter.reset();
  }

 private:
  struct alignas(64) PaddedCounter {
    OpCounter counter;
  };
  std::vector<PaddedCounter> shards_;
};

// Cache-line-padded integer tally with the same sharding discipline as
// ShardedOpCounter: each worker owns a shard, totals merge by addition, so
// the combined count is exact and identical at every thread count. Used by
// evaluation sweeps (hit counting) where a full OpCounter is overkill.
class ShardedTally {
 public:
  explicit ShardedTally(std::size_t shards) : shards_(shards ? shards : 1) {}

  std::size_t num_shards() const { return shards_.size(); }

  // Shard i is exclusively the caller's (same rule as ShardedOpCounter).
  std::uint64_t& shard(std::size_t i) { return shards_[i].value; }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& s : shards_) t += s.value;
    return t;
  }

  void reset() {
    for (auto& s : shards_) s.value = 0;
  }

 private:
  struct alignas(64) PaddedValue {
    std::uint64_t value = 0;
  };
  std::vector<PaddedValue> shards_;
};

}  // namespace hdface::core
