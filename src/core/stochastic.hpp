#pragma once

// Stochastic arithmetic over binary hypervectors (paper §4).
//
// A fixed random basis hypervector V₁ represents the number 1; a hypervector
// V_a represents a ∈ [−1, 1] iff δ(V_a, V₁) = a, i.e. V_a agrees with V₁ on a
// (1+a)/2 fraction of dimensions. Under this representation:
//
//   negation        −a  :  element-wise flip                 (exact)
//   weighted avg  pa+qb :  per-dim random select, p + q = 1  (E exact, ±σ)
//   multiplication  ab  :  V_a ^ V_b ^ V₁                    (E exact for
//                          independently-random operands, ±σ)
//   decode          a   :  δ(V_a, V₁) via XOR+popcount       (exact readout)
//   divide / sqrt       :  binary search per the paper's §4.2 algorithm
//
// σ ~ 1/√D is the binomial sampling noise; Fig 2 of the paper (reproduced by
// bench/fig2_arith_error) shows how it shrinks with dimensionality.
//
// Independence caveat: the multiplication identity requires the two operands'
// randomness to be independent given V₁. The paper squares gradient vectors as
// V_G ⊗ V_G, which taken literally always yields V₁ (≡ 1). We decorrelate by
// regeneration — decode the operand exactly and re-construct a fresh
// representation — the standard stochastic-computing fix (see DESIGN.md §2 and
// bench/ablation_stochastic).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/hypervector.hpp"
#include "core/op_counter.hpp"
#include "core/rng.hpp"

namespace hdface::core {

struct StochasticConfig {
  std::size_t dim = 4096;
  std::uint64_t seed = 0x5eed;
  // Binary-search iterations for divide / sqrt. Interval error is 2^-iters,
  // on top of the ~1/√D stochastic noise. 0 = auto: ⌈log₂√D⌉ + 1, i.e. just
  // past the point where the interval term sinks below the stochastic noise.
  int search_iters = 0;
  // Probability resolution of Bernoulli masks: 2^-mask_bits (fresh-mask mode).
  int mask_bits = 16;
  // Selection-mask pool: > 0 enables reuse of precomputed Bernoulli masks
  // (pool entries per quantized probability bucket). This is how optimized
  // software/hardware implementations supply stochastic selection bits (LFSR
  // banks / mask ROMs) instead of running a fresh RNG chain per operation —
  // it cuts host time and modeled cost by ~an order of magnitude. Reuse
  // introduces a small collision probability (1/pool per operand pair, mildly
  // correlating results); bench/ablation_stochastic quantifies the effect.
  // 0 = always generate fresh masks. Pool mode quantizes probabilities to 8
  // bits (matching 8-bit pixel depth).
  std::size_t mask_pool = 64;
};

class StochasticContext {
 public:
  explicit StochasticContext(const StochasticConfig& config);
  StochasticContext(std::size_t dim, std::uint64_t seed)
      : StochasticContext(StochasticConfig{.dim = dim, .seed = seed}) {}

  std::size_t dim() const { return config_.dim; }
  const StochasticConfig& config() const { return config_; }

  // The basis hypervector V₁ (represents +1). Its negation represents −1.
  const Hypervector& basis() const { return basis_; }

  // Construct a fresh representation V_a of a ∈ [−1, 1] (clamped).
  Hypervector construct(double a);

  // Exact readout: δ(v, V₁).
  double decode(const Hypervector& v) const;

  // C = p·a ⊕ (1−p)·b : per-dimension random selection (paper's ⊕).
  Hypervector weighted_average(const Hypervector& a, const Hypervector& b,
                               double p);

  // Represents (a+b)/2 — the paper's addition (used for HOG gradients).
  Hypervector add_halved(const Hypervector& a, const Hypervector& b) {
    return weighted_average(a, b, 0.5);
  }

  // Represents (a−b)/2.
  Hypervector sub_halved(const Hypervector& a, const Hypervector& b) {
    return weighted_average(a, ~b, 0.5);
  }

  // V_{ab} = V_a ^ V_b ^ V₁. Operands must carry independent randomness.
  Hypervector multiply(const Hypervector& a, const Hypervector& b);

  // Fresh representation of the same value (decorrelation).
  Hypervector regenerate(const Hypervector& v) { return construct(decode(v)); }

  // a² with regeneration-based decorrelation.
  Hypervector square(const Hypervector& v);

  // V_{c·a} for a constant c ∈ [−1, 1]: average with a fresh zero vector.
  Hypervector scale(const Hypervector& v, double c);

  // |a| (sign read out via decode, then conditional flip).
  Hypervector abs(const Hypervector& v);

  // √a for a ∈ [0, 1] via the paper's binary-search algorithm (negative
  // inputs, which arise only from stochastic noise around 0, clamp to 0).
  Hypervector sqrt(const Hypervector& v);

  // a/b clamped to [−1, 1], via binary search with multiply + compare.
  Hypervector divide(const Hypervector& a, const Hypervector& b);

  // Hyperspace comparison: sign of δ(0.5a ⊕ 0.5(−b), V₁) with margin eps
  // (default 2/√D, the statistical noise floor). Returns −1, 0 or +1.
  int compare(const Hypervector& a, const Hypervector& b, double eps = -1.0);

  // Sign of the represented value, with the same margin convention.
  int sign_of(const Hypervector& v, double eps = -1.0) const;

  // Fresh representation of zero.
  Hypervector zero() { return construct(0.0); }

  // Bernoulli selection mask: each bit 1 with probability p (quantized to
  // mask_bits of precision). Exposed for tests and the item memory.
  Hypervector bernoulli_mask(double p);

  // Borrowed view of a pooled Bernoulli mask: the pool entry's words plus
  // the word-rotation offset bernoulli_mask(p) would have applied. Mask word
  // i is words[(i + offset) % n] — callers (the batched cell encoder) apply
  // the rotation as two contiguous kernel segments instead of materializing
  // the rotated copy. pooled_mask_view(p) advances the RNG chain and charges
  // the counter exactly like bernoulli_mask(p) in pool mode, so the two are
  // interchangeable draw-for-draw. Only valid while the pool outlives the
  // view; requires pooled_fast_path() (throws std::logic_error otherwise).
  struct PooledMaskView {
    const std::uint64_t* words = nullptr;
    std::size_t offset = 0;
  };
  PooledMaskView pooled_mask_view(double p);

  // True when pooled_mask_view can stand in for bernoulli_mask: pool mode
  // enabled and warmed (so the draw is a pure pool lookup, never a lazy
  // fill) and dim a whole number of words (so rotation never touches tail
  // bits and complement identities like popcount(~w) = 64 − popcount(w)
  // hold word-exactly).
  bool pooled_fast_path() const {
    return config_.mask_pool > 0 && pool_warmed_ && config_.dim % 64 == 0;
  }

  // Optional op accounting.
  void set_counter(OpCounter* counter) { counter_ = counter; }
  OpCounter* counter() const { return counter_; }

  // Effective binary-search iteration count (resolves the auto setting).
  int effective_search_iters() const;

  // --- concurrency support ---------------------------------------------------
  //
  // A context is single-threaded: the RNG chain and the lazily-filled mask
  // pool are mutable state. Concurrent encoding instead uses *forks*: a fork
  // shares the basis V₁ and the (immutable once warmed) mask pool with its
  // parent, but owns an independent RNG chain and counter pointer, so any
  // number of forks may run on different threads at once.
  //
  // Determinism contract: after `reseed(s)`, every operation sequence on the
  // fork is a pure function of (basis, warmed pool, s) — independent of which
  // thread runs it or what other forks do. The parallel detection engine
  // reseeds per window with a seed derived from the window index, which makes
  // parallel scans bit-identical to serial ones.

  // Fill every mask-pool bucket up front so that forks never race on the lazy
  // fill. Idempotent; draws from this context's RNG chain in bucket order on
  // first call. No-op when mask_pool == 0.
  void warm_pool();
  bool pool_warmed() const { return pool_warmed_; }

  // Independent-stream copy sharing basis + pool. Requires warm_pool() first
  // (throws std::logic_error otherwise) unless mask_pool == 0.
  StochasticContext fork(std::uint64_t stream_seed) const;

  // Restart the RNG chain from a fixed seed (per-window determinism).
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  // --- fault-injection hooks -------------------------------------------------
  //
  // The warmed mask pool is the software analogue of a hardware mask ROM /
  // LFSR bank — stored hypervector material that device-level faults can
  // corrupt. These hooks give the fault subsystem (pipeline::FaultSession)
  // mutable access to that storage. The pool is shared with every fork, so a
  // patched entry is read by all scan workers, and restoring the clean words
  // heals every fork at once. Mutation is only safe while no fork is
  // concurrently reading (inject before dispatch, restore after).

  // Number of quantized probability buckets (0 when pooling is disabled).
  std::size_t pool_buckets() const { return pool_ ? pool_->size() : 0; }

  // Mutable view of one warmed bucket. Throws std::logic_error before
  // warm_pool() — patching a lazily-filled pool would race with the fill.
  std::vector<Hypervector>& mutable_pool_bucket(std::size_t bucket);

 private:
  void count(OpKind kind, std::uint64_t n) {
    if (counter_) counter_->add(kind, n);
  }
  double default_eps() const;
  Hypervector fresh_mask(double p);

  StochasticConfig config_;
  Rng rng_;
  Hypervector basis_;
  OpCounter* counter_ = nullptr;
  // (*pool_)[bucket] lazily holds `mask_pool` masks for probability
  // bucket/255. Shared (read-only once warmed) between a context and its
  // forks; only the owning context may lazy-fill, and never after forking.
  std::shared_ptr<std::vector<std::vector<Hypervector>>> pool_;
  bool pool_warmed_ = false;
};

}  // namespace hdface::core
