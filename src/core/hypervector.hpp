#pragma once

// Binary (bipolar ±1) hypervector with packed 64-bit-word storage.
//
// Semantics: each dimension holds an element of {-1, +1}; bit value 1 encodes
// +1 and bit value 0 encodes -1. Similarity between two hypervectors is the
// normalized dot product δ(A, B) = A·B / D = 1 − 2·hamming(A, B)/D, computed
// with XOR + popcount. Dimensions need not be a multiple of 64; the bits of
// the final word beyond `dim` are kept at zero as a class invariant so that
// popcount-based reductions never see garbage.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/op_counter.hpp"
#include "core/rng.hpp"

namespace hdface::core {

class Hypervector {
 public:
  Hypervector() = default;

  // All-zero-bit (all −1 elements) hypervector of the given dimensionality.
  explicit Hypervector(std::size_t dim);

  // i.i.d. fair random hypervector.
  static Hypervector random(std::size_t dim, Rng& rng);

  // Random hypervector whose bits are 1 (element +1) with probability p.
  static Hypervector bernoulli(std::size_t dim, double p, Rng& rng);

  std::size_t dim() const { return dim_; }
  std::size_t num_words() const { return words_.size(); }
  bool empty() const { return dim_ == 0; }

  std::span<const std::uint64_t> words() const { return words_; }
  std::span<std::uint64_t> mutable_words() { return words_; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  // Number of set bits (+1 elements).
  std::size_t popcount() const;

  // Bitwise operators (element-wise over the packed words). Operands must
  // share the same dimensionality.
  Hypervector operator^(const Hypervector& o) const;
  Hypervector operator&(const Hypervector& o) const;
  Hypervector operator|(const Hypervector& o) const;
  Hypervector operator~() const;  // element-wise negation: V → −V
  Hypervector& operator^=(const Hypervector& o);

  bool operator==(const Hypervector& o) const = default;

  // Circular rotation by k positions (the HDC permutation primitive ρ).
  Hypervector rotated(std::size_t k) const;

  // Element at i as ±1.
  int element(std::size_t i) const { return get(i) ? +1 : -1; }

  // Restores the zero-tail invariant after external word mutation.
  void mask_tail();

  // Fault-injection hook (noise/fault_model.hpp): applies a raw bit-level
  // fault pattern v ← ((v & ~clear) | set) ^ flip word-wise, then re-imposes
  // the zero-tail invariant so popcount-based reductions stay correct even
  // when a fault pattern touches the tail word. Operands must share this
  // dimensionality.
  void apply_fault_pattern(const Hypervector& clear, const Hypervector& set,
                           const Hypervector& flip);

 private:
  void check_compatible(const Hypervector& o) const;

  std::size_t dim_ = 0;
  std::vector<std::uint64_t> words_;
};

// Number of dimensions at which a and b differ.
std::size_t hamming(const Hypervector& a, const Hypervector& b);

// Batched multi-prototype Hamming: out[c] = hamming(query, prototypes[c])
// for every class plane via the dispatched XOR+popcount kernel (the
// similarity-search hot loop of classifier inference — one query against all
// class prototypes; callers with a stable prototype set should pack a
// core::PrototypeBlock and use its SoA hamming_many instead). Exactly
// equal to calling hamming() per prototype, just cheaper. When `counter` is
// set, the word XORs and popcounts are charged to it (one of each per
// prototype word). Throws std::invalid_argument on any dimensionality
// mismatch or when out.size() != prototypes.size().
void hamming_many(const Hypervector& query,
                  std::span<const Hypervector> prototypes,
                  std::span<std::size_t> out, OpCounter* counter = nullptr);

// Convenience allocation form.
std::vector<std::size_t> hamming_many(const Hypervector& query,
                                      std::span<const Hypervector> prototypes,
                                      OpCounter* counter = nullptr);

// Normalized dot-product similarity δ(a, b) = 1 − 2·hamming/D ∈ [−1, 1].
double similarity(const Hypervector& a, const Hypervector& b);

// XOR binding (self-inverse association operator).
inline Hypervector bind(const Hypervector& a, const Hypervector& b) {
  return a ^ b;
}

// Permutation primitive ρ^k.
inline Hypervector permute(const Hypervector& v, std::size_t k) {
  return v.rotated(k);
}

}  // namespace hdface::core
