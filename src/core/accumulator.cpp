#include "core/accumulator.hpp"

#include <cmath>
#include <stdexcept>

#include "core/kernels/kernels.hpp"

namespace hdface::core {

Accumulator::Accumulator(std::size_t dim) : counts_(dim, 0.0) {
  if (dim == 0) throw std::invalid_argument("Accumulator: dim must be > 0");
}

void Accumulator::add(const Hypervector& v, double weight) {
  if (v.dim() != counts_.size()) {
    throw std::invalid_argument("Accumulator: dimensionality mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += weight * static_cast<double>(v.element(i));
  }
  if (op_counter_) op_counter_->add(OpKind::kIntAdd, counts_.size());
}

void Accumulator::add_xor(const Hypervector& a, const Hypervector& b,
                          double weight) {
  if (a.dim() != counts_.size() || b.dim() != counts_.size()) {
    throw std::invalid_argument("Accumulator: dimensionality mismatch");
  }
  const std::span<const std::uint64_t> aw = a.words();
  const std::span<const std::uint64_t> bw = b.words();
  const std::size_t dim = counts_.size();
  // The dispatched kernel performs the branchless ±weight select (every
  // backend adds exactly ±weight once per dimension, so the result is
  // bit-identical regardless of backend).
  kernels::active().add_xor_weighted(aw.data(), bw.data(), dim, weight,
                                     counts_.data());
  if (op_counter_) {
    op_counter_->add(OpKind::kWordLogic, aw.size());
    op_counter_->add(OpKind::kIntAdd, dim);
  }
}

void Accumulator::reset() {
  for (auto& c : counts_) c = 0.0;
}

void Accumulator::set_counts(std::vector<double> counts) {
  if (counts.size() != counts_.size()) {
    throw std::invalid_argument("Accumulator: set_counts size mismatch");
  }
  counts_ = std::move(counts);
}

Hypervector Accumulator::threshold(Rng& rng) const {
  if (counts_.empty()) throw std::logic_error("Accumulator: empty");
  Hypervector out(counts_.size());
  const std::size_t zeros = kernels::active().threshold_words(
      counts_.data(), counts_.size(), out.mutable_words().data());
  if (zeros != 0) {
    // Tie-break pass stays scalar so the RNG stream is identical on every
    // backend: one draw per exact zero, in ascending dimension order.
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0.0 && (rng.next() & 1ULL)) out.set(i, true);
    }
  }
  return out;
}

double Accumulator::cosine(const Hypervector& v) const {
  if (v.dim() != counts_.size()) {
    throw std::invalid_argument("Accumulator: dimensionality mismatch");
  }
  double dot = 0.0;
  double nrm = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    dot += counts_[i] * static_cast<double>(v.element(i));
    nrm += counts_[i] * counts_[i];
  }
  if (op_counter_) {
    op_counter_->add(OpKind::kFloatMul, 2 * counts_.size());
    op_counter_->add(OpKind::kFloatAdd, 2 * counts_.size());
  }
  if (nrm == 0.0) return 0.0;
  // Query norm is √D exactly for bipolar vectors.
  return dot / (std::sqrt(nrm) * std::sqrt(static_cast<double>(counts_.size())));
}

double Accumulator::norm() const {
  double nrm = 0.0;
  for (auto c : counts_) nrm += c * c;
  return std::sqrt(nrm);
}

}  // namespace hdface::core
