#pragma once

// Base hypervector generation via vector quantization (paper §3, Fig 1a).
//
// Pixel intensities map to *correlative* level hypervectors: the extreme
// values get (nearly) orthogonal representations and intermediate values
// interpolate by taking a proportional share of dimensions from each extreme.
// Built over the stochastic-arithmetic basis so that level t ∈ [lo, hi]
// simultaneously *represents the number t* (δ(level(t), V₁) = t), which is
// what lets HD-HOG run arithmetic directly on pixel hypervectors.

#include <vector>

#include "core/hypervector.hpp"
#include "core/stochastic.hpp"

namespace hdface::core {

class LevelItemMemory {
 public:
  // Quantizes [lo, hi] ⊆ [−1, 1] into `levels` hypervectors. Adjacent levels
  // differ in a contiguous block of a fixed random flip order, so similarity
  // between levels decays linearly with value distance (correlative coding).
  LevelItemMemory(StochasticContext& ctx, std::size_t levels, double lo = 0.0,
                  double hi = 1.0);

  std::size_t levels() const { return table_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  // Level hypervector by index.
  const Hypervector& level(std::size_t i) const { return table_.at(i); }

  // Nearest level for a value (clamped to [lo, hi]).
  const Hypervector& at_value(double v) const;
  std::size_t index_of(double v) const;

  // The value a level represents under the stochastic-arithmetic semantics.
  double value_of_level(std::size_t i) const;

  // Fault-injection hook (noise/fault_model.hpp): mutable access to the
  // stored words of one level. Every read accessor keeps returning the
  // (possibly faulted) stored contents — exactly what a stuck-at fault in a
  // level ROM does. The caller owns restoring the clean bits; see
  // pipeline::FaultSession for the copy-on-inject / restore-verified wrapper.
  Hypervector& mutable_level(std::size_t i);

 private:
  double value_of_level_impl(std::size_t i, std::size_t levels) const;

  double lo_;
  double hi_;
  std::vector<Hypervector> table_;
};

}  // namespace hdface::core
