#pragma once

// Deterministic random number generation for the HDC substrate.
//
// All stochastic-arithmetic randomness flows through these generators so that
// every experiment in the repository is reproducible from a single seed.
// SplitMix64 seeds streams; xoshiro256** produces the bulk 64-bit words used
// for hypervector material and Bernoulli selection masks.

#include <array>
#include <cstdint>

namespace hdface::core {

// One SplitMix64 step; also usable as a 64-bit mixing/hash function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Stateless mix of two 64-bit values into one (for deriving per-item seeds).
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b * 0x9E3779B97F4A7C15ULL);
  return splitmix64(s);
}

// xoshiro256** — fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : s_{} {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Rejection-free multiply-shift; bias < 2^-64, irrelevant for our sizes.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Normal(0, 1) via Box–Muller (used by the nonlinear encoder baseline).
  double gaussian() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_;
};

}  // namespace hdface::core
