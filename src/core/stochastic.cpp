#include "core/stochastic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace hdface::core {

namespace {
double clamp_unit(double x) { return std::clamp(x, -1.0, 1.0); }
}  // namespace

StochasticContext::StochasticContext(const StochasticConfig& config)
    : config_(config), rng_(config.seed), basis_(Hypervector::random(config.dim, rng_)) {
  if (config.dim == 0) throw std::invalid_argument("StochasticContext: dim must be > 0");
  if (config.mask_bits < 1 || config.mask_bits > 30) {
    throw std::invalid_argument("StochasticContext: mask_bits out of range");
  }
  if (config.search_iters < 0) {
    throw std::invalid_argument("StochasticContext: search_iters must be >= 0");
  }
  if (config.mask_pool > 0) {
    pool_ = std::make_shared<std::vector<std::vector<Hypervector>>>(256);
  }
}

void StochasticContext::warm_pool() {
  if (config_.mask_pool == 0 || pool_warmed_) return;
  OpCounter* saved = counter_;
  counter_ = nullptr;  // pool construction is setup cost, not runtime cost
  for (std::size_t bucket = 0; bucket < pool_->size(); ++bucket) {
    auto& masks = (*pool_)[bucket];
    while (masks.size() < config_.mask_pool) {
      masks.push_back(fresh_mask(static_cast<double>(bucket) / 255.0));
    }
  }
  counter_ = saved;
  pool_warmed_ = true;
}

StochasticContext StochasticContext::fork(std::uint64_t stream_seed) const {
  if (config_.mask_pool > 0 && !pool_warmed_) {
    throw std::logic_error("StochasticContext::fork: warm_pool() first");
  }
  StochasticContext out(*this);  // shares pool_, copies basis/config
  out.rng_ = Rng(stream_seed);
  out.counter_ = nullptr;
  return out;
}

std::vector<Hypervector>& StochasticContext::mutable_pool_bucket(
    std::size_t bucket) {
  if (!pool_ || !pool_warmed_) {
    throw std::logic_error(
        "StochasticContext::mutable_pool_bucket: warm_pool() first");
  }
  return pool_->at(bucket);
}

int StochasticContext::effective_search_iters() const {
  if (config_.search_iters > 0) return config_.search_iters;
  // Stop once the interval term 2^-iters sinks below the ~1/√D noise floor.
  int iters = 1;
  while ((1u << iters) * (1u << iters) < config_.dim && iters < 16) ++iters;
  return iters + 1;
}

Hypervector StochasticContext::bernoulli_mask(double p) {
  // NaN survives std::clamp and would turn llround() into an out-of-bounds
  // pool-bucket index — a silent wild read in the unchecked build.
  HD_CHECK(!std::isnan(p), "bernoulli_mask: NaN probability (upstream "
                           "arithmetic produced a poisoned value)");
  p = std::clamp(p, 0.0, 1.0);
  if (config_.mask_pool == 0) return fresh_mask(p);
  // Pool mode: quantize the probability to 8 bits, lazily fill the bucket's
  // pool, and pick a pool entry at random (one RNG draw, two word reads).
  const auto bucket =
      static_cast<std::size_t>(std::llround(p * 255.0));
  auto& masks = (*pool_)[bucket];
  if (masks.size() < config_.mask_pool) {
    // Fill the whole bucket on first use so op accounting is amortized.
    OpCounter* saved = counter_;
    counter_ = nullptr;  // pool construction is setup cost, not runtime cost
    while (masks.size() < config_.mask_pool) {
      masks.push_back(fresh_mask(static_cast<double>(bucket) / 255.0));
    }
    counter_ = saved;
  }
  count(OpKind::kRngWord, 1);  // pool index + rotation draw
  count(OpKind::kWordLogic, basis_.num_words());  // mask stream read
  const Hypervector& entry = masks[rng_.below(masks.size())];
  // Rotation decorrelation: a random circular shift turns `mask_pool` stored
  // masks into pool × (D/64) effectively distinct ones, so collisions between
  // any two drawn masks are ~1/(pool·words) — negligible even inside the
  // square/compare decorrelation paths. Word-granular rotation is free in
  // hardware (address offset) and a copy on the host.
  if (config_.dim % 64 == 0) {
    const std::size_t words = entry.num_words();
    const std::size_t off = rng_.below(words);
    if (off == 0) return entry;
    Hypervector out(config_.dim);
    auto ow = out.mutable_words();
    const auto ew = entry.words();
    for (std::size_t i = 0; i < words; ++i) ow[i] = ew[(i + off) % words];
    return out;
  }
  return entry.rotated(rng_.below(config_.dim));
}

StochasticContext::PooledMaskView StochasticContext::pooled_mask_view(
    double p) {
  if (!pooled_fast_path()) {
    throw std::logic_error(
        "pooled_mask_view: requires pool mode, a warmed pool, and dim % 64 "
        "== 0 (check pooled_fast_path() first)");
  }
  // Mirror bernoulli_mask's pool path draw-for-draw: same NaN contract, same
  // clamp/quantization, same counter charges, same two RNG draws (pool index
  // then word rotation) — only the rotated copy is never materialized.
  HD_CHECK(!std::isnan(p), "pooled_mask_view: NaN probability (upstream "
                           "arithmetic produced a poisoned value)");
  p = std::clamp(p, 0.0, 1.0);
  const auto bucket = static_cast<std::size_t>(std::llround(p * 255.0));
  const auto& masks = (*pool_)[bucket];
  count(OpKind::kRngWord, 1);  // pool index + rotation draw
  count(OpKind::kWordLogic, basis_.num_words());  // mask stream read
  const Hypervector& entry = masks[rng_.below(masks.size())];
  const std::size_t off = rng_.below(entry.num_words());
  return PooledMaskView{entry.words().data(), off};
}

Hypervector StochasticContext::fresh_mask(double p) {
  HD_CHECK(!std::isnan(p), "fresh_mask: NaN probability (upstream "
                           "arithmetic produced a poisoned value)");
  p = std::clamp(p, 0.0, 1.0);
  const int bits = config_.mask_bits;
  const auto scale = static_cast<std::uint64_t>(1) << bits;
  const auto p_fixed =
      static_cast<std::uint64_t>(std::llround(p * static_cast<double>(scale)));

  Hypervector mask(config_.dim);
  auto words = mask.mutable_words();
  if (p_fixed == 0) return mask;
  if (p_fixed >= scale) {
    for (auto& w : words) w = ~0ULL;
    mask.mask_tail();
    count(OpKind::kWordLogic, words.size());
    return mask;
  }
  // Binary-expansion trick: process the fixed-point bits of p from LSB to
  // MSB; OR with a fresh fair word doubles-and-adds the probability, AND
  // halves it. After `bits` steps every bit is 1 with probability p exactly
  // (to mask_bits precision).
  for (auto& w : words) {
    std::uint64_t acc = 0;
    for (int i = 0; i < bits; ++i) {
      const std::uint64_t r = rng_.next();
      acc = ((p_fixed >> i) & 1ULL) ? (acc | r) : (acc & r);
    }
    w = acc;
  }
  mask.mask_tail();
  count(OpKind::kRngWord, words.size() * static_cast<std::uint64_t>(bits));
  count(OpKind::kWordLogic, words.size() * static_cast<std::uint64_t>(bits));
  return mask;
}

Hypervector StochasticContext::construct(double a) {
  HD_CHECK(!std::isnan(a), "construct: NaN value cannot be represented");
  a = clamp_unit(a);
  // Flip each basis bit with probability (1−a)/2 so that agreement with V₁
  // is (1+a)/2 and δ(V_a, V₁) = a in expectation.
  Hypervector flips = bernoulli_mask((1.0 - a) / 2.0);
  count(OpKind::kWordLogic, basis_.num_words());
  return basis_ ^ flips;
}

double StochasticContext::decode(const Hypervector& v) const {
  if (counter_) {
    counter_->add(OpKind::kWordLogic, v.num_words());
    counter_->add(OpKind::kPopcount, v.num_words());
  }
  return similarity(v, basis_);
}

Hypervector StochasticContext::weighted_average(const Hypervector& a,
                                                const Hypervector& b, double p) {
  if (a.dim() != dim() || b.dim() != dim()) {
    throw std::invalid_argument("weighted_average: dimensionality mismatch");
  }
  const Hypervector mask = bernoulli_mask(p);
  count(OpKind::kWordLogic, 3 * a.num_words());
  // select: (a & mask) | (b & ~mask) == b ^ ((a ^ b) & mask)
  Hypervector out = a ^ b;
  auto ow = out.mutable_words();
  const auto mw = mask.words();
  const auto bw = b.words();
  for (std::size_t i = 0; i < ow.size(); ++i) ow[i] = bw[i] ^ (ow[i] & mw[i]);
  return out;
}

Hypervector StochasticContext::multiply(const Hypervector& a, const Hypervector& b) {
  if (a.dim() != dim() || b.dim() != dim()) {
    throw std::invalid_argument("multiply: dimensionality mismatch");
  }
  count(OpKind::kWordLogic, 2 * a.num_words());
  // Paper rule: result dim = V₁ dim where operands agree, −V₁ dim otherwise.
  // In packed-bit form that is exactly a ^ b ^ V₁.
  return a ^ b ^ basis_;
}

Hypervector StochasticContext::square(const Hypervector& v) {
  HD_CHECK(v.dim() == dim(), "square: operand dimensionality mismatch");
  // Regeneration decorrelates the operands (rotation-decorrelated pooled
  // masks make a collision with v's own construction negligible).
  return multiply(v, regenerate(v));
}

Hypervector StochasticContext::scale(const Hypervector& v, double c) {
  HD_CHECK(v.dim() == dim(), "scale: operand dimensionality mismatch");
  HD_CHECK(!std::isnan(c), "scale: NaN factor");
  c = clamp_unit(c);
  // δ(wavg(v, fresh-zero, |c|), V₁) = |c|·a; flip for negative c.
  Hypervector out = weighted_average(v, zero(), std::fabs(c));
  if (c < 0.0) {
    count(OpKind::kWordLogic, out.num_words());
    return ~out;
  }
  return out;
}

Hypervector StochasticContext::abs(const Hypervector& v) {
  HD_CHECK(v.dim() == dim(), "abs: operand dimensionality mismatch");
  if (sign_of(v) < 0) {
    count(OpKind::kWordLogic, v.num_words());
    return ~v;
  }
  return v;
}

Hypervector StochasticContext::sqrt(const Hypervector& v) {
  HD_CHECK(v.dim() == dim(), "sqrt: operand dimensionality mismatch");
  // Binary search per paper §4.2: the interval endpoints start at the known
  // constants 0 and 1, so every midpoint is a known dyadic constant — the
  // hyperspace work is the per-step comparison of V_m ⊗ V_m (decorrelated)
  // against the operand. Tracking the interval numerically is semantically
  // identical to averaging V_low/V_high hypervectors but avoids compounding
  // selection noise across iterations.
  double lo = 0.0;
  double hi = 1.0;
  double m = 0.5;
  Hypervector mid = construct(m);
  for (int it = 0, iters = effective_search_iters(); it < iters; ++it) {
    m = (lo + hi) / 2.0;
    mid = construct(m);
    const Hypervector mid_sq = multiply(mid, construct(m));
    const int c = compare(mid_sq, v);
    if (c > 0) {
      hi = m;
    } else if (c < 0) {
      lo = m;
    } else {
      break;  // within statistical margin of error
    }
  }
  return mid;
}

Hypervector StochasticContext::divide(const Hypervector& a, const Hypervector& b) {
  HD_CHECK(a.dim() == dim() && b.dim() == dim(),
           "divide: operand dimensionality mismatch");
  // Find q with q·b ≈ a via binary search over |q| ∈ [0, 1] (results are
  // clamped to the representable interval), handling signs separately.
  const int sign_a = sign_of(a);
  const int sign_b = sign_of(b);
  if (sign_b == 0) {
    // Division by (statistical) zero saturates at ±1.
    return sign_a >= 0 ? construct(1.0) : construct(-1.0);
  }
  const Hypervector abs_a = sign_a < 0 ? ~a : a;
  const Hypervector abs_b = sign_b < 0 ? ~b : b;

  double lo = 0.0;
  double hi = 1.0;
  double m = 0.5;
  Hypervector mid = construct(m);
  for (int it = 0, iters = effective_search_iters(); it < iters; ++it) {
    m = (lo + hi) / 2.0;
    mid = construct(m);
    // An independent construction of the midpoint keeps its randomness
    // independent of abs_b so the product identity applies.
    const Hypervector prod = multiply(construct(m), abs_b);
    const int c = compare(prod, abs_a);
    if (c > 0) {
      hi = m;
    } else if (c < 0) {
      lo = m;
    } else {
      break;
    }
  }
  const bool negative = (sign_a < 0) != (sign_b < 0);
  if (negative) {
    count(OpKind::kWordLogic, mid.num_words());
    return ~mid;
  }
  return mid;
}

double StochasticContext::default_eps() const {
  return 2.0 / std::sqrt(static_cast<double>(config_.dim));
}

int StochasticContext::compare(const Hypervector& a, const Hypervector& b,
                               double eps) {
  if (eps < 0.0) eps = default_eps();
  // δ(0.5a ⊕ 0.5(−b), V₁) = (a − b)/2 in expectation.
  count(OpKind::kWordLogic, b.num_words());
  const Hypervector diff = weighted_average(a, ~b, 0.5);
  const double d = decode(diff);
  if (d > eps / 2.0) return 1;
  if (d < -eps / 2.0) return -1;
  return 0;
}

int StochasticContext::sign_of(const Hypervector& v, double eps) const {
  if (eps < 0.0) eps = default_eps();
  const double d = decode(v);
  if (d > eps) return 1;
  if (d < -eps) return -1;
  return 0;
}

}  // namespace hdface::core
