// AVX-512 backend: 512-bit logic with native per-lane popcount
// (_mm512_popcnt_epi64 / VPOPCNTQ, the avx512_vpopcntdq extension) — the
// associative-memory search of the paper as one wide data-parallel
// reduction. Compiled with -mavx512f -mavx512bw -mavx512vl
// -mavx512vpopcntdq only (src/core/CMakeLists.txt); dispatch only selects
// it when __builtin_cpu_supports reports all four features.
//
// Bit-identity with the scalar backend follows the same argument as the
// AVX2 TU: integer kernels are exact; add_xor_weighted sign-flips ±weight
// via the IEEE sign bit and rounds once per add; threshold_words compares
// against +0.0 with ordered > / ==.

#if defined(HDFACE_KERNEL_AVX512)

#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "core/kernels/backends.hpp"

namespace hdface::core::kernels::detail {
namespace {

inline __m512i load512(const std::uint64_t* p) {
  return _mm512_loadu_si512(p);
}

inline void store512(std::uint64_t* p, __m512i v) {
  _mm512_storeu_si512(p, v);
}

// Masked tail load/store: lanes past the mask read as zero / stay untouched.
inline __m512i load512_tail(const std::uint64_t* p, __mmask8 m) {
  return _mm512_maskz_loadu_epi64(m, p);
}

inline __mmask8 tail_mask(std::size_t lanes) {
  return static_cast<__mmask8>((1u << lanes) - 1u);
}

void xor_words_avx512(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store512(dst + i, _mm512_xor_si512(load512(a + i), load512(b + i)));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    _mm512_mask_storeu_epi64(
        dst + i, m,
        _mm512_xor_si512(load512_tail(a + i, m), load512_tail(b + i, m)));
  }
}

void and_words_avx512(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store512(dst + i, _mm512_and_si512(load512(a + i), load512(b + i)));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    _mm512_mask_storeu_epi64(
        dst + i, m,
        _mm512_and_si512(load512_tail(a + i, m), load512_tail(b + i, m)));
  }
}

void or_words_avx512(const std::uint64_t* a, const std::uint64_t* b,
                     std::uint64_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store512(dst + i, _mm512_or_si512(load512(a + i), load512(b + i)));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    _mm512_mask_storeu_epi64(
        dst + i, m,
        _mm512_or_si512(load512_tail(a + i, m), load512_tail(b + i, m)));
  }
}

void not_words_avx512(const std::uint64_t* a, std::uint64_t* dst,
                      std::size_t n) {
  const __m512i ones = _mm512_set1_epi64(-1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store512(dst + i, _mm512_xor_si512(load512(a + i), ones));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    _mm512_mask_storeu_epi64(dst + i, m,
                             _mm512_xor_si512(load512_tail(a + i, m), ones));
  }
}

std::uint64_t popcount_words_avx512(const std::uint64_t* a, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(load512(a + i)));
  }
  if (i < n) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(load512_tail(a + i, tail_mask(n - i))));
  }
  return static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
}

std::uint64_t hamming_words_avx512(const std::uint64_t* a,
                                   const std::uint64_t* b, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i x0 = _mm512_xor_si512(load512(a + i), load512(b + i));
    const __m512i x1 =
        _mm512_xor_si512(load512(a + i + 8), load512(b + i + 8));
    acc = _mm512_add_epi64(acc, _mm512_add_epi64(_mm512_popcnt_epi64(x0),
                                                 _mm512_popcnt_epi64(x1)));
  }
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(
        acc,
        _mm512_popcnt_epi64(_mm512_xor_si512(load512(a + i), load512(b + i))));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(
                 _mm512_xor_si512(load512_tail(a + i, m),
                                  load512_tail(b + i, m))));
  }
  return static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
}

void hamming_block_avx512(const std::uint64_t* query,
                          const std::uint64_t* block, std::size_t words,
                          std::size_t count, std::size_t stride,
                          std::uint64_t* out) {
  // Eight prototype lanes per vector; the PrototypeBlock stride is a
  // multiple of 8, so lanes [c, c+8) never leave the (zero-padded) row.
  std::size_t c = 0;
  for (; c < count; c += 8) {
    __m512i acc = _mm512_setzero_si512();
    for (std::size_t w = 0; w < words; ++w) {
      const __m512i q =
          _mm512_set1_epi64(static_cast<long long>(query[w]));
      const __m512i p = load512(block + w * stride + c);
      acc = _mm512_add_epi64(acc,
                             _mm512_popcnt_epi64(_mm512_xor_si512(q, p)));
    }
    const std::size_t take = count - c < 8 ? count - c : 8;
    _mm512_mask_storeu_epi64(out + c, tail_mask(take), acc);
  }
}

void add_xor_weighted_avx512(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t dim, double weight, double* counts) {
  const __m512d wv = _mm512_set1_pd(weight);
  const __m512i lane_shift = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  const std::size_t full_words = dim / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    // Invert so a set sign bit means "subtract weight" (xor bit was 0).
    std::uint64_t xinv = ~(a[w] ^ b[w]);
    double* c = counts + w * 64;
    for (std::size_t g = 0; g < 64; g += 8, xinv >>= 8) {
      const __m512i bits = _mm512_srlv_epi64(
          _mm512_set1_epi64(static_cast<long long>(xinv)), lane_shift);
      const __m512i sign = _mm512_slli_epi64(bits, 63);
      // Sign flip in the integer domain (_mm512_xor_pd would pull in
      // AVX512DQ, which dispatch does not probe for).
      const __m512d addend = _mm512_castsi512_pd(
          _mm512_xor_si512(_mm512_castpd_si512(wv), sign));
      _mm512_storeu_pd(c + g, _mm512_add_pd(_mm512_loadu_pd(c + g), addend));
    }
  }
  const std::size_t rem = dim - full_words * 64;
  if (rem != 0) {
    const double sel[2] = {-weight, weight};
    std::uint64_t x = a[full_words] ^ b[full_words];
    double* c = counts + full_words * 64;
    for (std::size_t bit = 0; bit < rem; ++bit, x >>= 1) {
      c[bit] += sel[x & 1ULL];
    }
  }
}

std::size_t threshold_words_avx512(const double* counts, std::size_t dim,
                                   std::uint64_t* out_words) {
  const __m512d zero = _mm512_setzero_pd();
  std::size_t zeros = 0;
  const std::size_t full_words = dim / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    const double* c = counts + w * 64;
    std::uint64_t word = 0;
    for (std::size_t g = 0; g < 64; g += 8) {
      const __m512d v = _mm512_loadu_pd(c + g);
      const __mmask8 gt = _mm512_cmp_pd_mask(v, zero, _CMP_GT_OQ);
      const __mmask8 eq = _mm512_cmp_pd_mask(v, zero, _CMP_EQ_OQ);
      word |= static_cast<std::uint64_t>(gt) << g;
      zeros += static_cast<std::size_t>(
          std::popcount(static_cast<unsigned>(eq)));
    }
    out_words[w] = word;
  }
  const std::size_t rem = dim - full_words * 64;
  if (rem != 0) {
    const double* c = counts + full_words * 64;
    std::uint64_t word = 0;
    for (std::size_t bit = 0; bit < rem; ++bit) {
      word |= static_cast<std::uint64_t>(c[bit] > 0.0) << bit;
      zeros += static_cast<std::size_t>(c[bit] == 0.0);
    }
    out_words[full_words] = word;
  }
  return zeros;
}

void select_words_avx512(const std::uint64_t* a, const std::uint64_t* b,
                         const std::uint64_t* m, std::uint64_t cond_flip,
                         std::uint64_t out_flip, std::uint64_t* dst,
                         std::size_t n) {
  const __m512i cf = _mm512_set1_epi64(static_cast<long long>(cond_flip));
  const __m512i of = _mm512_set1_epi64(static_cast<long long>(out_flip));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i av = load512(a + i);
    const __m512i bv = load512(b + i);
    const __m512i mv = load512(m + i);
    const __m512i cond =
        _mm512_and_si512(_mm512_xor_si512(_mm512_xor_si512(av, bv), cf), mv);
    store512(dst + i, _mm512_xor_si512(_mm512_xor_si512(bv, cond), of));
  }
  if (i < n) {
    const __mmask8 k = tail_mask(n - i);
    const __m512i av = load512_tail(a + i, k);
    const __m512i bv = load512_tail(b + i, k);
    const __m512i mv = load512_tail(m + i, k);
    const __m512i cond =
        _mm512_and_si512(_mm512_xor_si512(_mm512_xor_si512(av, bv), cf), mv);
    _mm512_mask_storeu_epi64(
        dst + i, k, _mm512_xor_si512(_mm512_xor_si512(bv, cond), of));
  }
}

std::uint64_t popcount_select_xor_avx512(const std::uint64_t* a,
                                         const std::uint64_t* b,
                                         const std::uint64_t* m,
                                         const std::uint64_t* x,
                                         std::uint64_t cond_flip,
                                         std::size_t n) {
  const __m512i cf = _mm512_set1_epi64(static_cast<long long>(cond_flip));
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i av = load512(a + i);
    const __m512i bv = load512(b + i);
    const __m512i mv = load512(m + i);
    const __m512i cond =
        _mm512_and_si512(_mm512_xor_si512(_mm512_xor_si512(av, bv), cf), mv);
    const __m512i sel = _mm512_xor_si512(bv, cond);
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_xor_si512(sel, load512(x + i))));
  }
  std::uint64_t total = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    const std::uint64_t sel = b[i] ^ (((a[i] ^ b[i]) ^ cond_flip) & m[i]);
    total += static_cast<std::uint64_t>(std::popcount(sel ^ x[i]));
  }
  return total;
}

// Prefix/range variant: a hamming_block over the words [word_lo, word_hi),
// run by this backend's own block kernel on offset pointers — bit-identity
// to scalar follows from the full kernel's.
void hamming_block_range_avx512(const std::uint64_t* query,
                                const std::uint64_t* block, std::size_t word_lo,
                                std::size_t word_hi, std::size_t count,
                                std::size_t stride, std::uint64_t* out) {
  hamming_block_avx512(query + word_lo, block + word_lo * stride,
                       word_hi - word_lo, count, stride, out);
}

}  // namespace

const KernelTable& avx512_table() {
  static const KernelTable table = {
      Backend::kAvx512,            &xor_words_avx512,
      &and_words_avx512,           &or_words_avx512,
      &not_words_avx512,           &popcount_words_avx512,
      &hamming_words_avx512,       &hamming_block_avx512,
      &hamming_block_range_avx512, &add_xor_weighted_avx512,
      &threshold_words_avx512,     &select_words_avx512,
      &popcount_select_xor_avx512};
  return table;
}

}  // namespace hdface::core::kernels::detail

#endif  // HDFACE_KERNEL_AVX512
