// AVX2 backend: 256-bit logic + VPSHUFB nibble-LUT popcount (Mula's method,
// the VPSHUFB scheme from the hardware-HDC literature) reduced with
// _mm256_sad_epu8 into four 64-bit lane sums. This TU is compiled with
// -mavx2 only (see src/core/CMakeLists.txt); it must never be entered on a
// CPU without AVX2 — dispatch guarantees that via __builtin_cpu_supports.
//
// Bit-identity with the scalar backend:
//   * logic/popcount/hamming kernels are integer-exact;
//   * add_xor_weighted builds ±weight by XORing the IEEE sign bit (exact
//     negation) and performs exactly one rounded add per dimension, the same
//     as the scalar two-entry select table;
//   * threshold_words uses ordered > / == compares against +0.0, identical
//     to the scalar comparisons.

#if defined(HDFACE_KERNEL_AVX2)

#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "core/kernels/backends.hpp"

namespace hdface::core::kernels::detail {
namespace {

// Pointer reinterpretation here is the intrinsic load/store ABI for packed
// word arrays; the bytes are reinterpreted as themselves.
inline __m256i load256(const std::uint64_t* p) {
  // hdlint: allow(reinterpret-cast) — unaligned SIMD load of uint64 words
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store256(std::uint64_t* p, __m256i v) {
  // hdlint: allow(reinterpret-cast) — unaligned SIMD store of uint64 words
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

// Per-64-bit-lane popcount of v: VPSHUFB nibble lookup, byte sums folded
// with SAD against zero.
inline __m256i popcount_lanes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline std::uint64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

void xor_words_avx2(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store256(dst + i, _mm256_xor_si256(load256(a + i), load256(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] ^ b[i];
}

void and_words_avx2(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store256(dst + i, _mm256_and_si256(load256(a + i), load256(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

void or_words_avx2(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store256(dst + i, _mm256_or_si256(load256(a + i), load256(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

void not_words_avx2(const std::uint64_t* a, std::uint64_t* dst,
                    std::size_t n) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store256(dst + i, _mm256_xor_si256(load256(a + i), ones));
  }
  for (; i < n; ++i) dst[i] = ~a[i];
}

std::uint64_t popcount_words_avx2(const std::uint64_t* a, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(acc, popcount_lanes(load256(a + i)));
  }
  std::uint64_t total = hsum_epi64(acc);
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i]));
  }
  return total;
}

std::uint64_t hamming_words_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x0 = _mm256_xor_si256(load256(a + i), load256(b + i));
    const __m256i x1 =
        _mm256_xor_si256(load256(a + i + 4), load256(b + i + 4));
    acc = _mm256_add_epi64(
        acc, _mm256_add_epi64(popcount_lanes(x0), popcount_lanes(x1)));
  }
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, popcount_lanes(_mm256_xor_si256(load256(a + i), load256(b + i))));
  }
  std::uint64_t total = hsum_epi64(acc);
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

void hamming_block_avx2(const std::uint64_t* query, const std::uint64_t* block,
                        std::size_t words, std::size_t count,
                        std::size_t stride, std::uint64_t* out) {
  // Four prototype lanes per vector; the PrototypeBlock stride is a multiple
  // of 8, so reading lanes [c, c+4) never leaves the (zero-padded) row.
  std::size_t c = 0;
  for (; c < count; c += 4) {
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t w = 0; w < words; ++w) {
      const __m256i q = _mm256_set1_epi64x(
          static_cast<long long>(query[w]));
      const __m256i p = load256(block + w * stride + c);
      acc = _mm256_add_epi64(acc, popcount_lanes(_mm256_xor_si256(q, p)));
    }
    alignas(32) std::uint64_t lanes[4];
    store256(lanes, acc);
    const std::size_t take = count - c < 4 ? count - c : 4;
    for (std::size_t j = 0; j < take; ++j) out[c + j] = lanes[j];
  }
}

void add_xor_weighted_avx2(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t dim, double weight, double* counts) {
  const __m256d wv = _mm256_set1_pd(weight);
  const __m256i lane_shift = _mm256_setr_epi64x(0, 1, 2, 3);
  const std::size_t full_words = dim / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    // Invert so a set sign bit means "subtract weight" (xor bit was 0).
    std::uint64_t xinv = ~(a[w] ^ b[w]);
    double* c = counts + w * 64;
    for (std::size_t g = 0; g < 64; g += 4, xinv >>= 4) {
      const __m256i bits =
          _mm256_srlv_epi64(_mm256_set1_epi64x(static_cast<long long>(xinv)),
                            lane_shift);
      const __m256i sign = _mm256_slli_epi64(bits, 63);
      const __m256d addend = _mm256_xor_pd(wv, _mm256_castsi256_pd(sign));
      _mm256_storeu_pd(c + g, _mm256_add_pd(_mm256_loadu_pd(c + g), addend));
    }
  }
  const std::size_t rem = dim - full_words * 64;
  if (rem != 0) {
    const double sel[2] = {-weight, weight};
    std::uint64_t x = a[full_words] ^ b[full_words];
    double* c = counts + full_words * 64;
    for (std::size_t bit = 0; bit < rem; ++bit, x >>= 1) {
      c[bit] += sel[x & 1ULL];
    }
  }
}

std::size_t threshold_words_avx2(const double* counts, std::size_t dim,
                                 std::uint64_t* out_words) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t zeros = 0;
  const std::size_t full_words = dim / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    const double* c = counts + w * 64;
    std::uint64_t word = 0;
    for (std::size_t g = 0; g < 64; g += 4) {
      const __m256d v = _mm256_loadu_pd(c + g);
      const int gt = _mm256_movemask_pd(_mm256_cmp_pd(v, zero, _CMP_GT_OQ));
      const int eq = _mm256_movemask_pd(_mm256_cmp_pd(v, zero, _CMP_EQ_OQ));
      word |= static_cast<std::uint64_t>(gt) << g;
      zeros += static_cast<std::size_t>(std::popcount(
          static_cast<unsigned>(eq)));
    }
    out_words[w] = word;
  }
  const std::size_t rem = dim - full_words * 64;
  if (rem != 0) {
    const double* c = counts + full_words * 64;
    std::uint64_t word = 0;
    for (std::size_t bit = 0; bit < rem; ++bit) {
      word |= static_cast<std::uint64_t>(c[bit] > 0.0) << bit;
      zeros += static_cast<std::size_t>(c[bit] == 0.0);
    }
    out_words[full_words] = word;
  }
  return zeros;
}

void select_words_avx2(const std::uint64_t* a, const std::uint64_t* b,
                       const std::uint64_t* m, std::uint64_t cond_flip,
                       std::uint64_t out_flip, std::uint64_t* dst,
                       std::size_t n) {
  const __m256i cf = _mm256_set1_epi64x(static_cast<long long>(cond_flip));
  const __m256i of = _mm256_set1_epi64x(static_cast<long long>(out_flip));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i av = load256(a + i);
    const __m256i bv = load256(b + i);
    const __m256i mv = load256(m + i);
    const __m256i cond =
        _mm256_and_si256(_mm256_xor_si256(_mm256_xor_si256(av, bv), cf), mv);
    store256(dst + i, _mm256_xor_si256(_mm256_xor_si256(bv, cond), of));
  }
  for (; i < n; ++i) {
    dst[i] = (b[i] ^ (((a[i] ^ b[i]) ^ cond_flip) & m[i])) ^ out_flip;
  }
}

std::uint64_t popcount_select_xor_avx2(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       const std::uint64_t* m,
                                       const std::uint64_t* x,
                                       std::uint64_t cond_flip, std::size_t n) {
  const __m256i cf = _mm256_set1_epi64x(static_cast<long long>(cond_flip));
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i av = load256(a + i);
    const __m256i bv = load256(b + i);
    const __m256i mv = load256(m + i);
    const __m256i cond =
        _mm256_and_si256(_mm256_xor_si256(_mm256_xor_si256(av, bv), cf), mv);
    const __m256i sel = _mm256_xor_si256(bv, cond);
    acc = _mm256_add_epi64(
        acc, popcount_lanes(_mm256_xor_si256(sel, load256(x + i))));
  }
  std::uint64_t total = hsum_epi64(acc);
  for (; i < n; ++i) {
    const std::uint64_t sel = b[i] ^ (((a[i] ^ b[i]) ^ cond_flip) & m[i]);
    total += static_cast<std::uint64_t>(std::popcount(sel ^ x[i]));
  }
  return total;
}

// Prefix/range variant: a hamming_block over the words [word_lo, word_hi),
// run by this backend's own block kernel on offset pointers — bit-identity
// to scalar follows from the full kernel's.
void hamming_block_range_avx2(const std::uint64_t* query,
                              const std::uint64_t* block, std::size_t word_lo,
                              std::size_t word_hi, std::size_t count,
                              std::size_t stride, std::uint64_t* out) {
  hamming_block_avx2(query + word_lo, block + word_lo * stride,
                     word_hi - word_lo, count, stride, out);
}

}  // namespace

const KernelTable& avx2_table() {
  static const KernelTable table = {
      Backend::kAvx2,            &xor_words_avx2,
      &and_words_avx2,           &or_words_avx2,
      &not_words_avx2,           &popcount_words_avx2,
      &hamming_words_avx2,       &hamming_block_avx2,
      &hamming_block_range_avx2, &add_xor_weighted_avx2,
      &threshold_words_avx2,     &select_words_avx2,
      &popcount_select_xor_avx2};
  return table;
}

}  // namespace hdface::core::kernels::detail

#endif  // HDFACE_KERNEL_AVX2
