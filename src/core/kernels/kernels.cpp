#include "core/kernels/kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/kernels/backends.hpp"

namespace hdface::core::kernels {

namespace {

// --- scalar reference backend ----------------------------------------------
// Every SIMD backend is validated (tests/core/kernels_test) and CI-gated
// against these loops; keep them boring.

void xor_words_scalar(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] ^ b[i];
}

void and_words_scalar(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
}

void or_words_scalar(const std::uint64_t* a, const std::uint64_t* b,
                     std::uint64_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
}

void not_words_scalar(const std::uint64_t* a, std::uint64_t* dst,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = ~a[i];
}

std::uint64_t popcount_words_scalar(const std::uint64_t* a, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i]));
  }
  return total;
}

std::uint64_t hamming_words_scalar(const std::uint64_t* a,
                                   const std::uint64_t* b, std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  // Modest unroll so the reference backend is not a strawman baseline.
  for (; i + 4 <= n; i += 4) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i])) +
             static_cast<std::uint64_t>(std::popcount(a[i + 1] ^ b[i + 1])) +
             static_cast<std::uint64_t>(std::popcount(a[i + 2] ^ b[i + 2])) +
             static_cast<std::uint64_t>(std::popcount(a[i + 3] ^ b[i + 3]));
  }
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

void hamming_block_scalar(const std::uint64_t* query,
                          const std::uint64_t* block, std::size_t words,
                          std::size_t count, std::size_t stride,
                          std::uint64_t* out) {
  for (std::size_t c = 0; c < count; ++c) out[c] = 0;
  // Word-outer order streams the interleaved block front to back: one query
  // word is broadcast against `count` consecutive prototype words.
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t q = query[w];
    const std::uint64_t* row = block + w * stride;
    for (std::size_t c = 0; c < count; ++c) {
      out[c] += static_cast<std::uint64_t>(std::popcount(q ^ row[c]));
    }
  }
}

void hamming_block_range_scalar(const std::uint64_t* query,
                                const std::uint64_t* block, std::size_t word_lo,
                                std::size_t word_hi, std::size_t count,
                                std::size_t stride, std::uint64_t* out) {
  hamming_block_scalar(query + word_lo, block + word_lo * stride,
                       word_hi - word_lo, count, stride, out);
}

void add_xor_weighted_scalar(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t dim, double weight, double* counts) {
  // XOR bits are near-uniform, so a conditional here would mispredict ~50% of
  // the time; the two-entry table keeps the loop branch-free.
  const double sel[2] = {-weight, weight};
  const std::size_t full_words = dim / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    std::uint64_t x = a[w] ^ b[w];
    double* c = counts + w * 64;
    for (std::size_t bit = 0; bit < 64; ++bit, x >>= 1) {
      c[bit] += sel[x & 1ULL];
    }
  }
  const std::size_t rem = dim - full_words * 64;
  if (rem != 0) {
    std::uint64_t x = a[full_words] ^ b[full_words];
    double* c = counts + full_words * 64;
    for (std::size_t bit = 0; bit < rem; ++bit, x >>= 1) {
      c[bit] += sel[x & 1ULL];
    }
  }
}

void select_words_scalar(const std::uint64_t* a, const std::uint64_t* b,
                         const std::uint64_t* m, std::uint64_t cond_flip,
                         std::uint64_t out_flip, std::uint64_t* dst,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = (b[i] ^ (((a[i] ^ b[i]) ^ cond_flip) & m[i])) ^ out_flip;
  }
}

std::uint64_t popcount_select_xor_scalar(const std::uint64_t* a,
                                         const std::uint64_t* b,
                                         const std::uint64_t* m,
                                         const std::uint64_t* x,
                                         std::uint64_t cond_flip,
                                         std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t sel = b[i] ^ (((a[i] ^ b[i]) ^ cond_flip) & m[i]);
    total += static_cast<std::uint64_t>(std::popcount(sel ^ x[i]));
  }
  return total;
}

std::size_t threshold_words_scalar(const double* counts, std::size_t dim,
                                   std::uint64_t* out_words) {
  std::size_t zeros = 0;
  const std::size_t full_words = dim / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    const double* c = counts + w * 64;
    std::uint64_t word = 0;
    for (std::size_t bit = 0; bit < 64; ++bit) {
      word |= static_cast<std::uint64_t>(c[bit] > 0.0) << bit;
      zeros += static_cast<std::size_t>(c[bit] == 0.0);
    }
    out_words[w] = word;
  }
  const std::size_t rem = dim - full_words * 64;
  if (rem != 0) {
    const double* c = counts + full_words * 64;
    std::uint64_t word = 0;
    for (std::size_t bit = 0; bit < rem; ++bit) {
      word |= static_cast<std::uint64_t>(c[bit] > 0.0) << bit;
      zeros += static_cast<std::size_t>(c[bit] == 0.0);
    }
    out_words[full_words] = word;
  }
  return zeros;
}

// --- dispatch state ---------------------------------------------------------
// All mutable state lives in function-local statics (hdlint: mutable-global).

std::atomic<int>& forced_slot() {
  static std::atomic<int> slot{-1};
  return slot;
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 &&
         __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
  return false;
#endif
}

bool backend_compiled(Backend b) {
  for (const KernelTable* t : compiled_tables()) {
    if (t->backend == b) return true;
  }
  return false;
}

// Startup choice: env override when set, else the best CPU-supported backend
// (later enum values are wider ISAs; NEON never coexists with AVX).
const KernelTable* choose_auto_table() {
  // getenv is only hazardous concurrent with setenv/putenv, which nothing
  // in this codebase calls; the result is latched once behind the caller's
  // function-local static.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("HDFACE_KERNEL_BACKEND")) {
    if (*env != '\0') {
      const std::optional<Backend> parsed = parse_backend(env);
      if (parsed.has_value()) return &table_for(*parsed);
    }
  }
  const KernelTable* best = &scalar_table();
  for (const KernelTable* t : compiled_tables()) {
    if (backend_supported(t->backend)) best = t;
  }
  return best;
}

const KernelTable& auto_table() {
  static const KernelTable* const chosen = choose_auto_table();
  return *chosen;
}

}  // namespace

const KernelTable& scalar_table() {
  static const KernelTable table = {
      Backend::kScalar,           &xor_words_scalar,
      &and_words_scalar,          &or_words_scalar,
      &not_words_scalar,          &popcount_words_scalar,
      &hamming_words_scalar,      &hamming_block_scalar,
      &hamming_block_range_scalar, &add_xor_weighted_scalar,
      &threshold_words_scalar,    &select_words_scalar,
      &popcount_select_xor_scalar};
  return table;
}

std::span<const KernelTable* const> compiled_tables() {
  static const std::vector<const KernelTable*> tables = [] {
    std::vector<const KernelTable*> out;
    out.push_back(&scalar_table());
#if defined(HDFACE_KERNEL_AVX2)
    out.push_back(&detail::avx2_table());
#endif
#if defined(HDFACE_KERNEL_AVX512)
    out.push_back(&detail::avx512_table());
#endif
#if defined(HDFACE_KERNEL_NEON)
    out.push_back(&detail::neon_table());
#endif
    return out;
  }();
  return {tables.data(), tables.size()};
}

bool backend_supported(Backend b) {
  switch (b) {
    case Backend::kScalar: return true;
    case Backend::kAvx2: return backend_compiled(b) && cpu_has_avx2();
    case Backend::kAvx512: return backend_compiled(b) && cpu_has_avx512();
    // The NEON TU is only compiled on aarch64 builds, where Advanced SIMD is
    // part of the base ISA — compiled implies supported.
    case Backend::kNeon: return backend_compiled(b);
  }
  return false;
}

const KernelTable& table_for(Backend b) {
  if (!backend_supported(b)) {
    throw std::invalid_argument(
        "kernel backend '" + std::string(backend_name(b)) +
        "' is not available on this build/CPU");
  }
  for (const KernelTable* t : compiled_tables()) {
    if (t->backend == b) return *t;
  }
  throw std::invalid_argument("kernel backend '" +
                              std::string(backend_name(b)) +
                              "' is not compiled into this binary");
}

const KernelTable& active() {
  const int forced = forced_slot().load(std::memory_order_acquire);
  if (forced >= 0) return table_for(static_cast<Backend>(forced));
  return auto_table();
}

void force_backend(std::optional<Backend> b) {
  if (b.has_value()) {
    (void)table_for(*b);  // validate before publishing
    forced_slot().store(static_cast<int>(*b), std::memory_order_release);
  } else {
    forced_slot().store(-1, std::memory_order_release);
  }
}

std::optional<Backend> forced_backend() {
  const int forced = forced_slot().load(std::memory_order_acquire);
  if (forced < 0) return std::nullopt;
  return static_cast<Backend>(forced);
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name.empty() || name == "auto") return std::nullopt;
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "avx512") return Backend::kAvx512;
  if (name == "neon") return Backend::kNeon;
  throw std::invalid_argument("unknown kernel backend '" + std::string(name) +
                              "' (expected scalar|avx2|avx512|neon|auto)");
}

}  // namespace hdface::core::kernels
