// NEON backend (aarch64): 128-bit logic with vcntq_u8 byte popcounts folded
// through the vpaddlq widening-add chain. Advanced SIMD is part of the
// aarch64 base ISA, so this TU needs no extra target flags and "compiled"
// implies "supported" (kernels.cpp::backend_supported).
//
// The float kernels (add_xor_weighted, threshold_words) intentionally keep
// the scalar reference loops: at two doubles per vector the win is small,
// and bit-identity stays true by construction on a target this repo's CI
// cannot execute.

#if defined(HDFACE_KERNEL_NEON)

#include <arm_neon.h>

#include <bit>
#include <cstdint>

#include "core/kernels/backends.hpp"

namespace hdface::core::kernels::detail {
namespace {

// uint64x2_t lane popcounts: per-byte counts widened 8→16→32→64.
inline uint64x2_t popcount_lanes(uint64x2_t v) {
  return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(v)))));
}

void xor_words_neon(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] ^ b[i];
}

void and_words_neon(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

void or_words_neon(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

void not_words_neon(const std::uint64_t* a, std::uint64_t* dst,
                    std::size_t n) {
  const uint64x2_t ones = vdupq_n_u64(~0ULL);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(a + i), ones));
  }
  for (; i < n; ++i) dst[i] = ~a[i];
}

std::uint64_t popcount_words_neon(const std::uint64_t* a, std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vaddq_u64(acc, popcount_lanes(vld1q_u64(a + i)));
  }
  std::uint64_t total = vaddvq_u64(acc);
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i]));
  }
  return total;
}

std::uint64_t hamming_words_neon(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vaddq_u64(
        acc, popcount_lanes(veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i))));
  }
  std::uint64_t total = vaddvq_u64(acc);
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

void hamming_block_neon(const std::uint64_t* query, const std::uint64_t* block,
                        std::size_t words, std::size_t count,
                        std::size_t stride, std::uint64_t* out) {
  // Two prototype lanes per vector; the PrototypeBlock stride is a multiple
  // of 8, so lanes [c, c+2) never leave the (zero-padded) row.
  std::size_t c = 0;
  for (; c < count; c += 2) {
    uint64x2_t acc = vdupq_n_u64(0);
    for (std::size_t w = 0; w < words; ++w) {
      const uint64x2_t q = vdupq_n_u64(query[w]);
      const uint64x2_t p = vld1q_u64(block + w * stride + c);
      acc = vaddq_u64(acc, popcount_lanes(veorq_u64(q, p)));
    }
    if (count - c >= 2) {
      vst1q_u64(out + c, acc);
    } else {
      out[c] = vgetq_lane_u64(acc, 0);
    }
  }
}

void add_xor_weighted_neon(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t dim, double weight, double* counts) {
  const double sel[2] = {-weight, weight};
  const std::size_t full_words = dim / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    std::uint64_t x = a[w] ^ b[w];
    double* c = counts + w * 64;
    for (std::size_t bit = 0; bit < 64; ++bit, x >>= 1) {
      c[bit] += sel[x & 1ULL];
    }
  }
  const std::size_t rem = dim - full_words * 64;
  if (rem != 0) {
    std::uint64_t x = a[full_words] ^ b[full_words];
    double* c = counts + full_words * 64;
    for (std::size_t bit = 0; bit < rem; ++bit, x >>= 1) {
      c[bit] += sel[x & 1ULL];
    }
  }
}

std::size_t threshold_words_neon(const double* counts, std::size_t dim,
                                 std::uint64_t* out_words) {
  std::size_t zeros = 0;
  const std::size_t full_words = dim / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    const double* c = counts + w * 64;
    std::uint64_t word = 0;
    for (std::size_t bit = 0; bit < 64; ++bit) {
      word |= static_cast<std::uint64_t>(c[bit] > 0.0) << bit;
      zeros += static_cast<std::size_t>(c[bit] == 0.0);
    }
    out_words[w] = word;
  }
  const std::size_t rem = dim - full_words * 64;
  if (rem != 0) {
    const double* c = counts + full_words * 64;
    std::uint64_t word = 0;
    for (std::size_t bit = 0; bit < rem; ++bit) {
      word |= static_cast<std::uint64_t>(c[bit] > 0.0) << bit;
      zeros += static_cast<std::size_t>(c[bit] == 0.0);
    }
    out_words[full_words] = word;
  }
  return zeros;
}

void select_words_neon(const std::uint64_t* a, const std::uint64_t* b,
                       const std::uint64_t* m, std::uint64_t cond_flip,
                       std::uint64_t out_flip, std::uint64_t* dst,
                       std::size_t n) {
  const uint64x2_t cf = vdupq_n_u64(cond_flip);
  const uint64x2_t of = vdupq_n_u64(out_flip);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t av = vld1q_u64(a + i);
    const uint64x2_t bv = vld1q_u64(b + i);
    const uint64x2_t mv = vld1q_u64(m + i);
    const uint64x2_t cond = vandq_u64(veorq_u64(veorq_u64(av, bv), cf), mv);
    vst1q_u64(dst + i, veorq_u64(veorq_u64(bv, cond), of));
  }
  for (; i < n; ++i) {
    dst[i] = (b[i] ^ (((a[i] ^ b[i]) ^ cond_flip) & m[i])) ^ out_flip;
  }
}

std::uint64_t popcount_select_xor_neon(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       const std::uint64_t* m,
                                       const std::uint64_t* x,
                                       std::uint64_t cond_flip, std::size_t n) {
  const uint64x2_t cf = vdupq_n_u64(cond_flip);
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t av = vld1q_u64(a + i);
    const uint64x2_t bv = vld1q_u64(b + i);
    const uint64x2_t mv = vld1q_u64(m + i);
    const uint64x2_t cond = vandq_u64(veorq_u64(veorq_u64(av, bv), cf), mv);
    const uint64x2_t sel = veorq_u64(bv, cond);
    acc = vaddq_u64(acc, popcount_lanes(veorq_u64(sel, vld1q_u64(x + i))));
  }
  std::uint64_t total = vaddvq_u64(acc);
  for (; i < n; ++i) {
    const std::uint64_t sel = b[i] ^ (((a[i] ^ b[i]) ^ cond_flip) & m[i]);
    total += static_cast<std::uint64_t>(std::popcount(sel ^ x[i]));
  }
  return total;
}

// Prefix/range variant: a hamming_block over the words [word_lo, word_hi),
// run by this backend's own block kernel on offset pointers — bit-identity
// to scalar follows from the full kernel's.
void hamming_block_range_neon(const std::uint64_t* query,
                              const std::uint64_t* block, std::size_t word_lo,
                              std::size_t word_hi, std::size_t count,
                              std::size_t stride, std::uint64_t* out) {
  hamming_block_neon(query + word_lo, block + word_lo * stride,
                     word_hi - word_lo, count, stride, out);
}

}  // namespace

const KernelTable& neon_table() {
  static const KernelTable table = {
      Backend::kNeon,            &xor_words_neon,
      &and_words_neon,           &or_words_neon,
      &not_words_neon,           &popcount_words_neon,
      &hamming_words_neon,       &hamming_block_neon,
      &hamming_block_range_neon, &add_xor_weighted_neon,
      &threshold_words_neon,     &select_words_neon,
      &popcount_select_xor_neon};
  return table;
}

}  // namespace hdface::core::kernels::detail

#endif  // HDFACE_KERNEL_NEON
