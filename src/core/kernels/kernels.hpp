#pragma once

// Runtime-dispatched SIMD kernels for the packed-word hot loops.
//
// Every arithmetic primitive of the paper (§4) bottoms out in the same
// 64-bit-word loops — XOR+popcount similarity, weighted bundling, majority
// finalize — and after the cell-plane encode cache those loops *are* the
// runtime. This layer factors them into a table of free functions over raw
// word arrays with one reference implementation (scalar) plus optional
// SIMD backends (AVX2, AVX-512, NEON) compiled into their own translation
// units with the matching target flags and selected once at startup by a
// CPU feature probe.
//
// Contract — every backend is BIT-IDENTICAL to the scalar reference:
//   * integer kernels (popcount, hamming, bulk logic) are trivially exact;
//   * add_xor_weighted adds exactly ±weight per dimension (an IEEE sign
//     flip is exact, and each counter sees one rounded add — the same
//     single rounding the scalar loop performs);
//   * threshold_words only compares against zero (exact) and leaves the
//     tie-breaking RNG draws to the caller so the draw order is the
//     scalar order (ascending dimension, zeros only).
// The op-counter charges are caller-side (hamming_many, Accumulator) and
// depend only on word/dimension counts, so switching backends never changes
// an op total either. This is what lets the determinism suites, the
// fault-injection goldens, and the scalar-vs-SIMD CI hash diff treat the
// backend as a pure performance knob. All kernels preserve the
// tail-word-zero invariant: they never read or write bits at or beyond
// `dim` other than as stored (callers keep tail bits zero).
//
// Selection order: HDFACE_KERNEL_BACKEND environment variable (scalar |
// avx2 | avx512 | neon | auto) when set, otherwise the best backend the
// CPU supports. Tests and api::DetectOptions::kernel_backend can force any
// compiled backend for the current process via force_backend()/
// ScopedBackend.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "core/kernels/backend.hpp"

namespace hdface::core::kernels {

// Kernel table: raw packed-word primitives. `n` is always a word count; all
// pointers may be unaligned to vector width (backends use unaligned loads)
// but must not alias across input/output except where noted.
struct KernelTable {
  Backend backend = Backend::kScalar;

  // dst[i] = a[i] OP b[i] for i < n. dst may alias a and/or b.
  void (*xor_words)(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst, std::size_t n);
  void (*and_words)(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst, std::size_t n);
  void (*or_words)(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* dst, std::size_t n);
  // dst[i] = ~a[i] for i < n (caller re-imposes the tail mask). dst may
  // alias a.
  void (*not_words)(const std::uint64_t* a, std::uint64_t* dst, std::size_t n);

  // Σ popcount(a[i]) for i < n.
  std::uint64_t (*popcount_words)(const std::uint64_t* a, std::size_t n);

  // Σ popcount(a[i] ^ b[i]) for i < n.
  std::uint64_t (*hamming_words)(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n);

  // SoA multi-prototype Hamming over a word-interleaved block (see
  // core::PrototypeBlock): out[c] = Σ_w popcount(query[w] ^
  // block[w * stride + c]) for c < count. stride ≥ count; the padding lanes
  // c ∈ [count, stride) may be read (they hold zeros) but are never written
  // to out.
  void (*hamming_block)(const std::uint64_t* query, const std::uint64_t* block,
                        std::size_t words, std::size_t count,
                        std::size_t stride, std::uint64_t* out);

  // Word-range (prefix) variant of hamming_block for the early-reject
  // cascade: out[c] = Σ_{w ∈ [word_lo, word_hi)} popcount(query[w] ^
  // block[w * stride + c]). `query` and `block` are the FULL vectors (the
  // kernel applies the word offset itself), so tiling [0, words) into
  // consecutive ranges sums to exactly the hamming_block result per lane.
  // Every backend delegates to its own hamming_block on offset pointers, so
  // range results are bit-identical to scalar by the same argument as the
  // full kernel. Requires word_lo ≤ word_hi ≤ words of the block.
  void (*hamming_block_range)(const std::uint64_t* query,
                              const std::uint64_t* block, std::size_t word_lo,
                              std::size_t word_hi, std::size_t count,
                              std::size_t stride, std::uint64_t* out);

  // Weighted-bundling hot loop: counts[i] += (bit i of a^b) ? +weight
  // : -weight for i < dim (the Accumulator::add_xor branchless ±weight
  // select). a and b hold ceil(dim/64) words; tail bits past dim are
  // ignored.
  void (*add_xor_weighted)(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t dim, double weight, double* counts);

  // Majority-threshold finalize: bit i of out_words = counts[i] > 0 for
  // i < dim; bits at/past dim stay untouched (caller provides zeroed words).
  // Returns the number of exact zeros so the caller can run the (rare)
  // scalar tie-break pass with its RNG in ascending-dimension order.
  std::size_t (*threshold_words)(const double* counts, std::size_t dim,
                                 std::uint64_t* out_words);

  // Fused mask-select (the stochastic weighted-average inner form):
  //   dst[i] = (b[i] ^ (((a[i] ^ b[i]) ^ cond_flip) & m[i])) ^ out_flip
  // With cond_flip = out_flip = 0 this is exactly
  // StochasticContext::weighted_average's per-word update (select a where
  // the mask is set, b elsewhere); cond_flip/out_flip = ~0 fold the
  // operand/result complements of add_halved(a, ~b) into the same single
  // pass so the batched cell encoder never materializes a NOT. dst may
  // alias a and/or b (elementwise read-before-write), never m.
  void (*select_words)(const std::uint64_t* a, const std::uint64_t* b,
                       const std::uint64_t* m, std::uint64_t cond_flip,
                       std::uint64_t out_flip, std::uint64_t* dst,
                       std::size_t n);

  // Fused mask-select + XOR-popcount reduction (select_words immediately
  // decoded against x, typically the stochastic basis):
  //   Σ_i popcount((b[i] ^ (((a[i] ^ b[i]) ^ cond_flip) & m[i])) ^ x[i])
  // One pass replaces the weighted_average + decode / compare chains of the
  // per-pixel encoder; an out_flip of ~0 is folded by the caller via
  // H = 64·n − result (exact when no tail bits are in play, i.e. dim % 64
  // == 0 — the batched-encoder fast-path gate).
  std::uint64_t (*popcount_select_xor)(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       const std::uint64_t* m,
                                       const std::uint64_t* x,
                                       std::uint64_t cond_flip, std::size_t n);
};

// The reference backend (always compiled).
const KernelTable& scalar_table();

// Every backend compiled into this binary, scalar first. A compiled backend
// may still be unsupported by the running CPU — check backend_supported().
std::span<const KernelTable* const> compiled_tables();

// True when the running CPU can execute the given backend's instructions
// (scalar is always true; a backend that was not compiled in is false).
bool backend_supported(Backend b);

// Table for one backend; throws std::invalid_argument when the backend is
// not compiled in or not supported by this CPU.
const KernelTable& table_for(Backend b);

// The active table: the forced backend if one is set, else the startup
// choice (HDFACE_KERNEL_BACKEND env override, falling back to the best
// CPU-supported backend). The first call performs the probe; an invalid or
// unsupported env value throws std::invalid_argument then.
const KernelTable& active();

// Force a backend for the whole process (nullopt returns to the automatic
// choice). Throws like table_for on an unusable backend. Not synchronized
// with in-flight kernel calls: set it only while no detector/encoder work
// is running (tests, bench setup, the api facade before dispatch).
void force_backend(std::optional<Backend> b);

// Currently forced backend, if any.
std::optional<Backend> forced_backend();

// Parse a backend name ("scalar", "avx2", "avx512", "neon"; exact,
// lowercase). Returns nullopt for "auto" or empty; throws
// std::invalid_argument on anything else.
std::optional<Backend> parse_backend(std::string_view name);

// RAII force/restore (what api::DetectOptions::kernel_backend uses).
class ScopedBackend {
 public:
  explicit ScopedBackend(std::optional<Backend> b) : prev_(forced_backend()) {
    if (b.has_value()) force_backend(b);
  }
  ~ScopedBackend() { force_backend(prev_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  std::optional<Backend> prev_;
};

}  // namespace hdface::core::kernels
