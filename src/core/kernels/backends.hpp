#pragma once

// Internal declarations for the optional SIMD backend translation units.
// Each TU is compiled only when the build detects the matching target flags
// (see src/core/CMakeLists.txt, HDFACE_KERNEL_* definitions); kernels.cpp
// references these accessors under the same preprocessor guards.

#include "core/kernels/kernels.hpp"

namespace hdface::core::kernels::detail {

const KernelTable& avx2_table();
const KernelTable& avx512_table();
const KernelTable& neon_table();

}  // namespace hdface::core::kernels::detail
