#pragma once

// Kernel backend identifiers, split out of kernels.hpp so lightweight
// facade headers (api/detector.hpp) can name a Backend without pulling the
// whole kernel table. See kernels.hpp for the dispatch contract.

#include <cstdint>
#include <string_view>

namespace hdface::core::kernels {

enum class Backend : std::uint8_t { kScalar = 0, kAvx2, kAvx512, kNeon };

constexpr std::string_view backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kAvx512: return "avx512";
    case Backend::kNeon: return "neon";
  }
  return "unknown";
}

}  // namespace hdface::core::kernels
