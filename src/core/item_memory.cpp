#include "core/item_memory.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/check.hpp"

namespace hdface::core {

LevelItemMemory::LevelItemMemory(StochasticContext& ctx, std::size_t levels,
                                 double lo, double hi)
    : lo_(lo), hi_(hi) {
  if (levels < 2) throw std::invalid_argument("LevelItemMemory: need >= 2 levels");
  if (!(lo < hi) || lo < -1.0 || hi > 1.0) {
    throw std::invalid_argument("LevelItemMemory: range must satisfy -1 <= lo < hi <= 1");
  }
  const std::size_t dim = ctx.dim();

  // Fixed random flip order shared by all levels: level t flips the first
  // k(t) = round((1−t)/2 · D) positions of the basis, so δ(level, V₁) = t
  // and levels close in value share most of their flip set (correlative).
  std::vector<std::uint32_t> order(dim);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(mix64(ctx.config().seed, 0x17e77e7));
  for (std::size_t i = dim - 1; i > 0; --i) {
    std::swap(order[i], order[rng.below(i + 1)]);
  }

  table_.reserve(levels);
  for (std::size_t i = 0; i < levels; ++i) {
    const double t = value_of_level_impl(i, levels);
    const auto flips = static_cast<std::size_t>(
        std::llround((1.0 - t) / 2.0 * static_cast<double>(dim)));
    Hypervector v = ctx.basis();
    for (std::size_t f = 0; f < flips; ++f) v.flip(order[f]);
    table_.push_back(std::move(v));
  }
}

double LevelItemMemory::value_of_level_impl(std::size_t i, std::size_t levels) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(levels - 1);
}

double LevelItemMemory::value_of_level(std::size_t i) const {
  if (i >= table_.size()) throw std::out_of_range("LevelItemMemory: level index");
  return value_of_level_impl(i, table_.size());
}

Hypervector& LevelItemMemory::mutable_level(std::size_t i) {
  if (i >= table_.size()) throw std::out_of_range("LevelItemMemory: level index");
  return table_[i];
}

std::size_t LevelItemMemory::index_of(double v) const {
  // NaN survives std::clamp; llround(NaN) would then produce an arbitrary
  // table index — a silent out-of-bounds read in the unchecked build.
  HD_CHECK(!std::isnan(v), "index_of: NaN value (poisoned feature upstream)");
  v = std::clamp(v, lo_, hi_);
  const double t = (v - lo_) / (hi_ - lo_);
  return static_cast<std::size_t>(
      std::llround(t * static_cast<double>(table_.size() - 1)));
}

const Hypervector& LevelItemMemory::at_value(double v) const {
  return table_[index_of(v)];
}

}  // namespace hdface::core
