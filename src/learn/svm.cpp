#include "learn/svm.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace hdface::learn {

LinearSvm::LinearSvm(const SvmConfig& config)
    : config_(config),
      weights_(config.classes, std::vector<float>(config.input_dim, 0.0f)),
      bias_(config.classes, 0.0f),
      rng_(core::mix64(config.seed, 0x5F3)) {
  if (config.input_dim == 0) throw std::invalid_argument("LinearSvm: input_dim 0");
  if (config.classes < 2) throw std::invalid_argument("LinearSvm: need >= 2 classes");
}

void LinearSvm::fit(const std::vector<std::vector<float>>& features,
                    const std::vector<int>& labels) {
  if (features.size() != labels.size() || features.empty()) {
    throw std::invalid_argument("LinearSvm::fit: bad inputs");
  }
  std::vector<std::size_t> order(features.size());
  std::iota(order.begin(), order.end(), 0);
  std::size_t t = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.below(i)]);
    }
    for (auto idx : order) {
      ++t;
      const double eta = 1.0 / (config_.lambda * static_cast<double>(t));
      const auto& x = features[idx];
      for (std::size_t c = 0; c < config_.classes; ++c) {
        const float target = labels[idx] == static_cast<int>(c) ? 1.0f : -1.0f;
        auto& w = weights_[c];
        double margin = bias_[c];
        for (std::size_t k = 0; k < x.size(); ++k) margin += w[k] * x[k];
        margin *= target;
        // Pegasos update: shrink, plus a hinge step on margin violations.
        const float shrink = static_cast<float>(1.0 - eta * config_.lambda);
        for (auto& wk : w) wk *= shrink;
        if (margin < 1.0) {
          const float step = static_cast<float>(eta) * target;
          for (std::size_t k = 0; k < x.size(); ++k) w[k] += step * x[k];
          bias_[c] += 0.1f * step;  // unregularized, smaller-rate bias
        }
      }
    }
  }
}

std::vector<double> LinearSvm::scores(std::span<const float> features) const {
  if (features.size() != config_.input_dim) {
    throw std::invalid_argument("LinearSvm: feature size mismatch");
  }
  std::vector<double> s(config_.classes);
  for (std::size_t c = 0; c < config_.classes; ++c) {
    double acc = bias_[c];
    for (std::size_t k = 0; k < features.size(); ++k) {
      acc += weights_[c][k] * features[k];
    }
    s[c] = acc;
  }
  return s;
}

int LinearSvm::predict(std::span<const float> features) const {
  const auto s = scores(features);
  return static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
}

double LinearSvm::evaluate(const std::vector<std::vector<float>>& features,
                           const std::vector<int>& labels) const {
  if (features.size() != labels.size() || features.empty()) {
    throw std::invalid_argument("LinearSvm::evaluate: bad inputs");
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (predict(features[i]) == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(features.size());
}

}  // namespace hdface::learn
