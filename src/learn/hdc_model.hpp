#pragma once

// Adaptive hyperdimensional classifier (paper §5).
//
// Training memorizes one prototype per class as an integer accumulator over
// query hypervectors. The *adaptive* update (the paper's "eliminates
// redundant information memorization ... avoids saturation") only reinforces
// a class when the model is wrong or unsure, weighting each update by how
// wrong the model was (1 − δ), and simultaneously subtracts the query from
// the mispredicted class — single-pass-friendly online learning in the
// OnlineHD style the paper builds on.
//
// Inference is a similarity search: the query gets the label of the most
// similar class prototype (cosine against the float accumulators during
// training/eval, or pure Hamming against binarized prototypes in the
// binary inference mode used for the robustness and hardware studies).

#include <cstdint>
#include <vector>

#include "core/accumulator.hpp"
#include "core/hypervector.hpp"
#include "core/op_counter.hpp"
#include "core/prototype_block.hpp"
#include "core/rng.hpp"

namespace hdface::learn {

struct HdcConfig {
  std::size_t dim = 4096;
  std::size_t classes = 2;
  double learning_rate = 1.0;
  std::size_t epochs = 5;      // 1 = single-pass
  bool adaptive = true;        // false = naive bundling of every sample
  std::uint64_t seed = 0xADA;
};

class HdcClassifier {
 public:
  explicit HdcClassifier(const HdcConfig& config);

  const HdcConfig& config() const { return config_; }

  // Full training: one adaptive pass per epoch over a deterministic shuffle.
  void fit(const std::vector<core::Hypervector>& features,
           const std::vector<int>& labels);

  // One adaptive update; returns whether the pre-update prediction was right.
  bool update(const core::Hypervector& feature, int label);

  // Cosine similarity per class.
  std::vector<double> scores(const core::Hypervector& feature) const;
  int predict(const core::Hypervector& feature) const;
  std::vector<int> predict(const std::vector<core::Hypervector>& features) const;

  double evaluate(const std::vector<core::Hypervector>& features,
                  const std::vector<int>& labels) const;

  // Binary inference path: prototypes thresholded to binary hypervectors,
  // prediction by maximum Hamming similarity. This is the representation the
  // robustness study corrupts and the FPGA model accelerates.
  std::vector<core::Hypervector> binary_prototypes() const;
  static int predict_binary(const std::vector<core::Hypervector>& prototypes,
                            const core::Hypervector& feature);

  // SoA fast path: callers scoring many queries against a fixed prototype
  // set (robustness sweeps, ablations) pack the prototypes once into a
  // core::PrototypeBlock and avoid the per-call pointer chase. Identical
  // result to the vector overload.
  static int predict_binary(const core::PrototypeBlock& prototypes,
                            const core::Hypervector& feature);

  // --- fault-injection override ---------------------------------------------
  //
  // When set, scores()/predict()/evaluate() switch to binary Hamming
  // inference against these prototypes (normalized similarity δ ∈ [−1, 1])
  // instead of cosine against the float accumulators. This is the
  // copy-on-inject path for prototype faults: the deployment storage the
  // robustness study corrupts is the binarized prototype memory, and the
  // float accumulators are physically untouched — clear_binary_override()
  // restores the clean model exactly. Training under an override is a
  // programming error (update() throws std::logic_error).
  void set_binary_override(std::vector<core::Hypervector> prototypes);
  void clear_binary_override() {
    binary_override_.clear();
    binary_block_ = core::PrototypeBlock();
  }
  bool has_binary_override() const { return !binary_override_.empty(); }
  const std::vector<core::Hypervector>& binary_override() const {
    return binary_override_;
  }

  const core::Accumulator& prototype(std::size_t c) const { return prototypes_[c]; }

  // Restores a prototype's accumulator (deserialization).
  void set_prototype_counts(std::size_t c, std::vector<double> counts) {
    prototypes_.at(c).set_counts(std::move(counts));
  }

  void set_counter(core::OpCounter* counter);

 private:
  HdcConfig config_;
  std::vector<core::Accumulator> prototypes_;
  std::vector<core::Hypervector> binary_override_;
  // SoA mirror of binary_override_, rebuilt by set_binary_override: scores()
  // streams the query against all class planes through one kernel call.
  core::PrototypeBlock binary_block_;
  core::Rng rng_;
  core::OpCounter* counter_ = nullptr;
};

}  // namespace hdface::learn
