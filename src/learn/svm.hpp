#pragma once

// Linear one-vs-rest SVM trained with Pegasos-style hinge-loss SGD — the
// paper's second classical baseline (§6.2).

#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.hpp"

namespace hdface::learn {

struct SvmConfig {
  std::size_t input_dim = 0;
  std::size_t classes = 2;
  double lambda = 1e-4;   // L2 regularization strength
  std::size_t epochs = 40;
  std::uint64_t seed = 0x57;
};

class LinearSvm {
 public:
  explicit LinearSvm(const SvmConfig& config);

  const SvmConfig& config() const { return config_; }

  void fit(const std::vector<std::vector<float>>& features,
           const std::vector<int>& labels);

  std::vector<double> scores(std::span<const float> features) const;
  int predict(std::span<const float> features) const;
  double evaluate(const std::vector<std::vector<float>>& features,
                  const std::vector<int>& labels) const;

 private:
  SvmConfig config_;
  // One (w, b) per class, one-vs-rest.
  std::vector<std::vector<float>> weights_;
  std::vector<float> bias_;
  core::Rng rng_;
};

}  // namespace hdface::learn
