#include "learn/online.hpp"

#include <stdexcept>

namespace hdface::learn {

OnlineTrainer::OnlineTrainer(HdcClassifier& model, const OnlineConfig& config)
    : model_(model), config_(config) {
  if (config.accuracy_window == 0) {
    throw std::invalid_argument("OnlineTrainer: accuracy_window must be > 0");
  }
  if (config.decay <= 0.0 || config.decay > 1.0) {
    throw std::invalid_argument("OnlineTrainer: decay must be in (0, 1]");
  }
  if (config.decay_interval == 0) {
    throw std::invalid_argument("OnlineTrainer: decay_interval must be > 0");
  }
}

int OnlineTrainer::observe(const core::Hypervector& feature, int label) {
  const int prediction = model_.predict(feature);
  const bool hit = prediction == label;

  model_.update(feature, label);
  ++seen_;
  lifetime_hits_ += hit ? 1 : 0;
  window_.push_back(hit);
  window_hits_ += hit ? 1 : 0;
  if (window_.size() > config_.accuracy_window) {
    window_hits_ -= window_.front() ? 1 : 0;
    window_.pop_front();
  }
  maybe_decay();
  return prediction;
}

void OnlineTrainer::maybe_decay() {
  if (config_.decay >= 1.0) return;
  if (seen_ % config_.decay_interval != 0) return;
  for (std::size_t c = 0; c < model_.config().classes; ++c) {
    auto counts = model_.prototype(c).counts();
    for (auto& v : counts) v *= config_.decay;
    model_.set_prototype_counts(c, std::move(counts));
  }
}

double OnlineTrainer::windowed_accuracy() const {
  if (window_.empty()) return 0.0;
  return static_cast<double>(window_hits_) / static_cast<double>(window_.size());
}

double OnlineTrainer::lifetime_accuracy() const {
  if (seen_ == 0) return 0.0;
  return static_cast<double>(lifetime_hits_) / static_cast<double>(seen_);
}

}  // namespace hdface::learn
