#include "learn/serialize.hpp"

#include <fstream>
#include <stdexcept>

#include "util/bytes.hpp"

// All raw byte I/O is routed through the io:: shim (src/util/bytes.hpp), the
// one reinterpret_cast-allowlisted translation unit hdlint accepts. Loaders
// validate magic/version and bound-check every on-disk size *before*
// allocating payload storage, so a corrupted or adversarial .hdc file cannot
// drive a multi-gigabyte allocation or a short read into live memory.

namespace hdface::learn {

namespace {

constexpr std::uint32_t kHvMagic = 0x48444856;   // "HDHV"
constexpr std::uint32_t kHdcMagic = 0x48444343;  // "HDCC"
constexpr std::uint32_t kMlpMagic = 0x48444D4C;  // "HDML"
constexpr std::uint32_t kVersion = 1;

// Plausibility ceilings for on-disk shape fields. Far above anything the
// detector produces (the paper operates near 10^4 dimensions) while small
// enough that a corrupted size field fails loudly instead of allocating.
constexpr std::uint64_t kMaxDim = 1ull << 26;       // 64M hypervector bits
constexpr std::uint64_t kMaxClasses = 1ull << 16;   // class prototypes
constexpr std::uint64_t kMaxLayers = 64;            // MLP depth
constexpr std::uint64_t kMaxLayerWidth = 1ull << 24;

void write_doubles(std::ostream& out, const std::vector<double>& v) {
  io::write_pod(out, static_cast<std::uint64_t>(v.size()));
  io::write_array(out, v.data(), v.size());
}

std::vector<double> read_doubles(std::istream& in, const char* what) {
  const auto n = io::read_checked_size(in, kMaxDim, what);
  std::vector<double> v(static_cast<std::size_t>(n));
  io::read_array(in, v.data(), v.size(), what);
  return v;
}

void write_floats(std::ostream& out, const std::vector<float>& v) {
  io::write_pod(out, static_cast<std::uint64_t>(v.size()));
  io::write_array(out, v.data(), v.size());
}

std::vector<float> read_floats(std::istream& in, const char* what) {
  const auto n = io::read_checked_size(in, kMaxLayerWidth * kMaxLayerWidth, what);
  std::vector<float> v(static_cast<std::size_t>(n));
  io::read_array(in, v.data(), v.size(), what);
  return v;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("serialize: cannot open for write: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("serialize: cannot open for read: " + path);
  return in;
}

}  // namespace

void write_hypervector(std::ostream& out, const core::Hypervector& v) {
  io::write_pod(out, kHvMagic);
  io::write_pod(out, kVersion);
  io::write_pod(out, static_cast<std::uint64_t>(v.dim()));
  const auto words = v.words();
  io::write_array(out, words.data(), words.size());
}

core::Hypervector read_hypervector(std::istream& in) {
  io::expect_header(in, kHvMagic, kVersion, "hypervector");
  const auto dim = io::read_checked_size(in, kMaxDim, "hypervector dimension");
  core::Hypervector v(static_cast<std::size_t>(dim));
  auto words = v.mutable_words();
  io::read_array(in, words.data(), words.size(), "hypervector words");
  v.mask_tail();
  return v;
}

void save_classifier(const HdcClassifier& model, const std::string& path) {
  auto out = open_out(path);
  io::write_pod(out, kHdcMagic);
  io::write_pod(out, kVersion);
  const HdcConfig& cfg = model.config();
  io::write_pod(out, static_cast<std::uint64_t>(cfg.dim));
  io::write_pod(out, static_cast<std::uint64_t>(cfg.classes));
  io::write_pod(out, cfg.learning_rate);
  io::write_pod(out, static_cast<std::uint64_t>(cfg.epochs));
  io::write_pod(out, static_cast<std::uint8_t>(cfg.adaptive ? 1 : 0));
  io::write_pod(out, cfg.seed);
  for (std::size_t c = 0; c < cfg.classes; ++c) {
    write_doubles(out, model.prototype(c).counts());
  }
  if (!out) throw std::runtime_error("serialize: write failed: " + path);
}

HdcClassifier load_classifier(const std::string& path) {
  auto in = open_in(path);
  io::expect_header(in, kHdcMagic, kVersion, "HDC classifier");
  HdcConfig cfg;
  cfg.dim = static_cast<std::size_t>(
      io::read_checked_size(in, kMaxDim, "classifier dimension"));
  cfg.classes = static_cast<std::size_t>(
      io::read_checked_size(in, kMaxClasses, "classifier class count"));
  cfg.learning_rate = io::read_pod<double>(in, "classifier learning rate");
  cfg.epochs = static_cast<std::size_t>(
      io::read_pod<std::uint64_t>(in, "classifier epochs"));
  cfg.adaptive = io::read_pod<std::uint8_t>(in, "classifier flags") != 0;
  cfg.seed = io::read_pod<std::uint64_t>(in, "classifier seed");
  HdcClassifier model(cfg);
  for (std::size_t c = 0; c < cfg.classes; ++c) {
    const auto counts = read_doubles(in, "prototype counts");
    if (counts.size() != cfg.dim) {
      throw std::runtime_error("serialize: prototype dimension mismatch");
    }
    model.set_prototype_counts(c, counts);
  }
  return model;
}

void save_mlp(const Mlp& model, const std::string& path) {
  auto out = open_out(path);
  io::write_pod(out, kMlpMagic);
  io::write_pod(out, kVersion);
  const MlpConfig& cfg = model.config();
  io::write_pod(out, static_cast<std::uint64_t>(cfg.layers.size()));
  for (auto l : cfg.layers) io::write_pod(out, static_cast<std::uint64_t>(l));
  io::write_pod(out, cfg.learning_rate);
  io::write_pod(out, cfg.momentum);
  io::write_pod(out, cfg.weight_decay);
  io::write_pod(out, static_cast<std::uint64_t>(cfg.epochs));
  io::write_pod(out, static_cast<std::uint64_t>(cfg.batch_size));
  io::write_pod(out, cfg.seed);
  for (const auto& layer : model.layers()) {
    write_floats(out, layer.weights);
    write_floats(out, layer.bias);
  }
  if (!out) throw std::runtime_error("serialize: write failed: " + path);
}

Mlp load_mlp(const std::string& path) {
  auto in = open_in(path);
  io::expect_header(in, kMlpMagic, kVersion, "MLP");
  MlpConfig cfg;
  const auto n_layers = io::read_checked_size(in, kMaxLayers, "MLP layer count");
  if (n_layers < 2) {
    throw std::runtime_error("serialize: implausible layer count");
  }
  for (std::uint64_t i = 0; i < n_layers; ++i) {
    cfg.layers.push_back(static_cast<std::size_t>(
        io::read_checked_size(in, kMaxLayerWidth, "MLP layer width")));
  }
  cfg.learning_rate = io::read_pod<double>(in, "MLP learning rate");
  cfg.momentum = io::read_pod<double>(in, "MLP momentum");
  cfg.weight_decay = io::read_pod<double>(in, "MLP weight decay");
  cfg.epochs = static_cast<std::size_t>(
      io::read_pod<std::uint64_t>(in, "MLP epochs"));
  cfg.batch_size = static_cast<std::size_t>(
      io::read_pod<std::uint64_t>(in, "MLP batch size"));
  cfg.seed = io::read_pod<std::uint64_t>(in, "MLP seed");
  Mlp model(cfg);
  for (auto& layer : model.mutable_layers()) {
    auto weights = read_floats(in, "MLP layer weights");
    auto bias = read_floats(in, "MLP layer bias");
    if (weights.size() != layer.weights.size() || bias.size() != layer.bias.size()) {
      throw std::runtime_error("serialize: layer shape mismatch");
    }
    layer.weights = std::move(weights);
    layer.bias = std::move(bias);
  }
  return model;
}

}  // namespace hdface::learn
