#include "learn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace hdface::learn {

namespace {

constexpr std::uint32_t kHvMagic = 0x48444856;   // "HDHV"
constexpr std::uint32_t kHdcMagic = 0x48444343;  // "HDCC"
constexpr std::uint32_t kMlpMagic = 0x48444D4C;  // "HDML"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("serialize: truncated stream");
  return value;
}

void write_doubles(std::ostream& out, const std::vector<double>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

std::vector<double> read_doubles(std::istream& in) {
  const auto n = read_pod<std::uint64_t>(in);
  std::vector<double> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!in) throw std::runtime_error("serialize: truncated doubles");
  return v;
}

void write_floats(std::ostream& out, const std::vector<float>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float> read_floats(std::istream& in) {
  const auto n = read_pod<std::uint64_t>(in);
  std::vector<float> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!in) throw std::runtime_error("serialize: truncated floats");
  return v;
}

void expect_header(std::istream& in, std::uint32_t magic, const char* what) {
  if (read_pod<std::uint32_t>(in) != magic) {
    throw std::runtime_error(std::string("serialize: bad magic for ") + what);
  }
  if (read_pod<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error(std::string("serialize: unsupported version for ") + what);
  }
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("serialize: cannot open for write: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("serialize: cannot open for read: " + path);
  return in;
}

}  // namespace

void write_hypervector(std::ostream& out, const core::Hypervector& v) {
  write_pod(out, kHvMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(v.dim()));
  const auto words = v.words();
  out.write(reinterpret_cast<const char*>(words.data()),
            static_cast<std::streamsize>(words.size() * sizeof(std::uint64_t)));
}

core::Hypervector read_hypervector(std::istream& in) {
  expect_header(in, kHvMagic, "hypervector");
  const auto dim = read_pod<std::uint64_t>(in);
  if (dim == 0 || dim > (1ull << 32)) {
    throw std::runtime_error("serialize: implausible hypervector dimension");
  }
  core::Hypervector v(static_cast<std::size_t>(dim));
  auto words = v.mutable_words();
  in.read(reinterpret_cast<char*>(words.data()),
          static_cast<std::streamsize>(words.size() * sizeof(std::uint64_t)));
  if (!in) throw std::runtime_error("serialize: truncated hypervector");
  v.mask_tail();
  return v;
}

void save_classifier(const HdcClassifier& model, const std::string& path) {
  auto out = open_out(path);
  write_pod(out, kHdcMagic);
  write_pod(out, kVersion);
  const HdcConfig& cfg = model.config();
  write_pod(out, static_cast<std::uint64_t>(cfg.dim));
  write_pod(out, static_cast<std::uint64_t>(cfg.classes));
  write_pod(out, cfg.learning_rate);
  write_pod(out, static_cast<std::uint64_t>(cfg.epochs));
  write_pod(out, static_cast<std::uint8_t>(cfg.adaptive ? 1 : 0));
  write_pod(out, cfg.seed);
  for (std::size_t c = 0; c < cfg.classes; ++c) {
    write_doubles(out, model.prototype(c).counts());
  }
  if (!out) throw std::runtime_error("serialize: write failed: " + path);
}

HdcClassifier load_classifier(const std::string& path) {
  auto in = open_in(path);
  expect_header(in, kHdcMagic, "HDC classifier");
  HdcConfig cfg;
  cfg.dim = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  cfg.classes = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  cfg.learning_rate = read_pod<double>(in);
  cfg.epochs = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  cfg.adaptive = read_pod<std::uint8_t>(in) != 0;
  cfg.seed = read_pod<std::uint64_t>(in);
  HdcClassifier model(cfg);
  for (std::size_t c = 0; c < cfg.classes; ++c) {
    const auto counts = read_doubles(in);
    if (counts.size() != cfg.dim) {
      throw std::runtime_error("serialize: prototype dimension mismatch");
    }
    model.set_prototype_counts(c, counts);
  }
  return model;
}

void save_mlp(const Mlp& model, const std::string& path) {
  auto out = open_out(path);
  write_pod(out, kMlpMagic);
  write_pod(out, kVersion);
  const MlpConfig& cfg = model.config();
  write_pod(out, static_cast<std::uint64_t>(cfg.layers.size()));
  for (auto l : cfg.layers) write_pod(out, static_cast<std::uint64_t>(l));
  write_pod(out, cfg.learning_rate);
  write_pod(out, cfg.momentum);
  write_pod(out, cfg.weight_decay);
  write_pod(out, static_cast<std::uint64_t>(cfg.epochs));
  write_pod(out, static_cast<std::uint64_t>(cfg.batch_size));
  write_pod(out, cfg.seed);
  for (const auto& layer : model.layers()) {
    write_floats(out, layer.weights);
    write_floats(out, layer.bias);
  }
  if (!out) throw std::runtime_error("serialize: write failed: " + path);
}

Mlp load_mlp(const std::string& path) {
  auto in = open_in(path);
  expect_header(in, kMlpMagic, "MLP");
  MlpConfig cfg;
  const auto n_layers = read_pod<std::uint64_t>(in);
  if (n_layers < 2 || n_layers > 64) {
    throw std::runtime_error("serialize: implausible layer count");
  }
  for (std::uint64_t i = 0; i < n_layers; ++i) {
    cfg.layers.push_back(static_cast<std::size_t>(read_pod<std::uint64_t>(in)));
  }
  cfg.learning_rate = read_pod<double>(in);
  cfg.momentum = read_pod<double>(in);
  cfg.weight_decay = read_pod<double>(in);
  cfg.epochs = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  cfg.batch_size = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  cfg.seed = read_pod<std::uint64_t>(in);
  Mlp model(cfg);
  for (auto& layer : model.mutable_layers()) {
    auto weights = read_floats(in);
    auto bias = read_floats(in);
    if (weights.size() != layer.weights.size() || bias.size() != layer.bias.size()) {
      throw std::runtime_error("serialize: layer shape mismatch");
    }
    layer.weights = std::move(weights);
    layer.bias = std::move(bias);
  }
  return model;
}

}  // namespace hdface::learn
