#pragma once

// Classification metrics shared by all learners.

#include <cstddef>
#include <string>
#include <vector>

namespace hdface::learn {

// Fraction of matching entries; vectors must have equal, nonzero length.
double accuracy(const std::vector<int>& predictions, const std::vector<int>& labels);

// confusion[t * classes + p] = count of true class t predicted as p.
std::vector<std::size_t> confusion_matrix(const std::vector<int>& predictions,
                                          const std::vector<int>& labels,
                                          std::size_t classes);

// Per-class recall (diagonal / row sum), 0 for empty classes.
std::vector<double> per_class_recall(const std::vector<std::size_t>& confusion,
                                     std::size_t classes);

// Pretty confusion matrix for logs.
std::string format_confusion(const std::vector<std::size_t>& confusion,
                             const std::vector<std::string>& class_names);

}  // namespace hdface::learn
