#pragma once

// Post-training uniform quantization of an MLP to 16/8/4-bit fixed point,
// with bit-error injection into the quantized weight words (paper Table 2).
//
// Scaling is per-layer power-of-two max-abs (the common fixed-point DSP
// convention): step = 2^ceil(log2(max|w|)) / 2^(bits−1). Bit flips happen in
// the integer weight words at a given per-bit rate; inference then proceeds
// on the dequantized weights.

#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "learn/mlp.hpp"

namespace hdface::learn {

class QuantizedMlp {
 public:
  // bits in [2, 16].
  QuantizedMlp(const Mlp& source, int bits);

  int bits() const { return bits_; }
  std::size_t num_classes() const { return num_classes_; }

  // Flips each stored weight bit independently with probability `rate`.
  // Cumulative: call reset() to restore the clean quantized weights.
  void inject_bit_errors(double rate, core::Rng& rng);
  void reset();

  int predict(std::span<const float> features) const;
  double evaluate(const std::vector<std::vector<float>>& features,
                  const std::vector<int>& labels) const;

  // Quantization error metrics (for tests): max |w − dequant(quant(w))|.
  double max_abs_error(const Mlp& source) const;

 private:
  struct QLayer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<std::int32_t> weights;  // quantized, low `bits` significant
    std::vector<float> bias;            // biases stay float (tiny memory)
    float step = 1.0f;
  };

  std::vector<float> forward(std::span<const float> input) const;

  int bits_;
  std::size_t num_classes_;
  std::vector<QLayer> layers_;
  std::vector<QLayer> clean_;  // pristine copy for reset()
};

}  // namespace hdface::learn
