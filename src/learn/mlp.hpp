#pragma once

// Multilayer perceptron — the paper's DNN baseline.
//
// The paper's comparator is a 4-layer network (input, two hidden layers,
// output; Fig 5b sweeps the hidden sizes) trained on the same HOG features as
// HDFace. Implementation: ReLU hidden activations, softmax cross-entropy,
// minibatch SGD with momentum. Forward/backward FLOP counts feed the Fig 7
// efficiency model.

#include <cstdint>
#include <span>
#include <vector>

#include "core/op_counter.hpp"
#include "core/rng.hpp"

namespace hdface::learn {

struct MlpConfig {
  std::vector<std::size_t> layers;  // {input, hidden..., classes}
  double learning_rate = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  // Per-batch global gradient-norm clip (0 disables). Keeps small/narrow
  // configurations from diverging under the shared learning rate.
  double max_grad_norm = 5.0;
  std::size_t epochs = 30;
  std::size_t batch_size = 16;
  std::uint64_t seed = 0xD2;
};

class Mlp {
 public:
  explicit Mlp(const MlpConfig& config);

  const MlpConfig& config() const { return config_; }
  std::size_t num_classes() const { return config_.layers.back(); }
  std::size_t num_parameters() const;

  // Minibatch SGD training; returns final-epoch mean training loss.
  double fit(const std::vector<std::vector<float>>& features,
             const std::vector<int>& labels);

  // One epoch (exposed for training-time measurements); returns mean loss.
  double train_epoch(const std::vector<std::vector<float>>& features,
                     const std::vector<int>& labels);

  // Softmax class probabilities.
  std::vector<float> probabilities(std::span<const float> features) const;
  int predict(std::span<const float> features) const;
  double evaluate(const std::vector<std::vector<float>>& features,
                  const std::vector<int>& labels) const;

  // Op counts for a single forward pass / a single training step per sample
  // (forward + backward + update), used by the Fig 7 cost model.
  void count_forward_ops(core::OpCounter& counter) const;
  void count_training_ops_per_sample(core::OpCounter& counter) const;

  // Weight access for quantization (layer-major, row-major weights then bias).
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<float> weights;  // out × in
    std::vector<float> bias;     // out
  };
  const std::vector<Layer>& layers() const { return layers_; }
  std::vector<Layer>& mutable_layers() { return layers_; }

 private:
  std::vector<float> forward(std::span<const float> input,
                             std::vector<std::vector<float>>* activations) const;

  MlpConfig config_;
  std::vector<Layer> layers_;
  std::vector<Layer> velocity_;
  core::Rng rng_;
};

}  // namespace hdface::learn
