#include "learn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hdface::learn {

Mlp::Mlp(const MlpConfig& config)
    : config_(config), rng_(core::mix64(config.seed, 0x317)) {
  if (config.layers.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output layers");
  }
  for (std::size_t l = 0; l + 1 < config.layers.size(); ++l) {
    Layer layer;
    layer.in = config.layers[l];
    layer.out = config.layers[l + 1];
    if (layer.in == 0 || layer.out == 0) {
      throw std::invalid_argument("Mlp: zero-width layer");
    }
    layer.weights.resize(layer.in * layer.out);
    layer.bias.assign(layer.out, 0.0f);
    // He initialization for ReLU stacks.
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (auto& w : layer.weights) {
      w = static_cast<float>(scale * rng_.gaussian());
    }
    layers_.push_back(std::move(layer));
  }
  velocity_ = layers_;
  for (auto& l : velocity_) {
    std::fill(l.weights.begin(), l.weights.end(), 0.0f);
    std::fill(l.bias.begin(), l.bias.end(), 0.0f);
  }
}

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.weights.size() + l.bias.size();
  return n;
}

std::vector<float> Mlp::forward(std::span<const float> input,
                                std::vector<std::vector<float>>* activations) const {
  if (input.size() != layers_.front().in) {
    throw std::invalid_argument("Mlp: input size mismatch");
  }
  std::vector<float> x(input.begin(), input.end());
  if (activations) {
    activations->clear();
    activations->push_back(x);
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<float> y(layer.out);
    for (std::size_t o = 0; o < layer.out; ++o) {
      const float* row = &layer.weights[o * layer.in];
      float acc = layer.bias[o];
      for (std::size_t i = 0; i < layer.in; ++i) acc += row[i] * x[i];
      y[o] = acc;
    }
    const bool last = (l + 1 == layers_.size());
    if (!last) {
      for (auto& v : y) v = std::max(v, 0.0f);  // ReLU
    }
    x = std::move(y);
    if (activations) activations->push_back(x);
  }
  // Softmax on the logits.
  const float mx = *std::max_element(x.begin(), x.end());
  double denom = 0.0;
  for (auto& v : x) {
    v = std::exp(v - mx);
    denom += v;
  }
  for (auto& v : x) v = static_cast<float>(v / denom);
  return x;
}

std::vector<float> Mlp::probabilities(std::span<const float> features) const {
  return forward(features, nullptr);
}

int Mlp::predict(std::span<const float> features) const {
  const auto p = probabilities(features);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

double Mlp::evaluate(const std::vector<std::vector<float>>& features,
                     const std::vector<int>& labels) const {
  if (features.size() != labels.size() || features.empty()) {
    throw std::invalid_argument("Mlp::evaluate: bad inputs");
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (predict(features[i]) == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(features.size());
}

double Mlp::train_epoch(const std::vector<std::vector<float>>& features,
                        const std::vector<int>& labels) {
  if (features.size() != labels.size() || features.empty()) {
    throw std::invalid_argument("Mlp::train_epoch: bad inputs");
  }
  std::vector<std::size_t> order(features.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng_.below(i)]);
  }

  // Gradient buffers matching layer shapes.
  std::vector<Layer> grads = layers_;
  auto zero_grads = [&] {
    for (auto& g : grads) {
      std::fill(g.weights.begin(), g.weights.end(), 0.0f);
      std::fill(g.bias.begin(), g.bias.end(), 0.0f);
    }
  };

  double total_loss = 0.0;
  std::size_t done = 0;
  while (done < order.size()) {
    const std::size_t batch_end = std::min(done + config_.batch_size, order.size());
    const std::size_t batch = batch_end - done;
    zero_grads();
    for (std::size_t b = done; b < batch_end; ++b) {
      const auto idx = order[b];
      std::vector<std::vector<float>> acts;
      const std::vector<float> probs = forward(features[idx], &acts);
      const auto y = static_cast<std::size_t>(labels[idx]);
      total_loss += -std::log(std::max(probs[y], 1e-12f));

      // delta at the output: softmax-CE gradient.
      std::vector<float> delta = probs;
      delta[y] -= 1.0f;
      for (std::size_t l = layers_.size(); l-- > 0;) {
        const Layer& layer = layers_[l];
        Layer& grad = grads[l];
        const std::vector<float>& input_act = acts[l];
        for (std::size_t o = 0; o < layer.out; ++o) {
          grad.bias[o] += delta[o];
          float* grow = &grad.weights[o * layer.in];
          for (std::size_t i = 0; i < layer.in; ++i) {
            grow[i] += delta[o] * input_act[i];
          }
        }
        if (l == 0) break;
        // Propagate: delta_prev = Wᵀ delta, gated by ReLU.
        std::vector<float> prev(layer.in, 0.0f);
        for (std::size_t o = 0; o < layer.out; ++o) {
          const float* row = &layer.weights[o * layer.in];
          for (std::size_t i = 0; i < layer.in; ++i) prev[i] += row[i] * delta[o];
        }
        for (std::size_t i = 0; i < layer.in; ++i) {
          if (acts[l][i] <= 0.0f) prev[i] = 0.0f;
        }
        delta = std::move(prev);
      }
    }
    // Global gradient-norm clipping (before the batch averaging below the
    // norm is computed on the batch-mean gradient).
    if (config_.max_grad_norm > 0.0) {
      double norm_sq = 0.0;
      const double inv_b = 1.0 / static_cast<double>(batch);
      for (const auto& g : grads) {
        for (float v : g.weights) norm_sq += (v * inv_b) * (v * inv_b);
        for (float v : g.bias) norm_sq += (v * inv_b) * (v * inv_b);
      }
      const double norm = std::sqrt(norm_sq);
      if (norm > config_.max_grad_norm) {
        const float scale = static_cast<float>(config_.max_grad_norm / norm);
        for (auto& g : grads) {
          for (auto& v : g.weights) v *= scale;
          for (auto& v : g.bias) v *= scale;
        }
      }
    }
    // SGD + momentum + weight decay.
    const float lr = static_cast<float>(config_.learning_rate);
    const float mom = static_cast<float>(config_.momentum);
    const float wd = static_cast<float>(config_.weight_decay);
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      for (std::size_t k = 0; k < layers_[l].weights.size(); ++k) {
        const float g = grads[l].weights[k] * inv_batch + wd * layers_[l].weights[k];
        velocity_[l].weights[k] = mom * velocity_[l].weights[k] - lr * g;
        layers_[l].weights[k] += velocity_[l].weights[k];
      }
      for (std::size_t k = 0; k < layers_[l].bias.size(); ++k) {
        const float g = grads[l].bias[k] * inv_batch;
        velocity_[l].bias[k] = mom * velocity_[l].bias[k] - lr * g;
        layers_[l].bias[k] += velocity_[l].bias[k];
      }
    }
    done = batch_end;
  }
  return total_loss / static_cast<double>(order.size());
}

double Mlp::fit(const std::vector<std::vector<float>>& features,
                const std::vector<int>& labels) {
  double loss = 0.0;
  for (std::size_t e = 0; e < config_.epochs; ++e) {
    loss = train_epoch(features, labels);
  }
  return loss;
}

void Mlp::count_forward_ops(core::OpCounter& counter) const {
  for (const auto& l : layers_) {
    const auto macs = static_cast<std::uint64_t>(l.in) * l.out;
    counter.add(core::OpKind::kFloatMul, macs);
    counter.add(core::OpKind::kFloatAdd, macs + l.out);
    counter.add(core::OpKind::kFloatCmp, l.out);  // ReLU / argmax class ops
  }
  counter.add(core::OpKind::kFloatTrig, layers_.back().out);  // softmax exp
}

void Mlp::count_training_ops_per_sample(core::OpCounter& counter) const {
  // Forward + backward (≈2× forward MACs: dW outer product + delta backprop)
  // + parameter update (2 mul/add per parameter).
  count_forward_ops(counter);
  for (const auto& l : layers_) {
    const auto macs = static_cast<std::uint64_t>(l.in) * l.out;
    counter.add(core::OpKind::kFloatMul, 2 * macs);
    counter.add(core::OpKind::kFloatAdd, 2 * macs);
  }
  const auto params = static_cast<std::uint64_t>(num_parameters());
  counter.add(core::OpKind::kFloatMul, 2 * params);
  counter.add(core::OpKind::kFloatAdd, 2 * params);
}

}  // namespace hdface::learn
