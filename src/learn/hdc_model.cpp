#include "learn/hdc_model.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/check.hpp"

namespace hdface::learn {

HdcClassifier::HdcClassifier(const HdcConfig& config)
    : config_(config), rng_(core::mix64(config.seed, 0xC1A55)) {
  if (config.classes < 2) throw std::invalid_argument("HdcClassifier: need >= 2 classes");
  prototypes_.reserve(config.classes);
  for (std::size_t c = 0; c < config.classes; ++c) {
    prototypes_.emplace_back(config.dim);
  }
}

void HdcClassifier::set_counter(core::OpCounter* counter) {
  counter_ = counter;
  for (auto& p : prototypes_) p.set_counter(counter);
}

bool HdcClassifier::update(const core::Hypervector& feature, int label) {
  if (has_binary_override()) {
    throw std::logic_error(
        "HdcClassifier::update: training while a binary override (faulted "
        "prototype memory) is active would corrupt the clean model");
  }
  const auto y = static_cast<std::size_t>(label);
  if (y >= config_.classes) throw std::invalid_argument("HdcClassifier: bad label");

  if (!config_.adaptive) {
    prototypes_[y].add(feature, config_.learning_rate);
    return true;
  }
  const std::vector<double> s = scores(feature);
  const auto pred = static_cast<std::size_t>(
      std::max_element(s.begin(), s.end()) - s.begin());
  if (pred == y && prototypes_[y].norm() > 0.0) {
    // Correct and confident enough: memorize nothing (saturation control).
    return true;
  }
  // Reinforce the true class proportionally to how far it was from firing,
  // and push the confused class away symmetrically.
  prototypes_[y].add(feature, config_.learning_rate * (1.0 - s[y]));
  if (pred != y && prototypes_[pred].norm() > 0.0) {
    prototypes_[pred].add(feature, -config_.learning_rate * (1.0 - s[pred]));
  }
  return pred == y;
}

void HdcClassifier::fit(const std::vector<core::Hypervector>& features,
                        const std::vector<int>& labels) {
  if (features.size() != labels.size() || features.empty()) {
    throw std::invalid_argument("HdcClassifier::fit: bad inputs");
  }
  std::vector<std::size_t> order(features.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.below(i)]);
    }
    for (auto idx : order) update(features[idx], labels[idx]);
  }
}

std::vector<double> HdcClassifier::scores(const core::Hypervector& feature) const {
  HD_CHECK(feature.dim() == config_.dim,
           "scores: query hypervector width does not match the prototype "
           "width this classifier was trained at");
  std::vector<double> s(config_.classes);
  if (has_binary_override()) {
    // Batched SoA similarity search: one kernel pass over the query's words
    // against all class planes, then the δ = 1 − 2h/D readout.
    const auto h = binary_block_.hamming_many(feature, counter_);
    for (std::size_t c = 0; c < config_.classes; ++c) {
      s[c] = 1.0 - 2.0 * static_cast<double>(h[c]) /
                       static_cast<double>(config_.dim);
    }
    return s;
  }
  for (std::size_t c = 0; c < config_.classes; ++c) {
    s[c] = prototypes_[c].cosine(feature);
  }
  return s;
}

void HdcClassifier::set_binary_override(
    std::vector<core::Hypervector> prototypes) {
  if (prototypes.size() != config_.classes) {
    throw std::invalid_argument("set_binary_override: class count mismatch");
  }
  for (const auto& p : prototypes) {
    if (p.dim() != config_.dim) {
      throw std::invalid_argument("set_binary_override: dimensionality mismatch");
    }
  }
  binary_override_ = std::move(prototypes);
  binary_block_ = core::PrototypeBlock(binary_override_);
}

int HdcClassifier::predict(const core::Hypervector& feature) const {
  const auto s = scores(feature);
  return static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
}

std::vector<int> HdcClassifier::predict(
    const std::vector<core::Hypervector>& features) const {
  std::vector<int> out;
  out.reserve(features.size());
  for (const auto& f : features) out.push_back(predict(f));
  return out;
}

double HdcClassifier::evaluate(const std::vector<core::Hypervector>& features,
                               const std::vector<int>& labels) const {
  if (features.size() != labels.size() || features.empty()) {
    throw std::invalid_argument("HdcClassifier::evaluate: bad inputs");
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (predict(features[i]) == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(features.size());
}

std::vector<core::Hypervector> HdcClassifier::binary_prototypes() const {
  std::vector<core::Hypervector> out;
  out.reserve(prototypes_.size());
  core::Rng tie_rng(core::mix64(config_.seed, 0xB1A));
  for (const auto& p : prototypes_) out.push_back(p.threshold(tie_rng));
  return out;
}

int HdcClassifier::predict_binary(const std::vector<core::Hypervector>& prototypes,
                                  const core::Hypervector& feature) {
  if (prototypes.empty()) throw std::invalid_argument("predict_binary: no prototypes");
  const auto h = core::hamming_many(feature, prototypes);
  int best = 0;
  for (std::size_t c = 1; c < h.size(); ++c) {
    if (h[c] < h[static_cast<std::size_t>(best)]) best = static_cast<int>(c);
  }
  return best;
}

int HdcClassifier::predict_binary(const core::PrototypeBlock& prototypes,
                                  const core::Hypervector& feature) {
  if (prototypes.empty()) throw std::invalid_argument("predict_binary: no prototypes");
  const auto h = prototypes.hamming_many(feature);
  int best = 0;
  for (std::size_t c = 1; c < h.size(); ++c) {
    if (h[c] < h[static_cast<std::size_t>(best)]) best = static_cast<int>(c);
  }
  return best;
}

}  // namespace hdface::learn
