#include "learn/encoder.hpp"

#include <cmath>
#include <stdexcept>

#include "core/rng.hpp"

namespace hdface::learn {

NonlinearEncoder::NonlinearEncoder(const EncoderConfig& config) : config_(config) {
  if (config.input_dim == 0) throw std::invalid_argument("NonlinearEncoder: input_dim 0");
  if (config.dim == 0) throw std::invalid_argument("NonlinearEncoder: dim 0");
  core::Rng rng(core::mix64(config.seed, 0x9403));
  const double sigma =
      config.gamma / std::sqrt(static_cast<double>(config.input_dim));
  projection_.resize(config.dim * config.input_dim);
  for (auto& p : projection_) {
    p = static_cast<float>(sigma * rng.gaussian());
  }
  phase_.resize(config.dim);
  for (auto& p : phase_) {
    p = static_cast<float>(rng.uniform() * 6.283185307179586);
  }
}

void NonlinearEncoder::calibrate(const std::vector<std::vector<float>>& features) {
  if (features.empty()) throw std::invalid_argument("calibrate: empty");
  const std::size_t d = config_.input_dim;
  mean_.assign(d, 0.0f);
  inv_std_.assign(d, 0.0f);
  for (const auto& f : features) {
    if (f.size() != d) throw std::invalid_argument("calibrate: feature size mismatch");
    for (std::size_t i = 0; i < d; ++i) mean_[i] += f[i];
  }
  for (auto& m : mean_) m /= static_cast<float>(features.size());
  std::vector<double> var(d, 0.0);
  for (const auto& f : features) {
    for (std::size_t i = 0; i < d; ++i) {
      const double delta = f[i] - mean_[i];
      var[i] += delta * delta;
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    const double sd = std::sqrt(var[i] / static_cast<double>(features.size()));
    inv_std_[i] = sd > 1e-8 ? static_cast<float>(1.0 / sd) : 0.0f;
  }
}

core::Hypervector NonlinearEncoder::encode(std::span<const float> features,
                                           core::OpCounter* counter) const {
  if (features.size() != config_.input_dim) {
    throw std::invalid_argument("encode: feature size mismatch");
  }
  if (!calibrated()) {
    throw std::logic_error("encode: calibrate() must run before encode()");
  }
  const std::size_t in = config_.input_dim;
  std::vector<float> z(in);
  for (std::size_t i = 0; i < in; ++i) {
    z[i] = (features[i] - mean_[i]) * inv_std_[i];
  }
  core::Hypervector out(config_.dim);
  for (std::size_t d = 0; d < config_.dim; ++d) {
    const float* row = &projection_[d * in];
    float dot = phase_[d];
    for (std::size_t i = 0; i < in; ++i) dot += row[i] * z[i];
    if (std::cos(dot) > 0.0f) out.set(d, true);
  }
  if (counter) {
    counter->add(core::OpKind::kFloatMul, config_.dim * in + in);
    counter->add(core::OpKind::kFloatAdd, config_.dim * in + in);
    counter->add(core::OpKind::kFloatTrig, config_.dim);
    counter->add(core::OpKind::kFloatCmp, config_.dim);
  }
  return out;
}

}  // namespace hdface::learn
