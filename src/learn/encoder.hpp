#pragma once

// Nonlinear random-projection encoder: float feature vector → binary
// hypervector.
//
// This is the encoding module the paper's first HDC configuration uses
// ("HOG feature extraction running on original space ... HDC exploits
// non-linear encoder to map extracted features into high dimension",
// §6.2). Each hypervector dimension is sign(cos(⟨x, B_i⟩ + φ_i)) with a
// Gaussian projection B_i and uniform phase φ_i — a binarized random Fourier
// feature, the standard nonlinear HDC encoder. Features are standardized
// with training statistics so the kernel bandwidth is data-independent.

#include <cstdint>
#include <span>
#include <vector>

#include "core/hypervector.hpp"
#include "core/op_counter.hpp"

namespace hdface::learn {

struct EncoderConfig {
  std::size_t dim = 4096;
  std::size_t input_dim = 0;  // must be set
  double gamma = 1.0;         // kernel bandwidth multiplier
  std::uint64_t seed = 0xE2C;
};

class NonlinearEncoder {
 public:
  explicit NonlinearEncoder(const EncoderConfig& config);

  const EncoderConfig& config() const { return config_; }

  // Computes per-dimension mean/std from training data (call once).
  void calibrate(const std::vector<std::vector<float>>& features);
  bool calibrated() const { return !mean_.empty(); }

  core::Hypervector encode(std::span<const float> features,
                           core::OpCounter* counter = nullptr) const;

 private:
  EncoderConfig config_;
  // Row-major projection matrix: dim × input_dim.
  std::vector<float> projection_;
  std::vector<float> phase_;
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

}  // namespace hdface::learn
