#include "learn/quantized_mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "noise/bit_flip.hpp"

namespace hdface::learn {

QuantizedMlp::QuantizedMlp(const Mlp& source, int bits)
    : bits_(bits), num_classes_(source.num_classes()) {
  if (bits < 2 || bits > 16) throw std::invalid_argument("QuantizedMlp: bits out of range");
  const std::int32_t qmax = (1 << (bits - 1)) - 1;
  for (const auto& l : source.layers()) {
    QLayer q;
    q.in = l.in;
    q.out = l.out;
    q.bias = l.bias;
    float maxw = 1e-12f;
    for (float w : l.weights) maxw = std::max(maxw, std::fabs(w));
    // Power-of-two range (fixed-point convention).
    const float range = std::exp2(std::ceil(std::log2(maxw)));
    q.step = range / static_cast<float>(1 << (bits - 1));
    q.weights.reserve(l.weights.size());
    for (float w : l.weights) {
      const auto v = static_cast<std::int32_t>(std::lround(w / q.step));
      q.weights.push_back(std::clamp(v, -qmax - 1, qmax));
    }
    layers_.push_back(std::move(q));
  }
  clean_ = layers_;
}

void QuantizedMlp::inject_bit_errors(double rate, core::Rng& rng) {
  for (auto& l : layers_) {
    noise::flip_fixed_bits(l.weights, bits_, rate, rng);
  }
}

void QuantizedMlp::reset() { layers_ = clean_; }

std::vector<float> QuantizedMlp::forward(std::span<const float> input) const {
  if (input.size() != layers_.front().in) {
    throw std::invalid_argument("QuantizedMlp: input size mismatch");
  }
  std::vector<float> x(input.begin(), input.end());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const QLayer& l = layers_[li];
    std::vector<float> y(l.out);
    for (std::size_t o = 0; o < l.out; ++o) {
      const std::int32_t* row = &l.weights[o * l.in];
      float acc = l.bias[o];
      for (std::size_t i = 0; i < l.in; ++i) {
        acc += static_cast<float>(row[i]) * l.step * x[i];
      }
      y[o] = acc;
    }
    if (li + 1 < layers_.size()) {
      for (auto& v : y) v = std::max(v, 0.0f);
    }
    x = std::move(y);
  }
  return x;
}

int QuantizedMlp::predict(std::span<const float> features) const {
  const auto logits = forward(features);
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

double QuantizedMlp::evaluate(const std::vector<std::vector<float>>& features,
                              const std::vector<int>& labels) const {
  if (features.size() != labels.size() || features.empty()) {
    throw std::invalid_argument("QuantizedMlp::evaluate: bad inputs");
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (predict(features[i]) == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(features.size());
}

double QuantizedMlp::max_abs_error(const Mlp& source) const {
  double err = 0.0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& fw = source.layers()[l].weights;
    for (std::size_t k = 0; k < fw.size(); ++k) {
      const double deq = static_cast<double>(clean_[l].weights[k]) * clean_[l].step;
      err = std::max(err, std::fabs(deq - static_cast<double>(fw[k])));
    }
  }
  return err;
}

}  // namespace hdface::learn
