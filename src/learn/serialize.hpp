#pragma once

// Binary model persistence: train once, deploy the model file.
//
// Format: little-endian, magic + version header per object. Hypervectors
// store packed 64-bit words; HDC classifiers store their config and float
// prototype accumulators; MLPs store layer shapes and weights. Loaders
// validate magic/version/shape and throw std::runtime_error on corruption.

#include <iosfwd>
#include <string>

#include "core/hypervector.hpp"
#include "learn/hdc_model.hpp"
#include "learn/mlp.hpp"

namespace hdface::learn {

// --- hypervectors -----------------------------------------------------------
void write_hypervector(std::ostream& out, const core::Hypervector& v);
core::Hypervector read_hypervector(std::istream& in);

// --- HDC classifier ---------------------------------------------------------
void save_classifier(const HdcClassifier& model, const std::string& path);
HdcClassifier load_classifier(const std::string& path);

// --- MLP --------------------------------------------------------------------
void save_mlp(const Mlp& model, const std::string& path);
Mlp load_mlp(const std::string& path);

}  // namespace hdface::learn
