#include "learn/metrics.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hdface::learn {

double accuracy(const std::vector<int>& predictions, const std::vector<int>& labels) {
  if (predictions.size() != labels.size() || predictions.empty()) {
    throw std::invalid_argument("accuracy: size mismatch or empty");
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

std::vector<std::size_t> confusion_matrix(const std::vector<int>& predictions,
                                          const std::vector<int>& labels,
                                          std::size_t classes) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("confusion_matrix: size mismatch");
  }
  std::vector<std::size_t> m(classes * classes, 0);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const auto t = static_cast<std::size_t>(labels[i]);
    const auto p = static_cast<std::size_t>(predictions[i]);
    if (t >= classes || p >= classes) {
      throw std::invalid_argument("confusion_matrix: label out of range");
    }
    m[t * classes + p]++;
  }
  return m;
}

std::vector<double> per_class_recall(const std::vector<std::size_t>& confusion,
                                     std::size_t classes) {
  std::vector<double> recall(classes, 0.0);
  for (std::size_t t = 0; t < classes; ++t) {
    std::size_t row = 0;
    for (std::size_t p = 0; p < classes; ++p) row += confusion[t * classes + p];
    if (row > 0) {
      recall[t] = static_cast<double>(confusion[t * classes + t]) /
                  static_cast<double>(row);
    }
  }
  return recall;
}

std::string format_confusion(const std::vector<std::size_t>& confusion,
                             const std::vector<std::string>& class_names) {
  const std::size_t k = class_names.size();
  std::ostringstream os;
  os << std::setw(10) << "true\\pred";
  for (const auto& n : class_names) os << std::setw(9) << n.substr(0, 8);
  os << "\n";
  for (std::size_t t = 0; t < k; ++t) {
    os << std::setw(10) << class_names[t].substr(0, 9);
    for (std::size_t p = 0; p < k; ++p) os << std::setw(9) << confusion[t * k + p];
    os << "\n";
  }
  return os.str();
}

}  // namespace hdface::learn
