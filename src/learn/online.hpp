#pragma once

// Online / on-device learning wrapper around the HDC classifier.
//
// The paper's first claimed advantage is that HDFace is "highly parallel and
// suitable for online on-device learning" (§1, §7). This module makes that
// concrete: a streaming trainer that
//   * performs one adaptive update per arriving sample (predict-then-train,
//     so every sample is scored before the model sees its label),
//   * tracks prequential accuracy over a sliding window, and
//   * optionally decays the class prototypes so the model tracks concept
//     drift (lighting changes, new identities) instead of freezing on the
//     oldest data.
//
// bench/ablation_learning's few-shot rows and the online_learning example
// exercise it; the drift test injects a mid-stream distribution change.

#include <cstddef>
#include <deque>

#include "learn/hdc_model.hpp"

namespace hdface::learn {

struct OnlineConfig {
  // Sliding window for the prequential (test-then-train) accuracy estimate.
  std::size_t accuracy_window = 100;
  // Multiplicative prototype decay applied every `decay_interval` samples;
  // 1.0 disables forgetting. Values slightly below 1 let the prototypes
  // track drift while retaining most accumulated structure.
  double decay = 1.0;
  std::size_t decay_interval = 50;
};

class OnlineTrainer {
 public:
  OnlineTrainer(HdcClassifier& model, const OnlineConfig& config);

  // Test-then-train on one labeled sample; returns the pre-update prediction.
  int observe(const core::Hypervector& feature, int label);

  // Prediction without learning (unlabeled traffic).
  int predict(const core::Hypervector& feature) const {
    return model_.predict(feature);
  }

  std::size_t samples_seen() const { return seen_; }

  // Prequential accuracy over the sliding window (0 before any sample).
  double windowed_accuracy() const;

  // Lifetime prequential accuracy.
  double lifetime_accuracy() const;

 private:
  void maybe_decay();

  HdcClassifier& model_;
  OnlineConfig config_;
  std::size_t seen_ = 0;
  std::size_t lifetime_hits_ = 0;
  std::deque<bool> window_;
  std::size_t window_hits_ = 0;
};

}  // namespace hdface::learn
