#pragma once

// 7-class facial-emotion dataset synthesis (stand-in for the paper's EMOTION
// dataset — FER-2013-shaped: 48×48 grayscale, 7 classes).

#include <cstdint>

#include "dataset/dataset.hpp"
#include "dataset/face_render.hpp"

namespace hdface::dataset {

// FER-2013 class order.
enum class Emotion : int {
  kAngry = 0,
  kDisgust,
  kFear,
  kHappy,
  kNeutral,
  kSad,
  kSurprise,
};

constexpr int kNumEmotions = 7;

const char* emotion_name(Emotion e);

// Canonical expression parameters for a class (before identity jitter).
FaceParams emotion_params(Emotion e);

struct EmotionDatasetConfig {
  std::size_t image_size = 48;
  std::size_t num_samples = 700;  // balanced across the 7 classes
  std::uint64_t seed = 7;
  float noise_sigma = 0.03f;
  double blur_sigma = 0.5;
  // Identity (head geometry / tone) jitter — class-independent variation.
  double jitter_amount = 0.55;
  // Expression jitter around the class prototype; raising it makes classes
  // overlap (as real FER classes do).
  double expression_jitter = 0.25;
};

Dataset make_emotion_dataset(const EmotionDatasetConfig& config);

// One rendered sample (exposed for the Fig 6 emotion visualization).
image::Image render_emotion_window(std::size_t size, Emotion e, std::uint64_t seed);

}  // namespace hdface::dataset
