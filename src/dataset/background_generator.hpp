#pragma once

// Non-face background/clutter synthesis for negative samples and scene
// canvases (Fig 6). Draws from several texture families so that negatives are
// not separable by any single low-order statistic.

#include "core/rng.hpp"
#include "image/image.hpp"

namespace hdface::dataset {

enum class BackgroundKind {
  kValueNoise,   // multi-octave smooth noise
  kStripes,      // oriented parallel lines (strong spurious gradients)
  kBlobs,        // scattered ellipses of random intensity
  kGradient,     // smooth illumination ramps
  kChecker,      // rectangular patchwork
  kMixed,        // random mixture of the above
};

// Fills img with a procedural background of the given kind.
void render_background(image::Image& img, BackgroundKind kind, core::Rng& rng);

// Random kind (uniform over the concrete families).
BackgroundKind random_background_kind(core::Rng& rng);

}  // namespace hdface::dataset
