#include "dataset/face_generator.hpp"

#include <cmath>

#include "core/rng.hpp"
#include "dataset/background_generator.hpp"
#include "dataset/face_render.hpp"
#include "image/draw.hpp"
#include "image/transform.hpp"

namespace hdface::dataset {

namespace {

image::Image face_window(std::size_t size, core::Rng& rng, float noise_sigma,
                         double blur_sigma, double masked_fraction = 0.0) {
  image::Image img(size, size);
  render_background(img, random_background_kind(rng), rng);
  FaceParams params = jitter_face(FaceParams{}, rng);
  params.mask_on = rng.uniform() < masked_fraction;
  if (params.mask_on) {
    params.mask_tone = static_cast<float>(0.6 + 0.35 * rng.uniform());
  }
  render_face(img, params);
  if (blur_sigma > 0.0) img = image::gaussian_blur(img, blur_sigma);
  image::add_gaussian_noise(img, rng, noise_sigma);
  return img;
}

// Hard negatives: face-like *part* arrangements that defeat trivial cues —
// two dark blobs without the rest of the facial geometry, or a bare head
// outline without features.
image::Image hard_negative_window(std::size_t size, core::Rng& rng,
                                  float noise_sigma, double blur_sigma) {
  image::Image img(size, size);
  render_background(img, random_background_kind(rng), rng);
  const double W = static_cast<double>(size);
  if (rng.uniform() < 0.5) {
    // Eye-pair-like blobs at a random (non-face) spacing and height.
    const double cy = (0.2 + 0.6 * rng.uniform()) * W;
    const double cx = (0.3 + 0.4 * rng.uniform()) * W;
    const double gap = (0.1 + 0.5 * rng.uniform()) * W;
    for (const double side : {-0.5, 0.5}) {
      image::fill_ellipse(img, cx + side * gap, cy, 0.05 * W, 0.04 * W, 0.12f);
    }
  } else {
    // Featureless head-like ellipse.
    image::fill_ellipse(img, 0.5 * W, 0.5 * W, (0.25 + 0.15 * rng.uniform()) * W,
                        (0.3 + 0.15 * rng.uniform()) * W,
                        static_cast<float>(0.5 + 0.3 * rng.uniform()));
  }
  if (blur_sigma > 0.0) img = image::gaussian_blur(img, blur_sigma);
  image::add_gaussian_noise(img, rng, noise_sigma);
  return img;
}

image::Image easy_negative_window(std::size_t size, core::Rng& rng,
                                  float noise_sigma, double blur_sigma) {
  image::Image img(size, size);
  render_background(img, random_background_kind(rng), rng);
  if (blur_sigma > 0.0) img = image::gaussian_blur(img, blur_sigma);
  image::add_gaussian_noise(img, rng, noise_sigma);
  return img;
}

}  // namespace

Dataset make_face_dataset(const FaceDatasetConfig& config) {
  Dataset data;
  data.name = config.name;
  data.class_names = {"no-face", "face"};
  data.images.reserve(config.num_samples);
  data.labels.reserve(config.num_samples);
  for (std::size_t i = 0; i < config.num_samples; ++i) {
    core::Rng rng(core::mix64(config.seed, i));
    const bool positive = (i % 2) == 1;  // balanced, deterministic
    if (positive) {
      data.images.push_back(face_window(config.image_size, rng,
                                        config.noise_sigma, config.blur_sigma,
                                        config.masked_fraction));
      data.labels.push_back(1);
    } else {
      const bool hard = rng.uniform() < config.hard_negative_fraction;
      data.images.push_back(
          hard ? hard_negative_window(config.image_size, rng, config.noise_sigma,
                                      config.blur_sigma)
               : easy_negative_window(config.image_size, rng, config.noise_sigma,
                                      config.blur_sigma));
      data.labels.push_back(0);
    }
  }
  return data;
}

FaceDatasetConfig face1_config(std::size_t num_samples, std::uint64_t seed,
                               bool paper_scale) {
  FaceDatasetConfig c;
  c.name = "FACE1";
  c.image_size = paper_scale ? 1024 : 64;
  c.num_samples = num_samples;
  c.seed = seed;
  c.noise_sigma = 0.02f;  // FACE1 is the "clean, high-res" dataset
  c.blur_sigma = 0.5;
  c.hard_negative_fraction = 0.2;
  c.masked_fraction = 0.5;  // Face-Mask-Lite: masked and unmasked faces
  return c;
}

FaceDatasetConfig face2_config(std::size_t num_samples, std::uint64_t seed,
                               bool paper_scale) {
  FaceDatasetConfig c;
  c.name = "FACE2";
  c.image_size = paper_scale ? 512 : 48;
  c.num_samples = num_samples;
  c.seed = core::mix64(seed, 0xFACE2);
  c.noise_sigma = 0.045f;  // harder: noisier, more hard negatives
  c.blur_sigma = 0.8;
  c.hard_negative_fraction = 0.35;
  return c;
}

image::Image render_face_window(std::size_t size, std::uint64_t seed) {
  core::Rng rng(core::mix64(seed, 0xFACE));
  return face_window(size, rng, 0.03f, 0.6);
}

image::Image render_nonface_window(std::size_t size, std::uint64_t seed, bool hard) {
  core::Rng rng(core::mix64(seed, 0x0FF));
  return hard ? hard_negative_window(size, rng, 0.03f, 0.6)
              : easy_negative_window(size, rng, 0.03f, 0.6);
}

}  // namespace hdface::dataset
