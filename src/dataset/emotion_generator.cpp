#include "dataset/emotion_generator.hpp"

#include <stdexcept>

#include "core/rng.hpp"
#include "dataset/background_generator.hpp"
#include "image/draw.hpp"
#include "image/transform.hpp"

namespace hdface::dataset {

const char* emotion_name(Emotion e) {
  switch (e) {
    case Emotion::kAngry: return "angry";
    case Emotion::kDisgust: return "disgust";
    case Emotion::kFear: return "fear";
    case Emotion::kHappy: return "happy";
    case Emotion::kNeutral: return "neutral";
    case Emotion::kSad: return "sad";
    case Emotion::kSurprise: return "surprise";
  }
  throw std::invalid_argument("emotion_name: bad enum");
}

FaceParams emotion_params(Emotion e) {
  FaceParams p;
  // Emotion faces fill the window (FER-style tight crops).
  p.head_rx = 0.40;
  p.head_ry = 0.46;
  p.center_y = 0.50;
  switch (e) {
    case Emotion::kAngry:
      p.brow_angle = -0.9;   // inner ends down
      p.brow_raise = -0.5;
      p.eye_open = -0.4;
      p.mouth_curve = -0.35;
      p.mouth_width = 0.85;
      break;
    case Emotion::kDisgust:
      p.nose_wrinkle = 0.9;
      p.eye_open = -0.5;
      p.brow_raise = -0.3;
      p.mouth_curve = -0.5;
      p.mouth_width = 0.75;
      break;
    case Emotion::kFear:
      p.eye_open = 0.9;
      p.brow_raise = 0.8;
      p.brow_angle = 0.5;
      p.mouth_open = 0.35;
      p.mouth_width = 0.8;
      break;
    case Emotion::kHappy:
      p.mouth_curve = 0.9;
      p.mouth_width = 1.2;
      p.eye_open = 0.1;
      p.brow_raise = 0.2;
      break;
    case Emotion::kNeutral:
      break;
    case Emotion::kSad:
      p.mouth_curve = -0.8;
      p.brow_angle = 0.8;    // inner ends up
      p.brow_raise = 0.1;
      p.eye_open = -0.3;
      break;
    case Emotion::kSurprise:
      p.eye_open = 1.0;
      p.brow_raise = 1.0;
      p.mouth_open = 0.9;
      p.mouth_width = 0.75;
      break;
  }
  return p;
}

namespace {
image::Image emotion_window(std::size_t size, Emotion e, core::Rng& rng,
                            const EmotionDatasetConfig& config) {
  image::Image img(size, size);
  // FER crops have mild backgrounds; keep clutter low so expression dominates.
  img.fill(static_cast<float>(0.3 + 0.3 * rng.uniform()));
  image::add_value_noise(img, rng, 10.0, 2, 0.2f);
  FaceParams params = jitter_expression(
      jitter_identity(emotion_params(e), rng, config.jitter_amount), rng,
      config.expression_jitter);
  render_face(img, params);
  if (config.blur_sigma > 0.0) img = image::gaussian_blur(img, config.blur_sigma);
  image::add_gaussian_noise(img, rng, config.noise_sigma);
  return img;
}
}  // namespace

Dataset make_emotion_dataset(const EmotionDatasetConfig& config) {
  Dataset data;
  data.name = "EMOTION";
  data.class_names.reserve(kNumEmotions);
  for (int c = 0; c < kNumEmotions; ++c) {
    data.class_names.push_back(emotion_name(static_cast<Emotion>(c)));
  }
  data.images.reserve(config.num_samples);
  data.labels.reserve(config.num_samples);
  for (std::size_t i = 0; i < config.num_samples; ++i) {
    const auto label = static_cast<int>(i % kNumEmotions);  // balanced
    core::Rng rng(core::mix64(config.seed, i));
    data.images.push_back(emotion_window(config.image_size,
                                         static_cast<Emotion>(label), rng, config));
    data.labels.push_back(label);
  }
  return data;
}

image::Image render_emotion_window(std::size_t size, Emotion e, std::uint64_t seed) {
  core::Rng rng(core::mix64(seed, 0xE307));
  EmotionDatasetConfig config;
  return emotion_window(size, e, rng, config);
}

}  // namespace hdface::dataset
