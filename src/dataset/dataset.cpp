#include "dataset/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/rng.hpp"

namespace hdface::dataset {

void Dataset::validate() const {
  if (images.size() != labels.size()) {
    throw std::logic_error("Dataset: images/labels size mismatch");
  }
  if (class_names.empty()) throw std::logic_error("Dataset: no classes");
  for (auto l : labels) {
    if (l < 0 || static_cast<std::size_t>(l) >= class_names.size()) {
      throw std::logic_error("Dataset: label out of range");
    }
  }
  if (!images.empty()) {
    const auto w = images.front().width();
    const auto h = images.front().height();
    for (const auto& img : images) {
      if (img.width() != w || img.height() != h) {
        throw std::logic_error("Dataset: inconsistent image sizes");
      }
    }
  }
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(class_names.size(), 0);
  for (auto l : labels) hist[static_cast<std::size_t>(l)]++;
  return hist;
}

Split split(const Dataset& data, double test_fraction, std::uint64_t seed) {
  if (test_fraction < 0.0 || test_fraction > 1.0) {
    throw std::invalid_argument("split: test_fraction out of range");
  }
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  core::Rng rng(core::mix64(seed, 0x5911));
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  const auto test_count =
      static_cast<std::size_t>(test_fraction * static_cast<double>(data.size()));
  Split out;
  out.train.name = data.name + "/train";
  out.test.name = data.name + "/test";
  out.train.class_names = out.test.class_names = data.class_names;
  for (std::size_t i = 0; i < order.size(); ++i) {
    Dataset& dst = i < test_count ? out.test : out.train;
    dst.images.push_back(data.images[order[i]]);
    dst.labels.push_back(data.labels[order[i]]);
  }
  return out;
}

Dataset subsample(const Dataset& data, std::size_t n, std::uint64_t seed) {
  if (n >= data.size()) return data;
  // Stratified: walk a shuffled order, keeping per-class quotas balanced.
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  core::Rng rng(core::mix64(seed, 0x5ab5a));
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  const std::size_t classes = data.num_classes();
  const std::size_t quota = (n + classes - 1) / classes;
  std::vector<std::size_t> taken(classes, 0);
  std::vector<bool> chosen(data.size(), false);
  Dataset out;
  out.name = data.name + "/sub";
  out.class_names = data.class_names;
  for (auto idx : order) {
    if (out.size() >= n) break;
    const auto label = static_cast<std::size_t>(data.labels[idx]);
    if (taken[label] >= quota) continue;
    taken[label]++;
    chosen[idx] = true;
    out.images.push_back(data.images[idx]);
    out.labels.push_back(data.labels[idx]);
  }
  // Fill any remainder ignoring quotas (classes may be imbalanced).
  for (auto idx : order) {
    if (out.size() >= n) break;
    if (chosen[idx]) continue;
    out.images.push_back(data.images[idx]);
    out.labels.push_back(data.labels[idx]);
  }
  return out;
}

}  // namespace hdface::dataset
