#pragma once

// Labeled image dataset container with deterministic splits.
//
// The paper evaluates on three datasets (Table 1): EMOTION (48×48, 7-way),
// FACE1 (high-resolution face/no-face) and FACE2 (large face/no-face). The
// public Kaggle sources are unavailable offline, so src/dataset provides
// procedural generators with the same shape (see DESIGN.md §3); this
// container is generator-agnostic and also loads external PGM datasets.

#include <string>
#include <vector>

#include "image/image.hpp"

namespace hdface::dataset {

struct Dataset {
  std::string name;
  std::vector<std::string> class_names;
  std::vector<image::Image> images;
  std::vector<int> labels;

  std::size_t size() const { return images.size(); }
  std::size_t num_classes() const { return class_names.size(); }

  // Throws std::logic_error describing the first violated invariant
  // (size mismatch, label range, inconsistent image sizes), if any.
  void validate() const;

  // Per-class sample counts.
  std::vector<std::size_t> class_histogram() const;
};

struct Split {
  Dataset train;
  Dataset test;
};

// Deterministic shuffled split; test_fraction of samples go to test.
Split split(const Dataset& data, double test_fraction, std::uint64_t seed);

// Deterministic subsample of at most n samples (stratified by class).
Dataset subsample(const Dataset& data, std::size_t n, std::uint64_t seed);

}  // namespace hdface::dataset
