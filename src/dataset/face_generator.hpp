#pragma once

// Face / no-face dataset synthesis (stand-ins for the paper's FACE1 and FACE2
// datasets, Table 1). Positives are jittered procedural faces over clutter;
// negatives are clutter-only windows plus "hard" negatives (face-adjacent
// crops and part-like blob arrangements).

#include <cstdint>

#include "dataset/dataset.hpp"

namespace hdface::dataset {

struct FaceDatasetConfig {
  std::size_t image_size = 48;   // square windows (paper: 1024 / 512; see DESIGN.md)
  std::size_t num_samples = 600; // total (balanced)
  std::uint64_t seed = 42;
  float noise_sigma = 0.03f;     // sensor noise
  double blur_sigma = 0.6;       // optics blur
  double hard_negative_fraction = 0.25;
  // Fraction of positive faces wearing a mask (FACE1's source is the
  // Face-Mask-Lite dataset).
  double masked_fraction = 0.0;
  std::string name = "FACE";
};

// Balanced two-class dataset; label 0 = no-face, 1 = face.
Dataset make_face_dataset(const FaceDatasetConfig& config);

// Table-1-shaped presets (sizes scaled for a laptop-class run; pass
// paper_scale = true for the original resolutions).
FaceDatasetConfig face1_config(std::size_t num_samples, std::uint64_t seed,
                               bool paper_scale = false);
FaceDatasetConfig face2_config(std::size_t num_samples, std::uint64_t seed,
                               bool paper_scale = false);

// One positive face window (exposed for the Fig 6 scene composer).
image::Image render_face_window(std::size_t size, std::uint64_t seed);

// One negative window.
image::Image render_nonface_window(std::size_t size, std::uint64_t seed,
                                   bool hard);

}  // namespace hdface::dataset
