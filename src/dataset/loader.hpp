#pragma once

// Disk persistence for datasets: a directory of 8-bit PGM files plus a
// `labels.txt` manifest (`<filename> <label>` per line, with a header naming
// the classes). Lets users swap the synthetic generators for real data (e.g.
// the paper's Kaggle sets) without touching the pipelines.

#include <string>

#include "dataset/dataset.hpp"

namespace hdface::dataset {

// Writes images as <index>.pgm plus labels.txt. Creates the directory.
void save_dataset(const Dataset& data, const std::string& dir);

// Loads a dataset previously written by save_dataset (or hand-assembled in
// the same layout). Throws std::runtime_error on malformed input.
Dataset load_dataset(const std::string& dir);

}  // namespace hdface::dataset
