#include "dataset/face_render.hpp"

#include <algorithm>
#include <cmath>

#include "image/draw.hpp"

namespace hdface::dataset {

using image::draw_arc;
using image::draw_line;
using image::fill_ellipse;

void render_face(image::Image& img, const FaceParams& p) {
  const double W = static_cast<double>(img.width());
  const double H = static_cast<double>(img.height());
  const double cx = p.center_x * W;
  const double cy = p.center_y * H;
  const double rx = p.head_rx * W;
  const double ry = p.head_ry * H;

  // Head.
  fill_ellipse(img, cx, cy, rx, ry, p.skin, 1.0f, p.tilt);
  // Simple shading: slightly darker left cheek, lighter forehead.
  fill_ellipse(img, cx - 0.45 * rx, cy + 0.15 * ry, 0.5 * rx, 0.55 * ry,
               p.skin * 0.88f, 0.5f, p.tilt);
  fill_ellipse(img, cx, cy - 0.55 * ry, 0.7 * rx, 0.35 * ry, p.skin * 1.12f,
               0.4f, p.tilt);

  // Hair cap.
  if (p.hair_on) {
    fill_ellipse(img, cx, cy - 0.72 * ry, 0.95 * rx, 0.45 * ry, p.hair, 1.0f,
                 p.tilt);
    // Re-draw the upper forehead so hair does not swallow the whole brow zone.
    fill_ellipse(img, cx, cy - 0.30 * ry, 0.80 * rx, 0.38 * ry, p.skin, 0.9f,
                 p.tilt);
  }

  const double ca = std::cos(p.tilt);
  const double sa = std::sin(p.tilt);
  // Face-local coordinates (u right, v down in head units) → image.
  auto fx = [&](double u, double v) { return cx + (u * ca - v * sa) * rx; };
  auto fy = [&](double u, double v) { return cy + (u * sa + v * ca) * ry; };

  // Eyes.
  const double eye_v = -0.18;
  const double eye_u = 0.38;
  const double eye_h = 0.085 * (1.0 + 0.8 * p.eye_open);
  const double eye_w = 0.16;
  for (const double side : {-1.0, 1.0}) {
    const double ex = fx(side * eye_u, eye_v);
    const double ey = fy(side * eye_u, eye_v);
    // Sclera then iris: wide eyes show more sclera.
    fill_ellipse(img, ex, ey, eye_w * rx, eye_h * ry, 0.95f, 1.0f, p.tilt);
    fill_ellipse(img, ex, ey, 0.55 * eye_w * rx,
                 std::min(eye_h, 0.075) * ry, p.feature, 1.0f, p.tilt);
  }

  // Brows.
  const double brow_v = eye_v - 0.16 - 0.09 * p.brow_raise;
  for (const double side : {-1.0, 1.0}) {
    const double inner_u = side * (eye_u - 0.14);
    const double outer_u = side * (eye_u + 0.14);
    // brow_angle > 0 lifts the inner ends (sad/fear); < 0 lowers them (anger).
    const double inner_v = brow_v - 0.09 * p.brow_angle;
    const double outer_v = brow_v + 0.09 * p.brow_angle;
    draw_line(img, fx(inner_u, inner_v), fy(inner_u, inner_v), fx(outer_u, outer_v),
              fy(outer_u, outer_v), p.feature,
              std::max(1.0, 0.035 * ry * (1.0 + 0.3 * std::fabs(p.brow_angle))));
  }

  // Nose.
  draw_line(img, fx(0.0, -0.08), fy(0.0, -0.08), fx(0.03, 0.18), fy(0.03, 0.18),
            p.skin * 0.75f, std::max(1.0, 0.03 * ry));
  draw_line(img, fx(0.03, 0.18), fy(0.03, 0.18), fx(-0.05, 0.20), fy(-0.05, 0.20),
            p.skin * 0.70f, std::max(1.0, 0.03 * ry));
  if (p.nose_wrinkle > 0.05) {
    for (int k = 0; k < 2; ++k) {
      const double v0 = 0.02 + 0.06 * k;
      draw_line(img, fx(-0.10, v0), fy(-0.10, v0), fx(0.10, v0 - 0.03),
                fy(0.10, v0 - 0.03), p.skin * 0.72f,
                std::max(1.0, 0.02 * ry), static_cast<float>(p.nose_wrinkle));
    }
  }

  // Mouth.
  const double mouth_v = 0.42;
  const double mw = 0.30 * p.mouth_width;
  const double curve = 0.28 * p.mouth_curve;
  if (p.mouth_open > 0.05) {
    fill_ellipse(img, fx(0.0, mouth_v), fy(0.0, mouth_v), mw * rx,
                 (0.05 + 0.14 * p.mouth_open) * ry, p.feature, 1.0f, p.tilt);
    if (p.mouth_open > 0.4) {
      // Teeth hint on wide-open mouths (surprise).
      fill_ellipse(img, fx(0.0, mouth_v - 0.05 * p.mouth_open),
                   fy(0.0, mouth_v - 0.05 * p.mouth_open), 0.7 * mw * rx,
                   0.035 * ry, 0.9f, 1.0f, p.tilt);
    }
  } else {
    draw_arc(img, fx(-mw, mouth_v + curve), fy(-mw, mouth_v + curve),
             fx(0.0, mouth_v - curve), fy(0.0, mouth_v - curve),
             fx(mw, mouth_v + curve), fy(mw, mouth_v + curve), p.feature,
             std::max(1.0, 0.045 * ry));
  }

  // Face mask: covers the nose tip and mouth, with ear straps.
  if (p.mask_on) {
    fill_ellipse(img, fx(0.0, 0.33), fy(0.0, 0.33), 0.62 * rx, 0.40 * ry,
                 p.mask_tone, 1.0f, p.tilt);
    for (const double side : {-1.0, 1.0}) {
      draw_line(img, fx(side * 0.55, 0.20), fy(side * 0.55, 0.20),
                fx(side * 0.98, -0.05), fy(side * 0.98, -0.05),
                p.mask_tone * 0.9f, std::max(1.0, 0.02 * ry));
    }
  }

  img.clamp();
}

FaceParams jitter_identity(FaceParams p, core::Rng& rng, double amount) {
  auto j = [&](double spread) { return amount * spread * (2.0 * rng.uniform() - 1.0); };
  p.center_x += j(0.04);
  p.center_y += j(0.04);
  p.head_rx *= 1.0 + j(0.12);
  p.head_ry *= 1.0 + j(0.10);
  p.tilt += j(0.12);
  p.skin = std::clamp(p.skin + static_cast<float>(j(0.10)), 0.35f, 0.95f);
  p.feature = std::clamp(p.feature + static_cast<float>(j(0.06)), 0.02f, 0.45f);
  p.hair = std::clamp(p.hair + static_cast<float>(j(0.15)), 0.05f, 0.6f);
  p.hair_on = rng.uniform() > 0.15;  // some bald faces
  return p;
}

FaceParams jitter_expression(FaceParams p, core::Rng& rng, double amount) {
  auto j = [&](double spread) { return amount * spread * (2.0 * rng.uniform() - 1.0); };
  p.eye_open = std::clamp(p.eye_open + j(0.25), -1.0, 1.0);
  p.brow_raise = std::clamp(p.brow_raise + j(0.25), -1.0, 1.0);
  p.brow_angle = std::clamp(p.brow_angle + j(0.20), -1.0, 1.0);
  p.mouth_curve = std::clamp(p.mouth_curve + j(0.25), -1.0, 1.0);
  p.mouth_open = std::clamp(p.mouth_open + j(0.15), 0.0, 1.0);
  p.mouth_width = std::clamp(p.mouth_width * (1.0 + j(0.15)), 0.6, 1.4);
  return p;
}

FaceParams jitter_face(FaceParams p, core::Rng& rng, double amount) {
  return jitter_expression(jitter_identity(p, rng, amount), rng, amount);
}

}  // namespace hdface::dataset
