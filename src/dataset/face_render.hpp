#pragma once

// Parameterized procedural face renderer.
//
// A single numeric parameter block drives head geometry, eyes, brows, nose and
// mouth, so the face generator (identity/pose jitter) and the emotion
// generator (expression parameters) share one renderer. Coordinates are
// normalized to the face bounding box, making the renderer resolution
// independent.

#include "core/rng.hpp"
#include "image/image.hpp"

namespace hdface::dataset {

struct FaceParams {
  // Geometry (fractions of the window size).
  double center_x = 0.5;
  double center_y = 0.52;
  double head_rx = 0.32;   // head half-width
  double head_ry = 0.40;   // head half-height
  double tilt = 0.0;       // radians

  // Photometric.
  float skin = 0.70f;      // skin intensity
  float feature = 0.15f;   // feature (eyes/brows/mouth) intensity
  float hair = 0.25f;      // hair intensity
  bool hair_on = true;

  // Expression, all roughly in [-1, 1] unless noted.
  double eye_open = 0.0;     // −1 narrowed … +1 wide
  double brow_raise = 0.0;   // −1 lowered … +1 raised
  double brow_angle = 0.0;   // −1 inner-down (anger) … +1 inner-up (sadness)
  double mouth_curve = 0.0;  // −1 frown … +1 smile
  double mouth_open = 0.0;   // 0 closed … 1 wide open
  double mouth_width = 1.0;  // relative width multiplier
  double nose_wrinkle = 0.0; // 0 none … 1 strong (disgust)

  // Face mask covering nose and mouth (the paper's FACE1 source is the
  // Face-Mask-Lite dataset).
  bool mask_on = false;
  float mask_tone = 0.85f;
};

// Renders the face over whatever is already in `img` (background first).
void render_face(image::Image& img, const FaceParams& params);

// Jitters only identity/pose/photometric parameters (head geometry, tilt,
// skin/hair tones) — expression parameters are untouched. This is what the
// emotion generator uses so class-defining expressions are not washed out.
FaceParams jitter_identity(FaceParams params, core::Rng& rng, double amount = 1.0);

// Jitters only expression parameters.
FaceParams jitter_expression(FaceParams params, core::Rng& rng,
                             double amount = 1.0);

// Full jitter: identity plus expression (face/no-face generation).
FaceParams jitter_face(FaceParams params, core::Rng& rng, double amount = 1.0);

}  // namespace hdface::dataset
