#include "dataset/loader.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "image/pnm.hpp"

namespace hdface::dataset {

namespace fs = std::filesystem;

void save_dataset(const Dataset& data, const std::string& dir) {
  data.validate();
  fs::create_directories(dir);
  std::ofstream manifest(fs::path(dir) / "labels.txt");
  if (!manifest) throw std::runtime_error("save_dataset: cannot write manifest");
  manifest << "# dataset " << data.name << "\n";
  manifest << "# classes";
  for (const auto& c : data.class_names) manifest << " " << c;
  manifest << "\n";
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::ostringstream name;
    name << i << ".pgm";
    image::write_pgm(data.images[i], (fs::path(dir) / name.str()).string());
    manifest << name.str() << " " << data.labels[i] << "\n";
  }
}

Dataset load_dataset(const std::string& dir) {
  std::ifstream manifest(fs::path(dir) / "labels.txt");
  if (!manifest) throw std::runtime_error("load_dataset: missing labels.txt in " + dir);
  Dataset data;
  data.name = fs::path(dir).filename().string();
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::string tag;
      hdr >> tag;
      if (tag == "dataset") {
        hdr >> data.name;
      } else if (tag == "classes") {
        std::string c;
        while (hdr >> c) data.class_names.push_back(c);
      }
      continue;
    }
    std::istringstream row(line);
    std::string file;
    int label = -1;
    if (!(row >> file >> label)) {
      throw std::runtime_error("load_dataset: malformed manifest line: " + line);
    }
    data.images.push_back(image::read_pgm((fs::path(dir) / file).string()));
    data.labels.push_back(label);
  }
  if (data.class_names.empty()) {
    // Infer class count from labels when the header is absent.
    int max_label = -1;
    for (auto l : data.labels) max_label = std::max(max_label, l);
    for (int c = 0; c <= max_label; ++c) {
      data.class_names.push_back("class" + std::to_string(c));
    }
  }
  data.validate();
  return data;
}

}  // namespace hdface::dataset
