#include "dataset/background_generator.hpp"

#include <cmath>

#include "image/draw.hpp"

namespace hdface::dataset {

namespace {

void stripes(image::Image& img, core::Rng& rng) {
  img.fill(static_cast<float>(0.3 + 0.4 * rng.uniform()));
  const double angle = rng.uniform() * 3.14159265;
  const double spacing = 3.0 + rng.uniform() * 10.0;
  const double diag = std::hypot(static_cast<double>(img.width()),
                                 static_cast<double>(img.height()));
  const float v = static_cast<float>(rng.uniform());
  const double nx = std::cos(angle);
  const double ny = std::sin(angle);
  for (double off = -diag; off <= diag; off += spacing) {
    // Line with normal (nx, ny) at signed distance `off` from the center.
    const double cx = img.width() / 2.0 + nx * off;
    const double cy = img.height() / 2.0 + ny * off;
    image::draw_line(img, cx - ny * diag, cy + nx * diag, cx + ny * diag,
                     cy - nx * diag, v, 1.0 + rng.uniform() * 2.0);
  }
}

void blobs(image::Image& img, core::Rng& rng) {
  img.fill(static_cast<float>(0.2 + 0.6 * rng.uniform()));
  const int count = 4 + static_cast<int>(rng.below(10));
  for (int i = 0; i < count; ++i) {
    image::fill_ellipse(img, rng.uniform() * img.width(), rng.uniform() * img.height(),
                        (0.05 + 0.25 * rng.uniform()) * img.width(),
                        (0.05 + 0.25 * rng.uniform()) * img.height(),
                        static_cast<float>(rng.uniform()),
                        static_cast<float>(0.5 + 0.5 * rng.uniform()),
                        rng.uniform() * 3.14159265);
  }
}

void gradient(image::Image& img, core::Rng& rng) {
  img.fill(0.5f);
  image::add_linear_gradient(img, rng.uniform() * 6.2831853,
                             static_cast<float>(0.3 + 0.5 * rng.uniform()));
  image::add_gaussian_blob(img, rng.uniform() * img.width(),
                           rng.uniform() * img.height(),
                           0.25 * img.width() * (0.5 + rng.uniform()),
                           static_cast<float>(0.4 * (rng.uniform() - 0.5)));
  img.clamp();
}

void checker(image::Image& img, core::Rng& rng) {
  const double cell_w = 4.0 + rng.uniform() * 12.0;
  const double cell_h = 4.0 + rng.uniform() * 12.0;
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const auto ix = static_cast<long>(x / cell_w);
      const auto iy = static_cast<long>(y / cell_h);
      // Hash cell id into a stable pseudo-random intensity.
      std::uint64_t s = core::mix64(static_cast<std::uint64_t>(ix) * 1315423911u,
                                    static_cast<std::uint64_t>(iy) + 2654435761u);
      img.at(x, y) = static_cast<float>((s >> 40) & 0xFF) / 255.0f;
    }
  }
  // Jitter overall brightness.
  const float shift = static_cast<float>(0.2 * (rng.uniform() - 0.5));
  for (auto& p : img.pixels()) p += shift;
  img.clamp();
}

}  // namespace

void render_background(image::Image& img, BackgroundKind kind, core::Rng& rng) {
  switch (kind) {
    case BackgroundKind::kValueNoise:
      img.fill(0.5f);
      image::add_value_noise(img, rng, 4.0 + rng.uniform() * 12.0, 3,
                             static_cast<float>(0.4 + 0.4 * rng.uniform()));
      break;
    case BackgroundKind::kStripes:
      stripes(img, rng);
      break;
    case BackgroundKind::kBlobs:
      blobs(img, rng);
      break;
    case BackgroundKind::kGradient:
      gradient(img, rng);
      break;
    case BackgroundKind::kChecker:
      checker(img, rng);
      break;
    case BackgroundKind::kMixed: {
      render_background(img, random_background_kind(rng), rng);
      image::Image overlay(img.width(), img.height(), 0.5f);
      render_background(overlay, random_background_kind(rng), rng);
      const float w = static_cast<float>(0.25 + 0.5 * rng.uniform());
      for (std::size_t i = 0; i < img.size(); ++i) {
        img.pixels()[i] = img.pixels()[i] * (1 - w) + overlay.pixels()[i] * w;
      }
      break;
    }
  }
}

BackgroundKind random_background_kind(core::Rng& rng) {
  constexpr BackgroundKind kinds[] = {
      BackgroundKind::kValueNoise, BackgroundKind::kStripes,
      BackgroundKind::kBlobs, BackgroundKind::kGradient, BackgroundKind::kChecker};
  return kinds[rng.below(5)];
}

}  // namespace hdface::dataset
