#include "hog/cell_plane.hpp"

#include <cstdint>
#include <stdexcept>

namespace hdface::hog {

namespace {

// origin + (cells − 1) · cell_size with std::size_t overflow rejected: a
// wrapped far-corner coordinate could pass the `< grid` bound and alias a
// window onto unrelated cells, so overflow means "off the plane", not UB.
bool far_corner(std::size_t origin, std::size_t cells, std::size_t cell_size,
                std::size_t& out) {
  const std::size_t span = cells - 1;  // callers reject cells == 0 first
  std::size_t scaled = 0;
  if (span != 0 && cell_size != 0) {
    if (span > SIZE_MAX / cell_size) return false;
    scaled = span * cell_size;
  }
  if (origin > SIZE_MAX - scaled) return false;
  out = origin + scaled;
  return true;
}

}  // namespace

bool CellPlane::window_on_grid(std::size_t origin_x, std::size_t origin_y,
                               std::size_t cells_x, std::size_t cells_y) const {
  if (grid_step == 0) return false;
  if (cells_x == 0 || cells_y == 0) return false;
  if (origin_x % grid_step != 0 || origin_y % grid_step != 0) return false;
  // Cells inside the window sit at origin + i·cell_size; cell_size is a
  // multiple of grid_step by construction, so only the far corner can fall
  // off the plane. The far corner is computed with overflow checked — a
  // wrapping origin/extent combination is off the plane by definition.
  std::size_t last_x = 0;
  std::size_t last_y = 0;
  if (!far_corner(origin_x, cells_x, cell_size, last_x)) return false;
  if (!far_corner(origin_y, cells_y, cell_size, last_y)) return false;
  return last_x / grid_step < grid_x && last_y / grid_step < grid_y;
}

CellPlane make_cell_plane_geometry(std::size_t scene_width,
                                   std::size_t scene_height,
                                   std::size_t cell_size, std::size_t bins,
                                   std::size_t grid_step,
                                   std::size_t scale_index) {
  if (cell_size == 0 || bins == 0 || grid_step == 0) {
    throw std::invalid_argument("make_cell_plane_geometry: zero geometry");
  }
  if (cell_size % grid_step != 0) {
    throw std::invalid_argument(
        "make_cell_plane_geometry: grid_step must divide cell_size so every "
        "window cell lands on the grid");
  }
  if (scene_width < cell_size || scene_height < cell_size) {
    throw std::invalid_argument(
        "make_cell_plane_geometry: scene smaller than one cell");
  }
  CellPlane plane;
  plane.cell_size = cell_size;
  plane.grid_step = grid_step;
  plane.bins = bins;
  plane.grid_x = (scene_width - cell_size) / grid_step + 1;
  plane.grid_y = (scene_height - cell_size) / grid_step + 1;
  plane.scale_index = scale_index;
  plane.values.assign(plane.cells() * bins, 0.0);
  return plane;
}

}  // namespace hdface::hog
