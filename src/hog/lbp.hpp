#pragma once

// Local Binary Patterns (paper §2's third classical extractor), classical and
// hyperspace.
//
// Classical: each pixel's 8 neighbors threshold against the center to form an
// 8-bit code; per-cell code histograms concatenate into the descriptor.
//
// Hyperspace: the center/neighbor comparisons run on pixel hypervectors via
// the stochastic compare (the paper's α-style comparison), the resulting code
// selects a random code hypervector, and per-cell bags of code hypervectors
// are bound with cell keys and bundled — a fully binary extraction pipeline
// with no magnitudes at all (LBP is the extractor most naturally suited to
// HDC since its primitive *is* a comparison).

#include <array>
#include <vector>

#include "core/item_memory.hpp"
#include "core/stochastic.hpp"
#include "hog/feature_bundler.hpp"
#include "image/image.hpp"

namespace hdface::hog {

struct LbpConfig {
  std::size_t cell_size = 8;
  // Histogram buckets: full 256-code histograms are sparse on small cells;
  // codes are folded into `bins` buckets by popcount+rotation-invariant-ish
  // hashing when bins < 256.
  std::size_t bins = 32;
};

// 8-bit LBP code of the pixel at (x, y) (clamped borders).
std::uint8_t lbp_code(const image::Image& img, std::size_t x, std::size_t y);

// Bucket of a code for a `bins`-bucket histogram.
std::size_t lbp_bucket(std::uint8_t code, std::size_t bins);

class LbpExtractor {
 public:
  explicit LbpExtractor(const LbpConfig& config);

  const LbpConfig& config() const { return config_; }
  std::size_t feature_size(std::size_t width, std::size_t height) const;

  // Per-cell normalized code histograms, concatenated row-major.
  std::vector<float> extract(const image::Image& img,
                             core::OpCounter* counter = nullptr) const;

 private:
  LbpConfig config_;
};

class HdLbpExtractor {
 public:
  HdLbpExtractor(core::StochasticContext& ctx, const LbpConfig& config,
                 std::size_t width, std::size_t height);

  std::size_t cells_x() const { return cells_x_; }
  std::size_t cells_y() const { return cells_y_; }

  // Hyperspace LBP code of one pixel: every neighbor/center threshold is a
  // stochastic comparison of pixel hypervectors.
  std::uint8_t pixel_code_hyperspace(const image::Image& img, std::size_t x,
                                     std::size_t y);

  // Bundled image-level feature hypervector.
  core::Hypervector extract(const image::Image& img);

 private:
  core::StochasticContext& ctx_;
  LbpConfig config_;
  std::size_t width_;
  std::size_t height_;
  std::size_t cells_x_;
  std::size_t cells_y_;
  core::LevelItemMemory pixel_memory_;
  core::LevelItemMemory value_memory_;  // histogram values in [0, 1]
  std::vector<core::Hypervector> code_hvs_;  // one random HV per bucket
  FeatureBundler bundler_;
};

}  // namespace hdface::hog
