#include "hog/integral.hpp"

#include <stdexcept>

namespace hdface::hog {

IntegralImage::IntegralImage(const image::Image& img)
    : width_(img.width()), height_(img.height()),
      table_((img.width() + 1) * (img.height() + 1), 0.0) {
  const std::size_t stride = width_ + 1;
  for (std::size_t y = 0; y < height_; ++y) {
    double row_sum = 0.0;
    for (std::size_t x = 0; x < width_; ++x) {
      row_sum += img.at(x, y);
      table_[(y + 1) * stride + (x + 1)] = table_[y * stride + (x + 1)] + row_sum;
    }
  }
}

double IntegralImage::box_sum(std::size_t x0, std::size_t y0, std::size_t x1,
                              std::size_t y1) const {
  if (x1 > width_ || y1 > height_ || x0 > x1 || y0 > y1) {
    throw std::invalid_argument("IntegralImage: box out of range");
  }
  const std::size_t stride = width_ + 1;
  return table_[y1 * stride + x1] - table_[y0 * stride + x1] -
         table_[y1 * stride + x0] + table_[y0 * stride + x0];
}

double IntegralImage::box_mean(std::size_t x0, std::size_t y0, std::size_t x1,
                               std::size_t y1) const {
  const std::size_t area = (x1 - x0) * (y1 - y0);
  if (area == 0) return 0.0;
  return box_sum(x0, y0, x1, y1) / static_cast<double>(area);
}

}  // namespace hdface::hog
