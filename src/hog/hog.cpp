#include "hog/hog.hpp"

#include <cmath>
#include <stdexcept>

#include "hog/gradient.hpp"

namespace hdface::hog {

HogExtractor::HogExtractor(const HogConfig& config)
    : config_(config), binner_(config.bins) {
  if (config.cell_size == 0) throw std::invalid_argument("HogExtractor: cell_size 0");
  if (config.block_size == 0 || config.block_stride == 0) {
    throw std::invalid_argument("HogExtractor: block geometry must be positive");
  }
}

CellHistograms HogExtractor::cell_histograms(const image::Image& img,
                                             core::OpCounter* counter) const {
  const std::size_t cx_count = config_.cells_x(img.width());
  const std::size_t cy_count = config_.cells_y(img.height());
  if (cx_count == 0 || cy_count == 0) {
    throw std::invalid_argument("HogExtractor: image smaller than one cell");
  }
  const GradientField grad = compute_gradients(img, counter);

  CellHistograms cells;
  cells.cells_x = cx_count;
  cells.cells_y = cy_count;
  cells.bins = config_.bins;
  cells.values.assign(cx_count * cy_count * config_.bins, 0.0f);

  const std::size_t cell = config_.cell_size;
  for (std::size_t cy = 0; cy < cy_count; ++cy) {
    for (std::size_t cx = 0; cx < cx_count; ++cx) {
      for (std::size_t py = 0; py < cell; ++py) {
        for (std::size_t px = 0; px < cell; ++px) {
          const std::size_t x = cx * cell + px;
          const std::size_t y = cy * cell + py;
          const std::size_t bin = binner_.bin_of(grad.gx_at(x, y), grad.gy_at(x, y));
          cells.at(cx, cy, bin) += grad.mag_at(x, y);
        }
      }
      // Mean contribution per pixel, matching the HD running average.
      const float inv = 1.0f / static_cast<float>(cell * cell);
      for (std::size_t b = 0; b < config_.bins; ++b) cells.at(cx, cy, b) *= inv;
    }
  }
  if (counter) {
    const auto n = static_cast<std::uint64_t>(cx_count * cy_count * cell * cell);
    // Binning: sign checks + boundary comparisons; accumulate: one add.
    counter->add(core::OpKind::kFloatCmp, n * (2 + binner_.boundary_tans().size()));
    counter->add(core::OpKind::kFloatMul, n + cx_count * cy_count * config_.bins);
    counter->add(core::OpKind::kFloatAdd, n);
  }
  return cells;
}

std::vector<float> HogExtractor::normalize_blocks(const CellHistograms& cells,
                                                  core::OpCounter* counter) const {
  const std::size_t bs = config_.block_size;
  const std::size_t stride = config_.block_stride;
  if (cells.cells_x < bs || cells.cells_y < bs) {
    // Too small for a block: fall back to the raw histograms.
    return cells.values;
  }
  std::vector<float> out;
  const std::size_t block_len = bs * bs * cells.bins;
  for (std::size_t by = 0; by + bs <= cells.cells_y; by += stride) {
    for (std::size_t bx = 0; bx + bs <= cells.cells_x; bx += stride) {
      std::vector<float> block;
      block.reserve(block_len);
      for (std::size_t cy = by; cy < by + bs; ++cy) {
        for (std::size_t cx = bx; cx < bx + bs; ++cx) {
          for (std::size_t b = 0; b < cells.bins; ++b) {
            block.push_back(cells.at(cx, cy, b));
          }
        }
      }
      // L2-Hys: normalize, clip, renormalize.
      auto l2 = [](const std::vector<float>& v) {
        double s = 1e-12;
        for (float x : v) s += static_cast<double>(x) * x;
        return static_cast<float>(std::sqrt(s));
      };
      float norm = l2(block);
      for (auto& v : block) v /= norm;
      if (config_.l2_clip > 0.0f) {
        for (auto& v : block) v = std::min(v, config_.l2_clip);
        norm = l2(block);
        for (auto& v : block) v /= norm;
      }
      out.insert(out.end(), block.begin(), block.end());
      if (counter) {
        counter->add(core::OpKind::kFloatMul, 2 * block_len);
        counter->add(core::OpKind::kFloatAdd, 2 * block_len);
        counter->add(core::OpKind::kFloatDiv, 2 * block_len);
        counter->add(core::OpKind::kFloatSqrt, 2);
      }
    }
  }
  return out;
}

std::vector<float> HogExtractor::extract(const image::Image& img,
                                         core::OpCounter* counter) const {
  const CellHistograms cells = cell_histograms(img, counter);
  if (!config_.block_normalize) return cells.values;
  return normalize_blocks(cells, counter);
}

std::size_t HogExtractor::feature_size(std::size_t width, std::size_t height) const {
  const std::size_t cx = config_.cells_x(width);
  const std::size_t cy = config_.cells_y(height);
  if (!config_.block_normalize || cx < config_.block_size || cy < config_.block_size) {
    return cx * cy * config_.bins;
  }
  const std::size_t nbx = (cx - config_.block_size) / config_.block_stride + 1;
  const std::size_t nby = (cy - config_.block_size) / config_.block_stride + 1;
  return nbx * nby * config_.block_size * config_.block_size * config_.bins;
}

}  // namespace hdface::hog
