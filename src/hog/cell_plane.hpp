#pragma once

// Scene-level cell-plane encode cache for sliding-window detection.
//
// The per-window HD-HOG encode re-runs the full per-pixel stochastic
// gradient/bin/magnitude chain for every window, so with window w and stride s
// each pixel is encoded up to (w/s)² times. But the expensive part of
// HdHogExtractor::slot_record — everything before window normalization — only
// depends on the *cell* a pixel belongs to, not on which window is looking at
// it. A CellPlane computes the raw per-(cell, bin) decoded slot values once
// per scene scale over a cell grid; window assembly then reduces to the cheap
// per-window tail (vmax normalization, level-memory lookup, weighted
// bundling) over cached cells. See DESIGN.md §10 for the cost model.
//
// Determinism contract: every cell's stochastic chain runs on a scratch
// context reseeded from the pure key (seed, scale_index, gx, gy) via
// cell_plane_seed(), so the plane — and every window assembled from it — is a
// pure function of (trained model, scene pixels, scale index), independent of
// thread count, chunk boundaries, and window enumeration order. Note this is
// a (deterministically) different random stream than the per-window encode,
// whose chain reseeds per window index: the two encode modes agree
// statistically, not bit-for-bit (tests pin the agreement rate).
//
// Grid geometry: cell origins sit at multiples of `grid_step`, which callers
// choose as gcd(stride, cell_size) so every cell of every window lands on the
// grid. When stride is a multiple of the cell size (the common dense-scan
// setup) the plane is exactly the scene cell grid; as the gcd shrinks the
// plane densifies and the amortization fades (per_window encode is the better
// mode at gcd 1 — the cache never makes results wrong, only slower).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rng.hpp"

namespace hdface::hog {

// Salt separating the cell-plane seed stream from every other consumer of the
// pipeline seed (the per-window engine uses its own salt).
inline constexpr std::uint64_t kCellPlaneSalt = 0xCE11'91A7ULL;

// Pure per-cell reseed key: (seed, scale index, grid coordinates).
constexpr std::uint64_t cell_plane_seed(std::uint64_t seed_base,
                                        std::size_t scale_index, std::size_t gx,
                                        std::size_t gy) {
  return core::mix64(
      core::mix64(core::mix64(core::mix64(seed_base, kCellPlaneSalt),
                              scale_index),
                  gx),
      gy);
}

// Raw (pre-normalization) decoded slot values for one scene scale: grid cell
// (gx, gy) has pixel origin (gx·grid_step, gy·grid_step) and `bins`
// consecutive doubles. Values are exactly what slot_record's first pass
// produces for that cell, before window-local vmax normalization.
struct CellPlane {
  std::size_t cell_size = 0;
  std::size_t grid_step = 0;
  std::size_t bins = 0;
  std::size_t grid_x = 0;  // cells along x
  std::size_t grid_y = 0;  // cells along y
  std::size_t scale_index = 0;
  // Row-major cells, then bins: values[(gy * grid_x + gx) * bins + b].
  std::vector<double> values;

  std::size_t cells() const { return grid_x * grid_y; }

  const double* cell(std::size_t gx, std::size_t gy) const {
    return values.data() + (gy * grid_x + gx) * bins;
  }
  double* mutable_cell(std::size_t gx, std::size_t gy) {
    return values.data() + (gy * grid_x + gx) * bins;
  }

  // True when a window with its top-left pixel at (origin_x, origin_y)
  // covering cells_x × cells_y cells lies on the grid and inside the plane.
  bool window_on_grid(std::size_t origin_x, std::size_t origin_y,
                      std::size_t cells_x, std::size_t cells_y) const;
};

// Plane geometry for a scene: cell origins at every multiple of grid_step
// that keeps a full cell inside the scene. Throws std::invalid_argument on
// zero geometry, grid_step not dividing cell_size-aligned offsets (grid_step
// must divide cell_size), or a scene smaller than one cell.
CellPlane make_cell_plane_geometry(std::size_t scene_width,
                                   std::size_t scene_height,
                                   std::size_t cell_size, std::size_t bins,
                                   std::size_t grid_step,
                                   std::size_t scale_index);

}  // namespace hdface::hog
