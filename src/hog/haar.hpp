#pragma once

// HAAR-like feature extraction (paper §2's alternative to HOG), in both the
// classical (integral-image) and hyperspace forms.
//
// A HAAR feature is the difference between the mean intensities of adjacent
// rectangles (edge / line / checkerboard templates). The classical extractor
// evaluates a fixed grid of templates via an integral image. The
// hyperdimensional extractor computes every box mean as a running stochastic
// average of pixel hypervectors and every difference with the ⊕ subtraction —
// the same primitives HD-HOG uses, demonstrating that the paper's arithmetic
// generalizes across feature extractors. Features feed the shared
// FeatureBundler → HDC learning path.

#include <vector>

#include "core/item_memory.hpp"
#include "core/stochastic.hpp"
#include "hog/feature_bundler.hpp"
#include "image/image.hpp"

namespace hdface::hog {

enum class HaarTemplate {
  kEdgeHorizontal,   // top box minus bottom box
  kEdgeVertical,     // left box minus right box
  kLineHorizontal,   // middle third minus outer thirds
  kLineVertical,
  kChecker,          // diagonal quad difference
};

struct HaarFeatureSpec {
  HaarTemplate kind;
  // Rectangle in pixels: [x, x+w) × [y, y+h).
  std::size_t x = 0;
  std::size_t y = 0;
  std::size_t w = 0;
  std::size_t h = 0;
};

struct HaarConfig {
  // Templates are laid on a regular grid: every `stride` pixels, at each of
  // the window sizes listed (square patches of these edge lengths).
  std::vector<std::size_t> patch_sizes = {8, 16};
  std::size_t stride = 4;
};

// Enumerates the feature specs for a window geometry (deterministic order).
std::vector<HaarFeatureSpec> enumerate_haar_features(const HaarConfig& config,
                                                     std::size_t width,
                                                     std::size_t height);

// Classical extractor: one float per spec, each in [-1, 1] (mean difference
// of unit-range pixels).
class HaarExtractor {
 public:
  HaarExtractor(const HaarConfig& config, std::size_t width, std::size_t height);

  std::size_t feature_size() const { return specs_.size(); }
  const std::vector<HaarFeatureSpec>& specs() const { return specs_; }

  std::vector<float> extract(const image::Image& img,
                             core::OpCounter* counter = nullptr) const;

  // Value of one spec given an integral image (shared with the HD tests).
  static double evaluate(const HaarFeatureSpec& spec, const class IntegralImage& ii);

 private:
  HaarConfig config_;
  std::size_t width_;
  std::size_t height_;
  std::vector<HaarFeatureSpec> specs_;
};

// Hyperspace extractor: box means as running stochastic averages of pixel
// hypervectors, differences via ⊕ with negation; each feature's value
// hypervector is re-quantized through a correlative level memory and bundled
// with a per-feature key, exactly like HD-HOG slots.
class HdHaarExtractor {
 public:
  HdHaarExtractor(core::StochasticContext& ctx, const HaarConfig& config,
                  std::size_t width, std::size_t height);

  std::size_t feature_size() const { return specs_.size(); }
  const std::vector<HaarFeatureSpec>& specs() const { return specs_; }

  // Hyperspace value of one spec: represents (meanA − meanB)/2 ∈ [−0.5, 0.5].
  core::Hypervector feature_hv(const image::Image& img,
                               const HaarFeatureSpec& spec);

  // Bundled image-level feature hypervector.
  core::Hypervector extract(const image::Image& img);

  // Decoded per-spec values (verification against the classical extractor;
  // same ×1/2 scale convention as the paper's HOG gradients).
  std::vector<double> decode_features(const image::Image& img);

 private:
  core::Hypervector box_mean_hv(const image::Image& img, std::size_t x0,
                                std::size_t y0, std::size_t x1, std::size_t y1);

  core::StochasticContext& ctx_;
  HaarConfig config_;
  std::size_t width_;
  std::size_t height_;
  std::vector<HaarFeatureSpec> specs_;
  core::LevelItemMemory pixel_memory_;
  core::LevelItemMemory value_memory_;
  FeatureBundler bundler_;
};

}  // namespace hdface::hog
