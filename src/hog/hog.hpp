#pragma once

// Classical (float-space) HOG descriptor — the feature extractor the paper's
// DNN/SVM baselines and its "HOG on original representation" HDC
// configuration consume.

#include <vector>

#include "core/op_counter.hpp"
#include "hog/angle_bins.hpp"
#include "hog/hog_config.hpp"
#include "image/image.hpp"

namespace hdface::hog {

// Per-cell orientation histograms, row-major cells; histogram values are the
// per-cell mean magnitude contribution (sum over pixels / pixels-per-cell),
// matching the HD extractor's running-average semantics.
struct CellHistograms {
  std::size_t cells_x = 0;
  std::size_t cells_y = 0;
  std::size_t bins = 0;
  std::vector<float> values;  // cells_x * cells_y * bins

  float at(std::size_t cx, std::size_t cy, std::size_t bin) const {
    return values[(cy * cells_x + cx) * bins + bin];
  }
  float& at(std::size_t cx, std::size_t cy, std::size_t bin) {
    return values[(cy * cells_x + cx) * bins + bin];
  }
};

class HogExtractor {
 public:
  explicit HogExtractor(const HogConfig& config);

  const HogConfig& config() const { return config_; }
  const AngleBinner& binner() const { return binner_; }

  // Cell-level histograms (no block normalization).
  CellHistograms cell_histograms(const image::Image& img,
                                 core::OpCounter* counter = nullptr) const;

  // Full descriptor: block-normalized if configured, otherwise flattened
  // cell histograms.
  std::vector<float> extract(const image::Image& img,
                             core::OpCounter* counter = nullptr) const;

  // Descriptor length for a given image size.
  std::size_t feature_size(std::size_t width, std::size_t height) const;

 private:
  std::vector<float> normalize_blocks(const CellHistograms& cells,
                                      core::OpCounter* counter) const;

  HogConfig config_;
  AngleBinner binner_;
};

}  // namespace hdface::hog
