#pragma once

// Combines per-(cell, bin) value hypervectors into a single image-level
// feature hypervector.
//
// Each slot (cell c, orientation bin b) gets a fixed random key K_{c,b}; the
// slot's value hypervector V_h is bound (XOR) with its key and all bound
// vectors are majority-bundled. The result is a single binary hypervector in
// which "which orientations dominate which cells" is holographically
// distributed — the form the paper's HDC learner consumes directly with no
// further encoding (paper §5: "extracted features are already in
// high-dimensional space").
//
// The weighted variant votes each bound slot with its histogram value and
// drops near-zero slots entirely. HOG histograms are sparse: most slots are
// ~0 in every window, and bundling them equally buries the informative
// minority under identical common-mode content (superposition cross-talk is
// the capacity limit at fixed D — see bench/ablation_stochastic). Weighted
// sparse bundling is what the end-to-end pipeline uses.

#include <vector>

#include "core/accumulator.hpp"
#include "core/hypervector.hpp"
#include "core/stochastic.hpp"

namespace hdface::hog {

class FeatureBundler {
 public:
  // Keys are derived deterministically from the context seed; any extractor
  // built over the same context produces compatible features.
  FeatureBundler(const core::StochasticContext& ctx, std::size_t cells_x,
                 std::size_t cells_y, std::size_t bins);

  std::size_t slots() const { return keys_.size(); }
  const core::Hypervector& key(std::size_t cell_index, std::size_t bin) const;

  // Bundle one image's slot value hypervectors (row-major cells × bins order,
  // matching key layout) into a single binary hypervector with uniform votes.
  core::Hypervector bundle(const std::vector<core::Hypervector>& slot_values,
                           core::OpCounter* counter = nullptr) const;

  // Weighted bundle: slot s votes with weight `weights[s]`; slots with
  // |weight| < min_weight are skipped (sparse superposition).
  core::Hypervector bundle_weighted(
      const std::vector<core::Hypervector>& slot_values,
      const std::vector<double>& weights, double min_weight = 0.02,
      core::OpCounter* counter = nullptr) const;

  // Borrowed-slot variant with bit-identical output: slot hypervectors are
  // passed by pointer (typically straight into a stored level item memory)
  // and the key binding runs through Accumulator::add_xor, so no per-slot
  // hypervector is allocated. This is the window-assembly hot path of the
  // cell-plane encode cache, where the per-window cost must stay at "cheap
  // tail" scale (see hog/cell_plane.hpp).
  core::Hypervector bundle_weighted_refs(
      const std::vector<const core::Hypervector*>& slot_values,
      const std::vector<double>& weights, double min_weight = 0.02,
      core::OpCounter* counter = nullptr) const;

  // Feature dimensionality (every key shares it).
  std::size_t dim() const { return keys_.front().dim(); }

  // Seed of the per-window-restarted tie-break RNG. Staged range bundling
  // (below) threads one caller-owned Rng across ranges; restarting it from
  // this seed per window reproduces bundle_weighted_refs' draws exactly.
  std::uint64_t tie_seed() const { return tie_seed_; }

  // Staged (word-range) variant of bundle_weighted_refs for the early-reject
  // cascade: accumulates and thresholds ONLY the dimensions of words
  // [word_lo, word_hi), writing them into `out` and leaving every other word
  // of `out` untouched. Majority bundling is per-dimension independent and
  // the tie-break draws run in ascending dimension order over exact zeros, so
  // tiling [0, num_words) with ascending calls sharing one `tie_rng` freshly
  // seeded from tie_seed() yields an `out` bit-identical to
  // bundle_weighted_refs — that is what lets a cascade finish a rejected
  // window's feature prefix-only yet keep survivors exact. `counts_scratch`
  // is caller-owned scratch (resized here; reuse it across windows). Charges
  // the exact range share of the full bundle's op totals. Throws
  // std::invalid_argument on slot/geometry mismatch or an invalid range.
  void bundle_weighted_refs_range(
      const std::vector<const core::Hypervector*>& slot_values,
      const std::vector<double>& weights, double min_weight,
      std::size_t word_lo, std::size_t word_hi, core::Rng& tie_rng,
      std::vector<double>& counts_scratch, core::Hypervector& out,
      core::OpCounter* counter = nullptr) const;

 private:
  std::size_t bins_;
  std::vector<core::Hypervector> keys_;
  std::uint64_t tie_seed_;
};

}  // namespace hdface::hog
