#include "hog/angle_bins.hpp"

#include <cmath>
#include <stdexcept>

namespace hdface::hog {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

AngleBinner::AngleBinner(std::size_t bins) : bins_(bins) {
  if (bins == 0 || bins % 4 != 0) {
    throw std::invalid_argument("AngleBinner: bins must be a positive multiple of 4");
  }
  const std::size_t per_quadrant = bins / 4;
  tans_.reserve(per_quadrant - 1);
  for (std::size_t j = 1; j < per_quadrant; ++j) {
    const double theta =
        (kPi / 2.0) * static_cast<double>(j) / static_cast<double>(per_quadrant);
    tans_.push_back(std::tan(theta));
  }
}

std::size_t AngleBinner::quadrant(int sign_gx, int sign_gy) {
  const bool x_neg = sign_gx < 0;
  const bool y_neg = sign_gy < 0;
  if (!x_neg && !y_neg) return 0;  // I
  if (x_neg && !y_neg) return 1;   // II
  if (x_neg && y_neg) return 2;    // III
  return 3;                        // IV
}

bool AngleBinner::ratio_is_gy_over_gx(std::size_t quadrant) {
  return quadrant == 0 || quadrant == 2;
}

std::size_t AngleBinner::local_bin_from_comparisons(
    const std::vector<bool>& greater) const {
  // tan is monotonic within the quadrant, so the local bin is simply how many
  // boundary tangents the ratio exceeds.
  std::size_t local = 0;
  for (bool g : greater) {
    if (g) ++local;
  }
  return local;
}

std::size_t AngleBinner::global_bin(std::size_t quadrant, std::size_t local) const {
  return quadrant * bins_per_quadrant() + local;
}

std::size_t AngleBinner::bin_of(float gx, float gy) const {
  const int sx = gx < 0.0f ? -1 : 1;
  const int sy = gy < 0.0f ? -1 : 1;
  const std::size_t q = quadrant(sx, sy);
  const double ax = std::fabs(static_cast<double>(gx));
  const double ay = std::fabs(static_cast<double>(gy));
  const double num = ratio_is_gy_over_gx(q) ? ay : ax;
  const double den = ratio_is_gy_over_gx(q) ? ax : ay;
  std::vector<bool> greater;
  greater.reserve(tans_.size());
  for (double t : tans_) {
    // num > t·den, evaluated in the cot form when t > 1 so both sides stay
    // bounded (mirrors the hyperspace implementation exactly).
    if (t <= 1.0) {
      greater.push_back(num > t * den);
    } else {
      greater.push_back(num / t > den);  // cot(θ)·num > den
    }
  }
  return global_bin(q, local_bin_from_comparisons(greater));
}

double AngleBinner::bin_center(std::size_t bin) const {
  const double width = 2.0 * kPi / static_cast<double>(bins_);
  return (static_cast<double>(bin) + 0.5) * width;
}

}  // namespace hdface::hog
