#pragma once

// Classical (float-space) gradient field with operation accounting, plus the
// scene-scale level-index planar pass shared by the batched per-cell HD
// encoder.

#include <cstdint>
#include <vector>

#include "core/item_memory.hpp"
#include "core/op_counter.hpp"
#include "image/image.hpp"

namespace hdface::hog {

struct GradientField {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<float> gx;         // (C(x+1,y) − C(x−1,y)) / 2
  std::vector<float> gy;         // (C(x,y+1) − C(x,y−1)) / 2
  std::vector<float> magnitude;  // √((gx² + gy²)/2)

  float gx_at(std::size_t x, std::size_t y) const { return gx[y * width + x]; }
  float gy_at(std::size_t x, std::size_t y) const { return gy[y * width + x]; }
  float mag_at(std::size_t x, std::size_t y) const {
    return magnitude[y * width + x];
  }
};

// Central-difference gradients with clamped borders.
GradientField compute_gradients(const image::Image& img,
                                core::OpCounter* counter = nullptr);

// Scene-scale planar pass for the HD encoder: the level-item-memory index of
// every pixel, computed once per scale in one contiguous loop. The per-cell
// stochastic chain reads each pixel up to four times per cell *and* adjacent
// cells re-read their shared border pixels; hoisting the float→level
// quantization into this plane makes every later access a table lookup
// (`memory.level(plane.at_clamped(x, y))` — the identical Hypervector
// `memory.at_value(value)` would return, so results are bit-identical).
struct LevelIndexPlane {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::uint16_t> idx;

  // Clamped-border read, mirroring image::Image::at_clamped.
  std::uint16_t at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const {
    const auto w = static_cast<std::ptrdiff_t>(width);
    const auto h = static_cast<std::ptrdiff_t>(height);
    if (x < 0) x = 0;
    if (x >= w) x = w - 1;
    if (y < 0) y = 0;
    if (y >= h) y = h - 1;
    return idx[static_cast<std::size_t>(y) * width +
               static_cast<std::size_t>(x)];
  }
};

// Builds the plane (one index_of per pixel). Throws std::invalid_argument
// when the memory holds more than 65535 levels (uint16 plane storage).
LevelIndexPlane build_level_index_plane(const image::Image& img,
                                        const core::LevelItemMemory& memory);

}  // namespace hdface::hog
