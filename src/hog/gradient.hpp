#pragma once

// Classical (float-space) gradient field with operation accounting.

#include <vector>

#include "core/op_counter.hpp"
#include "image/image.hpp"

namespace hdface::hog {

struct GradientField {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<float> gx;         // (C(x+1,y) − C(x−1,y)) / 2
  std::vector<float> gy;         // (C(x,y+1) − C(x,y−1)) / 2
  std::vector<float> magnitude;  // √((gx² + gy²)/2)

  float gx_at(std::size_t x, std::size_t y) const { return gx[y * width + x]; }
  float gy_at(std::size_t x, std::size_t y) const { return gy[y * width + x]; }
  float mag_at(std::size_t x, std::size_t y) const {
    return magnitude[y * width + x];
  }
};

// Central-difference gradients with clamped borders.
GradientField compute_gradients(const image::Image& img,
                                core::OpCounter* counter = nullptr);

}  // namespace hdface::hog
