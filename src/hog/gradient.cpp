#include "hog/gradient.hpp"

#include <cmath>
#include <stdexcept>

namespace hdface::hog {

GradientField compute_gradients(const image::Image& img, core::OpCounter* counter) {
  GradientField g;
  g.width = img.width();
  g.height = img.height();
  g.gx.resize(img.size());
  g.gy.resize(img.size());
  g.magnitude.resize(img.size());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const auto xi = static_cast<std::ptrdiff_t>(x);
      const auto yi = static_cast<std::ptrdiff_t>(y);
      const float gx = (img.at_clamped(xi + 1, yi) - img.at_clamped(xi - 1, yi)) / 2.0f;
      const float gy = (img.at_clamped(xi, yi + 1) - img.at_clamped(xi, yi - 1)) / 2.0f;
      const std::size_t i = y * img.width() + x;
      g.gx[i] = gx;
      g.gy[i] = gy;
      g.magnitude[i] = std::sqrt((gx * gx + gy * gy) / 2.0f);
    }
  }
  if (counter) {
    const auto n = static_cast<std::uint64_t>(img.size());
    counter->add(core::OpKind::kFloatAdd, 3 * n);   // two differences + sum
    counter->add(core::OpKind::kFloatMul, 4 * n);   // halvings + squares
    counter->add(core::OpKind::kFloatSqrt, n);
  }
  return g;
}

LevelIndexPlane build_level_index_plane(const image::Image& img,
                                        const core::LevelItemMemory& memory) {
  if (memory.levels() > 65535) {
    throw std::invalid_argument(
        "build_level_index_plane: more than 65535 levels");
  }
  LevelIndexPlane plane;
  plane.width = img.width();
  plane.height = img.height();
  plane.idx.resize(img.size());
  const auto pixels = img.pixels();
  for (std::size_t i = 0; i < plane.idx.size(); ++i) {
    plane.idx[i] = static_cast<std::uint16_t>(
        memory.index_of(static_cast<double>(pixels[i])));
  }
  return plane;
}

}  // namespace hdface::hog
