#pragma once

// Shared configuration for the classical and hyperdimensional HOG extractors.
//
// Both extractors use the same gradient convention as the paper's §4.3:
// G_x = (C(x+1,y) − C(x−1,y)) / 2 and magnitude √((G_x² + G_y²)/2), i.e. all
// values stay within the representable interval of the stochastic arithmetic
// (the uniform 1/√2 scale does not affect the features).

#include <cstddef>

namespace hdface::hog {

struct HogConfig {
  // Square cell edge in pixels.
  std::size_t cell_size = 8;
  // Orientation bins over the full signed [0, 2π) circle; must be a positive
  // multiple of 4 so bins decompose into quadrants (paper §4.3).
  std::size_t bins = 8;
  // Block normalization (classical extractor only; the HD extractor follows
  // the paper and emits unnormalized cell histograms).
  bool block_normalize = true;
  std::size_t block_size = 2;   // cells per block edge
  std::size_t block_stride = 1; // cells
  // L2 normalization clipping threshold (L2-Hys style), <= 0 disables clip.
  float l2_clip = 0.2f;

  std::size_t cells_x(std::size_t image_width) const {
    return image_width / cell_size;
  }
  std::size_t cells_y(std::size_t image_height) const {
    return image_height / cell_size;
  }
};

}  // namespace hdface::hog
