#include "hog/haar.hpp"

#include <cmath>
#include <stdexcept>

#include "hog/integral.hpp"

namespace hdface::hog {

namespace {

// Evaluates a template as (mean of region A − mean of region B) / 2, the
// same halved-difference convention the paper's HOG gradients use, keeping
// every value inside the representable interval.
double evaluate_impl(const HaarFeatureSpec& s, const IntegralImage& ii) {
  const std::size_t x1 = s.x + s.w;
  const std::size_t y1 = s.y + s.h;
  switch (s.kind) {
    case HaarTemplate::kEdgeHorizontal: {
      const double top = ii.box_mean(s.x, s.y, x1, s.y + s.h / 2);
      const double bottom = ii.box_mean(s.x, s.y + s.h / 2, x1, y1);
      return (top - bottom) / 2.0;
    }
    case HaarTemplate::kEdgeVertical: {
      const double left = ii.box_mean(s.x, s.y, s.x + s.w / 2, y1);
      const double right = ii.box_mean(s.x + s.w / 2, s.y, x1, y1);
      return (left - right) / 2.0;
    }
    case HaarTemplate::kLineHorizontal: {
      const std::size_t third = s.h / 3;
      const double mid = ii.box_mean(s.x, s.y + third, x1, s.y + 2 * third);
      const double outer =
          (ii.box_mean(s.x, s.y, x1, s.y + third) +
           ii.box_mean(s.x, s.y + 2 * third, x1, y1)) / 2.0;
      return (mid - outer) / 2.0;
    }
    case HaarTemplate::kLineVertical: {
      const std::size_t third = s.w / 3;
      const double mid = ii.box_mean(s.x + third, s.y, s.x + 2 * third, y1);
      const double outer =
          (ii.box_mean(s.x, s.y, s.x + third, y1) +
           ii.box_mean(s.x + 2 * third, s.y, x1, y1)) / 2.0;
      return (mid - outer) / 2.0;
    }
    case HaarTemplate::kChecker: {
      const std::size_t mx = s.x + s.w / 2;
      const std::size_t my = s.y + s.h / 2;
      const double diag = (ii.box_mean(s.x, s.y, mx, my) +
                           ii.box_mean(mx, my, x1, y1)) / 2.0;
      const double anti = (ii.box_mean(mx, s.y, x1, my) +
                           ii.box_mean(s.x, my, mx, y1)) / 2.0;
      return (diag - anti) / 2.0;
    }
  }
  throw std::invalid_argument("evaluate_impl: bad template");
}

}  // namespace

std::vector<HaarFeatureSpec> enumerate_haar_features(const HaarConfig& config,
                                                     std::size_t width,
                                                     std::size_t height) {
  std::vector<HaarFeatureSpec> specs;
  constexpr HaarTemplate kTemplates[] = {
      HaarTemplate::kEdgeHorizontal, HaarTemplate::kEdgeVertical,
      HaarTemplate::kLineHorizontal, HaarTemplate::kLineVertical,
      HaarTemplate::kChecker};
  for (const std::size_t size : config.patch_sizes) {
    if (size < 6 || size > width || size > height) continue;
    for (std::size_t y = 0; y + size <= height; y += config.stride) {
      for (std::size_t x = 0; x + size <= width; x += config.stride) {
        for (const auto kind : kTemplates) {
          specs.push_back({kind, x, y, size, size});
        }
      }
    }
  }
  return specs;
}

HaarExtractor::HaarExtractor(const HaarConfig& config, std::size_t width,
                             std::size_t height)
    : config_(config), width_(width), height_(height),
      specs_(enumerate_haar_features(config, width, height)) {
  if (specs_.empty()) {
    throw std::invalid_argument("HaarExtractor: no features fit the window");
  }
}

double HaarExtractor::evaluate(const HaarFeatureSpec& spec, const IntegralImage& ii) {
  return evaluate_impl(spec, ii);
}

std::vector<float> HaarExtractor::extract(const image::Image& img,
                                          core::OpCounter* counter) const {
  if (img.width() != width_ || img.height() != height_) {
    throw std::invalid_argument("HaarExtractor: image geometry mismatch");
  }
  const IntegralImage ii(img);
  std::vector<float> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) {
    out.push_back(static_cast<float>(evaluate_impl(s, ii)));
  }
  if (counter) {
    // Integral build: one add per pixel; each template: ~8 box corner reads,
    // a handful of add/div.
    counter->add(core::OpKind::kFloatAdd,
                 img.size() + 16 * specs_.size());
    counter->add(core::OpKind::kFloatDiv, 4 * specs_.size());
  }
  return out;
}

HdHaarExtractor::HdHaarExtractor(core::StochasticContext& ctx,
                                 const HaarConfig& config, std::size_t width,
                                 std::size_t height)
    : ctx_(ctx), config_(config), width_(width), height_(height),
      specs_(enumerate_haar_features(config, width, height)),
      pixel_memory_(ctx, 256, 0.0, 1.0),
      value_memory_(ctx, 64, -0.5, 0.5),
      bundler_(ctx, specs_.empty() ? 1 : specs_.size(), 1, 1) {
  if (specs_.empty()) {
    throw std::invalid_argument("HdHaarExtractor: no features fit the window");
  }
}

core::Hypervector HdHaarExtractor::box_mean_hv(const image::Image& img,
                                               std::size_t x0, std::size_t y0,
                                               std::size_t x1, std::size_t y1) {
  // Running stochastic average over (a subsample of) the box pixels. Large
  // boxes are subsampled on a regular grid (≤ 4×4 samples) — the box mean is
  // a low-frequency statistic, so sparse sampling preserves it while keeping
  // the hyperspace cost independent of box area.
  const std::size_t step_x = std::max<std::size_t>(1, (x1 - x0) / 4);
  const std::size_t step_y = std::max<std::size_t>(1, (y1 - y0) / 4);
  core::Hypervector mean;
  std::size_t n = 0;
  for (std::size_t y = y0; y < y1; y += step_y) {
    for (std::size_t x = x0; x < x1; x += step_x) {
      const core::Hypervector& pixel =
          pixel_memory_.at_value(static_cast<double>(img.at(x, y)));
      if (n == 0) {
        mean = pixel;
      } else {
        const double keep = static_cast<double>(n) / static_cast<double>(n + 1);
        mean = ctx_.weighted_average(mean, pixel, keep);
      }
      ++n;
    }
  }
  return mean;
}

core::Hypervector HdHaarExtractor::feature_hv(const image::Image& img,
                                              const HaarFeatureSpec& s) {
  const std::size_t x1 = s.x + s.w;
  const std::size_t y1 = s.y + s.h;
  switch (s.kind) {
    case HaarTemplate::kEdgeHorizontal:
      return ctx_.sub_halved(box_mean_hv(img, s.x, s.y, x1, s.y + s.h / 2),
                             box_mean_hv(img, s.x, s.y + s.h / 2, x1, y1));
    case HaarTemplate::kEdgeVertical:
      return ctx_.sub_halved(box_mean_hv(img, s.x, s.y, s.x + s.w / 2, y1),
                             box_mean_hv(img, s.x + s.w / 2, s.y, x1, y1));
    case HaarTemplate::kLineHorizontal: {
      const std::size_t third = s.h / 3;
      const auto mid = box_mean_hv(img, s.x, s.y + third, x1, s.y + 2 * third);
      const auto outer = ctx_.add_halved(
          box_mean_hv(img, s.x, s.y, x1, s.y + third),
          box_mean_hv(img, s.x, s.y + 2 * third, x1, y1));
      // outer represents (o1+o2)/2 = mean of outer regions; halved diff next.
      return ctx_.sub_halved(mid, outer);
    }
    case HaarTemplate::kLineVertical: {
      const std::size_t third = s.w / 3;
      const auto mid = box_mean_hv(img, s.x + third, s.y, s.x + 2 * third, y1);
      const auto outer =
          ctx_.add_halved(box_mean_hv(img, s.x, s.y, s.x + third, y1),
                          box_mean_hv(img, s.x + 2 * third, s.y, x1, y1));
      return ctx_.sub_halved(mid, outer);
    }
    case HaarTemplate::kChecker: {
      const std::size_t mx = s.x + s.w / 2;
      const std::size_t my = s.y + s.h / 2;
      const auto diag = ctx_.add_halved(box_mean_hv(img, s.x, s.y, mx, my),
                                        box_mean_hv(img, mx, my, x1, y1));
      const auto anti = ctx_.add_halved(box_mean_hv(img, mx, s.y, x1, my),
                                        box_mean_hv(img, s.x, my, mx, y1));
      return ctx_.sub_halved(diag, anti);
    }
  }
  throw std::invalid_argument("HdHaarExtractor: bad template");
}

core::Hypervector HdHaarExtractor::extract(const image::Image& img) {
  if (img.width() != width_ || img.height() != height_) {
    throw std::invalid_argument("HdHaarExtractor: image geometry mismatch");
  }
  std::vector<core::Hypervector> slots;
  std::vector<double> weights;
  slots.reserve(specs_.size());
  weights.reserve(specs_.size());
  for (const auto& s : specs_) {
    const double v = ctx_.decode(feature_hv(img, s));
    slots.push_back(value_memory_.at_value(v));
    weights.push_back(std::fabs(v));
  }
  return bundler_.bundle_weighted(slots, weights, 0.02, ctx_.counter());
}

std::vector<double> HdHaarExtractor::decode_features(const image::Image& img) {
  std::vector<double> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) {
    out.push_back(ctx_.decode(feature_hv(img, s)));
  }
  return out;
}

}  // namespace hdface::hog
