#include "hog/feature_bundler.hpp"

#include <cmath>
#include <stdexcept>

namespace hdface::hog {

FeatureBundler::FeatureBundler(const core::StochasticContext& ctx,
                               std::size_t cells_x, std::size_t cells_y,
                               std::size_t bins)
    : bins_(bins), tie_seed_(core::mix64(ctx.config().seed, 0x71e)) {
  if (cells_x == 0 || cells_y == 0 || bins == 0) {
    throw std::invalid_argument("FeatureBundler: empty geometry");
  }
  core::Rng rng(core::mix64(ctx.config().seed, 0x4E75));
  const std::size_t n = cells_x * cells_y * bins;
  keys_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys_.push_back(core::Hypervector::random(ctx.dim(), rng));
  }
}

const core::Hypervector& FeatureBundler::key(std::size_t cell_index,
                                             std::size_t bin) const {
  return keys_.at(cell_index * bins_ + bin);
}

core::Hypervector FeatureBundler::bundle(
    const std::vector<core::Hypervector>& slot_values,
    core::OpCounter* counter) const {
  return bundle_weighted(slot_values, std::vector<double>(slot_values.size(), 1.0),
                         0.0, counter);
}

core::Hypervector FeatureBundler::bundle_weighted(
    const std::vector<core::Hypervector>& slot_values,
    const std::vector<double>& weights, double min_weight,
    core::OpCounter* counter) const {
  if (slot_values.size() != keys_.size() || weights.size() != keys_.size()) {
    throw std::invalid_argument("FeatureBundler: slot count mismatch");
  }
  core::Accumulator acc(keys_.front().dim());
  acc.set_counter(counter);
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (std::abs(weights[i]) < min_weight) continue;
    if (counter) counter->add(core::OpKind::kWordLogic, keys_[i].num_words());
    acc.add(keys_[i] ^ slot_values[i], weights[i]);
  }
  core::Rng tie_rng(tie_seed_);
  return acc.threshold(tie_rng);
}

core::Hypervector FeatureBundler::bundle_weighted_refs(
    const std::vector<const core::Hypervector*>& slot_values,
    const std::vector<double>& weights, double min_weight,
    core::OpCounter* counter) const {
  if (slot_values.size() != keys_.size() || weights.size() != keys_.size()) {
    throw std::invalid_argument("FeatureBundler: slot count mismatch");
  }
  core::Accumulator acc(keys_.front().dim());
  acc.set_counter(counter);
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (std::abs(weights[i]) < min_weight) continue;
    // add_xor counts the binding XOR itself (same totals as the allocating
    // path: kWordLogic per word + kIntAdd per dimension).
    acc.add_xor(keys_[i], *slot_values[i], weights[i]);
  }
  core::Rng tie_rng(tie_seed_);
  return acc.threshold(tie_rng);
}

}  // namespace hdface::hog
