#include "hog/feature_bundler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/kernels/kernels.hpp"

namespace hdface::hog {

FeatureBundler::FeatureBundler(const core::StochasticContext& ctx,
                               std::size_t cells_x, std::size_t cells_y,
                               std::size_t bins)
    : bins_(bins), tie_seed_(core::mix64(ctx.config().seed, 0x71e)) {
  if (cells_x == 0 || cells_y == 0 || bins == 0) {
    throw std::invalid_argument("FeatureBundler: empty geometry");
  }
  core::Rng rng(core::mix64(ctx.config().seed, 0x4E75));
  const std::size_t n = cells_x * cells_y * bins;
  keys_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys_.push_back(core::Hypervector::random(ctx.dim(), rng));
  }
}

const core::Hypervector& FeatureBundler::key(std::size_t cell_index,
                                             std::size_t bin) const {
  return keys_.at(cell_index * bins_ + bin);
}

core::Hypervector FeatureBundler::bundle(
    const std::vector<core::Hypervector>& slot_values,
    core::OpCounter* counter) const {
  return bundle_weighted(slot_values, std::vector<double>(slot_values.size(), 1.0),
                         0.0, counter);
}

core::Hypervector FeatureBundler::bundle_weighted(
    const std::vector<core::Hypervector>& slot_values,
    const std::vector<double>& weights, double min_weight,
    core::OpCounter* counter) const {
  if (slot_values.size() != keys_.size() || weights.size() != keys_.size()) {
    throw std::invalid_argument("FeatureBundler: slot count mismatch");
  }
  core::Accumulator acc(keys_.front().dim());
  acc.set_counter(counter);
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (std::abs(weights[i]) < min_weight) continue;
    if (counter) counter->add(core::OpKind::kWordLogic, keys_[i].num_words());
    acc.add(keys_[i] ^ slot_values[i], weights[i]);
  }
  core::Rng tie_rng(tie_seed_);
  return acc.threshold(tie_rng);
}

core::Hypervector FeatureBundler::bundle_weighted_refs(
    const std::vector<const core::Hypervector*>& slot_values,
    const std::vector<double>& weights, double min_weight,
    core::OpCounter* counter) const {
  if (slot_values.size() != keys_.size() || weights.size() != keys_.size()) {
    throw std::invalid_argument("FeatureBundler: slot count mismatch");
  }
  core::Accumulator acc(keys_.front().dim());
  acc.set_counter(counter);
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (std::abs(weights[i]) < min_weight) continue;
    // add_xor counts the binding XOR itself (same totals as the allocating
    // path: kWordLogic per word + kIntAdd per dimension).
    acc.add_xor(keys_[i], *slot_values[i], weights[i]);
  }
  core::Rng tie_rng(tie_seed_);
  return acc.threshold(tie_rng);
}

void FeatureBundler::bundle_weighted_refs_range(
    const std::vector<const core::Hypervector*>& slot_values,
    const std::vector<double>& weights, double min_weight, std::size_t word_lo,
    std::size_t word_hi, core::Rng& tie_rng,
    std::vector<double>& counts_scratch, core::Hypervector& out,
    core::OpCounter* counter) const {
  if (slot_values.size() != keys_.size() || weights.size() != keys_.size()) {
    throw std::invalid_argument("FeatureBundler: slot count mismatch");
  }
  const std::size_t d = dim();
  const std::size_t words = keys_.front().num_words();
  if (out.dim() != d) {
    throw std::invalid_argument("FeatureBundler: output dimensionality mismatch");
  }
  if (word_lo >= word_hi || word_hi > words) {
    throw std::invalid_argument("FeatureBundler: word range out of bounds");
  }
  const std::size_t dim_lo = word_lo * 64;
  const std::size_t dim_hi = std::min(d, word_hi * 64);
  const std::size_t range_dims = dim_hi - dim_lo;
  counts_scratch.assign(range_dims, 0.0);
  const auto& kt = core::kernels::active();
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (std::abs(weights[i]) < min_weight) continue;
    // Same per-dimension adds in the same order as add_xor over the full
    // vectors — each count sees one rounded ±weight add per kept slot, so the
    // range's counts (and therefore its thresholded bits) match the full
    // bundle's exactly.
    kt.add_xor_weighted(slot_values[i]->words().data() + word_lo,
                        keys_[i].words().data() + word_lo, range_dims,
                        weights[i], counts_scratch.data());
    if (counter) {
      counter->add(core::OpKind::kWordLogic, word_hi - word_lo);
      counter->add(core::OpKind::kIntAdd, range_dims);
    }
  }
  const std::size_t zeros = kt.threshold_words(
      counts_scratch.data(), range_dims, out.mutable_words().data() + word_lo);
  if (zeros != 0) {
    // Scalar tie-break with the caller's Rng: ascending dimension order over
    // exact zeros, exactly the draws Accumulator::threshold would burn for
    // these dimensions inside a full-vector bundle.
    for (std::size_t i = 0; i < range_dims; ++i) {
      if (counts_scratch[i] == 0.0 && (tie_rng.next() & 1ULL)) {
        out.set(dim_lo + i, true);
      }
    }
  }
}

}  // namespace hdface::hog
