#include "hog/lbp.hpp"

#include <bit>
#include <stdexcept>

namespace hdface::hog {

namespace {
// Neighbor offsets, clockwise from the top-left.
constexpr int kOffsets[8][2] = {{-1, -1}, {0, -1}, {1, -1}, {1, 0},
                                {1, 1},   {0, 1},  {-1, 1}, {-1, 0}};
}  // namespace

std::uint8_t lbp_code(const image::Image& img, std::size_t x, std::size_t y) {
  const float center = img.at(x, y);
  std::uint8_t code = 0;
  for (int k = 0; k < 8; ++k) {
    const float neighbor =
        img.at_clamped(static_cast<std::ptrdiff_t>(x) + kOffsets[k][0],
                       static_cast<std::ptrdiff_t>(y) + kOffsets[k][1]);
    if (neighbor >= center) code |= static_cast<std::uint8_t>(1u << k);
  }
  return code;
}

std::size_t lbp_bucket(std::uint8_t code, std::size_t bins) {
  if (bins >= 256) return code;
  // Fold by (popcount, first-transition) — groups visually similar codes so
  // that coarse histograms stay discriminative.
  const auto ones = static_cast<std::size_t>(std::popcount(code));
  const auto rotated = static_cast<std::size_t>(
      std::popcount(static_cast<std::uint8_t>(code ^ (code << 1 | code >> 7))));
  return (ones * 8 + rotated / 2) % bins;
}

LbpExtractor::LbpExtractor(const LbpConfig& config) : config_(config) {
  if (config.cell_size == 0) throw std::invalid_argument("LbpExtractor: cell_size 0");
  if (config.bins == 0 || config.bins > 256) {
    throw std::invalid_argument("LbpExtractor: bins out of range");
  }
}

std::size_t LbpExtractor::feature_size(std::size_t width, std::size_t height) const {
  return (width / config_.cell_size) * (height / config_.cell_size) * config_.bins;
}

std::vector<float> LbpExtractor::extract(const image::Image& img,
                                         core::OpCounter* counter) const {
  const std::size_t cell = config_.cell_size;
  const std::size_t cx_count = img.width() / cell;
  const std::size_t cy_count = img.height() / cell;
  if (cx_count == 0 || cy_count == 0) {
    throw std::invalid_argument("LbpExtractor: image smaller than one cell");
  }
  std::vector<float> out(cx_count * cy_count * config_.bins, 0.0f);
  for (std::size_t cy = 0; cy < cy_count; ++cy) {
    for (std::size_t cx = 0; cx < cx_count; ++cx) {
      float* hist = &out[(cy * cx_count + cx) * config_.bins];
      for (std::size_t py = 0; py < cell; ++py) {
        for (std::size_t px = 0; px < cell; ++px) {
          const auto code = lbp_code(img, cx * cell + px, cy * cell + py);
          hist[lbp_bucket(code, config_.bins)] += 1.0f;
        }
      }
      const float inv = 1.0f / static_cast<float>(cell * cell);
      for (std::size_t b = 0; b < config_.bins; ++b) hist[b] *= inv;
    }
  }
  if (counter) {
    const auto pixels = static_cast<std::uint64_t>(cx_count * cy_count * cell * cell);
    counter->add(core::OpKind::kFloatCmp, 8 * pixels);
    counter->add(core::OpKind::kIntAdd, pixels);
    counter->add(core::OpKind::kFloatMul, out.size());
  }
  return out;
}

HdLbpExtractor::HdLbpExtractor(core::StochasticContext& ctx,
                               const LbpConfig& config, std::size_t width,
                               std::size_t height)
    : ctx_(ctx),
      config_(config),
      width_(width),
      height_(height),
      cells_x_(width / config.cell_size),
      cells_y_(height / config.cell_size),
      pixel_memory_(ctx, 256, 0.0, 1.0),
      value_memory_(ctx, 64, 0.0, 1.0),
      bundler_(ctx, cells_x_ == 0 ? 1 : cells_x_, cells_y_ == 0 ? 1 : cells_y_,
               config.bins) {
  if (cells_x_ == 0 || cells_y_ == 0) {
    throw std::invalid_argument("HdLbpExtractor: image smaller than one cell");
  }
  core::Rng rng(core::mix64(ctx.config().seed, 0x1B9));
  code_hvs_.reserve(config.bins);
  for (std::size_t b = 0; b < config.bins; ++b) {
    code_hvs_.push_back(core::Hypervector::random(ctx.dim(), rng));
  }
}

std::uint8_t HdLbpExtractor::pixel_code_hyperspace(const image::Image& img,
                                                   std::size_t x, std::size_t y) {
  const core::Hypervector& center =
      pixel_memory_.at_value(static_cast<double>(img.at(x, y)));
  std::uint8_t code = 0;
  for (int k = 0; k < 8; ++k) {
    const float nv =
        img.at_clamped(static_cast<std::ptrdiff_t>(x) + kOffsets[k][0],
                       static_cast<std::ptrdiff_t>(y) + kOffsets[k][1]);
    const core::Hypervector& neighbor =
        pixel_memory_.at_value(static_cast<double>(nv));
    // neighbor >= center decided by the stochastic comparison; the zero
    // margin resolves ties toward "greater or equal" like the classical code.
    if (ctx_.compare(neighbor, center, 0.0) >= 0) {
      code |= static_cast<std::uint8_t>(1u << k);
    }
  }
  return code;
}

core::Hypervector HdLbpExtractor::extract(const image::Image& img) {
  if (img.width() != width_ || img.height() != height_) {
    throw std::invalid_argument("HdLbpExtractor: image geometry mismatch");
  }
  const std::size_t cell = config_.cell_size;
  const std::size_t pixels_per_cell = cell * cell;
  std::vector<core::Hypervector> slots;
  std::vector<double> weights;
  slots.reserve(cells_x_ * cells_y_ * config_.bins);
  weights.reserve(slots.capacity());
  std::vector<std::size_t> hist(config_.bins);
  for (std::size_t cy = 0; cy < cells_y_; ++cy) {
    for (std::size_t cx = 0; cx < cells_x_; ++cx) {
      std::fill(hist.begin(), hist.end(), 0);
      for (std::size_t py = 0; py < cell; ++py) {
        for (std::size_t px = 0; px < cell; ++px) {
          const auto code = pixel_code_hyperspace(img, cx * cell + px,
                                                  cy * cell + py);
          hist[lbp_bucket(code, config_.bins)]++;
        }
      }
      for (std::size_t b = 0; b < config_.bins; ++b) {
        const double rate = static_cast<double>(hist[b]) /
                            static_cast<double>(pixels_per_cell);
        // Slot content: the bucket's code hypervector bound to the bucket's
        // histogram-value level; vote weight = the rate itself.
        slots.push_back(code_hvs_[b] ^ value_memory_.at_value(rate));
        weights.push_back(rate);
      }
    }
  }
  return bundler_.bundle_weighted(slots, weights, 0.02, ctx_.counter());
}

}  // namespace hdface::hog
