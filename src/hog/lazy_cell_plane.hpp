#pragma once

// Lazily materialized cell-plane cache (the cascade-driven encode floor
// attack, DESIGN.md §14).
//
// The eager CellPlane pays the full per-cell stochastic chain for every grid
// cell up front, but with an early-reject cascade most windows die on a
// low-dimensional prefix over a small subset of their cells — the cells they
// *don't* share with a survivor are encoded for nothing. A LazyCellPlane
// wraps the same storage behind a once-per-cell materialization gate: a cell
// is encoded the first time any window actually reads it, and cells read by
// no window (because every window touching them was prescreen-rejected)
// are never encoded at all.
//
// Bit-identity by construction: every cell's chain reseeds from the pure key
// cell_plane_seed(seed, scale_index, gx, gy) — the SAME key the eager fill
// uses — so a lazily materialized cell holds exactly the eager cell's bytes
// regardless of which thread materializes it, in what order, or interleaved
// with which other cells. Lazy vs eager is a pure scheduling choice; the
// property suite pins map-hash equality across modes and thread counts.
//
// Concurrency: per-cell once-flags (acquire/release atomics) double-checked
// under a sharded util::Mutex array. The release store of the ready flag
// sequences the fill before any acquire-load reader, so TSan-clean readers
// never see a half-written cell. A reader must call ensure_cell (or observe
// materialized()) before touching the cell's values.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "hog/cell_plane.hpp"
#include "util/mutex.hpp"

namespace hdface::hog {

class LazyCellPlane {
 public:
  // Takes the (zero-filled) geometry from make_cell_plane_geometry.
  explicit LazyCellPlane(CellPlane geometry)
      : storage_(std::move(geometry)),
        ready_(storage_.cells()),
        mutexes_(kMutexShards) {}

  // The underlying plane. Cell values are meaningful only for materialized
  // cells; geometry fields are always valid.
  const CellPlane& plane() const { return storage_; }

  // Materializes cell (gx, gy) via `fill(double* cell_values)` if no thread
  // has yet; returns true when THIS call ran the fill. fill must be a pure
  // function of (gx, gy) — every caller passes the reseeded per-cell encode,
  // so all racers would write identical bytes and only one runs.
  template <typename Fill>
  bool ensure_cell(std::size_t gx, std::size_t gy, Fill&& fill) {
    const std::size_t idx = gy * storage_.grid_x + gx;
    if (ready_[idx].load(std::memory_order_acquire) != 0) return false;
    util::MutexLock lock(mutexes_[idx % kMutexShards]);
    if (ready_[idx].load(std::memory_order_relaxed) != 0) return false;
    fill(storage_.mutable_cell(gx, gy));
    ready_[idx].store(1, std::memory_order_release);
    return true;
  }

  // True when the cell is materialized (acquire: a true result also makes
  // the cell's values visible to this thread).
  bool materialized(std::size_t gx, std::size_t gy) const {
    return ready_[gy * storage_.grid_x + gx].load(std::memory_order_acquire) !=
           0;
  }

  // Post-scan accounting: number of materialized cells, optionally counting
  // only the even/even parity subgrid the prescreen reads. Deterministic
  // once all windows are processed (the materialized SET is a pure function
  // of the scene + cascade verdicts, not of scheduling).
  std::size_t count_materialized(bool parity_only = false) const {
    std::size_t total = 0;
    for (std::size_t gy = 0; gy < storage_.grid_y; ++gy) {
      for (std::size_t gx = 0; gx < storage_.grid_x; ++gx) {
        if (parity_only && (gx % 2 != 0 || gy % 2 != 0)) continue;
        total += static_cast<std::size_t>(materialized(gx, gy));
      }
    }
    return total;
  }

 private:
  static constexpr std::size_t kMutexShards = 64;

  CellPlane storage_;
  std::vector<std::atomic<std::uint8_t>> ready_;
  // Sharded fill locks (index % kMutexShards): cheap enough to keep fills of
  // distinct cells mostly uncontended while bounding mutex storage.
  std::vector<util::Mutex> mutexes_;
};

}  // namespace hdface::hog
