#pragma once

// Hyperdimensional HOG (paper §4.3): the entire feature extraction runs on
// binary hypervectors via the stochastic arithmetic of core/stochastic.hpp.
//
// Per pixel:
//   1. the pixel's intensity hypervector comes from the correlative item
//      memory (paper Fig 1a),
//   2. gradients are stochastic halved differences
//      V_Gx = V_C(x+1,y) ⊕ (−V_C(x−1,y)),
//   3. magnitude is √((G_x² + G_y²)/2) via ⊗ (with regeneration-based
//      decorrelation) and the binary-search square root,
//   4. the orientation bin is found by quadrant logic plus stochastic
//      comparisons of |G_y| against tan(θ_j)·|G_x| (cot form when the
//      boundary tangent exceeds 1), per the paper's α construction.
//
// Per cell, each orientation bin keeps a running stochastic average of the
// magnitudes that landed in it, scaled by its hit rate — i.e. the bin value
// is (Σ matched magnitudes) / (pixels per cell), the same quantity the
// classical extractor reports. Finally the (cell, bin) value hypervectors are
// key-bound and majority-bundled into one feature hypervector (see
// feature_bundler.hpp).

#include <vector>

#include "core/item_memory.hpp"
#include "core/stochastic.hpp"
#include "hog/angle_bins.hpp"
#include "hog/cell_plane.hpp"
#include "hog/feature_bundler.hpp"
#include "hog/gradient.hpp"
#include "hog/hog.hpp"
#include "hog/hog_config.hpp"
#include "image/image.hpp"

namespace hdface::hog {

enum class HdHogMode {
  // Paper-faithful: magnitude and binning fully in hyperspace.
  kFaithful,
  // Ablation / fast mode: gradients still flow through hypervectors, but
  // magnitude and binning are computed on decoded values and the magnitude
  // re-encoded. Quantifies what the in-hyperspace sqrt/compare chain costs
  // and what it buys (see bench/ablation_stochastic).
  kDecodeShortcut,
};

struct HdHogConfig {
  HogConfig hog;
  HdHogMode mode = HdHogMode::kFaithful;
  std::size_t pixel_levels = 256;  // item-memory quantization (8-bit pixels)
  // Final histogram values are normalized per window (v / max-slot-value,
  // the HD analogue of classical HOG's block normalization — without it
  // every slot is a near-zero value and all windows look alike) and then
  // re-quantized into a correlative level item memory before bundling. A
  // fresh stochastic representation of a value h is only h²-similar to
  // another fresh representation of the same h (near zero for small
  // histogram entries), so bundles of fresh constructions carry almost no
  // locality; correlative levels restore δ = 1 − |u−v|, which is what makes
  // the bundled features learnable. See DESIGN.md §2.
  std::size_t histogram_levels = 64;
  // Normalization denominator floor: windows with no gradient energy (max
  // slot below this) are treated as flat rather than amplified noise.
  double histogram_floor = 0.02;
};

class HdHogExtractor {
 public:
  // The extractor is built for a fixed window geometry (cells must tile it).
  HdHogExtractor(core::StochasticContext& ctx, const HdHogConfig& config,
                 std::size_t image_width, std::size_t image_height);

  const HdHogConfig& config() const { return config_; }
  std::size_t cells_x() const { return cells_x_; }
  std::size_t cells_y() const { return cells_y_; }
  std::size_t slots() const { return cells_x_ * cells_y_ * config_.hog.bins; }
  const core::LevelItemMemory& item_memory() const { return item_memory_; }

  // Fault-injection hooks: mutable access to the two stored level tables
  // (pixel item memory and histogram re-quantization memory) — the "item
  // memory" storage planes the robustness study corrupts. Every encode path
  // reads these tables, so a patched level is seen by all subsequent
  // extractions (including via forked contexts) until the caller restores
  // the clean words. See pipeline::FaultSession.
  core::LevelItemMemory& mutable_item_memory() { return item_memory_; }
  core::LevelItemMemory& mutable_histogram_memory() { return histogram_memory_; }

  // Per-(cell, bin) value hypervectors plus their (window-normalized) decoded
  // values, row-major cells then bins.
  struct SlotRecord {
    std::vector<core::Hypervector> hvs;
    std::vector<double> values;
  };
  SlotRecord slot_record(const image::Image& img);

  // Convenience: hypervectors only.
  std::vector<core::Hypervector> slot_values(const image::Image& img) {
    return slot_record(img).hvs;
  }

  // Raw (pre-normalization) decoded slot values for one cell whose top-left
  // pixel is (x0, y0) in `img` — the expensive first pass of slot_record for
  // exactly one cell, written to out[0..bins). Gradients clamp at the edges
  // of `img`, so computing cells over a full scene (the CellPlane cache)
  // reads true neighbors where a cropped window would read clamped copies.
  // All stochastic arithmetic draws from `ctx`; reseed it per cell to make
  // the result a pure function of (extractor state, pixels, seed).
  void cell_raw_values(const image::Image& img, std::size_t x0, std::size_t y0,
                       core::StochasticContext& ctx, double* out) const;

  // Batched form of cell_raw_values: same RNG stream, same doubles, chosen
  // per call between two bit-identical implementations.
  //
  //   * The fused kernel path collapses every per-pixel stochastic op into
  //     one or two passes of the dispatched word kernels (select_words /
  //     popcount_select_xor with the pooled-mask rotation applied as two
  //     contiguous segments), allocating a handful of flat word buffers per
  //     cell instead of hundreds of Hypervector temporaries. It requires the
  //     faithful mode, no attached op counter (charges live on the reference
  //     chain), and ctx.pooled_fast_path().
  //   * Otherwise the reference per-pixel chain runs (also when
  //     `force_reference` is set — the bench/ablation baseline knob).
  //
  // `levels` optionally supplies the scene's precomputed pixel→level indices
  // (see build_level_index_plane); pass nullptr to quantize on the fly. The
  // plane must match the image geometry (throws std::invalid_argument).
  void cell_raw_values(const image::Image& img, const LevelIndexPlane* levels,
                       std::size_t x0, std::size_t y0,
                       core::StochasticContext& ctx, double* out,
                       bool force_reference = false) const;

  // Window assembly from a scene-level cell-plane cache: slices the window's
  // cells out of `plane`, then runs only the cheap per-window tail of
  // slot_record (vmax normalization, histogram level lookup, weighted
  // bundling). Consumes no RNG — the result is a pure function of the plane
  // and the extractor's stored tables. (origin_x, origin_y) is the window's
  // top-left pixel in the plane's scene; throws std::invalid_argument when
  // the plane geometry mismatches this extractor or the origin is off-grid.
  SlotRecord slot_record_from_plane(const CellPlane& plane,
                                    std::size_t origin_x,
                                    std::size_t origin_y) const;
  core::Hypervector extract_from_plane(const CellPlane& plane,
                                       std::size_t origin_x,
                                       std::size_t origin_y,
                                       core::OpCounter* counter) const;

  // Incremental window assembly for the early-reject cascade
  // (pipeline/cascade.hpp): materializes the window's feature hypervector one
  // word range at a time, so a window rejected after a low-D prefix never
  // pays for the rest of the bundle. The contract that makes this exact:
  // majority bundling is per-dimension independent and the tie-break RNG
  // restarts per window, so assembling [0, w₁), [w₁, w₂), … in ascending
  // order reproduces extract_from_plane's feature bit-for-bit at every
  // prefix — a survivor escalated to full width scores EXACTLY what the
  // non-cascaded path would score. Scratch buffers live in the object;
  // reuse one StagedWindow per scan chunk.
  class StagedWindow {
   public:
    explicit StagedWindow(const HdHogExtractor& extractor)
        : extractor_(extractor),
          tie_rng_(0),
          feature_(extractor.bundler_.dim()) {}

    // Gather + vmax-normalize + level lookup for the window at
    // (origin_x, origin_y) of `plane` (the cheap slot pass; no RNG), then
    // restart the tie-break stream. No words are assembled yet. Validation
    // as extract_from_plane.
    void reset(const CellPlane& plane, std::size_t origin_x,
               std::size_t origin_y);

    // Prescreen variant of reset: gathers ONLY the window's cells on the
    // even/even parity subgrid of the plane (absolute grid coordinates, so
    // overlapping windows share the same subset cells — what lets the lazy
    // plane serve every prescreen from ~¼ of the cells). Excluded slots get
    // weight 0.0 (dropped by the bundler's min-weight skip before any
    // dereference). Subset values normalize by `norm_scale` when > 0 (the
    // table's calibrated prescreen_vmax, clamped to 1.0 — a fixed scale keeps
    // structureless windows at LOW histogram levels instead of inflating
    // them by their own tiny maximum) or by the subset's own vmax when 0.
    // The feature assembled after this call is the prescreen feature, NOT a
    // prefix of the full window feature — a surviving window must be
    // reset() again before staged cascade assembly. Never reads a cell off
    // the parity subgrid (the lazy-plane safety contract). Requires
    // plane.grid_step == cell_size (otherwise window-relative parity
    // degenerates; throws std::invalid_argument).
    void reset_prescreen(const CellPlane& plane, std::size_t origin_x,
                         std::size_t origin_y, double norm_scale = 0.0);

    // Orientation-spread energy of the parity subset gathered by the last
    // reset_prescreen (raw histogram mass off bin 0 — see
    // gather_plane_slots_prescreen). Meaningless after a plain reset().
    double prescreen_spread() const { return prescreen_spread_; }

    // Extends the materialized feature to exactly `word_hi` words (no-op when
    // already there) and returns it. Only words [0, assembled_words()) of the
    // returned hypervector are meaningful; pass total_words() for the full
    // exact feature. Calls must ascend; throws std::invalid_argument on a
    // shrinking range or word_hi > total_words().
    const core::Hypervector& assemble_to(std::size_t word_hi,
                                         core::OpCounter* counter = nullptr);

    std::size_t assembled_words() const { return assembled_words_; }
    std::size_t total_words() const { return feature_.num_words(); }
    std::size_t dim() const { return feature_.dim(); }
    const core::Hypervector& feature() const { return feature_; }

   private:
    const HdHogExtractor& extractor_;
    std::vector<const core::Hypervector*> hvs_;
    std::vector<double> values_;
    std::vector<double> counts_;  // bundle scratch, reused across ranges
    core::Rng tie_rng_;
    core::Hypervector feature_;
    std::size_t assembled_words_ = 0;
    double prescreen_spread_ = 0.0;
  };

  // Single bundled feature hypervector (the HDC learner's input).
  core::Hypervector extract(const image::Image& img);

  // Re-entrant variants: all stochastic arithmetic runs on the caller-owned
  // `ctx` (typically a fork of the construction context — see
  // StochasticContext::fork), so any number of threads may extract
  // concurrently, each with its own fork. The extractor's own state (item
  // memories, boundary constants, bundle keys) is read-only here.
  core::Hypervector extract(const image::Image& img,
                            core::StochasticContext& ctx) const;
  SlotRecord slot_record(const image::Image& img,
                         core::StochasticContext& ctx) const;

  // Decoded per-cell histograms in the bundled feature's value domain, i.e.
  // window-normalized to [0, 1] (verification against the classical HOG
  // after the same normalization).
  CellHistograms decode_histograms(const image::Image& img);

  // Hyperspace gradient pair for one pixel (exposed for tests).
  struct GradientHv {
    core::Hypervector gx;
    core::Hypervector gy;
  };
  GradientHv pixel_gradient(const image::Image& img, std::size_t x, std::size_t y);
  GradientHv pixel_gradient(const image::Image& img, std::size_t x, std::size_t y,
                            core::StochasticContext& ctx) const;

  // Hyperspace magnitude √((gx²+gy²)/2) for one pixel (exposed for tests).
  core::Hypervector pixel_magnitude(const GradientHv& grad);
  core::Hypervector pixel_magnitude(const GradientHv& grad,
                                    core::StochasticContext& ctx) const;

  // Hyperspace orientation bin for one pixel (exposed for tests).
  std::size_t pixel_bin(const GradientHv& grad);
  std::size_t pixel_bin(const GradientHv& grad,
                        core::StochasticContext& ctx) const;

 private:
  const core::Hypervector& pixel_hv(float value) const {
    return item_memory_.at_value(static_cast<double>(value));
  }

  // Shared per-window tail: vmax normalization + histogram level lookup over
  // raw slot values (row-major cells then bins). Consumes no RNG.
  SlotRecord normalize_slots(std::vector<double> values) const;

  // Borrowed-slot gather shared by extract_from_plane and StagedWindow:
  // validates the plane/origin and fills hvs/values (resized to slots())
  // with the window's normalized slot pointers and weights. Consumes no RNG.
  void gather_plane_slots(const CellPlane& plane, std::size_t origin_x,
                          std::size_t origin_y,
                          std::vector<const core::Hypervector*>& hvs,
                          std::vector<double>& values) const;

  // Parity-subset gather for StagedWindow::reset_prescreen (see its doc).
  // Returns the subset's orientation-spread energy: Σ over included cells of
  // Σ_{b ≥ 1} |raw_b|, i.e. the total raw histogram mass OFF bin 0. Zero
  // gradient resolves to bin 0 (atan2(0, 0)), so a structureless cell parks
  // its entire mass there and contributes ~nothing, while any oriented
  // texture spreads mass across the other bins — which makes the spread a
  // cheap scalar separator between empty background and faces that the
  // prefix-Hamming margin alone cannot provide.
  double gather_plane_slots_prescreen(
      const CellPlane& plane, std::size_t origin_x, std::size_t origin_y,
      double norm_scale, std::vector<const core::Hypervector*>& hvs,
      std::vector<double>& values) const;

  // The two cell_raw_values implementations (see the public overload doc).
  void cell_raw_values_reference(const image::Image& img, std::size_t x0,
                                 std::size_t y0, core::StochasticContext& ctx,
                                 double* out) const;
  void cell_raw_values_fused(const image::Image& img,
                             const LevelIndexPlane* levels, std::size_t x0,
                             std::size_t y0, core::StochasticContext& ctx,
                             double* out) const;

  core::StochasticContext& ctx_;
  HdHogConfig config_;
  std::size_t cells_x_;
  std::size_t cells_y_;
  core::LevelItemMemory item_memory_;
  core::LevelItemMemory histogram_memory_;
  AngleBinner binner_;
  // Constant hypervectors for the boundary comparisons: V_{tanθ_j} when the
  // tangent is ≤ 1, V_{cotθ_j} otherwise (paper's |r| > 1 case).
  std::vector<core::Hypervector> boundary_consts_;
  std::vector<bool> boundary_uses_cot_;
  // boundary_consts_[j] ^ V₁, precomputed so the fused cell chain turns the
  // boundary multiply into a single XOR pass (V_c ⊗ V_x = (V_c ^ V₁) ^ V_x).
  std::vector<core::Hypervector> boundary_consts_xor_basis_;
  FeatureBundler bundler_;
};

}  // namespace hdface::hog
