#pragma once

// Summed-area table (integral image) — O(1) box sums for the HAAR-like
// feature extractor (paper §2 lists HAAR-like features among the classical
// extraction mechanisms HDFace's arithmetic generalizes to).

#include <cstddef>
#include <vector>

#include "image/image.hpp"

namespace hdface::hog {

class IntegralImage {
 public:
  explicit IntegralImage(const image::Image& img);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  // Sum of pixels in [x0, x1) × [y0, y1); the rectangle must lie within the
  // image (throws std::invalid_argument otherwise).
  double box_sum(std::size_t x0, std::size_t y0, std::size_t x1,
                 std::size_t y1) const;

  // Mean over the same rectangle (0 for an empty rectangle).
  double box_mean(std::size_t x0, std::size_t y0, std::size_t x1,
                  std::size_t y1) const;

 private:
  // table_[(y+1) * (width+1) + (x+1)] = sum of pixels in [0,x] × [0,y].
  std::size_t width_;
  std::size_t height_;
  std::vector<double> table_;
};

}  // namespace hdface::hog
