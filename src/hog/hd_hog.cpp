#include "hog/hd_hog.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/kernels/kernels.hpp"

namespace hdface::hog {

namespace {

using MaskView = core::StochasticContext::PooledMaskView;

// Pooled masks are stored unrotated; mask word i is m.words[(i + off) % n].
// These helpers apply a kernel across the two contiguous segments of that
// rotation — [0, n−off) reads m.words+off, [n−off, n) wraps to m.words —
// so the rotated mask is never materialized. off == 0 degenerates to one
// full-length call.

// dst[i] = a[i] ^ mask[i]; dst may alias a.
inline void xor_rot(const core::kernels::KernelTable& kt,
                    const std::uint64_t* a, const MaskView& m,
                    std::uint64_t* dst, std::size_t n) {
  const std::size_t head = n - m.offset;
  kt.xor_words(a, m.words + m.offset, dst, head);
  if (m.offset != 0) kt.xor_words(a + head, m.words, dst + head, m.offset);
}

// dst = select_words(a, b, mask, cond_flip, out_flip); dst may alias a/b.
inline void select_rot(const core::kernels::KernelTable& kt,
                       const std::uint64_t* a, const std::uint64_t* b,
                       const MaskView& m, std::uint64_t cond_flip,
                       std::uint64_t out_flip, std::uint64_t* dst,
                       std::size_t n) {
  const std::size_t head = n - m.offset;
  kt.select_words(a, b, m.words + m.offset, cond_flip, out_flip, dst, head);
  if (m.offset != 0) {
    kt.select_words(a + head, b + head, m.words, cond_flip, out_flip,
                    dst + head, m.offset);
  }
}

// Σ popcount(select_words(a, b, mask, cond_flip, 0)[i] ^ x[i]).
inline std::uint64_t popsel_rot(const core::kernels::KernelTable& kt,
                                const std::uint64_t* a, const std::uint64_t* b,
                                const MaskView& m, const std::uint64_t* x,
                                std::uint64_t cond_flip, std::size_t n) {
  const std::size_t head = n - m.offset;
  std::uint64_t total =
      kt.popcount_select_xor(a, b, m.words + m.offset, x, cond_flip, head);
  if (m.offset != 0) {
    total += kt.popcount_select_xor(a + head, b + head, m.words, x + head,
                                    cond_flip, m.offset);
  }
  return total;
}

}  // namespace

HdHogExtractor::HdHogExtractor(core::StochasticContext& ctx,
                               const HdHogConfig& config, std::size_t image_width,
                               std::size_t image_height)
    : ctx_(ctx),
      config_(config),
      cells_x_(config.hog.cells_x(image_width)),
      cells_y_(config.hog.cells_y(image_height)),
      item_memory_(ctx, config.pixel_levels, 0.0, 1.0),
      histogram_memory_(ctx, config.histogram_levels, 0.0, 1.0),
      binner_(config.hog.bins),
      bundler_(ctx, cells_x_, cells_y_, config.hog.bins) {
  if (cells_x_ == 0 || cells_y_ == 0) {
    throw std::invalid_argument("HdHogExtractor: image smaller than one cell");
  }
  for (double t : binner_.boundary_tans()) {
    if (t <= 1.0) {
      boundary_consts_.push_back(ctx_.construct(t));
      boundary_uses_cot_.push_back(false);
    } else {
      boundary_consts_.push_back(ctx_.construct(1.0 / t));
      boundary_uses_cot_.push_back(true);
    }
  }
  boundary_consts_xor_basis_.reserve(boundary_consts_.size());
  for (const auto& c : boundary_consts_) {
    boundary_consts_xor_basis_.push_back(c ^ ctx_.basis());
  }
}

HdHogExtractor::GradientHv HdHogExtractor::pixel_gradient(const image::Image& img,
                                                          std::size_t x,
                                                          std::size_t y) {
  return pixel_gradient(img, x, y, ctx_);
}

HdHogExtractor::GradientHv HdHogExtractor::pixel_gradient(
    const image::Image& img, std::size_t x, std::size_t y,
    core::StochasticContext& ctx) const {
  const auto xi = static_cast<std::ptrdiff_t>(x);
  const auto yi = static_cast<std::ptrdiff_t>(y);
  // V_Gx = V_C(x+1) ⊕ (−V_C(x−1)) represents (C(x+1) − C(x−1)) / 2.
  GradientHv g{
      ctx.add_halved(pixel_hv(img.at_clamped(xi + 1, yi)),
                     ~pixel_hv(img.at_clamped(xi - 1, yi))),
      ctx.add_halved(pixel_hv(img.at_clamped(xi, yi + 1)),
                     ~pixel_hv(img.at_clamped(xi, yi - 1))),
  };
  return g;
}

core::Hypervector HdHogExtractor::pixel_magnitude(const GradientHv& grad) {
  return pixel_magnitude(grad, ctx_);
}

core::Hypervector HdHogExtractor::pixel_magnitude(
    const GradientHv& grad, core::StochasticContext& ctx) const {
  if (config_.mode == HdHogMode::kDecodeShortcut) {
    const double gx = ctx.decode(grad.gx);
    const double gy = ctx.decode(grad.gy);
    return ctx.construct(std::sqrt((gx * gx + gy * gy) / 2.0));
  }
  // (G_x ⊗ G_x) ⊕ (G_y ⊗ G_y), then the binary-search square root. The two
  // squares are sequenced explicitly (gy first — the order the original
  // nested-call form compiled to) so the RNG draw order is pinned by the
  // source rather than by argument evaluation order; the batched cell
  // encoder replays this exact stream.
  const core::Hypervector sq_gy = ctx.square(grad.gy);
  const core::Hypervector sq_gx = ctx.square(grad.gx);
  const core::Hypervector m2 = ctx.add_halved(sq_gx, sq_gy);
  return ctx.sqrt(m2);
}

std::size_t HdHogExtractor::pixel_bin(const GradientHv& grad) {
  return pixel_bin(grad, ctx_);
}

std::size_t HdHogExtractor::pixel_bin(const GradientHv& grad,
                                      core::StochasticContext& ctx) const {
  if (config_.mode == HdHogMode::kDecodeShortcut) {
    // Snap decoded components below the statistical noise floor to zero so
    // the quadrant convention matches the faithful path (zero → positive)
    // instead of letting decode noise pick the quadrant.
    const double eps = 2.0 / std::sqrt(static_cast<double>(ctx.dim()));
    double gx = ctx.decode(grad.gx);
    double gy = ctx.decode(grad.gy);
    if (std::fabs(gx) < eps) gx = 0.0;
    if (std::fabs(gy) < eps) gy = 0.0;
    return binner_.bin_of(static_cast<float>(gx), static_cast<float>(gy));
  }
  // Quadrant from hyperspace signs (zeros count as positive, matching the
  // reference binner's convention).
  const int sgx = ctx.sign_of(grad.gx) < 0 ? -1 : 1;
  const int sgy = ctx.sign_of(grad.gy) < 0 ? -1 : 1;
  const std::size_t q = AngleBinner::quadrant(sgx, sgy);

  const core::Hypervector abs_gx = sgx < 0 ? ~grad.gx : grad.gx;
  const core::Hypervector abs_gy = sgy < 0 ? ~grad.gy : grad.gy;
  const bool gy_over_gx = AngleBinner::ratio_is_gy_over_gx(q);
  const core::Hypervector& num = gy_over_gx ? abs_gy : abs_gx;
  const core::Hypervector& den = gy_over_gx ? abs_gx : abs_gy;

  std::vector<bool> greater;
  greater.reserve(boundary_consts_.size());
  for (std::size_t j = 0; j < boundary_consts_.size(); ++j) {
    // α = (num − r·den)/2 via V_α = 0.5·V_lhs ⊕ 0.5·(−V_rhs); sign of the
    // decoded α decides the comparison (paper §4.3). For boundaries with
    // tan > 1 the cot form compares cot(θ)·num against den instead.
    core::Hypervector lhs =
        boundary_uses_cot_[j] ? ctx.multiply(boundary_consts_[j], num) : num;
    core::Hypervector rhs =
        boundary_uses_cot_[j] ? den : ctx.multiply(boundary_consts_[j], den);
    greater.push_back(ctx.compare(lhs, rhs) > 0);
  }
  return binner_.global_bin(q, binner_.local_bin_from_comparisons(greater));
}

HdHogExtractor::SlotRecord HdHogExtractor::slot_record(const image::Image& img) {
  return slot_record(img, ctx_);
}

void HdHogExtractor::cell_raw_values(const image::Image& img, std::size_t x0,
                                     std::size_t y0,
                                     core::StochasticContext& ctx,
                                     double* out) const {
  cell_raw_values(img, nullptr, x0, y0, ctx, out);
}

void HdHogExtractor::cell_raw_values(const image::Image& img,
                                     const LevelIndexPlane* levels,
                                     std::size_t x0, std::size_t y0,
                                     core::StochasticContext& ctx, double* out,
                                     bool force_reference) const {
  if (levels != nullptr &&
      (levels->width != img.width() || levels->height != img.height())) {
    throw std::invalid_argument(
        "HdHogExtractor: level-index plane geometry mismatches the image");
  }
  // The fused path never charges an op counter (the modeled costs are defined
  // by the reference chain), so accounting runs keep the reference ops.
  if (!force_reference && config_.mode == HdHogMode::kFaithful &&
      ctx.counter() == nullptr && ctx.pooled_fast_path()) {
    cell_raw_values_fused(img, levels, x0, y0, ctx, out);
    return;
  }
  cell_raw_values_reference(img, x0, y0, ctx, out);
}

void HdHogExtractor::cell_raw_values_reference(const image::Image& img,
                                               std::size_t x0, std::size_t y0,
                                               core::StochasticContext& ctx,
                                               double* out) const {
  const std::size_t bins = config_.hog.bins;
  const std::size_t cell = config_.hog.cell_size;
  const std::size_t pixels_per_cell = cell * cell;

  std::vector<core::Hypervector> bin_mean(bins);
  std::vector<std::size_t> bin_count(bins);
  for (std::size_t py = 0; py < cell; ++py) {
    for (std::size_t px = 0; px < cell; ++px) {
      const std::size_t x = x0 + px;
      const std::size_t y = y0 + py;
      GradientHv grad = pixel_gradient(img, x, y, ctx);
      const std::size_t bin = pixel_bin(grad, ctx);
      core::Hypervector mag = pixel_magnitude(grad, ctx);
      // Running stochastic mean of the magnitudes matched to this bin.
      auto& n = bin_count[bin];
      if (n == 0) {
        bin_mean[bin] = std::move(mag);
      } else {
        const double keep = static_cast<double>(n) / static_cast<double>(n + 1);
        bin_mean[bin] = ctx.weighted_average(bin_mean[bin], mag, keep);
      }
      ++n;
    }
  }
  // Bin value = mean of matched magnitudes × hit rate
  //           = (Σ matched magnitudes) / pixels-per-cell,
  // read out via the hyperspace decode.
  for (std::size_t b = 0; b < bins; ++b) {
    if (bin_count[b] == 0) {
      out[b] = 0.0;
    } else {
      const double rate = static_cast<double>(bin_count[b]) /
                          static_cast<double>(pixels_per_cell);
      out[b] = ctx.decode(ctx.scale(bin_mean[b], rate));
    }
  }
}

void HdHogExtractor::cell_raw_values_fused(const image::Image& img,
                                           const LevelIndexPlane* levels,
                                           std::size_t x0, std::size_t y0,
                                           core::StochasticContext& ctx,
                                           double* out) const {
  // Every stochastic op of the reference chain reduced to its word-kernel
  // core, with the algebraic folds the packed representation admits:
  //
  //   add_halved(a, ~b)        = select_words(a, b, m, ~0, ~0)
  //   multiply(c_j, v)         = (c_j ^ V₁) ^ v        (precomputed cjb)
  //   square(v)                = v ^ rot(mask)          (basis cancels)
  //   compare / scale+decode   = popcount_select_xor against V₁
  //
  // Draw-for-draw parity with the reference chain is the correctness
  // contract: each pooled_mask_view below stands where the reference draws
  // its bernoulli_mask, in the same order with the same probability, so the
  // RNG stream — and therefore every output double — is bit-identical.
  const auto& kt = core::kernels::active();
  const std::size_t bins = config_.hog.bins;
  const std::size_t cell = config_.hog.cell_size;
  const std::size_t pixels_per_cell = cell * cell;
  const std::size_t n = ctx.basis().num_words();
  const double dimd = static_cast<double>(ctx.dim());
  const double eps = 2.0 / std::sqrt(dimd);
  const std::uint64_t* basis = ctx.basis().words().data();
  const int iters = ctx.effective_search_iters();

  // Flat word workspace: gradient pair, boundary-multiply scratch, the sqrt
  // iterate and its square, and the readout zero vector.
  std::vector<std::uint64_t> ws(6 * n);
  std::uint64_t* gx = ws.data();
  std::uint64_t* gy = gx + n;
  std::uint64_t* tmp = gy + n;
  std::uint64_t* mid = tmp + n;
  std::uint64_t* msq = mid + n;
  std::uint64_t* zbuf = msq + n;
  std::vector<std::uint64_t> bin_mean(bins * n);
  std::vector<std::size_t> bin_count(bins, 0);
  std::vector<bool> greater(boundary_consts_.size());

  const auto pix = [&](std::ptrdiff_t x, std::ptrdiff_t y) {
    if (levels != nullptr) {
      return item_memory_.level(levels->at_clamped(x, y)).words().data();
    }
    return item_memory_.at_value(static_cast<double>(img.at_clamped(x, y)))
        .words()
        .data();
  };

  for (std::size_t py = 0; py < cell; ++py) {
    for (std::size_t px = 0; px < cell; ++px) {
      const auto xi = static_cast<std::ptrdiff_t>(x0 + px);
      const auto yi = static_cast<std::ptrdiff_t>(y0 + py);
      // Gradient: V_G = A ⊕ (−B); the operand/result complements of the
      // halved difference fold into the select flips.
      {
        const auto m = ctx.pooled_mask_view(0.5);
        select_rot(kt, pix(xi + 1, yi), pix(xi - 1, yi), m, ~0ULL, ~0ULL, gx,
                   n);
      }
      {
        const auto m = ctx.pooled_mask_view(0.5);
        select_rot(kt, pix(xi, yi + 1), pix(xi, yi - 1), m, ~0ULL, ~0ULL, gy,
                   n);
      }

      // Orientation bin: signs from the (draw-free) decode, then one fused
      // compare per interior boundary.
      const double dgx =
          1.0 - 2.0 * static_cast<double>(kt.hamming_words(gx, basis, n)) /
                    dimd;
      const double dgy =
          1.0 - 2.0 * static_cast<double>(kt.hamming_words(gy, basis, n)) /
                    dimd;
      const int sgx = dgx < -eps ? -1 : 1;
      const int sgy = dgy < -eps ? -1 : 1;
      const std::size_t q = AngleBinner::quadrant(sgx, sgy);
      const bool gy_over = AngleBinner::ratio_is_gy_over_gx(q);
      const std::uint64_t fgx = sgx < 0 ? ~0ULL : 0ULL;
      const std::uint64_t fgy = sgy < 0 ? ~0ULL : 0ULL;
      const std::uint64_t* num = gy_over ? gy : gx;
      const std::uint64_t* den = gy_over ? gx : gy;
      const std::uint64_t fnum = gy_over ? fgy : fgx;
      const std::uint64_t fden = gy_over ? fgx : fgy;
      for (std::size_t j = 0; j < boundary_consts_.size(); ++j) {
        const std::uint64_t* cjb = boundary_consts_xor_basis_[j].words().data();
        const std::uint64_t* lhs;
        const std::uint64_t* rhs;
        if (boundary_uses_cot_[j]) {
          kt.xor_words(cjb, num, tmp, n);
          lhs = tmp;
          rhs = den;
        } else {
          kt.xor_words(cjb, den, tmp, n);
          lhs = num;
          rhs = tmp;
        }
        // compare(L ⊕ fL, R ⊕ fR): the ~rhs of the halved difference gives
        // g = fR ^ ~0; a result flip of ~0 inverts every popcount word
        // (H = 64n − P), exact because dim % 64 == 0 on this path.
        const std::uint64_t g = fden ^ ~0ULL;
        const std::uint64_t cf = fnum ^ g;
        const auto m = ctx.pooled_mask_view(0.5);
        const std::uint64_t p = popsel_rot(kt, lhs, rhs, m, basis, cf, n);
        const std::uint64_t h = g == ~0ULL ? 64 * n - p : p;
        const double d = 1.0 - 2.0 * static_cast<double>(h) / dimd;
        greater[j] = d > eps / 2.0;
      }
      const std::size_t bin =
          binner_.global_bin(q, binner_.local_bin_from_comparisons(greater));

      // Magnitude: squares in place (multiply-by-regeneration is an XOR with
      // the construction mask — the basis cancels; gy first, matching the
      // reference chain's pinned order), halved sum into gx, then the
      // binary-search sqrt.
      {
        const auto m = ctx.pooled_mask_view((1.0 - dgy) / 2.0);
        xor_rot(kt, gy, m, gy, n);
      }
      {
        const auto m = ctx.pooled_mask_view((1.0 - dgx) / 2.0);
        xor_rot(kt, gx, m, gx, n);
      }
      {
        const auto m = ctx.pooled_mask_view(0.5);
        select_rot(kt, gx, gy, m, 0, 0, gx, n);
      }
      // sqrt's pre-loop construct(0.5) is overwritten on the first iteration
      // but still advances the stream.
      (void)ctx.pooled_mask_view(0.25);
      double lo = 0.0;
      double hi = 1.0;
      for (int it = 0; it < iters; ++it) {
        const double mval = (lo + hi) / 2.0;
        {
          const auto m = ctx.pooled_mask_view((1.0 - mval) / 2.0);
          xor_rot(kt, basis, m, mid, n);
        }
        {
          const auto m = ctx.pooled_mask_view((1.0 - mval) / 2.0);
          xor_rot(kt, mid, m, msq, n);
        }
        const auto m = ctx.pooled_mask_view(0.5);
        const std::uint64_t p = popsel_rot(kt, msq, gx, m, basis, ~0ULL, n);
        const std::uint64_t h = 64 * n - p;
        const double d = 1.0 - 2.0 * static_cast<double>(h) / dimd;
        const int c = d > eps / 2.0 ? 1 : (d < -eps / 2.0 ? -1 : 0);
        if (c > 0) {
          hi = mval;
        } else if (c < 0) {
          lo = mval;
        } else {
          break;
        }
      }

      // Running stochastic mean of the magnitudes matched to this bin.
      std::uint64_t* mean = bin_mean.data() + bin * n;
      auto& cnt = bin_count[bin];
      if (cnt == 0) {
        std::copy(mid, mid + n, mean);
      } else {
        const double keep =
            static_cast<double>(cnt) / static_cast<double>(cnt + 1);
        const auto m = ctx.pooled_mask_view(keep);
        select_rot(kt, mean, mid, m, 0, 0, mean, n);
      }
      ++cnt;
    }
  }

  // Readout: scale-by-rate (average with a fresh zero) fused with the decode.
  for (std::size_t b = 0; b < bins; ++b) {
    if (bin_count[b] == 0) {
      out[b] = 0.0;
      continue;
    }
    const double rate = static_cast<double>(bin_count[b]) /
                        static_cast<double>(pixels_per_cell);
    {
      const auto mz = ctx.pooled_mask_view(0.5);
      xor_rot(kt, basis, mz, zbuf, n);
    }
    const auto ms = ctx.pooled_mask_view(rate);
    const std::uint64_t p =
        popsel_rot(kt, bin_mean.data() + b * n, zbuf, ms, basis, 0, n);
    out[b] = 1.0 - 2.0 * static_cast<double>(p) / dimd;
  }
}

HdHogExtractor::SlotRecord HdHogExtractor::normalize_slots(
    std::vector<double> values) const {
  // Window normalization (the HD analogue of HOG block normalization) and
  // correlative level re-quantization (see HdHogConfig).
  double vmax = config_.histogram_floor;
  for (double v : values) vmax = std::max(vmax, v);
  SlotRecord record;
  record.hvs.reserve(values.size());
  record.values.reserve(values.size());
  for (double v : values) {
    const double normalized = std::max(0.0, v) / vmax;
    record.values.push_back(normalized);
    record.hvs.push_back(histogram_memory_.at_value(normalized));
  }
  return record;
}

HdHogExtractor::SlotRecord HdHogExtractor::slot_record(
    const image::Image& img, core::StochasticContext& ctx) const {
  if (config_.hog.cells_x(img.width()) != cells_x_ ||
      config_.hog.cells_y(img.height()) != cells_y_) {
    throw std::invalid_argument("HdHogExtractor: image geometry mismatch");
  }
  const std::size_t bins = config_.hog.bins;
  const std::size_t cell = config_.hog.cell_size;

  // First pass: per-(cell, bin) decoded histogram values from the hyperspace
  // magnitude/bin chain, row-major over the window's cells on one continuous
  // RNG chain (the seed-compatible stream; the CellPlane cache instead
  // reseeds per cell — see cell_plane.hpp).
  std::vector<double> values(cells_x_ * cells_y_ * bins);
  for (std::size_t cy = 0; cy < cells_y_; ++cy) {
    for (std::size_t cx = 0; cx < cells_x_; ++cx) {
      cell_raw_values(img, cx * cell, cy * cell, ctx,
                      values.data() + (cy * cells_x_ + cx) * bins);
    }
  }
  return normalize_slots(std::move(values));
}

HdHogExtractor::SlotRecord HdHogExtractor::slot_record_from_plane(
    const CellPlane& plane, std::size_t origin_x, std::size_t origin_y) const {
  if (plane.bins != config_.hog.bins ||
      plane.cell_size != config_.hog.cell_size) {
    throw std::invalid_argument(
        "HdHogExtractor: cell plane geometry mismatches this extractor");
  }
  if (!plane.window_on_grid(origin_x, origin_y, cells_x_, cells_y_)) {
    throw std::invalid_argument(
        "HdHogExtractor: window origin off the cell-plane grid");
  }
  const std::size_t bins = config_.hog.bins;
  const std::size_t cell = config_.hog.cell_size;
  std::vector<double> values;
  values.reserve(cells_x_ * cells_y_ * bins);
  for (std::size_t cy = 0; cy < cells_y_; ++cy) {
    for (std::size_t cx = 0; cx < cells_x_; ++cx) {
      const std::size_t gx = (origin_x + cx * cell) / plane.grid_step;
      const std::size_t gy = (origin_y + cy * cell) / plane.grid_step;
      const double* cached = plane.cell(gx, gy);
      values.insert(values.end(), cached, cached + bins);
    }
  }
  return normalize_slots(std::move(values));
}

void HdHogExtractor::gather_plane_slots(
    const CellPlane& plane, std::size_t origin_x, std::size_t origin_y,
    std::vector<const core::Hypervector*>& hvs,
    std::vector<double>& values) const {
  if (plane.bins != config_.hog.bins ||
      plane.cell_size != config_.hog.cell_size) {
    throw std::invalid_argument(
        "HdHogExtractor: cell plane geometry mismatches this extractor");
  }
  if (!plane.window_on_grid(origin_x, origin_y, cells_x_, cells_y_)) {
    throw std::invalid_argument(
        "HdHogExtractor: window origin off the cell-plane grid");
  }
  const std::size_t bins = config_.hog.bins;
  const std::size_t cell = config_.hog.cell_size;
  const std::size_t n_slots = cells_x_ * cells_y_ * bins;

  double vmax = config_.histogram_floor;
  std::vector<double> raw(n_slots);
  std::size_t s = 0;
  for (std::size_t cy = 0; cy < cells_y_; ++cy) {
    for (std::size_t cx = 0; cx < cells_x_; ++cx) {
      const std::size_t gx = (origin_x + cx * cell) / plane.grid_step;
      const std::size_t gy = (origin_y + cy * cell) / plane.grid_step;
      const double* cached = plane.cell(gx, gy);
      for (std::size_t b = 0; b < bins; ++b, ++s) {
        raw[s] = cached[b];
        vmax = std::max(vmax, cached[b]);
      }
    }
  }
  hvs.resize(n_slots);
  values.resize(n_slots);
  for (std::size_t i = 0; i < n_slots; ++i) {
    const double normalized = std::max(0.0, raw[i]) / vmax;
    values[i] = normalized;
    hvs[i] = &histogram_memory_.at_value(normalized);
  }
}

double HdHogExtractor::gather_plane_slots_prescreen(
    const CellPlane& plane, std::size_t origin_x, std::size_t origin_y,
    double norm_scale,
    std::vector<const core::Hypervector*>& hvs,
    std::vector<double>& values) const {
  if (plane.bins != config_.hog.bins ||
      plane.cell_size != config_.hog.cell_size) {
    throw std::invalid_argument(
        "HdHogExtractor: cell plane geometry mismatches this extractor");
  }
  if (plane.grid_step != config_.hog.cell_size) {
    throw std::invalid_argument(
        "HdHogExtractor: prescreen requires grid_step == cell_size (stride a "
        "multiple of the cell size)");
  }
  if (!plane.window_on_grid(origin_x, origin_y, cells_x_, cells_y_)) {
    throw std::invalid_argument(
        "HdHogExtractor: window origin off the cell-plane grid");
  }
  const std::size_t bins = config_.hog.bins;
  const std::size_t cell = config_.hog.cell_size;
  const std::size_t n_slots = cells_x_ * cells_y_ * bins;

  // Subset gather: only cells on the plane's even/even parity grid are read
  // (under a lazy plane the others may not exist yet). Excluded slots keep a
  // valid pointer — the bundler's min-weight skip runs before the
  // dereference, but the pointer must not dangle — with weight exactly 0.0.
  double vmax = config_.histogram_floor;
  double spread = 0.0;
  std::vector<double> raw(n_slots, -1.0);  // < 0 marks "excluded"
  std::size_t s = 0;
  for (std::size_t cy = 0; cy < cells_y_; ++cy) {
    for (std::size_t cx = 0; cx < cells_x_; ++cx) {
      const std::size_t gx = (origin_x + cx * cell) / plane.grid_step;
      const std::size_t gy = (origin_y + cy * cell) / plane.grid_step;
      if (gx % 2 != 0 || gy % 2 != 0) {
        s += bins;
        continue;
      }
      const double* cached = plane.cell(gx, gy);
      for (std::size_t b = 0; b < bins; ++b, ++s) {
        raw[s] = cached[b];
        vmax = std::max(vmax, cached[b]);
        if (b > 0) spread += std::abs(cached[b]);
      }
    }
  }
  hvs.resize(n_slots);
  values.resize(n_slots);
  const core::Hypervector* filler = &histogram_memory_.level(0);
  for (std::size_t i = 0; i < n_slots; ++i) {
    if (raw[i] < 0.0) {
      values[i] = 0.0;
      hvs[i] = filler;
      continue;
    }
    const double scale = norm_scale > 0.0 ? norm_scale : vmax;
    const double normalized =
        std::min(1.0, std::max(0.0, raw[i]) / scale);
    values[i] = normalized;
    hvs[i] = &histogram_memory_.at_value(normalized);
  }
  return spread;
}

core::Hypervector HdHogExtractor::extract_from_plane(
    const CellPlane& plane, std::size_t origin_x, std::size_t origin_y,
    core::OpCounter* counter) const {
  // Same validation and values as slot_record_from_plane + bundle_weighted,
  // but allocation-free: slot hypervectors stay inside histogram_memory_ and
  // key binding runs through Accumulator::add_xor. Per-window cost is what
  // makes the cell-plane cache pay off, so this path must stay at "cheap
  // tail" scale. Output is bit-identical to the record-based form.
  std::vector<const core::Hypervector*> hvs;
  std::vector<double> values;
  gather_plane_slots(plane, origin_x, origin_y, hvs, values);
  return bundler_.bundle_weighted_refs(hvs, values, config_.histogram_floor,
                                       counter);
}

void HdHogExtractor::StagedWindow::reset(const CellPlane& plane,
                                         std::size_t origin_x,
                                         std::size_t origin_y) {
  extractor_.gather_plane_slots(plane, origin_x, origin_y, hvs_, values_);
  // Restarting the tie stream here is what keeps staged assembly
  // bit-identical to the one-shot bundle: ascending ranges sharing this Rng
  // consume the zero-dimension draws in exactly the full bundle's order.
  tie_rng_ = core::Rng(extractor_.bundler_.tie_seed());
  assembled_words_ = 0;
}

void HdHogExtractor::StagedWindow::reset_prescreen(const CellPlane& plane,
                                                   std::size_t origin_x,
                                                   std::size_t origin_y,
                                                   double norm_scale) {
  prescreen_spread_ = extractor_.gather_plane_slots_prescreen(
      plane, origin_x, origin_y, norm_scale, hvs_, values_);
  tie_rng_ = core::Rng(extractor_.bundler_.tie_seed());
  assembled_words_ = 0;
}

const core::Hypervector& HdHogExtractor::StagedWindow::assemble_to(
    std::size_t word_hi, core::OpCounter* counter) {
  if (word_hi == assembled_words_) return feature_;
  if (word_hi < assembled_words_ || word_hi > total_words()) {
    throw std::invalid_argument(
        "StagedWindow: assemble_to ranges must ascend within the feature");
  }
  extractor_.bundler_.bundle_weighted_refs_range(
      hvs_, values_, extractor_.config_.histogram_floor, assembled_words_,
      word_hi, tie_rng_, counts_, feature_, counter);
  assembled_words_ = word_hi;
  return feature_;
}

core::Hypervector HdHogExtractor::extract(const image::Image& img) {
  return extract(img, ctx_);
}

core::Hypervector HdHogExtractor::extract(const image::Image& img,
                                          core::StochasticContext& ctx) const {
  // Weighted sparse bundling: each slot votes with its histogram value so
  // empty bins vanish instead of drowning the informative minority (see
  // feature_bundler.hpp).
  const SlotRecord record = slot_record(img, ctx);
  return bundler_.bundle_weighted(record.hvs, record.values,
                                  config_.histogram_floor, ctx.counter());
}

CellHistograms HdHogExtractor::decode_histograms(const image::Image& img) {
  const SlotRecord record = slot_record(img);
  CellHistograms cells;
  cells.cells_x = cells_x_;
  cells.cells_y = cells_y_;
  cells.bins = config_.hog.bins;
  cells.values.resize(record.hvs.size());
  for (std::size_t i = 0; i < record.hvs.size(); ++i) {
    cells.values[i] = static_cast<float>(ctx_.decode(record.hvs[i]));
  }
  return cells;
}

}  // namespace hdface::hog
