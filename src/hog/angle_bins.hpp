#pragma once

// Signed orientation binning over [0, 2π) by quadrant decomposition
// (paper §4.3 "Calculating Angle Bin").
//
// The circle is split into 4 quadrants of B/4 bins each. Within a quadrant
// the in-quadrant angle φ ∈ [0, π/2) satisfies tan φ = num/den where
// (num, den) is (|G_y|, |G_x|) in quadrants I and III and (|G_x|, |G_y|) in
// II and IV; binning therefore reduces to comparing num against tan(θ_j)·den
// for the interior boundaries θ_j — exactly the comparisons the paper
// implements with hypervectors (the π/2 and 3π/2 "extra boundaries" are where
// the quadrant switches). tan(θ_j) > 1 is handled through the cot form, i.e.
// comparing cot(θ_j)·num against den, keeping every constant within [−1, 1].

#include <cstddef>
#include <vector>

namespace hdface::hog {

class AngleBinner {
 public:
  // bins must be a positive multiple of 4.
  explicit AngleBinner(std::size_t bins);

  std::size_t bins() const { return bins_; }
  std::size_t bins_per_quadrant() const { return bins_ / 4; }

  // Interior boundary tangents within a quadrant (size B/4 − 1, increasing).
  const std::vector<double>& boundary_tans() const { return tans_; }

  // Quadrant from gradient signs: I:(+,+) II:(−,+) III:(−,−) IV:(+,−).
  // Zeros count as positive (ties at the axes pick the lower quadrant).
  static std::size_t quadrant(int sign_gx, int sign_gy);

  // In-quadrant numerator/denominator roles: returns true when the ratio is
  // |gy|/|gx| (quadrants I and III), false for |gx|/|gy| (II and IV).
  static bool ratio_is_gy_over_gx(std::size_t quadrant);

  // Reference float binning through the same quadrant logic (used by the
  // classical HOG and as ground truth for the HD binner).
  std::size_t bin_of(float gx, float gy) const;

  // Local bin from comparator outcomes: `greater[j]` is whether
  // num > tan(θ_j)·den for interior boundary j. The local bin is the number
  // of boundaries exceeded.
  std::size_t local_bin_from_comparisons(const std::vector<bool>& greater) const;

  // Global bin from quadrant + local bin.
  std::size_t global_bin(std::size_t quadrant, std::size_t local) const;

  // Bin center angle in radians (for tests / visualization).
  double bin_center(std::size_t bin) const;

 private:
  std::size_t bins_;
  std::vector<double> tans_;
};

}  // namespace hdface::hog
