// Online on-device learning (the paper's §1/§7 claim made concrete): HDFace
// learns from a stream one sample at a time, reports prequential accuracy,
// and adapts through a mid-stream distribution shift (the camera moves from
// clean, well-lit windows to noisy, blurrier ones).
//
// Usage:
//   ./build/examples/online_learning [--dim 4096] [--samples 400] [--decay 0.95]

#include <cstdio>

#include "dataset/face_generator.hpp"
#include "learn/online.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace hdface;
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  const auto samples = static_cast<std::size_t>(args.get_int("samples", 400));
  const double decay = args.get_double("decay", 0.95);
  const std::size_t window = 32;

  // Two stream phases: clean capture, then a harsher sensor.
  dataset::FaceDatasetConfig clean_cfg;
  clean_cfg.image_size = window;
  clean_cfg.num_samples = samples / 2;
  clean_cfg.noise_sigma = 0.02f;
  const auto phase1 = dataset::make_face_dataset(clean_cfg);
  dataset::FaceDatasetConfig harsh_cfg = clean_cfg;
  harsh_cfg.seed = 777;
  harsh_cfg.noise_sigma = 0.08f;
  harsh_cfg.blur_sigma = 1.2;
  const auto phase2 = dataset::make_face_dataset(harsh_cfg);

  pipeline::HdFaceConfig cfg;
  cfg.dim = dim;
  cfg.hog.cell_size = 4;
  cfg.hd_hog_mode = hog::HdHogMode::kDecodeShortcut;
  cfg.epochs = 1;
  pipeline::HdFacePipeline pipe(cfg, window, window, 2);

  // Stream through a fresh classifier using the pipeline only as an encoder.
  learn::HdcConfig hc;
  hc.dim = dim;
  hc.classes = 2;
  learn::HdcClassifier model(hc);
  learn::OnlineConfig oc;
  oc.accuracy_window = 50;
  oc.decay = decay;
  learn::OnlineTrainer trainer(model, oc);

  std::printf("streaming %zu samples (one adaptive update each, decay=%.2f)\n",
              phase1.size() + phase2.size(), decay);
  std::size_t step = 0;
  for (const auto* phase : {&phase1, &phase2}) {
    for (std::size_t i = 0; i < phase->size(); ++i, ++step) {
      trainer.observe(pipe.encode_image(phase->images[i]), phase->labels[i]);
      if (step % 50 == 49) {
        std::printf("  after %4zu samples: windowed accuracy %.1f%%%s\n",
                    step + 1, 100.0 * trainer.windowed_accuracy(),
                    phase == &phase2 && i < 60 ? "  <- after sensor change" : "");
      }
    }
  }
  std::printf("lifetime prequential accuracy: %.1f%%\n",
              100.0 * trainer.lifetime_accuracy());
  std::printf("single-pass online learning: no stored dataset, no epochs —\n"
              "each image is seen exactly once (paper §1 advantage 1).\n");
  return 0;
}
