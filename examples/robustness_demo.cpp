// Robustness demo (the paper's Table 2 story in miniature): inject random
// bit errors into HDFace's binary hypervectors and into a quantized DNN's
// weight memory, and watch who survives.
//
// Usage:
//   ./build/examples/robustness_demo [--dim 4096] [--train 250] [--test 120]
//                                    [--bits 16]

#include <cstdio>

#include "dataset/face_generator.hpp"
#include "learn/quantized_mlp.hpp"
#include "pipeline/dnn_pipeline.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "pipeline/robustness.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hdface;
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 250));
  const auto n_test = static_cast<std::size_t>(args.get_int("test", 120));
  const int bits = static_cast<int>(args.get_int("bits", 16));

  dataset::FaceDatasetConfig data_cfg;
  data_cfg.image_size = 32;
  data_cfg.num_samples = n_train;
  const auto train = dataset::make_face_dataset(data_cfg);
  data_cfg.num_samples = n_test;
  data_cfg.seed = 777;
  const auto test = dataset::make_face_dataset(data_cfg);

  // HDFace: binary features + binary prototypes (the all-bitwise path).
  pipeline::HdFaceConfig hd_cfg;
  hd_cfg.dim = dim;
  hd_cfg.hog.cell_size = 4;
  hd_cfg.hd_hog_mode = hog::HdHogMode::kDecodeShortcut;
  pipeline::HdFacePipeline hd(hd_cfg, 32, 32, 2);
  std::printf("training HDFace (D=%zu)...\n", dim);
  hd.fit(train);
  const auto test_features = hd.encode_dataset(test);

  // DNN baseline, quantized to `bits`.
  pipeline::DnnConfig dnn_cfg;
  dnn_cfg.hog.cell_size = 4;
  dnn_cfg.hidden = {64, 64};
  pipeline::DnnPipeline dnn(dnn_cfg, 32, 32, 2);
  std::printf("training DNN (%d-bit weights)...\n", bits);
  const auto train_f = dnn.extract_features(train);
  const auto test_f = dnn.extract_features(test);
  dnn.fit_features(train_f, train.labels);
  learn::QuantizedMlp q(dnn.mutable_mlp(), bits);

  util::Table table({"bit error rate", "HDFace accuracy", "DNN accuracy"});
  for (const double rate : {0.0, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2}) {
    const double hd_acc = pipeline::hdc_binary_accuracy_under_errors(
        hd.classifier(), test_features, test.labels, rate, /*seed=*/5);
    const double dnn_acc =
        pipeline::dnn_accuracy_under_errors(q, test_f, test.labels, rate, 5);
    table.add_row({util::Table::percent(rate, 0), util::Table::percent(hd_acc),
                   util::Table::percent(dnn_acc)});
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("holographic representations lose ~nothing below 10%% error;\n"
              "positional weight encodings do not (paper Table 2).\n");
  return 0;
}
