// Quickstart: the HDFace public API in ~60 lines.
//
//   1. stochastic arithmetic over binary hypervectors (the paper's §4 core),
//   2. an end-to-end face/no-face classifier trained on synthetic data.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "api/detector.hpp"
#include "core/stochastic.hpp"
#include "dataset/face_generator.hpp"
#include "pipeline/hdface_pipeline.hpp"

int main() {
  using namespace hdface;

  // --- 1. stochastic hyperdimensional arithmetic ---------------------------
  // Numbers in [-1, 1] live as binary hypervectors whose similarity to a
  // fixed basis equals the value; arithmetic is bitwise and noise-tolerant.
  core::StochasticContext ctx(4096, /*seed=*/42);
  const auto a = ctx.construct(0.6);
  const auto b = ctx.construct(-0.3);
  std::printf("decode(0.6)            = %+.3f\n", ctx.decode(a));
  std::printf("average(0.6, -0.3)     = %+.3f (expect +0.15)\n",
              ctx.decode(ctx.add_halved(a, b)));
  std::printf("multiply(0.6, -0.3)    = %+.3f (expect -0.18)\n",
              ctx.decode(ctx.multiply(a, b)));
  std::printf("sqrt(0.36)             = %+.3f (expect +0.60)\n",
              ctx.decode(ctx.sqrt(ctx.construct(0.36))));
  std::printf("divide(0.3, 0.6)       = %+.3f (expect +0.50)\n",
              ctx.decode(ctx.divide(ctx.construct(0.3), ctx.construct(0.6))));

  // --- 2. end-to-end face detection ----------------------------------------
  // Synthetic stand-in for the paper's face datasets (see DESIGN.md §3).
  dataset::FaceDatasetConfig data_cfg;
  data_cfg.image_size = 32;
  data_cfg.num_samples = 200;
  const auto train = dataset::make_face_dataset(data_cfg);
  data_cfg.seed = 999;
  data_cfg.num_samples = 80;
  const auto test = dataset::make_face_dataset(data_cfg);

  api::Detector det = api::DetectorBuilder()
                          .window(32)
                          .dim(4096)
                          .mode(pipeline::HdFaceMode::kHdHog)  // HOG in hyperspace
                          .build();

  std::printf("\ntraining HDFace (D=4096, HD-HOG in hyperspace) on %zu images...\n",
              train.size());
  det.fit(train);
  std::printf("test accuracy: %.1f%%\n", 100.0 * det.evaluate(test));

  const auto face = dataset::render_face_window(32, 7);
  const auto clutter = dataset::render_nonface_window(32, 7, false);
  std::printf("predict(face window)    -> %s\n",
              det.predict(face) == 1 ? "face" : "no-face");
  std::printf("predict(clutter window) -> %s\n",
              det.predict(clutter) == 1 ? "face" : "no-face");
  return 0;
}
