// Using HDFace with your own data: datasets are directories of 8-bit PGM
// files plus a labels.txt manifest. This example writes a synthetic dataset
// to disk in that layout, loads it back (exactly what you would do with real
// face crops), and trains on the loaded copy.
//
// Usage:
//   ./build/examples/custom_dataset [--dir ./my_dataset] [--samples 160]
//
// To use real data: fill a directory with same-size grayscale PGMs plus
//   labels.txt:  "# classes no-face face" header, then "<file> <label>" rows.

#include <cstdio>

#include "dataset/face_generator.hpp"
#include "dataset/loader.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace hdface;
  const util::Args args(argc, argv);
  const std::string dir = args.get("dir", "./custom_dataset_demo");
  const auto samples = static_cast<std::size_t>(args.get_int("samples", 160));

  // 1. Write a dataset in the on-disk layout (stand-in for your own data).
  dataset::FaceDatasetConfig cfg;
  cfg.image_size = 32;
  cfg.num_samples = samples;
  const auto generated = dataset::make_face_dataset(cfg);
  dataset::save_dataset(generated, dir);
  std::printf("wrote %zu PGMs + labels.txt under %s\n", generated.size(),
              dir.c_str());

  // 2. Load it back — this is the entry point for real datasets.
  const auto loaded = dataset::load_dataset(dir);
  std::printf("loaded dataset '%s': %zu images, %zu classes\n",
              loaded.name.c_str(), loaded.size(), loaded.num_classes());

  // 3. Split, train, evaluate.
  const auto split = dataset::split(loaded, /*test_fraction=*/0.3, /*seed=*/9);
  pipeline::HdFaceConfig pipe_cfg;
  pipe_cfg.dim = 4096;
  pipe_cfg.hog.cell_size = 4;
  pipe_cfg.hd_hog_mode = hog::HdHogMode::kDecodeShortcut;
  pipeline::HdFacePipeline pipe(pipe_cfg, loaded.images.front().width(),
                                loaded.images.front().height(),
                                loaded.num_classes());
  pipe.fit(split.train);
  std::printf("accuracy on held-out split: %.1f%%\n",
              100.0 * pipe.evaluate(split.test));
  return 0;
}
