// Face tracking across a synthetic video (the paper's §1 motivating
// surveillance application): a face moves through a cluttered scene; each
// frame runs the HDFace sliding-window detector and the tracker keeps a
// stable identity with a smoothed trajectory.
//
// Usage:
//   ./build/examples/face_tracking [--dim 2048] [--frames 10] [--train 150]

#include <cstdio>

#include "api/detector.hpp"
#include "dataset/background_generator.hpp"
#include "dataset/face_generator.hpp"
#include "image/transform.hpp"
#include "pipeline/tracking.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace hdface;
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  const auto frames = static_cast<std::size_t>(args.get_int("frames", 10));
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 200));
  const std::size_t window = 32;

  dataset::FaceDatasetConfig data_cfg;
  data_cfg.image_size = window;
  data_cfg.num_samples = n_train;
  const auto train = dataset::make_face_dataset(data_cfg);

  api::Detector det = api::DetectorBuilder()
                          .window(window)
                          .dim(dim)
                          .hd_hog_mode(hog::HdHogMode::kDecodeShortcut)
                          .build();
  std::printf("training detector...\n");
  det.fit(train);

  // Static background; the same face slides across it frame by frame.
  image::Image background(4 * window, 2 * window, 0.5f);
  core::Rng rng(0x77AC4);
  dataset::render_background(background, dataset::BackgroundKind::kValueNoise, rng);
  const auto face = dataset::render_face_window(window, 4242);

  api::DetectOptions opts;
  opts.stride = window / 4;
  opts.nms = true;  // one box per face feeds the tracker's IoU gate
  pipeline::FaceTracker tracker{pipeline::TrackerConfig{}};

  std::printf("frame | detections | tracks | primary track (id: x,y)\n");
  for (std::size_t f = 0; f < frames; ++f) {
    image::Image frame = background;
    // The face advances a quarter window per frame — consecutive boxes keep
    // enough overlap for the tracker's IoU gate.
    const auto fx = static_cast<std::ptrdiff_t>(
        std::min<std::size_t>(f * (window / 4), background.width() - window));
    image::paste(frame, face, fx, static_cast<std::ptrdiff_t>(window / 2));
    const auto detections = det.detect(frame, opts);
    const auto& tracks = tracker.update(detections);
    if (tracks.empty()) {
      std::printf("%5zu | %10zu | %6zu | -\n", f, detections.size(), tracks.size());
    } else {
      // Longest-lived track.
      const pipeline::Track* best = &tracks[0];
      for (const auto& t : tracks) {
        if (t.hits > best->hits) best = &t;
      }
      std::printf("%5zu | %10zu | %6zu | id %llu: %zu,%zu (hits %zu)\n", f,
                  detections.size(), tracks.size(),
                  static_cast<unsigned long long>(best->id), best->box.x,
                  best->box.y, best->hits);
    }
  }
  const auto confirmed = tracker.confirmed_tracks();
  std::printf("%zu confirmed track(s) at the end of the sequence.\n",
              confirmed.size());
  return 0;
}
