// Multi-scale detection with model persistence: train once, save the model,
// reload it, and find faces of different sizes in a scene through an image
// pyramid with non-maximum suppression.
//
// Usage:
//   ./build/examples/multiscale_detection [--dim 4096] [--train 200]
//                                         [--out out/detections.ppm]

#include <cstdio>
#include <filesystem>

#include "api/detector.hpp"
#include "dataset/background_generator.hpp"
#include "dataset/face_generator.hpp"
#include "hog/hd_hog.hpp"
#include "image/pnm.hpp"
#include "image/transform.hpp"
#include "learn/serialize.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace hdface;
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 200));
  const std::string out = args.get("out", "out/detections.ppm");
  const std::size_t window = 24;

  // Train at a small base window; the pyramid covers larger faces.
  dataset::FaceDatasetConfig data_cfg;
  data_cfg.image_size = window;
  data_cfg.num_samples = n_train;
  const auto train = dataset::make_face_dataset(data_cfg);

  api::Detector det = api::DetectorBuilder()
                          .window(window)
                          .dim(dim)
                          .hd_hog_mode(hog::HdHogMode::kDecodeShortcut)
                          .build();
  std::printf("training on %zu windows of %zux%zu...\n", train.size(), window,
              window);
  det.fit(train);

  // Persist the trained classifier and reload it (deployment round trip).
  // All artifacts land under out/ so example runs never litter the repo root.
  std::filesystem::create_directories("out");
  learn::save_classifier(det.pipeline()->classifier(),
                         "out/hdface_detector.hdc");
  const auto reloaded = learn::load_classifier("out/hdface_detector.hdc");
  std::printf("model saved + reloaded: %zu classes at D=%zu\n",
              reloaded.config().classes, reloaded.config().dim);

  // Scene with one window-sized and one double-sized face.
  image::Image scene(6 * window, 4 * window, 0.5f);
  core::Rng rng(0x5CA1E);
  dataset::render_background(scene, dataset::BackgroundKind::kMixed, rng);
  image::paste(scene, dataset::render_face_window(window, 31), window / 2,
               window / 2);
  image::paste(scene, dataset::render_face_window(2 * window, 32),
               static_cast<std::ptrdiff_t>(3 * window),
               static_cast<std::ptrdiff_t>(window));

  api::DetectOptions opts;
  opts.scales = {1.0, 0.5};
  opts.stride = window / 3;
  opts.nms = true;
  const auto detections = det.detect(scene, opts);
  std::printf("%zu detections after NMS:\n", detections.size());
  for (const auto& d : detections) {
    std::printf("  box (%zu, %zu) size %zu score %.3f\n", d.x, d.y, d.size,
                d.score);
  }
  const auto out_dir = std::filesystem::path(out).parent_path();
  if (!out_dir.empty()) std::filesystem::create_directories(out_dir);
  image::write_ppm(det.render(scene, detections), out);
  std::printf("visualization written to %s\n", out.c_str());
  return 0;
}
