// Sliding-window face detection over a composed scene (the paper's Fig 6a
// scenario): train HDFace on face/no-face windows, scan a larger image with
// overlapping windows, and write a blue-tinted detection overlay.
//
// Usage:
//   ./build/examples/face_detection [--dim 4096] [--train 200] [--window 48]
//                                   [--stride 16] [--out overlay.ppm]

#include <cstdio>

#include "dataset/background_generator.hpp"
#include "dataset/face_generator.hpp"
#include "image/transform.hpp"
#include "pipeline/sliding_window.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace hdface;
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 200));
  const auto window = static_cast<std::size_t>(args.get_int("window", 48));
  const auto stride = static_cast<std::size_t>(args.get_int("stride", 16));
  const std::string out = args.get("out", "overlay.ppm");

  // Train a face/no-face pipeline at the window resolution.
  dataset::FaceDatasetConfig data_cfg;
  data_cfg.image_size = window;
  data_cfg.num_samples = n_train;
  const auto train = dataset::make_face_dataset(data_cfg);

  pipeline::HdFaceConfig cfg;
  cfg.dim = dim;
  cfg.hog.cell_size = 4;
  // The decode-shortcut extractor keeps this demo interactive; switch to
  // hog::HdHogMode::kFaithful for the fully in-hyperspace pipeline.
  cfg.hd_hog_mode = hog::HdHogMode::kDecodeShortcut;
  pipeline::HdFacePipeline pipe(cfg, window, window, 2);
  std::printf("training on %zu windows (D=%zu)...\n", train.size(), dim);
  pipe.fit(train);

  // Compose a scene: clutter background with two faces planted.
  image::Image scene(4 * window, 2 * window, 0.5f);
  core::Rng rng(0xDE7EC7);
  dataset::render_background(scene, dataset::BackgroundKind::kMixed, rng);
  image::paste(scene, dataset::render_face_window(window, 101),
               static_cast<std::ptrdiff_t>(window / 2),
               static_cast<std::ptrdiff_t>(window / 4));
  image::paste(scene, dataset::render_face_window(window, 202),
               static_cast<std::ptrdiff_t>(5 * window / 2),
               static_cast<std::ptrdiff_t>(3 * window / 4));

  pipeline::SlidingWindowDetector detector(pipe, window, stride);
  const auto map = detector.detect(scene);

  std::printf("detection map (%zux%zu steps, F = face window):\n", map.steps_x,
              map.steps_y);
  for (std::size_t sy = 0; sy < map.steps_y; ++sy) {
    std::printf("  ");
    for (std::size_t sx = 0; sx < map.steps_x; ++sx) {
      std::printf("%c", map.prediction_at(sx, sy) == 1 ? 'F' : '.');
    }
    std::printf("\n");
  }
  image::write_ppm(detector.render_overlay(scene, map), out);
  std::printf("overlay written to %s\n", out.c_str());
  return 0;
}
