// Sliding-window face detection over a composed scene (the paper's Fig 6a
// scenario) through the api::Detector facade: train on face/no-face windows,
// scan the scene with the parallel batched engine, and write a blue-tinted
// detection overlay. With --nms, overlapping positive windows collapse to one
// box per face instead.
//
// Usage:
//   ./build/examples/face_detection [--dim 4096] [--train 200] [--window 48]
//                                   [--stride 16] [--threads 0] [--nms]
//                                   [--out out/overlay.ppm]

#include <cstdio>
#include <filesystem>
#include <string>

#include "api/detector.hpp"
#include "dataset/background_generator.hpp"
#include "dataset/face_generator.hpp"
#include "hog/hd_hog.hpp"
#include "image/pnm.hpp"
#include "image/transform.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace hdface;
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 200));
  const auto window = static_cast<std::size_t>(args.get_int("window", 48));
  const auto stride = static_cast<std::size_t>(args.get_int("stride", 16));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
  const bool nms = args.has("nms");
  const std::string out = args.get("out", "out/overlay.ppm");

  // Train a face/no-face pipeline at the window resolution.
  dataset::FaceDatasetConfig data_cfg;
  data_cfg.image_size = window;
  data_cfg.num_samples = n_train;
  const auto train = dataset::make_face_dataset(data_cfg);

  // The decode-shortcut extractor keeps this demo interactive; switch to
  // hog::HdHogMode::kFaithful for the fully in-hyperspace pipeline.
  api::Detector det = api::DetectorBuilder()
                          .window(window)
                          .dim(dim)
                          .hd_hog_mode(hog::HdHogMode::kDecodeShortcut)
                          .build();
  std::printf("training on %zu windows (D=%zu)...\n", train.size(), dim);
  det.fit(train);

  // Compose a scene: clutter background with two faces planted.
  image::Image scene(4 * window, 2 * window, 0.5f);
  core::Rng rng(0xDE7EC7);
  dataset::render_background(scene, dataset::BackgroundKind::kMixed, rng);
  image::paste(scene, dataset::render_face_window(window, 101),
               static_cast<std::ptrdiff_t>(window / 2),
               static_cast<std::ptrdiff_t>(window / 4));
  image::paste(scene, dataset::render_face_window(window, 202),
               static_cast<std::ptrdiff_t>(5 * window / 2),
               static_cast<std::ptrdiff_t>(3 * window / 4));

  api::DetectOptions opts;
  opts.threads = threads;  // 0 = all cores; results identical at any count
  opts.stride = stride;
  const auto map = det.detect_map(scene, opts);

  std::printf("detection map (%zux%zu steps, F = face window):\n", map.steps_x,
              map.steps_y);
  for (std::size_t sy = 0; sy < map.steps_y; ++sy) {
    std::printf("  ");
    for (std::size_t sx = 0; sx < map.steps_x; ++sx) {
      std::printf("%c", map.prediction_at(sx, sy) == 1 ? 'F' : '.');
    }
    std::printf("\n");
  }

  // Artifacts land under out/ (or wherever --out points) so example runs
  // never litter the repo root.
  const auto out_dir = std::filesystem::path(out).parent_path();
  if (!out_dir.empty()) std::filesystem::create_directories(out_dir);
  if (nms) {
    opts.nms = true;
    const auto boxes = det.detect(scene, opts);
    std::printf("%zu box(es) after non-maximum suppression:\n", boxes.size());
    for (const auto& b : boxes) {
      std::printf("  box (%zu, %zu) size %zu score %.3f\n", b.x, b.y, b.size,
                  b.score);
    }
    image::write_ppm(det.render(scene, boxes), out);
  } else {
    image::write_ppm(det.render_overlay(scene, map), out);
  }
  std::printf("overlay written to %s\n", out.c_str());
  return 0;
}
