// 7-way facial-emotion recognition (the paper's EMOTION workload, FER-2013
// shaped): train HDFace on synthetic expression renders and print the test
// confusion matrix.
//
// Usage:
//   ./build/examples/emotion_recognition [--dim 4096] [--train 350] [--test 140]
//                                        [--mode hdhog|encoder]

#include <cstdio>

#include "api/detector.hpp"
#include "dataset/emotion_generator.hpp"
#include "hog/hd_hog.hpp"
#include "learn/metrics.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace hdface;
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 350));
  const auto n_test = static_cast<std::size_t>(args.get_int("test", 140));
  const bool use_encoder = args.get("mode", "hdhog") == "encoder";

  dataset::EmotionDatasetConfig data_cfg;
  data_cfg.num_samples = n_train;
  const auto train = dataset::make_emotion_dataset(data_cfg);
  data_cfg.num_samples = n_test;
  data_cfg.seed = 4242;
  const auto test = dataset::make_emotion_dataset(data_cfg);

  // Same facade as face detection: an emotion workload is just a 7-class
  // 48x48-window detector.
  api::Detector det = api::DetectorBuilder()
                          .window(48)
                          .classes(dataset::kNumEmotions)
                          .dim(dim)
                          .mode(use_encoder ? pipeline::HdFaceMode::kOrigHogEncoder
                                            : pipeline::HdFaceMode::kHdHog)
                          .hd_hog_mode(hog::HdHogMode::kDecodeShortcut)
                          .build();

  std::printf("training %s pipeline (D=%zu) on %zu images...\n",
              use_encoder ? "orig-HOG+encoder" : "HD-HOG", dim, train.size());
  det.fit(train);

  std::vector<int> predictions;
  predictions.reserve(test.size());
  for (const auto& img : test.images) predictions.push_back(det.predict(img));
  const double acc = learn::accuracy(predictions, test.labels);
  std::printf("test accuracy: %.1f%% (chance: %.1f%%)\n\n", 100.0 * acc,
              100.0 / dataset::kNumEmotions);
  const auto confusion =
      learn::confusion_matrix(predictions, test.labels, dataset::kNumEmotions);
  std::printf("%s", learn::format_confusion(confusion, test.class_names).c_str());
  return 0;
}
