# Empty compiler generated dependencies file for multiscale_detection.
# This may be replaced when dependencies are built.
