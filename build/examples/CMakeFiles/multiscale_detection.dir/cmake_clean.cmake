file(REMOVE_RECURSE
  "CMakeFiles/multiscale_detection.dir/multiscale_detection.cpp.o"
  "CMakeFiles/multiscale_detection.dir/multiscale_detection.cpp.o.d"
  "multiscale_detection"
  "multiscale_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiscale_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
