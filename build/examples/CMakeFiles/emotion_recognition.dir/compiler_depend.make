# Empty compiler generated dependencies file for emotion_recognition.
# This may be replaced when dependencies are built.
