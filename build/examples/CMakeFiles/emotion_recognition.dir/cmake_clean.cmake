file(REMOVE_RECURSE
  "CMakeFiles/emotion_recognition.dir/emotion_recognition.cpp.o"
  "CMakeFiles/emotion_recognition.dir/emotion_recognition.cpp.o.d"
  "emotion_recognition"
  "emotion_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emotion_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
