# Empty compiler generated dependencies file for face_tracking.
# This may be replaced when dependencies are built.
