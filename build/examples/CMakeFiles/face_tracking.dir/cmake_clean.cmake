file(REMOVE_RECURSE
  "CMakeFiles/face_tracking.dir/face_tracking.cpp.o"
  "CMakeFiles/face_tracking.dir/face_tracking.cpp.o.d"
  "face_tracking"
  "face_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/face_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
