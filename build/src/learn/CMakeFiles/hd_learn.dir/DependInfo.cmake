
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learn/encoder.cpp" "src/learn/CMakeFiles/hd_learn.dir/encoder.cpp.o" "gcc" "src/learn/CMakeFiles/hd_learn.dir/encoder.cpp.o.d"
  "/root/repo/src/learn/hdc_model.cpp" "src/learn/CMakeFiles/hd_learn.dir/hdc_model.cpp.o" "gcc" "src/learn/CMakeFiles/hd_learn.dir/hdc_model.cpp.o.d"
  "/root/repo/src/learn/metrics.cpp" "src/learn/CMakeFiles/hd_learn.dir/metrics.cpp.o" "gcc" "src/learn/CMakeFiles/hd_learn.dir/metrics.cpp.o.d"
  "/root/repo/src/learn/mlp.cpp" "src/learn/CMakeFiles/hd_learn.dir/mlp.cpp.o" "gcc" "src/learn/CMakeFiles/hd_learn.dir/mlp.cpp.o.d"
  "/root/repo/src/learn/online.cpp" "src/learn/CMakeFiles/hd_learn.dir/online.cpp.o" "gcc" "src/learn/CMakeFiles/hd_learn.dir/online.cpp.o.d"
  "/root/repo/src/learn/quantized_mlp.cpp" "src/learn/CMakeFiles/hd_learn.dir/quantized_mlp.cpp.o" "gcc" "src/learn/CMakeFiles/hd_learn.dir/quantized_mlp.cpp.o.d"
  "/root/repo/src/learn/serialize.cpp" "src/learn/CMakeFiles/hd_learn.dir/serialize.cpp.o" "gcc" "src/learn/CMakeFiles/hd_learn.dir/serialize.cpp.o.d"
  "/root/repo/src/learn/svm.cpp" "src/learn/CMakeFiles/hd_learn.dir/svm.cpp.o" "gcc" "src/learn/CMakeFiles/hd_learn.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/hd_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/hd_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
