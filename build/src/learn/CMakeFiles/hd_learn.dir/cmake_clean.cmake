file(REMOVE_RECURSE
  "CMakeFiles/hd_learn.dir/encoder.cpp.o"
  "CMakeFiles/hd_learn.dir/encoder.cpp.o.d"
  "CMakeFiles/hd_learn.dir/hdc_model.cpp.o"
  "CMakeFiles/hd_learn.dir/hdc_model.cpp.o.d"
  "CMakeFiles/hd_learn.dir/metrics.cpp.o"
  "CMakeFiles/hd_learn.dir/metrics.cpp.o.d"
  "CMakeFiles/hd_learn.dir/mlp.cpp.o"
  "CMakeFiles/hd_learn.dir/mlp.cpp.o.d"
  "CMakeFiles/hd_learn.dir/online.cpp.o"
  "CMakeFiles/hd_learn.dir/online.cpp.o.d"
  "CMakeFiles/hd_learn.dir/quantized_mlp.cpp.o"
  "CMakeFiles/hd_learn.dir/quantized_mlp.cpp.o.d"
  "CMakeFiles/hd_learn.dir/serialize.cpp.o"
  "CMakeFiles/hd_learn.dir/serialize.cpp.o.d"
  "CMakeFiles/hd_learn.dir/svm.cpp.o"
  "CMakeFiles/hd_learn.dir/svm.cpp.o.d"
  "libhd_learn.a"
  "libhd_learn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
