# Empty dependencies file for hd_learn.
# This may be replaced when dependencies are built.
