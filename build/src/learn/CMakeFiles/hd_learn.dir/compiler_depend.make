# Empty compiler generated dependencies file for hd_learn.
# This may be replaced when dependencies are built.
