file(REMOVE_RECURSE
  "libhd_learn.a"
)
