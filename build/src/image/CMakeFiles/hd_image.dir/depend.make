# Empty dependencies file for hd_image.
# This may be replaced when dependencies are built.
