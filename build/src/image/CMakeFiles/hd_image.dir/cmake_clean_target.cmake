file(REMOVE_RECURSE
  "libhd_image.a"
)
