
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/draw.cpp" "src/image/CMakeFiles/hd_image.dir/draw.cpp.o" "gcc" "src/image/CMakeFiles/hd_image.dir/draw.cpp.o.d"
  "/root/repo/src/image/image.cpp" "src/image/CMakeFiles/hd_image.dir/image.cpp.o" "gcc" "src/image/CMakeFiles/hd_image.dir/image.cpp.o.d"
  "/root/repo/src/image/pnm.cpp" "src/image/CMakeFiles/hd_image.dir/pnm.cpp.o" "gcc" "src/image/CMakeFiles/hd_image.dir/pnm.cpp.o.d"
  "/root/repo/src/image/transform.cpp" "src/image/CMakeFiles/hd_image.dir/transform.cpp.o" "gcc" "src/image/CMakeFiles/hd_image.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
