file(REMOVE_RECURSE
  "CMakeFiles/hd_image.dir/draw.cpp.o"
  "CMakeFiles/hd_image.dir/draw.cpp.o.d"
  "CMakeFiles/hd_image.dir/image.cpp.o"
  "CMakeFiles/hd_image.dir/image.cpp.o.d"
  "CMakeFiles/hd_image.dir/pnm.cpp.o"
  "CMakeFiles/hd_image.dir/pnm.cpp.o.d"
  "CMakeFiles/hd_image.dir/transform.cpp.o"
  "CMakeFiles/hd_image.dir/transform.cpp.o.d"
  "libhd_image.a"
  "libhd_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
