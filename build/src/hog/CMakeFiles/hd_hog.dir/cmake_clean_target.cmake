file(REMOVE_RECURSE
  "libhd_hog.a"
)
