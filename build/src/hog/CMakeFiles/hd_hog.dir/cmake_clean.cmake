file(REMOVE_RECURSE
  "CMakeFiles/hd_hog.dir/angle_bins.cpp.o"
  "CMakeFiles/hd_hog.dir/angle_bins.cpp.o.d"
  "CMakeFiles/hd_hog.dir/feature_bundler.cpp.o"
  "CMakeFiles/hd_hog.dir/feature_bundler.cpp.o.d"
  "CMakeFiles/hd_hog.dir/gradient.cpp.o"
  "CMakeFiles/hd_hog.dir/gradient.cpp.o.d"
  "CMakeFiles/hd_hog.dir/haar.cpp.o"
  "CMakeFiles/hd_hog.dir/haar.cpp.o.d"
  "CMakeFiles/hd_hog.dir/hd_hog.cpp.o"
  "CMakeFiles/hd_hog.dir/hd_hog.cpp.o.d"
  "CMakeFiles/hd_hog.dir/hog.cpp.o"
  "CMakeFiles/hd_hog.dir/hog.cpp.o.d"
  "CMakeFiles/hd_hog.dir/integral.cpp.o"
  "CMakeFiles/hd_hog.dir/integral.cpp.o.d"
  "CMakeFiles/hd_hog.dir/lbp.cpp.o"
  "CMakeFiles/hd_hog.dir/lbp.cpp.o.d"
  "libhd_hog.a"
  "libhd_hog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_hog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
