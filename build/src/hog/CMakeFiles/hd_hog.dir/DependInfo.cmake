
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hog/angle_bins.cpp" "src/hog/CMakeFiles/hd_hog.dir/angle_bins.cpp.o" "gcc" "src/hog/CMakeFiles/hd_hog.dir/angle_bins.cpp.o.d"
  "/root/repo/src/hog/feature_bundler.cpp" "src/hog/CMakeFiles/hd_hog.dir/feature_bundler.cpp.o" "gcc" "src/hog/CMakeFiles/hd_hog.dir/feature_bundler.cpp.o.d"
  "/root/repo/src/hog/gradient.cpp" "src/hog/CMakeFiles/hd_hog.dir/gradient.cpp.o" "gcc" "src/hog/CMakeFiles/hd_hog.dir/gradient.cpp.o.d"
  "/root/repo/src/hog/haar.cpp" "src/hog/CMakeFiles/hd_hog.dir/haar.cpp.o" "gcc" "src/hog/CMakeFiles/hd_hog.dir/haar.cpp.o.d"
  "/root/repo/src/hog/hd_hog.cpp" "src/hog/CMakeFiles/hd_hog.dir/hd_hog.cpp.o" "gcc" "src/hog/CMakeFiles/hd_hog.dir/hd_hog.cpp.o.d"
  "/root/repo/src/hog/hog.cpp" "src/hog/CMakeFiles/hd_hog.dir/hog.cpp.o" "gcc" "src/hog/CMakeFiles/hd_hog.dir/hog.cpp.o.d"
  "/root/repo/src/hog/integral.cpp" "src/hog/CMakeFiles/hd_hog.dir/integral.cpp.o" "gcc" "src/hog/CMakeFiles/hd_hog.dir/integral.cpp.o.d"
  "/root/repo/src/hog/lbp.cpp" "src/hog/CMakeFiles/hd_hog.dir/lbp.cpp.o" "gcc" "src/hog/CMakeFiles/hd_hog.dir/lbp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/hd_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
