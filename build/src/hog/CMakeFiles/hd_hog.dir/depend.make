# Empty dependencies file for hd_hog.
# This may be replaced when dependencies are built.
