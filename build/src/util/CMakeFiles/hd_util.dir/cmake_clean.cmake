file(REMOVE_RECURSE
  "CMakeFiles/hd_util.dir/args.cpp.o"
  "CMakeFiles/hd_util.dir/args.cpp.o.d"
  "CMakeFiles/hd_util.dir/csv.cpp.o"
  "CMakeFiles/hd_util.dir/csv.cpp.o.d"
  "CMakeFiles/hd_util.dir/table.cpp.o"
  "CMakeFiles/hd_util.dir/table.cpp.o.d"
  "CMakeFiles/hd_util.dir/thread_pool.cpp.o"
  "CMakeFiles/hd_util.dir/thread_pool.cpp.o.d"
  "libhd_util.a"
  "libhd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
