file(REMOVE_RECURSE
  "CMakeFiles/hd_perf.dir/cycle_sim.cpp.o"
  "CMakeFiles/hd_perf.dir/cycle_sim.cpp.o.d"
  "CMakeFiles/hd_perf.dir/fpga_datapath.cpp.o"
  "CMakeFiles/hd_perf.dir/fpga_datapath.cpp.o.d"
  "CMakeFiles/hd_perf.dir/platform.cpp.o"
  "CMakeFiles/hd_perf.dir/platform.cpp.o.d"
  "libhd_perf.a"
  "libhd_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
