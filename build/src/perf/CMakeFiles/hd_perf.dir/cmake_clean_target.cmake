file(REMOVE_RECURSE
  "libhd_perf.a"
)
