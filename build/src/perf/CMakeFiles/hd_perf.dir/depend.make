# Empty dependencies file for hd_perf.
# This may be replaced when dependencies are built.
