file(REMOVE_RECURSE
  "libhd_pipeline.a"
)
