file(REMOVE_RECURSE
  "CMakeFiles/hd_pipeline.dir/dnn_pipeline.cpp.o"
  "CMakeFiles/hd_pipeline.dir/dnn_pipeline.cpp.o.d"
  "CMakeFiles/hd_pipeline.dir/features.cpp.o"
  "CMakeFiles/hd_pipeline.dir/features.cpp.o.d"
  "CMakeFiles/hd_pipeline.dir/hdface_pipeline.cpp.o"
  "CMakeFiles/hd_pipeline.dir/hdface_pipeline.cpp.o.d"
  "CMakeFiles/hd_pipeline.dir/multiscale.cpp.o"
  "CMakeFiles/hd_pipeline.dir/multiscale.cpp.o.d"
  "CMakeFiles/hd_pipeline.dir/robustness.cpp.o"
  "CMakeFiles/hd_pipeline.dir/robustness.cpp.o.d"
  "CMakeFiles/hd_pipeline.dir/sliding_window.cpp.o"
  "CMakeFiles/hd_pipeline.dir/sliding_window.cpp.o.d"
  "CMakeFiles/hd_pipeline.dir/svm_pipeline.cpp.o"
  "CMakeFiles/hd_pipeline.dir/svm_pipeline.cpp.o.d"
  "CMakeFiles/hd_pipeline.dir/tracking.cpp.o"
  "CMakeFiles/hd_pipeline.dir/tracking.cpp.o.d"
  "libhd_pipeline.a"
  "libhd_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
