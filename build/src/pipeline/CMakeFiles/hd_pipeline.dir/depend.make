# Empty dependencies file for hd_pipeline.
# This may be replaced when dependencies are built.
