file(REMOVE_RECURSE
  "libhd_dataset.a"
)
