
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/background_generator.cpp" "src/dataset/CMakeFiles/hd_dataset.dir/background_generator.cpp.o" "gcc" "src/dataset/CMakeFiles/hd_dataset.dir/background_generator.cpp.o.d"
  "/root/repo/src/dataset/dataset.cpp" "src/dataset/CMakeFiles/hd_dataset.dir/dataset.cpp.o" "gcc" "src/dataset/CMakeFiles/hd_dataset.dir/dataset.cpp.o.d"
  "/root/repo/src/dataset/emotion_generator.cpp" "src/dataset/CMakeFiles/hd_dataset.dir/emotion_generator.cpp.o" "gcc" "src/dataset/CMakeFiles/hd_dataset.dir/emotion_generator.cpp.o.d"
  "/root/repo/src/dataset/face_generator.cpp" "src/dataset/CMakeFiles/hd_dataset.dir/face_generator.cpp.o" "gcc" "src/dataset/CMakeFiles/hd_dataset.dir/face_generator.cpp.o.d"
  "/root/repo/src/dataset/face_render.cpp" "src/dataset/CMakeFiles/hd_dataset.dir/face_render.cpp.o" "gcc" "src/dataset/CMakeFiles/hd_dataset.dir/face_render.cpp.o.d"
  "/root/repo/src/dataset/loader.cpp" "src/dataset/CMakeFiles/hd_dataset.dir/loader.cpp.o" "gcc" "src/dataset/CMakeFiles/hd_dataset.dir/loader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/hd_image.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
