file(REMOVE_RECURSE
  "CMakeFiles/hd_dataset.dir/background_generator.cpp.o"
  "CMakeFiles/hd_dataset.dir/background_generator.cpp.o.d"
  "CMakeFiles/hd_dataset.dir/dataset.cpp.o"
  "CMakeFiles/hd_dataset.dir/dataset.cpp.o.d"
  "CMakeFiles/hd_dataset.dir/emotion_generator.cpp.o"
  "CMakeFiles/hd_dataset.dir/emotion_generator.cpp.o.d"
  "CMakeFiles/hd_dataset.dir/face_generator.cpp.o"
  "CMakeFiles/hd_dataset.dir/face_generator.cpp.o.d"
  "CMakeFiles/hd_dataset.dir/face_render.cpp.o"
  "CMakeFiles/hd_dataset.dir/face_render.cpp.o.d"
  "CMakeFiles/hd_dataset.dir/loader.cpp.o"
  "CMakeFiles/hd_dataset.dir/loader.cpp.o.d"
  "libhd_dataset.a"
  "libhd_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
