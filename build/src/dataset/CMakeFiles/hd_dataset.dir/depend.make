# Empty dependencies file for hd_dataset.
# This may be replaced when dependencies are built.
