file(REMOVE_RECURSE
  "CMakeFiles/hd_core.dir/accumulator.cpp.o"
  "CMakeFiles/hd_core.dir/accumulator.cpp.o.d"
  "CMakeFiles/hd_core.dir/hypervector.cpp.o"
  "CMakeFiles/hd_core.dir/hypervector.cpp.o.d"
  "CMakeFiles/hd_core.dir/item_memory.cpp.o"
  "CMakeFiles/hd_core.dir/item_memory.cpp.o.d"
  "CMakeFiles/hd_core.dir/stochastic.cpp.o"
  "CMakeFiles/hd_core.dir/stochastic.cpp.o.d"
  "libhd_core.a"
  "libhd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
