file(REMOVE_RECURSE
  "libhd_noise.a"
)
