# Empty compiler generated dependencies file for hd_noise.
# This may be replaced when dependencies are built.
