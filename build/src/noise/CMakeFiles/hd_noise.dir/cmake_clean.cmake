file(REMOVE_RECURSE
  "CMakeFiles/hd_noise.dir/bit_flip.cpp.o"
  "CMakeFiles/hd_noise.dir/bit_flip.cpp.o.d"
  "libhd_noise.a"
  "libhd_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
