
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_learning.cpp" "bench-build/CMakeFiles/ablation_learning.dir/ablation_learning.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_learning.dir/ablation_learning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/hd_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/hd_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/hd_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/hd_learn.dir/DependInfo.cmake"
  "/root/repo/build/src/hog/CMakeFiles/hd_hog.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/hd_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/hd_image.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
