file(REMOVE_RECURSE
  "../bench/fig7_efficiency"
  "../bench/fig7_efficiency.pdb"
  "CMakeFiles/fig7_efficiency.dir/fig7_efficiency.cpp.o"
  "CMakeFiles/fig7_efficiency.dir/fig7_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
