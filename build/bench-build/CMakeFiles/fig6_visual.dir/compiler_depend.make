# Empty compiler generated dependencies file for fig6_visual.
# This may be replaced when dependencies are built.
