file(REMOVE_RECURSE
  "../bench/fig6_visual"
  "../bench/fig6_visual.pdb"
  "CMakeFiles/fig6_visual.dir/fig6_visual.cpp.o"
  "CMakeFiles/fig6_visual.dir/fig6_visual.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_visual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
