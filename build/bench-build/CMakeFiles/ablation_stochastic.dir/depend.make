# Empty dependencies file for ablation_stochastic.
# This may be replaced when dependencies are built.
