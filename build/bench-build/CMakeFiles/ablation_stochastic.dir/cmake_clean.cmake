file(REMOVE_RECURSE
  "../bench/ablation_stochastic"
  "../bench/ablation_stochastic.pdb"
  "CMakeFiles/ablation_stochastic.dir/ablation_stochastic.cpp.o"
  "CMakeFiles/ablation_stochastic.dir/ablation_stochastic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stochastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
