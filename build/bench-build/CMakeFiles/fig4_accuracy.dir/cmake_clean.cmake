file(REMOVE_RECURSE
  "../bench/fig4_accuracy"
  "../bench/fig4_accuracy.pdb"
  "CMakeFiles/fig4_accuracy.dir/fig4_accuracy.cpp.o"
  "CMakeFiles/fig4_accuracy.dir/fig4_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
