# Empty compiler generated dependencies file for fig5a_dimensionality.
# This may be replaced when dependencies are built.
