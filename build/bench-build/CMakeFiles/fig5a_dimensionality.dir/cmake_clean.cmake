file(REMOVE_RECURSE
  "../bench/fig5a_dimensionality"
  "../bench/fig5a_dimensionality.pdb"
  "CMakeFiles/fig5a_dimensionality.dir/fig5a_dimensionality.cpp.o"
  "CMakeFiles/fig5a_dimensionality.dir/fig5a_dimensionality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
