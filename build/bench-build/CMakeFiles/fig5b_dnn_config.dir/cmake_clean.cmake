file(REMOVE_RECURSE
  "../bench/fig5b_dnn_config"
  "../bench/fig5b_dnn_config.pdb"
  "CMakeFiles/fig5b_dnn_config.dir/fig5b_dnn_config.cpp.o"
  "CMakeFiles/fig5b_dnn_config.dir/fig5b_dnn_config.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_dnn_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
