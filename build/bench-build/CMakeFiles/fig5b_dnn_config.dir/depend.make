# Empty dependencies file for fig5b_dnn_config.
# This may be replaced when dependencies are built.
