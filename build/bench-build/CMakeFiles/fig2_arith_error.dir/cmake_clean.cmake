file(REMOVE_RECURSE
  "../bench/fig2_arith_error"
  "../bench/fig2_arith_error.pdb"
  "CMakeFiles/fig2_arith_error.dir/fig2_arith_error.cpp.o"
  "CMakeFiles/fig2_arith_error.dir/fig2_arith_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_arith_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
