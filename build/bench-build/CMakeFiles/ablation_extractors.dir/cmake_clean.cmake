file(REMOVE_RECURSE
  "../bench/ablation_extractors"
  "../bench/ablation_extractors.pdb"
  "CMakeFiles/ablation_extractors.dir/ablation_extractors.cpp.o"
  "CMakeFiles/ablation_extractors.dir/ablation_extractors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extractors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
