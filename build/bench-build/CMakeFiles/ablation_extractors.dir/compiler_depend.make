# Empty compiler generated dependencies file for ablation_extractors.
# This may be replaced when dependencies are built.
