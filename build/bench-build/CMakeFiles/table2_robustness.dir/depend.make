# Empty dependencies file for table2_robustness.
# This may be replaced when dependencies are built.
