file(REMOVE_RECURSE
  "../bench/table2_robustness"
  "../bench/table2_robustness.pdb"
  "CMakeFiles/table2_robustness.dir/table2_robustness.cpp.o"
  "CMakeFiles/table2_robustness.dir/table2_robustness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
