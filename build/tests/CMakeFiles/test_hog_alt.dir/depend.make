# Empty dependencies file for test_hog_alt.
# This may be replaced when dependencies are built.
