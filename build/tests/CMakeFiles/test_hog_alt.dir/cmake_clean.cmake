file(REMOVE_RECURSE
  "CMakeFiles/test_hog_alt.dir/hog/haar_test.cpp.o"
  "CMakeFiles/test_hog_alt.dir/hog/haar_test.cpp.o.d"
  "CMakeFiles/test_hog_alt.dir/hog/integral_test.cpp.o"
  "CMakeFiles/test_hog_alt.dir/hog/integral_test.cpp.o.d"
  "CMakeFiles/test_hog_alt.dir/hog/lbp_test.cpp.o"
  "CMakeFiles/test_hog_alt.dir/hog/lbp_test.cpp.o.d"
  "test_hog_alt"
  "test_hog_alt.pdb"
  "test_hog_alt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hog_alt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
