file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline.dir/pipeline/baseline_pipeline_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/baseline_pipeline_test.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/hdface_pipeline_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/hdface_pipeline_test.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/integration_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/integration_test.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/multiscale_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/multiscale_test.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/robustness_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/robustness_test.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/sliding_window_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/sliding_window_test.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/tracking_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/tracking_test.cpp.o.d"
  "test_pipeline"
  "test_pipeline.pdb"
  "test_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
