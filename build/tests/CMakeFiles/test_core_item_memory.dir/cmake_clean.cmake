file(REMOVE_RECURSE
  "CMakeFiles/test_core_item_memory.dir/core/item_memory_test.cpp.o"
  "CMakeFiles/test_core_item_memory.dir/core/item_memory_test.cpp.o.d"
  "test_core_item_memory"
  "test_core_item_memory.pdb"
  "test_core_item_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_item_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
