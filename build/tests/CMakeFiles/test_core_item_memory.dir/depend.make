# Empty dependencies file for test_core_item_memory.
# This may be replaced when dependencies are built.
