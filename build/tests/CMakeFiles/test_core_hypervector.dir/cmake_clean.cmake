file(REMOVE_RECURSE
  "CMakeFiles/test_core_hypervector.dir/core/accumulator_test.cpp.o"
  "CMakeFiles/test_core_hypervector.dir/core/accumulator_test.cpp.o.d"
  "CMakeFiles/test_core_hypervector.dir/core/hypervector_test.cpp.o"
  "CMakeFiles/test_core_hypervector.dir/core/hypervector_test.cpp.o.d"
  "CMakeFiles/test_core_hypervector.dir/core/rng_test.cpp.o"
  "CMakeFiles/test_core_hypervector.dir/core/rng_test.cpp.o.d"
  "test_core_hypervector"
  "test_core_hypervector.pdb"
  "test_core_hypervector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_hypervector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
