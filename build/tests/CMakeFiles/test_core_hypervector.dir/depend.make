# Empty dependencies file for test_core_hypervector.
# This may be replaced when dependencies are built.
