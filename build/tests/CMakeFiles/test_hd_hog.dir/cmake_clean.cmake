file(REMOVE_RECURSE
  "CMakeFiles/test_hd_hog.dir/hog/feature_bundler_test.cpp.o"
  "CMakeFiles/test_hd_hog.dir/hog/feature_bundler_test.cpp.o.d"
  "CMakeFiles/test_hd_hog.dir/hog/hd_hog_property_test.cpp.o"
  "CMakeFiles/test_hd_hog.dir/hog/hd_hog_property_test.cpp.o.d"
  "CMakeFiles/test_hd_hog.dir/hog/hd_hog_test.cpp.o"
  "CMakeFiles/test_hd_hog.dir/hog/hd_hog_test.cpp.o.d"
  "test_hd_hog"
  "test_hd_hog.pdb"
  "test_hd_hog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hd_hog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
