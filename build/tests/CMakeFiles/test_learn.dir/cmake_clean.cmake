file(REMOVE_RECURSE
  "CMakeFiles/test_learn.dir/learn/encoder_test.cpp.o"
  "CMakeFiles/test_learn.dir/learn/encoder_test.cpp.o.d"
  "CMakeFiles/test_learn.dir/learn/hdc_model_test.cpp.o"
  "CMakeFiles/test_learn.dir/learn/hdc_model_test.cpp.o.d"
  "CMakeFiles/test_learn.dir/learn/metrics_test.cpp.o"
  "CMakeFiles/test_learn.dir/learn/metrics_test.cpp.o.d"
  "CMakeFiles/test_learn.dir/learn/mlp_test.cpp.o"
  "CMakeFiles/test_learn.dir/learn/mlp_test.cpp.o.d"
  "CMakeFiles/test_learn.dir/learn/online_test.cpp.o"
  "CMakeFiles/test_learn.dir/learn/online_test.cpp.o.d"
  "CMakeFiles/test_learn.dir/learn/quantized_mlp_test.cpp.o"
  "CMakeFiles/test_learn.dir/learn/quantized_mlp_test.cpp.o.d"
  "CMakeFiles/test_learn.dir/learn/serialize_test.cpp.o"
  "CMakeFiles/test_learn.dir/learn/serialize_test.cpp.o.d"
  "CMakeFiles/test_learn.dir/learn/svm_test.cpp.o"
  "CMakeFiles/test_learn.dir/learn/svm_test.cpp.o.d"
  "test_learn"
  "test_learn.pdb"
  "test_learn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
