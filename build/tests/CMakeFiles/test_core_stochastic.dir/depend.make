# Empty dependencies file for test_core_stochastic.
# This may be replaced when dependencies are built.
