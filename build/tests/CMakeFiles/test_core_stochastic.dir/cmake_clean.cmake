file(REMOVE_RECURSE
  "CMakeFiles/test_core_stochastic.dir/core/stochastic_extra_test.cpp.o"
  "CMakeFiles/test_core_stochastic.dir/core/stochastic_extra_test.cpp.o.d"
  "CMakeFiles/test_core_stochastic.dir/core/stochastic_property_test.cpp.o"
  "CMakeFiles/test_core_stochastic.dir/core/stochastic_property_test.cpp.o.d"
  "CMakeFiles/test_core_stochastic.dir/core/stochastic_test.cpp.o"
  "CMakeFiles/test_core_stochastic.dir/core/stochastic_test.cpp.o.d"
  "test_core_stochastic"
  "test_core_stochastic.pdb"
  "test_core_stochastic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_stochastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
