file(REMOVE_RECURSE
  "CMakeFiles/test_perf.dir/perf/cycle_sim_test.cpp.o"
  "CMakeFiles/test_perf.dir/perf/cycle_sim_test.cpp.o.d"
  "CMakeFiles/test_perf.dir/perf/fpga_datapath_test.cpp.o"
  "CMakeFiles/test_perf.dir/perf/fpga_datapath_test.cpp.o.d"
  "CMakeFiles/test_perf.dir/perf/platform_test.cpp.o"
  "CMakeFiles/test_perf.dir/perf/platform_test.cpp.o.d"
  "test_perf"
  "test_perf.pdb"
  "test_perf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
