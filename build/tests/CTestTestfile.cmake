# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_core_hypervector[1]_include.cmake")
include("/root/repo/build/tests/test_core_stochastic[1]_include.cmake")
include("/root/repo/build/tests/test_core_item_memory[1]_include.cmake")
include("/root/repo/build/tests/test_image[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_hog[1]_include.cmake")
include("/root/repo/build/tests/test_hd_hog[1]_include.cmake")
include("/root/repo/build/tests/test_hog_alt[1]_include.cmake")
include("/root/repo/build/tests/test_learn[1]_include.cmake")
include("/root/repo/build/tests/test_noise[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
