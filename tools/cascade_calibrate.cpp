// cascade_calibrate — deterministic offline calibration of cascade stage
// thresholds (DESIGN.md §13).
//
// Trains the repository-standard HD-HOG detector, renders the deterministic
// sparse calibration scenes (pipeline::cascade_calibration_scenes), runs the
// exact cell-plane scan on each to obtain the golden detection maps, and sets
// every stage threshold to (minimum positive-window margin − slack). The
// result is a versioned threshold table printed to stdout in its canonical
// text form and optionally saved with --out; the whole pass is a pure
// function of the flags, so two runs emit byte-identical tables.
//
// Usage:
//   cascade_calibrate [--dim 2048] [--train 80] [--epochs 10] [--window 32]
//                     [--stride 4] [--scenes 3] [--scene-width 160]
//                     [--scene-height 120] [--faces 2] [--slack 0.02]
//                     [--stages 0.0625,0.25] [--seed 42] [--scene-seed 51966]
//                     [--threads 1] [--background mixed]
//                     [--out cascade_table.txt]
//
// The defaults calibrate quickly; for a production-sharp table use the
// bench/cascade recipe (--dim 4096 --train 400 --epochs 30 --window 32
// --stride 8 --slack 0.001 --stages 0.0625,0.125,0.25,0.5): rejection power
// is a property of the classifier's margins, not of the cascade machinery.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/detector.hpp"
#include "dataset/face_generator.hpp"
#include "pipeline/cascade.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "util/args.hpp"

namespace {

using namespace hdface;

std::vector<double> parse_fractions(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    out.push_back(std::stod(csv.substr(pos, next - pos)));
    pos = next + 1;
  }
  if (out.empty()) throw std::invalid_argument("--stages: no fractions");
  return out;
}

dataset::BackgroundKind parse_background(const std::string& name) {
  if (name == "value-noise") return dataset::BackgroundKind::kValueNoise;
  if (name == "stripes") return dataset::BackgroundKind::kStripes;
  if (name == "blobs") return dataset::BackgroundKind::kBlobs;
  if (name == "gradient") return dataset::BackgroundKind::kGradient;
  if (name == "checker") return dataset::BackgroundKind::kChecker;
  if (name == "mixed") return dataset::BackgroundKind::kMixed;
  throw std::invalid_argument("--background: unknown kind '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 2048));
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 80));
  const auto epochs = static_cast<std::size_t>(args.get_int("epochs", 10));
  const auto window = static_cast<std::size_t>(args.get_int("window", 32));
  const auto stride = static_cast<std::size_t>(args.get_int("stride", 4));
  const auto n_scenes = static_cast<std::size_t>(args.get_int("scenes", 3));
  const auto scene_w =
      static_cast<std::size_t>(args.get_int("scene-width", 160));
  const auto scene_h =
      static_cast<std::size_t>(args.get_int("scene-height", 120));
  const auto faces = static_cast<std::size_t>(args.get_int("faces", 2));
  const double slack = args.get_double("slack", 0.02);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto scene_seed =
      static_cast<std::uint64_t>(args.get_int("scene-seed", 0xCAFE));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 1));
  const std::vector<double> fractions =
      parse_fractions(args.get("stages", "0.0625,0.25"));

  // The repository-standard HD-HOG configuration (bench::hdface_config shape)
  // trained on FACE2-style windows at the detector's geometry.
  pipeline::HdFaceConfig config;
  config.dim = dim;
  config.hog.cell_size = 4;
  config.hog.bins = 8;
  config.epochs = epochs;
  config.seed = seed;
  api::Detector det = api::DetectorBuilder()
                          .window(window)
                          .classes(2)
                          .config(config)
                          .build();
  auto train_cfg = dataset::face2_config(n_train, seed);
  train_cfg.image_size = window;
  const auto train = make_face_dataset(train_cfg);
  std::fprintf(stderr, "training (D=%zu, %zu windows of %zupx)...\n", dim,
               train.size(), window);
  det.fit(train);
  // Calibrate in binary Hamming inference mode (see bench/cascade.cpp): the
  // prefix margins and the golden decisions must live in the same
  // binarized-prototype geometry for the thresholds to have rejection power.
  det.pipeline()->mutable_classifier().set_binary_override(
      det.pipeline()->classifier().binary_prototypes());

  const auto scenes = pipeline::cascade_calibration_scenes(
      n_scenes, window, scene_w, scene_h, faces, scene_seed,
      parse_background(args.get("background", "mixed")));

  pipeline::CascadeCalibrationConfig cc;
  cc.stage_fractions = fractions;
  cc.slack = slack;
  cc.window = window;
  cc.stride = stride;
  cc.positive_class = 1;
  cc.threads = threads;
  std::fprintf(stderr,
               "calibrating over %zu scene(s) of %zux%zu (%zu faces each)...\n",
               scenes.size(), scene_w, scene_h, faces);
  const pipeline::CascadeTable table =
      pipeline::calibrate_cascade(*det.pipeline(), scenes, cc);

  const std::string text = pipeline::cascade_table_to_text(table);
  std::printf("%s", text.c_str());
  if (args.has("out")) {
    const std::string out = args.get("out", "cascade_table.txt");
    pipeline::save_cascade_table(out, table);
    std::fprintf(stderr, "written: %s\n", out.c_str());
  }
  return 0;
}
