#include "linter.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace hdface::lint {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// --- source preprocessing ---------------------------------------------------

struct Source {
  std::vector<std::string> raw;   // original lines
  std::vector<std::string> code;  // comments and literal bodies blanked
  std::vector<bool> at_namespace_scope;  // scope at the start of each line
};

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

// Blanks //-comments, /* */-comments, string/char literals (including basic
// raw strings) with spaces, preserving line structure, so rules only ever
// match real code tokens.
std::vector<std::string> blank_noncode(const std::vector<std::string>& raw) {
  enum class State { kCode, kBlock, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( … )delim"
  std::vector<std::string> out;
  out.reserve(raw.size());

  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            i = line.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlock;
            ++i;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || !is_ident(line[i - 1]))) {
            const std::size_t open = line.find('(', i + 2);
            raw_delim = ")";
            if (open != std::string::npos) {
              raw_delim += line.substr(i + 2, open - (i + 2));
            }
            raw_delim += '"';
            state = State::kRawString;
            i = open == std::string::npos ? line.size() : open;
          } else if (c == '"') {
            state = State::kString;
          } else if (c == '\'') {
            state = State::kChar;
          } else {
            code[i] = c;
          }
          break;
        case State::kBlock:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
          }
          break;
        case State::kRawString: {
          const std::size_t close = line.find(raw_delim, i);
          if (close == std::string::npos) {
            i = line.size();
          } else {
            i = close + raw_delim.size() - 1;
            state = State::kCode;
          }
          break;
        }
      }
    }
    out.push_back(std::move(code));
  }
  return out;
}

// Tracks which lines begin at namespace scope (every enclosing brace was
// opened by a `namespace … {` header). Function, class, enum, lambda, and
// initializer braces all count as opaque scopes, so their contents are never
// mistaken for globals.
std::vector<bool> mark_namespace_scope(const std::vector<std::string>& code) {
  std::vector<bool> at_ns(code.size(), true);
  std::vector<char> scopes;  // 'n' = namespace, 'o' = other
  std::string head;          // statement text since the last ; { or }

  const auto head_is_namespace = [&head]() {
    std::size_t p = head.find("namespace");
    while (p != std::string::npos) {
      const bool lb = p == 0 || !is_ident(head[p - 1]);
      const std::size_t e = p + 9;
      const bool rb = e >= head.size() || !is_ident(head[e]);
      if (lb && rb) return true;
      p = head.find("namespace", p + 1);
    }
    return false;
  };

  for (std::size_t li = 0; li < code.size(); ++li) {
    at_ns[li] = std::all_of(scopes.begin(), scopes.end(),
                            [](char s) { return s == 'n'; });
    for (const char c : code[li]) {
      if (c == '{') {
        scopes.push_back(head_is_namespace() ? 'n' : 'o');
        head.clear();
      } else if (c == '}') {
        if (!scopes.empty()) scopes.pop_back();
        head.clear();
      } else if (c == ';') {
        head.clear();
      } else {
        head += c;
      }
    }
  }
  return at_ns;
}

// --- suppressions -----------------------------------------------------------

// One parsed allow()/allow-file() rule name, remembered individually so the
// stale check can tell exactly which comment (and which rule inside a
// multi-rule comment) never earned its keep.
struct SuppressionEntry {
  std::size_t comment_line = 0;  // 1-based, where the comment sits
  std::size_t target_line = 0;   // 0-based line it shields (line-scoped only)
  std::string rule;
  bool file_wide = false;
  bool used = false;
};

struct Suppressions {
  std::set<std::string> file_wide;
  std::vector<std::set<std::string>> by_line;  // effective per line
  std::vector<std::pair<std::size_t, std::string>> unknown;  // line, name
  std::vector<SuppressionEntry> entries;
};

bool code_line_blank(const std::string& code) {
  return std::all_of(code.begin(), code.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  });
}

std::vector<std::string> parse_rule_list(const std::string& text,
                                         std::size_t open_paren) {
  std::vector<std::string> names;
  const std::size_t close = text.find(')', open_paren);
  if (close == std::string::npos) return names;
  std::string name;
  for (std::size_t i = open_paren + 1; i < close; ++i) {
    const char c = text[i];
    if (is_ident(c) || c == '-') {
      name += c;
    } else if (!name.empty()) {
      names.push_back(std::move(name));
      name.clear();
    }
  }
  if (!name.empty()) names.push_back(std::move(name));
  return names;
}

Suppressions collect_suppressions(const Source& src) {
  std::set<std::string> known;
  for (const auto& [name, desc] : rules()) known.insert(name);

  Suppressions sup;
  sup.by_line.resize(src.raw.size());
  for (std::size_t li = 0; li < src.raw.size(); ++li) {
    const std::string& line = src.raw[li];
    const auto add = [&](const std::vector<std::string>& names,
                         std::set<std::string>& into) {
      for (const auto& n : names) {
        if (known.count(n) == 0) {
          sup.unknown.emplace_back(li + 1, n);
        } else {
          into.insert(n);
        }
      }
    };

    std::size_t p = line.find("hdlint: allow-file(");
    while (p != std::string::npos) {
      for (const auto& n : parse_rule_list(line, p + 18)) {
        if (known.count(n) != 0) {
          sup.entries.push_back(
              SuppressionEntry{li + 1, 0, n, /*file_wide=*/true});
        }
      }
      add(parse_rule_list(line, p + 18), sup.file_wide);
      p = line.find("hdlint: allow-file(", p + 1);
    }

    p = line.find("hdlint: allow(");
    while (p != std::string::npos) {
      std::set<std::string> names;
      add(parse_rule_list(line, p + 13), names);
      // A comment-only line shields the next line that has code; a trailing
      // comment shields its own line.
      std::size_t target = li;
      if (code_line_blank(src.code[li])) {
        target = li + 1;
        while (target < src.code.size() && code_line_blank(src.code[target])) {
          ++target;
        }
      }
      if (target < sup.by_line.size()) {
        sup.by_line[target].insert(names.begin(), names.end());
        for (const auto& n : names) {
          sup.entries.push_back(
              SuppressionEntry{li + 1, target, n, /*file_wide=*/false});
        }
      }
      p = line.find("hdlint: allow(", p + 1);
    }
  }
  return sup;
}

// --- matching helpers -------------------------------------------------------

// Last non-space code character strictly before (line, col), looking at
// earlier lines if needed. Returns '\0' at the start of the file.
char prev_nonspace(const std::vector<std::string>& code, std::size_t line,
                   std::size_t col) {
  for (std::size_t li = line + 1; li-- > 0;) {
    const std::string& s = code[li];
    std::size_t end = li == line ? col : s.size();
    while (end > 0) {
      const char c = s[end - 1];
      if (std::isspace(static_cast<unsigned char>(c)) == 0) return c;
      --end;
    }
  }
  return '\0';
}

std::size_t skip_spaces(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

// Occurrences of `name` as a whole identifier in `line`.
std::vector<std::size_t> ident_occurrences(const std::string& line,
                                           const std::string& name) {
  std::vector<std::size_t> out;
  std::size_t p = line.find(name);
  while (p != std::string::npos) {
    const bool lb = p == 0 || !is_ident(line[p - 1]);
    const std::size_t e = p + name.size();
    const bool rb = e >= line.size() || !is_ident(line[e]);
    if (lb && rb) out.push_back(p);
    p = line.find(name, p + 1);
  }
  return out;
}

// Does the identifier at `pos` belong to a foreign qualifier? `std::name`
// and `::name` still count as the banned entity; `obj.name`, `obj->name`,
// and `SomeType::name` do not (e.g. Hypervector::random is our own,
// counter-seeded factory — not POSIX random()).
bool foreign_qualified(const std::string& line, std::size_t pos) {
  if (pos >= 1 && line[pos - 1] == '.') return true;
  if (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>') return true;
  if (pos >= 2 && line[pos - 2] == ':' && line[pos - 1] == ':') {
    std::size_t q = pos - 2;
    while (q > 0 && is_ident(line[q - 1])) --q;
    const std::string qualifier = line.substr(q, pos - 2 - q);
    return !qualifier.empty() && qualifier != "std";
  }
  return false;
}

// True when the identifier at `pos` is written as `std::name` (exactly).
bool std_qualified(const std::string& line, std::size_t pos) {
  if (pos < 5 || line[pos - 2] != ':' || line[pos - 1] != ':') return false;
  std::size_t q = pos - 2;
  while (q > 0 && is_ident(line[q - 1])) --q;
  return line.substr(q, pos - 2 - q) == "std";
}

// True when the identifier at `pos` is a member access: `obj.name` or
// `obj->name`.
bool member_qualified(const std::string& line, std::size_t pos) {
  if (pos >= 1 && line[pos - 1] == '.') return true;
  return pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>';
}

// Scans the bracketed span starting at (line, open) — possibly spanning
// several lines — for a `[&]` / `[&,` default-by-reference lambda capture.
// Stops at the matching close bracket; an unbalanced span scans to EOF,
// which is conservative but deterministic.
bool span_has_ref_capture(const std::vector<std::string>& code, std::size_t line,
                          std::size_t open, char open_c, char close_c) {
  int depth = 0;
  for (std::size_t li = line; li < code.size(); ++li) {
    const std::string& s = code[li];
    for (std::size_t i = li == line ? open : 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == open_c) ++depth;
      if (c == close_c && --depth == 0) return false;
      if (c == '[' && i + 1 < s.size() && s[i + 1] == '&') {
        const std::size_t after = skip_spaces(s, i + 2);
        if (after < s.size() && (s[after] == ']' || s[after] == ',')) {
          return true;
        }
      }
    }
  }
  return false;
}

// True when `name(` appears as a real (possibly std::-qualified) call.
bool is_call(const std::string& line, std::size_t pos, std::size_t len) {
  const std::size_t after = skip_spaces(line, pos + len);
  return after < line.size() && line[after] == '(';
}

// True when the identifier at `pos` is being *declared* rather than called:
// the preceding token is another identifier (its return type), as in
// `static Hypervector random(std::size_t dim, Rng&)`. Keywords that can
// legally precede a call expression are excluded so `return rand();` still
// counts as a call.
bool is_declaration(const std::vector<std::string>& code, std::size_t line,
                    std::size_t pos) {
  static const std::set<std::string> kCallPrefix = {
      "return", "throw", "case", "else", "do",
      "co_return", "co_yield", "co_await"};
  for (std::size_t li = line + 1; li-- > 0;) {
    const std::string& s = code[li];
    std::size_t end = li == line ? pos : s.size();
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
      --end;
    }
    if (end == 0) continue;
    if (!is_ident(s[end - 1])) return false;
    std::size_t start = end;
    while (start > 0 && is_ident(s[start - 1])) --start;
    return kCallPrefix.count(s.substr(start, end - start)) == 0;
  }
  return false;
}

std::size_t matching_close(const std::string& line, std::size_t open,
                           char open_c, char close_c) {
  int depth = 0;
  for (std::size_t i = open; i < line.size(); ++i) {
    if (line[i] == open_c) ++depth;
    if (line[i] == close_c && --depth == 0) return i;
  }
  return std::string::npos;
}

}  // namespace

const std::vector<std::pair<std::string, std::string>>& rules() {
  static const std::vector<std::pair<std::string, std::string>> kRules = {
      {"rand-family",
       "C rand()-family call: all randomness must flow through the "
       "counter-based core::Rng (seeded, reproducible); process-global RNG "
       "state breaks bit-reproducibility"},
      {"random-device",
       "std::random_device is nondeterministic by construction; derive "
       "seeds with core::mix64 from a plan/config seed instead"},
      {"unseeded-mt19937",
       "unseeded std::mt19937: it either runs on the default seed (hiding a "
       "missing seed plumb-through) or gets seeded later from a "
       "nondeterministic source; use core::Rng with an explicit seed"},
      {"wall-clock",
       "wall-clock read: time must never influence encoding, detection, or "
       "fault schedules; if this is performance timing only, suppress with "
       "a justification"},
      {"unordered-container",
       "std::unordered_* iteration order is unspecified; accumulating over "
       "it makes results depend on hash seeding and load factors — use an "
       "ordered container or suppress with proof of order-independence"},
      {"mutable-global",
       "mutable namespace-scope state breaks thread-count invariance and "
       "bit-reproducibility; make it const/constexpr, function-local, or "
       "suppress with a justification"},
      {"reinterpret-cast",
       "naked reinterpret_cast outside the byte-I/O shim "
       "(src/util/bytes.hpp): route raw-byte serialization through "
       "hdface::io so trivially-copyable and short-read checks apply"},
      {"sched-dependent-value",
       "result of atomic fetch_add/fetch_sub depends on thread scheduling; "
       "using the value as data (seed, index, output) breaks "
       "bit-reproducibility unless the consumer is permutation-invariant — "
       "prove it and suppress, or restructure"},
      {"thread-detach",
       "detached thread: it outlives scope, races shutdown, and its work "
       "can land after the results were read — join every thread (the "
       "worker-pool destructor does) or hand the work to util::ThreadPool"},
      {"raw-mutex-type",
       "raw std:: synchronization primitive outside src/util/mutex.hpp: use "
       "util::Mutex / util::SharedMutex / util::CondVar so Clang "
       "thread-safety analysis sees the capability and GUARDED_BY "
       "annotations can name it"},
      {"manual-lock-unlock",
       "manual .lock()/.unlock() outside the annotated wrapper: an early "
       "return or exception between the calls leaks the lock — use the RAII "
       "guards (util::MutexLock / WriterMutexLock / ReaderMutexLock), which "
       "the thread-safety analysis also understands"},
      {"sleep-as-sync",
       "sleep on a code path: sleeping until another thread 'should be' "
       "done is a race that happens to pass — synchronize with condition "
       "variables, futures, or joins; pacing/backoff naps need a "
       "justification"},
      {"ref-capture-thread-lambda",
       "[&] default capture in a lambda handed to a thread entry point "
       "(thread/submit/parallel_for/async): captures-everything hides "
       "shared state from review and dangles if the frame unwinds first — "
       "list the captures explicitly"},
      {"unknown-suppression",
       "suppression names a rule hdlint does not know; a typo here could "
       "hide real findings"},
  };
  return kRules;
}

Report lint_source_report(std::string_view path, std::string_view text,
                          const Options& options) {
  Source src;
  src.raw = split_lines(text);
  src.code = blank_noncode(src.raw);
  src.at_namespace_scope = mark_namespace_scope(src.code);
  Suppressions sup = collect_suppressions(src);

  const auto message = [](const std::string& rule) -> const std::string& {
    for (const auto& [name, desc] : rules()) {
      if (name == rule) return desc;
    }
    throw std::logic_error("hdlint: unregistered rule " + rule);
  };

  std::vector<Finding> findings;
  const auto report = [&](std::size_t li, const std::string& rule) {
    // A file-wide suppression earns its keep on any hit; a line-scoped one
    // only on a hit at its own target line — and a line-scoped suppression
    // shadowed by a file-wide one stays unused, so redundancy surfaces as
    // staleness.
    if (sup.file_wide.count(rule) != 0) {
      for (auto& e : sup.entries) {
        if (e.file_wide && e.rule == rule) e.used = true;
      }
      return;
    }
    if (sup.by_line[li].count(rule) != 0) {
      for (auto& e : sup.entries) {
        if (!e.file_wide && e.target_line == li && e.rule == rule) {
          e.used = true;
        }
      }
      return;
    }
    findings.push_back(
        Finding{std::string(path), li + 1, rule, message(rule)});
  };

  for (const auto& [line_no, name] : sup.unknown) {
    findings.push_back(Finding{std::string(path), line_no,
                               "unknown-suppression",
                               message("unknown-suppression") + ": " + name});
  }

  static const std::vector<std::string> kRandFamily = {
      "rand",    "srand",   "rand_r",  "drand48", "erand48",
      "lrand48", "nrand48", "mrand48", "jrand48", "srand48",
      "random",  "srandom", "random_r"};
  static const std::vector<std::string> kWallClock = {
      "time",         "clock",        "gettimeofday", "clock_gettime",
      "timespec_get", "localtime",    "gmtime",       "mktime"};
  static const std::vector<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};

  const auto path_allowed = [&](const std::vector<std::string>& allowlist) {
    return std::any_of(allowlist.begin(), allowlist.end(),
                       [&](const std::string& suffix) {
                         std::string p(path);
                         std::replace(p.begin(), p.end(), '\\', '/');
                         return p.size() >= suffix.size() &&
                                p.compare(p.size() - suffix.size(),
                                          suffix.size(), suffix) == 0;
                       });
  };
  const bool cast_allowed = path_allowed(options.cast_allowlist);
  const bool mutex_allowed = path_allowed(options.mutex_allowlist);

  for (std::size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    if (code_line_blank(line)) continue;

    for (const auto& name : kRandFamily) {
      for (const std::size_t p : ident_occurrences(line, name)) {
        if (foreign_qualified(line, p)) continue;
        if (!is_call(line, p, name.size())) continue;
        if (is_declaration(src.code, li, p)) continue;
        report(li, "rand-family");
      }
    }

    for (const std::size_t p : ident_occurrences(line, "random_device")) {
      if (foreign_qualified(line, p)) continue;
      report(li, "random-device");
    }

    for (const auto& name : {std::string("mt19937"), std::string("mt19937_64")}) {
      for (const std::size_t p : ident_occurrences(line, name)) {
        std::size_t i = skip_spaces(line, p + name.size());
        // A declared variable name, or a direct temporary.
        std::size_t after_decl = i;
        if (i < line.size() && is_ident(line[i])) {
          while (after_decl < line.size() && is_ident(line[after_decl])) {
            ++after_decl;
          }
          after_decl = skip_spaces(line, after_decl);
        }
        if (after_decl >= line.size()) continue;  // multi-line: conservative
        const char c = line[after_decl];
        if (c == ';') {
          report(li, "unseeded-mt19937");
        } else if (c == '(' || c == '{') {
          const std::size_t close = matching_close(
              line, after_decl, c, c == '(' ? ')' : '}');
          if (close != std::string::npos &&
              skip_spaces(line, after_decl + 1) == close) {
            report(li, "unseeded-mt19937");
          }
        }
      }
    }

    for (const auto& name : kWallClock) {
      for (const std::size_t p : ident_occurrences(line, name)) {
        if (foreign_qualified(line, p)) continue;
        if (!is_call(line, p, name.size())) continue;
        if (is_declaration(src.code, li, p)) continue;
        report(li, "wall-clock");
      }
    }
    for (const std::size_t p : ident_occurrences(line, "now")) {
      // Any clock's ::now() — catches `using Clock = steady_clock` aliases.
      if (p >= 2 && line[p - 2] == ':' && line[p - 1] == ':' &&
          is_call(line, p, 3)) {
        report(li, "wall-clock");
      }
    }

    for (const auto& name : kUnordered) {
      for (const std::size_t p : ident_occurrences(line, name)) {
        (void)p;
        report(li, "unordered-container");
      }
    }

    if (!cast_allowed) {
      for (const std::size_t p : ident_occurrences(line, "reinterpret_cast")) {
        (void)p;
        report(li, "reinterpret-cast");
      }
    }

    for (const auto& name : {std::string("fetch_add"), std::string("fetch_sub")}) {
      for (const std::size_t p : ident_occurrences(line, name)) {
        if (!is_call(line, p, name.size())) continue;
        // Walk back over the object expression (`obj.counter->value`).
        std::size_t start = p;
        while (start > 0) {
          const char c = line[start - 1];
          if (is_ident(c) || c == '.' || c == ':' || c == '>' || c == '-' ||
              c == ']' || c == '[') {
            --start;
          } else {
            break;
          }
        }
        const char before = prev_nonspace(src.code, li, start);
        const bool statement_start =
            before == '\0' || before == ';' || before == '{' || before == '}';
        bool discarded = false;
        if (statement_start) {
          const std::size_t open = line.find('(', p);
          const std::size_t close =
              matching_close(line, open, '(', ')');
          if (close != std::string::npos) {
            const std::size_t next = skip_spaces(line, close + 1);
            discarded = next < line.size() && line[next] == ';';
          }
        }
        if (!discarded) report(li, "sched-dependent-value");
      }
    }

    for (const std::size_t p : ident_occurrences(line, "detach")) {
      if (!member_qualified(line, p)) continue;
      if (!is_call(line, p, 6)) continue;
      report(li, "thread-detach");
    }

    if (!mutex_allowed) {
      // Any std::-qualified mention counts — declarations are exactly what
      // the rule exists to catch (`#include <mutex>` alone stays legal).
      static const std::vector<std::string> kRawSync = {
          "mutex",          "shared_mutex",
          "recursive_mutex", "timed_mutex",
          "recursive_timed_mutex", "shared_timed_mutex",
          "condition_variable", "condition_variable_any",
          "lock_guard",     "unique_lock",
          "shared_lock",    "scoped_lock"};
      for (const auto& name : kRawSync) {
        for (const std::size_t p : ident_occurrences(line, name)) {
          if (!std_qualified(line, p)) continue;
          report(li, "raw-mutex-type");
        }
      }

      static const std::vector<std::string> kManualLock = {
          "lock",        "unlock",        "try_lock",
          "lock_shared", "unlock_shared", "try_lock_shared"};
      for (const auto& name : kManualLock) {
        for (const std::size_t p : ident_occurrences(line, name)) {
          if (!member_qualified(line, p)) continue;
          if (!is_call(line, p, name.size())) continue;
          report(li, "manual-lock-unlock");
        }
      }
    }

    for (const auto& name :
         {std::string("sleep_for"), std::string("sleep_until")}) {
      for (const std::size_t p : ident_occurrences(line, name)) {
        if (member_qualified(line, p)) continue;
        if (p >= 2 && line[p - 2] == ':' && line[p - 1] == ':') {
          // std::this_thread::sleep_for is the real thing; SomeScheduler::
          // sleep_for is not ours to judge.
          std::size_t q = p - 2;
          while (q > 0 && is_ident(line[q - 1])) --q;
          const std::string qualifier = line.substr(q, p - 2 - q);
          if (!qualifier.empty() && qualifier != "this_thread" &&
              qualifier != "std") {
            continue;
          }
        }
        if (!is_call(line, p, name.size())) continue;
        report(li, "sleep-as-sync");
      }
    }
    for (const auto& name : {std::string("sleep"), std::string("usleep"),
                             std::string("nanosleep")}) {
      for (const std::size_t p : ident_occurrences(line, name)) {
        if (foreign_qualified(line, p)) continue;
        if (!is_call(line, p, name.size())) continue;
        if (is_declaration(src.code, li, p)) continue;
        report(li, "sleep-as-sync");
      }
    }

    // Lambdas handed to thread entry points: scan the argument span (which
    // may run over several lines) for a default-by-reference capture.
    static const std::vector<std::string> kThreadEntry = {
        "submit", "parallel_for", "parallel_for_chunked", "async"};
    for (const auto& name : kThreadEntry) {
      for (const std::size_t p : ident_occurrences(line, name)) {
        if (!is_call(line, p, name.size())) continue;
        const std::size_t open = skip_spaces(line, p + name.size());
        if (span_has_ref_capture(src.code, li, open, '(', ')')) {
          report(li, "ref-capture-thread-lambda");
        }
      }
    }
    for (const std::size_t p : ident_occurrences(line, "thread")) {
      // `thread worker(…)` / `thread(…)` / `thread worker{…}` constructions
      // (std::this_thread never matches: the `_` glues it into one token).
      std::size_t i = skip_spaces(line, p + 6);
      if (i < line.size() && is_ident(line[i])) {
        while (i < line.size() && is_ident(line[i])) ++i;
        i = skip_spaces(line, i);
      }
      if (i >= line.size()) continue;
      const char c = line[i];
      if (c != '(' && c != '{') continue;
      if (span_has_ref_capture(src.code, li, i, c, c == '(' ? ')' : '}')) {
        report(li, "ref-capture-thread-lambda");
      }
    }

    if (src.at_namespace_scope[li]) {
      // Heuristic single-line detector for mutable namespace-scope variables:
      // a declaration-looking statement with no parentheses (those are
      // functions or constructor calls) and no exempting keyword.
      const std::string& l = line;
      if (l.find(';') != std::string::npos && l.find('(') == std::string::npos &&
          l.find(')') == std::string::npos) {
        static const std::vector<std::string> kExempt = {
            "const",    "constexpr", "using",    "typedef", "extern",
            "template", "class",     "struct",   "enum",    "union",
            "namespace", "static_assert", "friend", "operator", "return",
            "concept",  "requires"};
        bool exempt = l.find('#') != std::string::npos;
        for (const auto& kw : kExempt) {
          if (exempt) break;
          if (!ident_occurrences(l, kw).empty()) exempt = true;
        }
        if (!exempt) {
          // Require "type name" or "type name = …" or "type name{…}" shape:
          // at least two identifier tokens before ; = or {.
          std::size_t stop = l.size();
          for (const char c : {';', '=', '{'}) {
            stop = std::min(stop, l.find(c));
          }
          std::size_t tokens = 0;
          bool in_tok = false;
          for (std::size_t i = 0; i < stop && i < l.size(); ++i) {
            const bool id = is_ident(l[i]) || l[i] == ':' || l[i] == '<' ||
                            l[i] == '>' || l[i] == ',' || l[i] == '*' ||
                            l[i] == '&';
            if (id && !in_tok) {
              ++tokens;
              in_tok = true;
            } else if (!id) {
              in_tok = false;
            }
          }
          if (tokens >= 2) report(li, "mutable-global");
        }
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });

  Report report_out;
  report_out.findings = std::move(findings);
  for (const auto& e : sup.entries) {
    if (e.used) continue;
    report_out.stale.push_back(
        StaleSuppression{std::string(path), e.comment_line, e.rule,
                         e.file_wide});
  }
  std::sort(report_out.stale.begin(), report_out.stale.end(),
            [](const StaleSuppression& a, const StaleSuppression& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return report_out;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view text,
                                 const Options& options) {
  return lint_source_report(path, text, options).findings;
}

Report lint_file_report(const std::string& path, const Options& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("hdlint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source_report(path, buf.str(), options);
}

std::vector<Finding> lint_file(const std::string& path,
                               const Options& options) {
  return lint_file_report(path, options).findings;
}

Report lint_tree_report(const std::vector<std::string>& roots,
                        const Options& options) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExtensions = {".cpp", ".hpp", ".h",
                                                    ".cc",  ".hh",  ".cxx"};
  std::vector<std::string> files;
  for (const auto& root : roots) {
    if (!fs::exists(root)) {
      throw std::runtime_error("hdlint: no such path: " + root);
    }
    if (fs::is_regular_file(root)) {
      files.push_back(root);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() &&
          kExtensions.count(entry.path().extension().string()) != 0) {
        files.push_back(entry.path().string());
      }
    }
  }
  std::sort(files.begin(), files.end());

  Report report;
  for (const auto& file : files) {
    auto r = lint_file_report(file, options);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(r.findings.begin()),
                           std::make_move_iterator(r.findings.end()));
    report.stale.insert(report.stale.end(),
                        std::make_move_iterator(r.stale.begin()),
                        std::make_move_iterator(r.stale.end()));
  }
  return report;
}

std::vector<Finding> lint_tree(const std::vector<std::string>& roots,
                               const Options& options) {
  return lint_tree_report(roots, options).findings;
}

}  // namespace hdface::lint
