#pragma once

// hdlint — in-tree determinism, concurrency & memory-safety lint for the
// HDFace sources.
//
// The repository's headline guarantees (bit-reproducible detection at any
// thread count, checksum-verified fault injection/restore, compiler-checked
// lock discipline) rest on invariants the compiler cannot see: all randomness
// flows through the counter-based core::Rng, nothing reads the wall clock on
// a result path, no accumulation depends on unordered iteration or thread
// scheduling, raw byte punning happens only inside the audited io shim, and
// every lock is an annotated util:: capability acquired through RAII. hdlint
// machine-checks those conventions with a token/regex scanner — no external
// dependencies, fast enough to run as a tier-1 ctest.
//
// Rules (registry in rules()):
//   rand-family              C rand()/srand()/drand48()/random()… calls
//   random-device            std::random_device anywhere
//   unseeded-mt19937         std::mt19937 declared without an explicit seed
//   wall-clock               time()/clock()/gettimeofday()/…::now() reads
//   unordered-container      std::unordered_{map,set,…} usage
//   mutable-global           non-const namespace-scope variable definitions
//   reinterpret-cast         naked reinterpret_cast outside the byte-I/O shim
//   sched-dependent-value    atomic fetch_add/fetch_sub result used as data
//   thread-detach            .detach() — detached threads outlive shutdown
//   raw-mutex-type           std:: sync primitive outside src/util/mutex.hpp
//   manual-lock-unlock       .lock()/.unlock() outside the annotated wrapper
//   sleep-as-sync            sleep_for/sleep_until/usleep used on a code path
//   ref-capture-thread-lambda [&] default capture handed to a thread entry
//
// Suppressions: a comment `// hdlint: allow(rule-a, rule-b) — justification`
// silences those rules on its own line; on a comment-only line it applies to
// the next line with code instead. `// hdlint: allow-file(rule)` silences a
// rule for the whole file. Unknown rule names in a suppression are themselves
// reported (rule "unknown-suppression") so typos cannot hide findings.
// Suppressions that silence nothing are tracked too: the *_report entry
// points return them as `stale`, and `hdlint --check-stale` fails on them, so
// a justification cannot outlive the code it justified.
//
// The scanner blanks comments and string/char literals before matching, so
// prose never trips a rule, and is deliberately conservative elsewhere: a
// lint that guards determinism must itself be deterministic, so files and
// findings come back in sorted order.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hdface::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

// A suppression comment that silenced no finding in its scope. Stale
// suppressions are reported separately from findings — they are lint *debt*
// (a stray justification), not a broken invariant, and must never change the
// rule count.
struct StaleSuppression {
  std::string file;
  std::size_t line = 0;  // 1-based line of the allow()/allow-file() comment
  std::string rule;
  bool file_wide = false;

  bool operator==(const StaleSuppression&) const = default;
};

struct Report {
  std::vector<Finding> findings;
  std::vector<StaleSuppression> stale;
};

struct Options {
  // Path suffixes (forward-slash form) allowed to use reinterpret_cast.
  std::vector<std::string> cast_allowlist = {"src/util/bytes.hpp"};
  // Path suffixes allowed to name raw std:: synchronization primitives and
  // call .lock()/.unlock() directly — the annotated capability wrappers.
  std::vector<std::string> mutex_allowlist = {"src/util/mutex.hpp"};
};

// Name → one-line description of every rule, in reporting order.
const std::vector<std::pair<std::string, std::string>>& rules();

// Lints one in-memory translation unit. `path` is used for diagnostics and
// for the allowlists; it need not exist on disk.
std::vector<Finding> lint_source(std::string_view path, std::string_view source,
                                 const Options& options = {});

// Lints one file from disk. Throws std::runtime_error if unreadable.
std::vector<Finding> lint_file(const std::string& path,
                               const Options& options = {});

// Recursively lints every C++ source under the given roots (files are
// accepted too), in sorted path order. Throws std::runtime_error on a
// missing root.
std::vector<Finding> lint_tree(const std::vector<std::string>& roots,
                               const Options& options = {});

// Report-returning variants: same findings, plus the suppressions that
// matched no finding (stale). lint_source/lint_file/lint_tree are thin
// wrappers that drop the stale list.
Report lint_source_report(std::string_view path, std::string_view source,
                          const Options& options = {});
Report lint_file_report(const std::string& path, const Options& options = {});
Report lint_tree_report(const std::vector<std::string>& roots,
                        const Options& options = {});

}  // namespace hdface::lint
