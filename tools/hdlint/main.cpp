// hdlint CLI — scans C++ sources for determinism and memory-safety hazards.
//
//   hdlint [--root DIR] [--check-stale] [--list-rules] PATH...
//
// PATHs are files or directories, resolved against --root when given.
// Prints file:line: [rule] message for each finding and exits 1 if any were
// found (2 on usage or I/O errors), so it can gate CI and run under ctest.
// With --check-stale, suppression comments that silence nothing are reported
// and fail the run too — a justification must not outlive the code it
// justified.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "linter.hpp"

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> paths;
  bool check_stale = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& [name, desc] : hdface::lint::rules()) {
        std::printf("%-26s %s\n", name.c_str(), desc.c_str());
      }
      return 0;
    }
    if (arg == "--check-stale") {
      check_stale = true;
      continue;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hdlint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: hdlint [--root DIR] [--check-stale] [--list-rules] "
                   "PATH...\n");
      return 2;
    }
    paths.push_back(root.empty() ? arg : root + "/" + arg);
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: hdlint [--root DIR] [--check-stale] [--list-rules] "
                 "PATH...\n");
    return 2;
  }

  try {
    const auto report = hdface::lint::lint_tree_report(paths);
    for (const auto& f : report.findings) {
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    std::size_t stale_shown = 0;
    if (check_stale) {
      for (const auto& s : report.stale) {
        std::printf("%s:%zu: [stale-suppression] %s(%s) silences nothing — "
                    "delete the comment or re-justify it\n",
                    s.file.c_str(), s.line,
                    s.file_wide ? "allow-file" : "allow", s.rule.c_str());
      }
      stale_shown = report.stale.size();
    }
    std::printf("hdlint: %zu finding(s), %zu stale suppression(s)\n",
                report.findings.size(), stale_shown);
    return report.findings.empty() && stale_shown == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hdlint: %s\n", e.what());
    return 2;
  }
}
