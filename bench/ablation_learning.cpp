// Ablations on the hyperdimensional learning design (paper §5):
//
//   1. Adaptive vs naive updates — the paper's saturation-avoidance argument.
//   2. Epoch count — single-pass learning quality vs iterative refinement.
//   3. Nonlinear encoder bandwidth (gamma) — the original-space HDC config.
//   4. Binary vs float-prototype inference — what the binary hardware path
//      costs in accuracy.

#include <cstdio>

#include "common.hpp"
#include "util/stopwatch.hpp"

namespace {
using namespace hdface;
}

int main() {
  bench::print_header("Ablations — hyperdimensional learning design choices",
                      "paper §5 adaptive training / single-pass claims");

  auto w = bench::make_face2(300, 150);
  const std::size_t n = w.image_size();

  // Cache HD-HOG features once (decode-shortcut extractor for speed).
  auto base_cfg = bench::hdface_config(4096, pipeline::HdFaceMode::kHdHog,
                                       hog::HdHogMode::kDecodeShortcut);
  pipeline::HdFacePipeline feature_pipe(base_cfg, n, n, w.classes());
  const auto train_f = feature_pipe.encode_dataset(w.train);
  const auto test_f = feature_pipe.encode_dataset(w.test);

  // --- 1. adaptive vs naive -------------------------------------------------
  {
    util::Table t({"update rule", "accuracy"});
    for (const bool adaptive : {true, false}) {
      learn::HdcConfig hc;
      hc.dim = 4096;
      hc.classes = w.classes();
      hc.epochs = 10;
      hc.adaptive = adaptive;
      learn::HdcClassifier model(hc);
      model.fit(train_f, w.train.labels);
      t.add_row({adaptive ? "adaptive (paper §5)" : "naive bundling",
                 util::Table::percent(model.evaluate(test_f, w.test.labels))});
    }
    std::printf("\n1) adaptive vs naive class-hypervector updates (FACE2):\n%s",
                t.to_string().c_str());
  }

  // --- 2. epochs / single-pass ----------------------------------------------
  {
    util::Table t({"epochs", "accuracy", "learn seconds"});
    for (const std::size_t epochs : {1u, 2u, 5u, 10u, 20u}) {
      learn::HdcConfig hc;
      hc.dim = 4096;
      hc.classes = w.classes();
      hc.epochs = epochs;
      learn::HdcClassifier model(hc);
      util::Stopwatch sw;
      model.fit(train_f, w.train.labels);
      t.add_row({std::to_string(epochs),
                 util::Table::percent(model.evaluate(test_f, w.test.labels)),
                 util::Table::num(sw.seconds(), 2)});
    }
    std::printf("\n2) training epochs (single-pass = 1):\n%s", t.to_string().c_str());
    std::printf("paper claim: HDC learns from a single pass with a few samples;\n"
                "retraining refines but the first pass carries most quality.\n");
  }

  // --- 2b. few-shot learning -------------------------------------------------
  {
    util::Table t({"train samples", "accuracy (single pass)"});
    for (const std::size_t n_shot : {14u, 28u, 70u, 140u, 300u}) {
      auto subset = dataset::subsample(w.train, n_shot, 0xFE3);
      const auto subset_features = feature_pipe.encode_dataset(subset);
      learn::HdcConfig hc;
      hc.dim = 4096;
      hc.classes = w.classes();
      hc.epochs = 1;  // single pass
      learn::HdcClassifier model(hc);
      model.fit(subset_features, subset.labels);
      t.add_row({std::to_string(subset.size()),
                 util::Table::percent(model.evaluate(test_f, w.test.labels))});
    }
    std::printf("\n2b) few-shot single-pass learning (FACE2):\n%s",
                t.to_string().c_str());
    std::printf("paper claim: HDC learns from just a few samples in one pass.\n");
  }

  // --- 3. encoder bandwidth --------------------------------------------------
  {
    util::Table t({"encoder gamma", "accuracy"});
    for (const double gamma : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      auto cfg = bench::hdface_config(4096, pipeline::HdFaceMode::kOrigHogEncoder);
      cfg.encoder_gamma = gamma;
      pipeline::HdFacePipeline pipe(cfg, n, n, w.classes());
      pipe.fit(w.train);
      t.add_row({util::Table::num(gamma, 2),
                 util::Table::percent(pipe.evaluate(w.test))});
    }
    std::printf("\n3) nonlinear encoder bandwidth (orig-HOG config):\n%s",
                t.to_string().c_str());
  }

  // --- 4. float vs binary inference ------------------------------------------
  {
    learn::HdcConfig hc;
    hc.dim = 4096;
    hc.classes = w.classes();
    hc.epochs = 10;
    learn::HdcClassifier model(hc);
    model.fit(train_f, w.train.labels);
    const core::PrototypeBlock protos(model.binary_prototypes());
    std::size_t hits = 0;
    for (std::size_t i = 0; i < test_f.size(); ++i) {
      if (learn::HdcClassifier::predict_binary(protos, test_f[i]) ==
          w.test.labels[i]) {
        ++hits;
      }
    }
    util::Table t({"inference path", "accuracy"});
    t.add_row({"float prototypes (cosine)",
               util::Table::percent(model.evaluate(test_f, w.test.labels))});
    t.add_row({"binary prototypes (Hamming)",
               util::Table::percent(static_cast<double>(hits) /
                                    static_cast<double>(test_f.size()))});
    std::printf("\n4) inference representation (the FPGA/robustness path is\n"
                "binary):\n%s",
                t.to_string().c_str());
  }
  return 0;
}
