// Early-reject similarity cascade: stage pass rates, end-to-end speedup vs
// the exact cell-plane scan, and accuracy delta vs the golden maps.
//
// hdlint: allow-file(wall-clock) — this bench *measures* elapsed time; the
// timings are reported output and never influence what the detector computes.
//
// Workload: the deterministic sparse calibration scenes (almost every window
// is background — the geometry where the cascade pays). The bench
//   1. calibrates a threshold table over the scenes (the same pass
//      tools/cascade_calibrate runs),
//   2. times the exact cell-plane scan per scene (the golden maps),
//   3. checks DetectOptions::cascade in kExact mode hashes bit-identical to
//      the cascade-free golden maps (the exact-mode contract),
//   4. times the calibrated cascade scan, counts false rejects against the
//      golden maps (must be zero — calibration scenes are the training set of
//      the thresholds), verifies every survivor is bit-identical to its
//      golden entry, and reports per-stage pass rates,
//   5. decomposes cost: builds each scene's cell plane once, then times the
//      exact and cascaded SCAN STAGES directly on the prebuilt planes
//      (detect_windows_on_plane). The plane build is a fixed cost both paths
//      share — the cascade only accelerates the per-window scan on top of it
//      (DESIGN.md §13.4) — so the honest pair of numbers is the cold
//      end-to-end speedup (plane + scan) and the scan-stage speedup (the
//      plane-amortized regime: threshold sweeps, re-detection, any workload
//      that scans a cached plane more than once).
// Results land in bench_out/cascade.json; CI (cascade-smoke) gates with jq on
// stage-1 pass rate < 0.5, false_rejects == 0 and the bit-identity flags.
// The exit code enforces the correctness half (identity + zero false
// rejects); the ≥3x scan-stage speedup is the acceptance headline, printed
// and stored as scan_speedup.
//
// Usage:
//   ./build/bench/cascade [--dim 4096] [--train 400] [--epochs 30]
//                         [--window 32] [--stride 8] [--scenes 2]
//                         [--scene-width 384] [--scene-height 288]
//                         [--faces 2] [--reps 2] [--slack 0.001]
//                         [--stages 0.0625,0.125,0.25,0.5]
//                         [--background mixed] [--threads 1]

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/detector.hpp"
#include "common.hpp"
#include "core/kernels/kernels.hpp"
#include "pipeline/cascade.hpp"
#include "pipeline/parallel_detect.hpp"

namespace {

using namespace hdface;
using Clock = std::chrono::steady_clock;

double best_of(std::size_t reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

// FNV-1a over the full map content — the same digest bench/encode_cache.cpp
// publishes, so exact-mode hashes are comparable across benches.
std::uint64_t map_hash(const pipeline::DetectionMap& m) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFULL;
      h *= 1099511628211ULL;
    }
  };
  mix(m.steps_x);
  mix(m.steps_y);
  for (const int p : m.predictions) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)));
  }
  for (const double s : m.scores) mix(std::bit_cast<std::uint64_t>(s));
  return h;
}

std::vector<double> parse_fractions(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    out.push_back(std::stod(csv.substr(pos, next - pos)));
    pos = next + 1;
  }
  if (out.empty()) throw std::invalid_argument("--stages: no fractions");
  return out;
}

dataset::BackgroundKind parse_background(const std::string& name) {
  if (name == "value-noise") return dataset::BackgroundKind::kValueNoise;
  if (name == "stripes") return dataset::BackgroundKind::kStripes;
  if (name == "blobs") return dataset::BackgroundKind::kBlobs;
  if (name == "gradient") return dataset::BackgroundKind::kGradient;
  if (name == "checker") return dataset::BackgroundKind::kChecker;
  if (name == "mixed") return dataset::BackgroundKind::kMixed;
  throw std::invalid_argument("--background: unknown kind '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 400));
  const auto window = static_cast<std::size_t>(args.get_int("window", 32));
  const auto stride = static_cast<std::size_t>(args.get_int("stride", 8));
  const auto n_scenes = static_cast<std::size_t>(args.get_int("scenes", 2));
  const auto scene_w =
      static_cast<std::size_t>(args.get_int("scene-width", 384));
  const auto scene_h =
      static_cast<std::size_t>(args.get_int("scene-height", 288));
  const auto faces = static_cast<std::size_t>(args.get_int("faces", 2));
  const auto epochs = static_cast<std::size_t>(args.get_int("epochs", 30));
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 2));
  const double slack = args.get_double("slack", 0.001);
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 1));
  const std::vector<double> fractions =
      parse_fractions(args.get("stages", "0.0625,0.125,0.25,0.5"));
  // Mixed background by default: calibration scenes must look like the
  // training distribution (whose negatives draw a random background kind per
  // window) or the classifier fires on out-of-distribution clutter and the
  // partial-overlap positives drag every threshold down.
  const std::string background_name = args.get("background", "mixed");
  const dataset::BackgroundKind background = parse_background(background_name);

  bench::print_header("Early-reject similarity cascade",
                      "holographic prefix scoring (DESIGN.md §13), "
                      "sparse-scene Fig 6 scan workload");

  // Sharp-classifier regime: high D and long training make the binarized
  // margins decisive, so partial-overlap windows are rejected instead of
  // becoming epsilon-margin positives that drag every calibrated threshold
  // into the background margin mass (DESIGN.md §13.4). Rejection power —
  // and therefore the scan-stage speedup — is a property of the classifier,
  // not of the cascade machinery.
  auto det_cfg = bench::hdface_config(dim);
  det_cfg.epochs = epochs;
  api::Detector det = api::DetectorBuilder()
                          .window(window)
                          .dim(dim)
                          .config(det_cfg)
                          .build();
  auto train_cfg = dataset::face2_config(n_train, 42);
  train_cfg.image_size = window;
  const auto train = make_face_dataset(train_cfg);
  std::printf("training (D=%zu, %zu windows of %zupx)...\n", dim, train.size(),
              window);
  det.fit(train);
  // Binary Hamming inference (the robustness/hardware deployment mode): the
  // cascade's prefix stages live in binarized-prototype Hamming space, so
  // scoring the golden maps there too puts every positive window's full-D
  // margin strictly above zero. Under cosine inference a float-positive
  // window can be a binary-space loser, and that one outlier drags every
  // calibrated threshold below the background margin distribution.
  det.pipeline()->mutable_classifier().set_binary_override(
      det.pipeline()->classifier().binary_prototypes());

  const auto scenes = pipeline::cascade_calibration_scenes(
      n_scenes, window, scene_w, scene_h, faces, 0xCAFE, background);

  // --- calibration (the tools/cascade_calibrate pass) ----------------------
  pipeline::CascadeCalibrationConfig cc;
  cc.stage_fractions = fractions;
  cc.slack = slack;
  cc.window = window;
  cc.stride = stride;
  cc.threads = threads;
  const pipeline::CascadeTable table =
      pipeline::calibrate_cascade(*det.pipeline(), scenes, cc);
  std::printf("calibrated %zu stage(s) over %zu scene(s):\n",
              table.stages.size(), scenes.size());
  for (std::size_t s = 0; s < table.stages.size(); ++s) {
    std::printf("  stage %zu: %zu/%zu words, reject margin < %+.5f\n", s,
                table.stages[s].words, (dim + 63) / 64,
                table.stages[s].reject_below);
  }

  api::DetectOptions exact_opts;
  exact_opts.threads = threads;
  exact_opts.stride = stride;
  exact_opts.encode_mode = pipeline::EncodeMode::kCellPlane;

  // --- exact scan: golden maps + baseline time -----------------------------
  std::vector<pipeline::DetectionMap> golden(scenes.size());
  const double t_exact = best_of(reps, [&] {
    for (std::size_t i = 0; i < scenes.size(); ++i) {
      golden[i] = det.detect_map(scenes[i], exact_opts);
    }
  });
  std::size_t windows_total = 0;
  for (const auto& g : golden) windows_total += g.steps_x * g.steps_y;

  // --- exact cascade mode: must hash identical to the golden maps ----------
  api::DetectOptions exact_mode = exact_opts;
  exact_mode.cascade =
      pipeline::CascadeConfig{pipeline::CascadeMode::kExact, table};
  bool exact_identical = true;
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    const auto map = det.detect_map(scenes[i], exact_mode);
    exact_identical =
        exact_identical && map_hash(map) == map_hash(golden[i]);
  }

  // --- calibrated cascade scan ---------------------------------------------
  api::DetectOptions cascade_opts = exact_opts;
  cascade_opts.cascade =
      pipeline::CascadeConfig{pipeline::CascadeMode::kCalibrated, table};
  pipeline::CascadeStats stats;
  api::Telemetry telemetry;
  telemetry.cascade = &stats;
  cascade_opts.telemetry = telemetry;
  std::vector<pipeline::DetectionMap> cascaded(scenes.size());
  const double t_cascade = best_of(reps, [&] {
    stats = {};
    for (std::size_t i = 0; i < scenes.size(); ++i) {
      cascaded[i] = det.detect_map(scenes[i], cascade_opts);
    }
  });
  const double speedup = t_exact / t_cascade;

  // --- cost decomposition: the shared plane-encode floor --------------------
  // Both paths pay the same scene cell-plane build before any window work;
  // the cascade can only cut the per-window scan on top of it. Build each
  // scene's plane ONCE, then time the two scan stages directly on the
  // prebuilt planes (detect_windows_on_plane) — a direct measurement, not a
  // cross-run subtraction, so scan_speedup is robust to plane-build variance.
  const std::size_t grid_step =
      std::gcd(stride, det.pipeline()->config().hog.cell_size);
  pipeline::ParallelDetectConfig scan_cfg;
  scan_cfg.threads = threads;
  scan_cfg.encode_mode = pipeline::EncodeMode::kCellPlane;
  std::vector<hog::CellPlane> planes(scenes.size());
  const double t_plane = best_of(reps, [&] {
    for (std::size_t i = 0; i < scenes.size(); ++i) {
      planes[i] = pipeline::build_scene_cell_plane(*det.pipeline(), scenes[i],
                                                   grid_step, scan_cfg);
    }
  });
  // The plane-reuse scan must reproduce the golden maps bit-for-bit (it is
  // the same post-plane code path detect_windows_parallel runs).
  bool plane_reuse_identical = true;
  const double scan_exact = best_of(reps, [&] {
    for (std::size_t i = 0; i < scenes.size(); ++i) {
      const auto map = pipeline::detect_windows_on_plane(
          *det.pipeline(), scenes[i], planes[i], window, stride, 1, scan_cfg);
      plane_reuse_identical =
          plane_reuse_identical && map_hash(map) == map_hash(golden[i]);
    }
  });
  pipeline::Cascade cascade_engine(det.pipeline()->classifier(), table);
  pipeline::ParallelDetectConfig cascade_scan_cfg = scan_cfg;
  cascade_scan_cfg.cascade = &cascade_engine;
  const double scan_cascade = best_of(reps, [&] {
    for (std::size_t i = 0; i < scenes.size(); ++i) {
      const auto map = pipeline::detect_windows_on_plane(
          *det.pipeline(), scenes[i], planes[i], window, stride, 1,
          cascade_scan_cfg);
      plane_reuse_identical =
          plane_reuse_identical && map_hash(map) == map_hash(cascaded[i]);
    }
  });
  const double scan_speedup = scan_exact / scan_cascade;

  // --- accuracy delta vs the golden maps -----------------------------------
  std::size_t false_rejects = 0;
  std::size_t golden_positives = 0;
  bool survivors_identical = true;
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    for (std::size_t idx = 0; idx < golden[i].predictions.size(); ++idx) {
      const bool golden_pos = golden[i].predictions[idx] == 1;
      const bool cascade_pos = cascaded[i].predictions[idx] == 1;
      if (golden_pos) ++golden_positives;
      if (golden_pos && !cascade_pos) ++false_rejects;
      if (cascade_pos) {
        survivors_identical =
            survivors_identical &&
            cascaded[i].predictions[idx] == golden[i].predictions[idx] &&
            cascaded[i].scores[idx] == golden[i].scores[idx];
      }
    }
  }

  util::Table tbl({"stage", "entered", "rejected", "pass rate"});
  std::vector<double> pass_rates(stats.stages.size(), 1.0);
  for (std::size_t s = 0; s < stats.stages.size(); ++s) {
    const auto& c = stats.stages[s];
    pass_rates[s] =
        c.entered == 0 ? 1.0
                       : 1.0 - static_cast<double>(c.rejected) /
                                   static_cast<double>(c.entered);
    char name[32], ent[32], rej[32], pr[32];
    std::snprintf(name, sizeof name, "%zu (%zuw)", s, table.stages[s].words);
    std::snprintf(ent, sizeof ent, "%llu",
                  static_cast<unsigned long long>(c.entered));
    std::snprintf(rej, sizeof rej, "%llu",
                  static_cast<unsigned long long>(c.rejected));
    std::snprintf(pr, sizeof pr, "%.4f", pass_rates[s]);
    tbl.add_row({name, ent, rej, pr});
  }
  std::printf("%s\n", tbl.to_string().c_str());
  std::printf("windows %zu, exact-scored survivors %llu (%.1f%%)\n",
              windows_total,
              static_cast<unsigned long long>(stats.exact_scored),
              100.0 * static_cast<double>(stats.exact_scored) /
                  static_cast<double>(windows_total));
  std::printf("exact %.1f ms, cascade %.1f ms — %.2fx end-to-end\n", t_exact,
              t_cascade, speedup);
  std::printf(
      "plane encode %.1f ms shared; scan stage %.1f ms -> %.1f ms — %.2fx "
      "plane-amortized\n",
      t_plane, scan_exact, scan_cascade, scan_speedup);
  std::printf("exact mode vs golden maps: %s\n",
              exact_identical ? "bit-identical" : "MISMATCH");
  std::printf("plane-reuse scans vs end-to-end maps: %s\n",
              plane_reuse_identical ? "bit-identical" : "MISMATCH");
  std::printf("golden positives %zu, false rejects %zu, survivors %s\n",
              golden_positives, false_rejects,
              survivors_identical ? "bit-identical" : "MISMATCH");

  FILE* json = std::fopen("bench_out/cascade.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n"
                 "  \"scene\": [%zu, %zu],\n"
                 "  \"scenes\": %zu,\n"
                 "  \"background\": \"%s\",\n"
                 "  \"window\": %zu,\n"
                 "  \"stride\": %zu,\n"
                 "  \"dim\": %zu,\n"
                 "  \"windows_total\": %zu,\n"
                 "  \"reps\": %zu,\n"
                 "  \"stage_words\": [",
                 scene_w, scene_h, n_scenes, background_name.c_str(), window,
                 stride, dim, windows_total, reps);
    for (std::size_t s = 0; s < table.stages.size(); ++s) {
      std::fprintf(json, "%s%zu", s ? ", " : "", table.stages[s].words);
    }
    std::fprintf(json, "],\n  \"stage_thresholds\": [");
    for (std::size_t s = 0; s < table.stages.size(); ++s) {
      std::fprintf(json, "%s%.17g", s ? ", " : "",
                   table.stages[s].reject_below);
    }
    std::fprintf(json, "],\n  \"stage_pass_rates\": [");
    for (std::size_t s = 0; s < pass_rates.size(); ++s) {
      std::fprintf(json, "%s%.6f", s ? ", " : "", pass_rates[s]);
    }
    std::fprintf(json, "],\n  \"stage_rejected\": [");
    for (std::size_t s = 0; s < stats.stages.size(); ++s) {
      std::fprintf(json, "%s%llu", s ? ", " : "",
                   static_cast<unsigned long long>(stats.stages[s].rejected));
    }
    std::fprintf(
        json,
        "],\n"
        "  \"exact_scored\": %llu,\n"
        "  \"exact_ms\": %.3f,\n"
        "  \"cascade_ms\": %.3f,\n"
        "  \"plane_ms\": %.3f,\n"
        "  \"scan_exact_ms\": %.3f,\n"
        "  \"scan_cascade_ms\": %.3f,\n"
        "  \"scan_speedup\": %.3f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"golden_positives\": %zu,\n"
        "  \"false_rejects\": %zu,\n"
        "  \"survivors_bit_identical\": %s,\n"
        "  \"exact_mode_bit_identical\": %s,\n"
        "  \"plane_reuse_bit_identical\": %s,\n"
        "  \"kernel_backend\": \"%s\",\n"
        "  \"golden_map_hashes\": [",
        static_cast<unsigned long long>(stats.exact_scored), t_exact,
        t_cascade, t_plane, scan_exact, scan_cascade, scan_speedup, speedup,
        golden_positives, false_rejects,
        survivors_identical ? "true" : "false",
        exact_identical ? "true" : "false",
        plane_reuse_identical ? "true" : "false",
        std::string(
            core::kernels::backend_name(core::kernels::active().backend))
            .c_str());
    for (std::size_t i = 0; i < golden.size(); ++i) {
      std::fprintf(json, "%s\"%016llx\"", i ? ", " : "",
                   static_cast<unsigned long long>(map_hash(golden[i])));
    }
    std::fprintf(json, "]\n}\n");
    std::fclose(json);
    std::printf("written: bench_out/cascade.json\n");
  }
  // CI gate: correctness is non-negotiable (identity + zero false rejects +
  // survivor parity); the speedup headline is reported, not gated here.
  return (exact_identical && survivors_identical && plane_reuse_identical &&
          false_rejects == 0)
             ? 0
             : 1;
}
