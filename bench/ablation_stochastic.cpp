// Ablations on the stochastic-arithmetic design choices DESIGN.md calls out:
//
//   1. Squaring decorrelation — the paper's literal V⊗V vs our
//      regeneration-based square. The literal form always yields 1.
//   2. Bernoulli mask precision (mask_bits) — bias floor of the selection
//      masks vs cost.
//   3. Binary-search iteration count for sqrt — convergence vs cost.
//   4. Faithful in-hyperspace HOG vs the decode-shortcut mode — end-to-end
//      accuracy and host time.
//   5. Bundling strategy — uniform vs value-weighted sparse superposition
//      (the capacity/cross-talk effect).

#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "hog/hd_hog.hpp"
#include "util/stopwatch.hpp"

namespace {
using namespace hdface;
}

int main() {
  bench::print_header("Ablations — stochastic arithmetic design choices",
                      "DESIGN.md §2 decisions (supports paper §4)");

  // --- 1. squaring decorrelation ------------------------------------------
  {
    core::StochasticContext ctx(8192, 1);
    util::Table t({"a", "a^2 true", "naive V*V", "regenerated square"});
    for (double a : {0.2, 0.5, 0.8}) {
      const auto v = ctx.construct(a);
      t.add_row({util::Table::num(a, 2), util::Table::num(a * a, 3),
                 util::Table::num(ctx.decode(ctx.multiply(v, v)), 3),
                 util::Table::num(ctx.decode(ctx.square(v)), 3)});
    }
    std::printf("\n1) squaring decorrelation (D=8192):\n%s", t.to_string().c_str());
    std::printf("the paper's literal V*V collapses to 1.0 for every value;\n"
                "regeneration recovers a^2 (DESIGN.md §2).\n");
  }

  // --- 2. mask precision ----------------------------------------------------
  {
    util::Table t({"mask_bits", "worst-case bias", "measured |bias| (p=0.37)"});
    for (int bits : {4, 8, 12, 16}) {
      core::StochasticConfig cfg;
      cfg.dim = 16384;
      cfg.seed = 2;
      cfg.mask_bits = bits;
      core::StochasticContext ctx(cfg);
      double mean = 0.0;
      const int trials = 64;
      for (int i = 0; i < trials; ++i) {
        mean += static_cast<double>(ctx.bernoulli_mask(0.37).popcount()) / 16384.0;
      }
      mean /= trials;
      t.add_row({std::to_string(bits),
                 util::Table::num(std::exp2(-bits - 1), 6),
                 util::Table::num(std::fabs(mean - 0.37), 6)});
    }
    std::printf("\n2) Bernoulli-mask precision:\n%s", t.to_string().c_str());
  }

  // --- 3. sqrt search iterations --------------------------------------------
  {
    util::Table t({"iters", "RMS error of sqrt over [0.04..0.81]"});
    for (int iters : {2, 4, 8, 12, 16}) {
      core::StochasticConfig cfg;
      cfg.dim = 8192;
      cfg.seed = 3;
      cfg.search_iters = iters;
      core::StochasticContext ctx(cfg);
      double sq = 0.0;
      int n = 0;
      for (double a : {0.04, 0.16, 0.36, 0.64, 0.81}) {
        for (int trial = 0; trial < 8; ++trial) {
          const double got = ctx.decode(ctx.sqrt(ctx.construct(a)));
          sq += (got - std::sqrt(a)) * (got - std::sqrt(a));
          ++n;
        }
      }
      t.add_row({std::to_string(iters), util::Table::num(std::sqrt(sq / n), 4)});
    }
    std::printf("\n3) sqrt binary-search iterations (D=8192):\n%s",
                t.to_string().c_str());
    std::printf("error floors at the ~1/sqrt(D) stochastic noise once the\n"
                "interval term 2^-iters drops below it.\n");
  }

  // --- 3b. selection-mask pool ------------------------------------------------
  {
    util::Table t({"mask source", "multiply RMS err", "host us/avg-op"});
    for (const std::size_t pool : {0u, 16u, 64u, 256u}) {
      core::StochasticConfig cfg;
      cfg.dim = 4096;
      cfg.seed = 0x900;
      cfg.mask_pool = pool;
      core::StochasticContext ctx(cfg);
      // Accuracy: multiplication expectation over a grid.
      double sq = 0.0;
      int n = 0;
      for (double a : {-0.7, -0.2, 0.4, 0.8}) {
        for (double b : {-0.5, 0.3, 0.9}) {
          for (int trial = 0; trial < 8; ++trial) {
            const double got =
                ctx.decode(ctx.multiply(ctx.construct(a), ctx.construct(b)));
            sq += (got - a * b) * (got - a * b);
            ++n;
          }
        }
      }
      // Host cost of the weighted average (the mask-bound operation).
      const auto x = ctx.construct(0.5);
      const auto y = ctx.construct(-0.5);
      util::Stopwatch sw;
      for (int i = 0; i < 2000; ++i) (void)ctx.weighted_average(x, y, 0.37);
      t.add_row({pool == 0 ? "fresh (RNG chain)" : "pool " + std::to_string(pool),
                 util::Table::num(std::sqrt(sq / n), 4),
                 util::Table::num(sw.seconds() / 2000.0 * 1e6, 2)});
    }
    std::printf("\n3b) selection-mask pool (D=4096):\n%s", t.to_string().c_str());
    std::printf("pooled masks (rotation-decorrelated) keep the expectations\n"
                "unbiased while removing the per-op RNG chain — the software\n"
                "analogue of the LFSR banks a hardware datapath would use.\n");
  }

  // --- 4. faithful vs decode-shortcut HD-HOG --------------------------------
  {
    auto w = bench::make_face2(150, 80);
    const std::size_t n = w.image_size();
    util::Table t({"extractor mode", "accuracy", "host s/img"});
    for (const bool faithful : {true, false}) {
      auto cfg = bench::hdface_config(4096, pipeline::HdFaceMode::kHdHog,
                                      faithful ? hog::HdHogMode::kFaithful
                                               : hog::HdHogMode::kDecodeShortcut);
      pipeline::HdFacePipeline pipe(cfg, n, n, w.classes());
      util::Stopwatch sw;
      pipe.fit(w.train);
      const double per_img = sw.seconds() / static_cast<double>(w.train.size());
      const double acc = pipe.evaluate(w.test);
      t.add_row({faithful ? "faithful (paper §4.3)" : "decode shortcut",
                 util::Table::percent(acc), util::Table::num(per_img, 3)});
    }
    std::printf("\n4) faithful vs decode-shortcut HD-HOG (FACE2, D=4k):\n%s",
                t.to_string().c_str());
    std::printf("the fully in-hyperspace chain costs more host time for the\n"
                "same detection quality (its value is robustness + bitwise\n"
                "hardware mapping, not host speed).\n");
  }

  // --- 5. bundling strategy --------------------------------------------------
  {
    auto w = bench::make_face2(200, 100);
    const std::size_t n = w.image_size();
    core::StochasticContext ctx(4096, 5);
    hog::HdHogConfig hcfg;
    hcfg.hog.cell_size = 4;
    hcfg.hog.bins = 8;
    hcfg.mode = hog::HdHogMode::kDecodeShortcut;
    hog::HdHogExtractor hd(ctx, hcfg, n, n);
    hog::FeatureBundler bundler(ctx, hd.cells_x(), hd.cells_y(), hcfg.hog.bins);

    auto run = [&](bool weighted) {
      auto encode = [&](const image::Image& img) {
        const auto record = hd.slot_record(img);
        return weighted ? bundler.bundle_weighted(record.hvs, record.values, 0.02)
                        : bundler.bundle(record.hvs);
      };
      std::vector<core::Hypervector> train_f;
      std::vector<core::Hypervector> test_f;
      for (const auto& img : w.train.images) train_f.push_back(encode(img));
      for (const auto& img : w.test.images) test_f.push_back(encode(img));
      learn::HdcConfig hc;
      hc.dim = 4096;
      hc.classes = w.classes();
      hc.epochs = 10;
      learn::HdcClassifier model(hc);
      model.fit(train_f, w.train.labels);
      return model.evaluate(test_f, w.test.labels);
    };
    util::Table t({"bundling", "accuracy"});
    t.add_row({"uniform (every slot, equal vote)", util::Table::percent(run(false))});
    t.add_row({"value-weighted sparse (default)", util::Table::percent(run(true))});
    std::printf("\n5) feature bundling strategy (FACE2, D=4k):\n%s",
                t.to_string().c_str());
    std::printf("uniform bundling buries the informative minority of slots\n"
                "under identical near-zero content (superposition cross-talk).\n");
  }
  return 0;
}
