#pragma once

// Shared workload definitions for the benchmark harness: Table-1-shaped
// datasets (sizes calibrated for a single-core machine; see DESIGN.md §3) and
// the standard pipeline configurations used across figures.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "dataset/dataset.hpp"
#include "dataset/emotion_generator.hpp"
#include "dataset/face_generator.hpp"
#include "pipeline/dnn_pipeline.hpp"
#include "pipeline/hdface_pipeline.hpp"
#include "pipeline/svm_pipeline.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace hdface::bench {

struct Workload {
  std::string name;
  dataset::Dataset train;
  dataset::Dataset test;

  std::size_t image_size() const { return train.images.front().width(); }
  std::size_t classes() const { return train.num_classes(); }
};

inline Workload make_emotion(std::size_t n_train, std::size_t n_test,
                             std::uint64_t seed = 7) {
  dataset::EmotionDatasetConfig c;
  c.image_size = 48;  // Table 1 resolution
  c.num_samples = n_train;
  c.seed = seed;
  Workload w;
  w.name = "EMOTION";
  w.train = make_emotion_dataset(c);
  c.num_samples = n_test;
  c.seed = core::mix64(seed, 0x7e57);
  w.test = make_emotion_dataset(c);
  return w;
}

inline Workload make_face1(std::size_t n_train, std::size_t n_test,
                           std::uint64_t seed = 42) {
  auto c = dataset::face1_config(n_train, seed);
  Workload w;
  w.name = "FACE1";
  w.train = make_face_dataset(c);
  c.num_samples = n_test;
  c.seed = core::mix64(c.seed, 0x7e57);
  w.test = make_face_dataset(c);
  return w;
}

inline Workload make_face2(std::size_t n_train, std::size_t n_test,
                           std::uint64_t seed = 42) {
  auto c = dataset::face2_config(n_train, seed);
  Workload w;
  w.name = "FACE2";
  w.train = make_face_dataset(c);
  c.num_samples = n_test;
  c.seed = core::mix64(c.seed, 0x7e57);
  w.test = make_face_dataset(c);
  return w;
}

// Standard HDFace configuration (paper's best: D = 4k unless overridden).
inline pipeline::HdFaceConfig hdface_config(
    std::size_t dim = 4096,
    pipeline::HdFaceMode mode = pipeline::HdFaceMode::kHdHog,
    hog::HdHogMode hd_mode = hog::HdHogMode::kFaithful) {
  pipeline::HdFaceConfig c;
  c.dim = dim;
  c.mode = mode;
  c.hd_hog_mode = hd_mode;
  c.hog.cell_size = 4;
  c.hog.bins = 8;
  c.epochs = 10;
  return c;
}

// Standard DNN configuration (paper's best: 1024×1024 hidden; scaled-down
// hidden sizes are near-equivalent on the scaled datasets, see Fig 5b).
inline pipeline::DnnConfig dnn_config(std::vector<std::size_t> hidden = {128, 128}) {
  pipeline::DnnConfig c;
  c.hog.cell_size = 4;
  c.hog.bins = 8;
  c.hidden = std::move(hidden);
  c.epochs = 30;
  return c;
}

inline pipeline::SvmPipelineConfig svm_config() {
  pipeline::SvmPipelineConfig c;
  c.hog.cell_size = 4;
  c.hog.bins = 8;
  c.epochs = 40;
  return c;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::filesystem::create_directories("bench_out");  // csv/ppm output dir
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace hdface::bench
