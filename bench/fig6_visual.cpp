// Fig 6 — visual impact of dimensionality.
//
// (a) Face detection: a sliding window moves over a composed scene in an
//     overlapping manner; windows HDFace classifies as "face" are tinted
//     blue. At low D spurious detections appear; at D >= 4k the map is clean.
//     Outputs: ASCII maps here + PPM overlays under bench_out/.
// (b) Emotion detection: canonical windows of each class are classified at
//     each dimensionality; low D mispredicts some expressions.

#include <cstdio>
#include <filesystem>

#include "api/detector.hpp"
#include "common.hpp"
#include "dataset/background_generator.hpp"
#include "image/pnm.hpp"
#include "image/transform.hpp"

namespace {

using namespace hdface;

struct Scene {
  image::Image img;
  // Top-left corners (in window-step units) of planted faces.
  std::vector<std::pair<std::size_t, std::size_t>> face_steps;
};

Scene compose_scene(std::size_t window, std::size_t stride) {
  Scene scene{image::Image(3 * window, 2 * window, 0.5f), {}};
  core::Rng rng(0x5CE2E);
  dataset::render_background(scene.img, dataset::BackgroundKind::kMixed, rng);
  // Two faces at step-aligned positions.
  const auto f1 = dataset::render_face_window(window, 11);
  const auto f2 = dataset::render_face_window(window, 23);
  image::paste(scene.img, f1, 0, 0);
  image::paste(scene.img, f2,
               static_cast<std::ptrdiff_t>(2 * window),
               static_cast<std::ptrdiff_t>(window));
  scene.face_steps.push_back({0, 0});
  scene.face_steps.push_back({2 * window / stride, window / stride});
  return scene;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 150));

  bench::print_header("Fig 6 — dimensionality vs detection quality (visual)",
                      "HDFace (DAC'22) Figure 6 (a) face maps, (b) emotion grid");
  std::filesystem::create_directories("bench_out");

  const std::size_t window = 48;
  const std::size_t stride = 24;
  const Scene scene = compose_scene(window, stride);

  auto face_data = bench::make_face2(n_train, 10);

  util::Table summary({"D", "face windows hit", "false positives", "map"});
  for (const std::size_t dim : {1024u, 4096u, 10240u}) {
    api::Detector det = api::DetectorBuilder()
                            .window(window)
                            .config(bench::hdface_config(dim))
                            .build();
    det.fit(face_data.train);
    api::DetectOptions opts;
    opts.stride = stride;
    const auto map = det.detect_map(scene.img, opts);

    std::string ascii;
    std::size_t hits = 0;
    std::size_t false_pos = 0;
    for (std::size_t sy = 0; sy < map.steps_y; ++sy) {
      for (std::size_t sx = 0; sx < map.steps_x; ++sx) {
        const bool face_here = [&] {
          for (auto [fx, fy] : scene.face_steps) {
            if (sx == fx && sy == fy) return true;
          }
          return false;
        }();
        const bool detected = map.prediction_at(sx, sy) == 1;
        if (detected && face_here) ++hits;
        if (detected && !face_here) ++false_pos;
        ascii += detected ? 'F' : '.';
      }
      ascii += '/';
    }
    const auto overlay = det.render_overlay(scene.img, map);
    const std::string path = "bench_out/fig6_face_d" + std::to_string(dim) + ".ppm";
    image::write_ppm(overlay, path);
    summary.add_row({std::to_string(dim),
                     std::to_string(hits) + "/" + std::to_string(scene.face_steps.size()),
                     std::to_string(false_pos), ascii});
    std::printf("  D=%zu detection map written: %s\n", dim, path.c_str());
  }
  std::printf("\nFig 6a — sliding-window face detection (F = window classified "
              "face,\nrows separated by '/'):\n%s",
              summary.to_string().c_str());

  // --- Fig 6b: emotion windows across dimensionality -----------------------
  auto emotion = bench::make_emotion(350, 10);
  util::Table emo_table({"D", "angry", "disgust", "fear", "happy", "neutral",
                         "sad", "surprise", "correct"});
  for (const std::size_t dim : {1024u, 4096u, 10240u}) {
    api::Detector det =
        api::DetectorBuilder()
            .window(48)
            .classes(7)
            .config(bench::hdface_config(dim, pipeline::HdFaceMode::kHdHog,
                                         hog::HdHogMode::kDecodeShortcut))
            .build();
    det.fit(emotion.train);
    std::vector<std::string> row = {std::to_string(dim)};
    int correct = 0;
    for (int c = 0; c < dataset::kNumEmotions; ++c) {
      const auto img = dataset::render_emotion_window(
          48, static_cast<dataset::Emotion>(c), 0xF16B + static_cast<unsigned>(c));
      const int pred = det.predict(img);
      row.push_back(dataset::emotion_name(static_cast<dataset::Emotion>(pred)));
      if (pred == c) ++correct;
    }
    row.push_back(std::to_string(correct) + "/7");
    emo_table.add_row(row);
  }
  std::printf("\nFig 6b — predicted emotion per canonical window:\n%s",
              emo_table.to_string().c_str());
  std::printf(
      "paper shape: low D (1k) mispredicts windows/expressions; D >= 4k is\n"
      "clean. Overlays in bench_out/ show the blue-tinted detections.\n");
  return 0;
}
