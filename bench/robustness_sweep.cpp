// End-to-end fault-injection robustness sweep (paper §6.6, Table 2 rows,
// extended to the full fault taxonomy of noise/fault_model.hpp).
//
// Unlike table2_robustness — which corrupts pre-extracted feature vectors —
// this sweep runs pipeline::FaultCampaign against *live* detectors: every
// cell injects its sampled fault pattern into the stored hypervector
// memories (item memories, mask pool, binarized prototypes) plus the
// in-flight query hypervectors, re-encodes the held-out set through the
// faulted storage, and scans a planted-face scene through the parallel
// detection engine. The comparison rows reproduce the paper's collapse
// cases: HOG on the original (fixed-point) representation and an 8-bit
// quantized DNN under the same bit-error rates.
//
// Output: bench_out/robustness_sweep.json. Exit code 0 iff the paper's
// qualitative ordering holds — the full-hyperspace detector stays within 5
// accuracy points of clean at 10% BER while both comparison rows lose more
// than it does.
//
// Usage:
//   ./build/bench/robustness_sweep [--train 100] [--test 48] [--threads N]

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "dataset/background_generator.hpp"
#include "image/transform.hpp"
#include "learn/quantized_mlp.hpp"
#include "pipeline/fault_campaign.hpp"
#include "pipeline/features.hpp"
#include "pipeline/robustness.hpp"

namespace {

using namespace hdface;

constexpr double kRates[] = {0.0, 0.02, 0.05, 0.10, 0.15};
constexpr double kProbeRate = 0.10;  // the acceptance-check BER

double rate_accuracy(const std::vector<pipeline::FaultCampaignCell>& cells,
                     const std::string& subject, noise::FaultKind kind,
                     double rate) {
  for (const auto& c : cells) {
    if (c.subject == subject && c.kind == kind && c.rate == rate) {
      return c.accuracy;
    }
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 100));
  const auto n_test = static_cast<std::size_t>(args.get_int("test", 48));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));

  bench::print_header("Robustness sweep — fault-injection campaign",
                      "HDFace (DAC'22) Table 2, end-to-end");

  auto w = bench::make_face2(n_train, n_test);
  const std::size_t window = w.image_size();

  // Fig6-style scene with two planted faces for the detection-quality column.
  image::Image scene(2 * window, 2 * window, 0.5f);
  {
    core::Rng rng(0x5CE2E);
    dataset::render_background(scene, dataset::BackgroundKind::kMixed, rng);
    image::paste(scene, dataset::render_face_window(window, 21), 0, 0);
    image::paste(scene, dataset::render_face_window(window, 22),
                 static_cast<std::ptrdiff_t>(window),
                 static_cast<std::ptrdiff_t>(window));
  }
  const std::vector<pipeline::Detection> truth = {
      {0, 0, window, 0.0}, {window, window, window, 0.0}};

  // ---- HDFace full-hyperspace campaign (the tentpole subject) -------------
  pipeline::FaultCampaignConfig cc;
  cc.rates.assign(std::begin(kRates), std::end(kRates));
  cc.threads = threads;
  cc.stride = window / 4;
  pipeline::FaultCampaign campaign(cc);

  const std::vector<std::size_t> dims = {4096, 1024};
  for (const auto dim : dims) {
    auto cfg = bench::hdface_config(dim, pipeline::HdFaceMode::kHdHog,
                                    hog::HdHogMode::kDecodeShortcut);
    auto pipe = std::make_shared<pipeline::HdFacePipeline>(cfg, window, window,
                                                           w.classes());
    std::printf("training hdface_d%zu (%zu windows)...\n", dim,
                w.train.size());
    pipe->fit(w.train);
    campaign.add_subject("hdface_d" + std::to_string(dim), std::move(pipe),
                         window);
  }
  std::printf("campaign: %zu subjects x %zu kinds x %zu rates...\n",
              campaign.num_subjects(), cc.kinds.size(), cc.rates.size());
  const auto cells = campaign.run(w.test, scene, truth);

  // ---- comparison rows: orig-rep HOG and quantized DNN --------------------
  // Transient flips only — the representation-level collapse the paper's
  // table shows; persistent faults only make these rows worse.
  std::vector<double> orig_accs;
  {
    hog::HogConfig hog_cfg;
    hog_cfg.cell_size = 4;
    hog_cfg.bins = 8;
    hog::HogExtractor hog(hog_cfg);
    const auto train_f = pipeline::extract_hog_features(w.train, hog);
    const auto test_f = pipeline::extract_hog_features(w.test, hog);
    learn::EncoderConfig ec;
    ec.dim = dims.front();
    ec.input_dim = train_f.front().size();
    ec.gamma = 1.0;
    learn::NonlinearEncoder encoder(ec);
    encoder.calibrate(train_f);
    std::vector<core::Hypervector> encoded;
    encoded.reserve(train_f.size());
    for (const auto& f : train_f) encoded.push_back(encoder.encode(f));
    learn::HdcConfig hc;
    hc.dim = dims.front();
    hc.classes = w.classes();
    hc.epochs = 10;
    learn::HdcClassifier model(hc);
    model.fit(encoded, w.train.labels);
    for (const double rate : kRates) {
      double acc = 0.0;
      for (const std::uint64_t seed : {0xD0C1ull, 0xD0C2ull, 0xD0C3ull}) {
        acc += pipeline::hdc_orig_rep_accuracy_under_errors(
            model, encoder, test_f, w.test.labels, rate, seed);
      }
      orig_accs.push_back(acc / 3.0);
    }
    std::printf("orig-rep row swept\n");
  }

  std::vector<double> dnn_accs;
  {
    auto cfg = bench::dnn_config();
    pipeline::DnnPipeline dnn(cfg, window, window, w.classes());
    const auto train_f = dnn.extract_features(w.train);
    const auto test_f = dnn.extract_features(w.test);
    dnn.fit_features(train_f, w.train.labels);
    learn::QuantizedMlp q(dnn.mutable_mlp(), 8);
    for (const double rate : kRates) {
      double acc = 0.0;
      for (const std::uint64_t seed : {0xD0C1ull, 0xD0C2ull, 0xD0C3ull}) {
        acc += pipeline::dnn_accuracy_under_errors(q, test_f, w.test.labels,
                                                   rate, seed);
      }
      dnn_accs.push_back(acc / 3.0);
    }
    std::printf("dnn 8-bit row swept\n");
  }

  // ---- acceptance checks ---------------------------------------------------
  const std::string best = "hdface_d" + std::to_string(dims.front());
  const double hd_clean = rate_accuracy(
      cells, best, noise::FaultKind::kTransientFlip, 0.0);
  const double hd_probe = rate_accuracy(
      cells, best, noise::FaultKind::kTransientFlip, kProbeRate);
  const double hd_drop = hd_clean - hd_probe;
  const double orig_drop = orig_accs.front() - orig_accs[3];
  const double dnn_drop = dnn_accs.front() - dnn_accs[3];

  const bool hd_holds = hd_drop <= 0.05;
  const bool orig_collapses = orig_drop > hd_drop && orig_drop >= 0.15;
  const bool dnn_collapses = dnn_drop > hd_drop && dnn_drop >= 0.15;
  const bool pass = hd_holds && orig_collapses && dnn_collapses;

  util::Table table({"row", "0%", "2%", "5%", "10%", "15%"});
  for (const auto dim : dims) {
    const std::string subject = "hdface_d" + std::to_string(dim);
    for (const auto kind : cc.kinds) {
      std::vector<std::string> row = {subject + " " + fault_kind_name(kind)};
      for (const double rate : cc.rates) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f",
                      rate_accuracy(cells, subject, kind, rate));
        row.push_back(buf);
      }
      table.add_row(row);
    }
  }
  for (const auto* name : {"orig-rep fixed16", "DNN 8-bit"}) {
    const auto& accs = std::string(name) == "DNN 8-bit" ? dnn_accs : orig_accs;
    std::vector<std::string> row = {name};
    for (const double a : accs) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", a);
      row.push_back(buf);
    }
    table.add_row(row);
  }
  std::printf("\naccuracy under fault injection:\n%s\n",
              table.to_string().c_str());
  std::printf("at %.0f%% BER: hdface drop %.3f | orig-rep drop %.3f | "
              "dnn drop %.3f -> %s\n",
              kProbeRate * 100.0, hd_drop, orig_drop, dnn_drop,
              pass ? "PASS" : "FAIL");

  // ---- JSON ----------------------------------------------------------------
  FILE* json = std::fopen("bench_out/robustness_sweep.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"train\": %zu,\n"
                 "  \"test\": %zu,\n"
                 "  \"window\": %zu,\n"
                 "  \"scene\": [%zu, %zu],\n"
                 "  \"cells\": [\n",
                 w.name.c_str(), n_train, n_test, window, scene.width(),
                 scene.height());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto& c = cells[i];
      std::fprintf(
          json,
          "    {\"subject\": \"%s\", \"dim\": %zu, \"kind\": \"%s\", "
          "\"rate\": %.4f, \"accuracy\": %.6f, \"mean_best_iou\": %.6f, "
          "\"num_detections\": %zu, \"disturbed_fraction\": %.6f}%s\n",
          c.subject.c_str(), c.dim, fault_kind_name(c.kind), c.rate,
          c.accuracy, c.mean_best_iou, c.num_detections,
          c.faultable_bits
              ? static_cast<double>(c.disturbed_bits) /
                    static_cast<double>(c.faultable_bits)
              : 0.0,
          i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"orig_rep_fixed16\": [");
    for (std::size_t i = 0; i < orig_accs.size(); ++i) {
      std::fprintf(json, "%s{\"rate\": %.4f, \"accuracy\": %.6f}",
                   i ? ", " : "", kRates[i], orig_accs[i]);
    }
    std::fprintf(json, "],\n  \"dnn_8bit\": [");
    for (std::size_t i = 0; i < dnn_accs.size(); ++i) {
      std::fprintf(json, "%s{\"rate\": %.4f, \"accuracy\": %.6f}",
                   i ? ", " : "", kRates[i], dnn_accs[i]);
    }
    std::fprintf(json,
                 "],\n"
                 "  \"checks\": {\n"
                 "    \"probe_rate\": %.4f,\n"
                 "    \"hdface_drop\": %.6f,\n"
                 "    \"orig_rep_drop\": %.6f,\n"
                 "    \"dnn_drop\": %.6f,\n"
                 "    \"hdface_within_5pts\": %s,\n"
                 "    \"orig_rep_collapses\": %s,\n"
                 "    \"dnn_collapses\": %s,\n"
                 "    \"pass\": %s\n"
                 "  }\n"
                 "}\n",
                 kProbeRate, hd_drop, orig_drop, dnn_drop,
                 hd_holds ? "true" : "false", orig_collapses ? "true" : "false",
                 dnn_collapses ? "true" : "false", pass ? "true" : "false");
    std::fclose(json);
    std::printf("written: bench_out/robustness_sweep.json\n");
  }
  return pass ? 0 : 1;
}
