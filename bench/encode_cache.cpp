// Cell-plane encode cache: encode-stage and end-to-end speedup + determinism.
//
// hdlint: allow-file(wall-clock) — this bench *measures* elapsed time; the
// timings are reported output and never influence what the detector computes.
//
// The reference multiscale scene (two planted faces, window 32, stride 4,
// scales {1.0, 0.75, 0.5}) is encoded two ways per pyramid level:
//   per_window — the engine's historical path: every window re-runs the full
//                per-pixel stochastic chain on its own reseeded scratch,
//   cell_plane — the scene-level cache: the chain runs once per grid cell,
//                windows assemble from cached cells (hog/cell_plane.hpp).
// With stride 4 and 8px cells each pixel sits in (32/4)² = 64 windows, so the
// cache should cut encode work by well over an order of magnitude; the
// measured ratio is the headline number. The end-to-end detect comparison and
// a threads {1, 4, 8} bit-identity check of the cell-plane map ride along.
// Results land in bench_out/encode_cache.json; the exit code gates CI
// (nonzero unless cell_plane beats per_window AND the maps are bit-identical
// at every thread count).
//
// Usage:
//   ./build/bench/encode_cache [--dim 2048] [--train 100] [--reps 2]

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

#include "api/detector.hpp"
#include "common.hpp"
#include "core/kernels/kernels.hpp"
#include "pipeline/multiscale.hpp"
#include "pipeline/parallel_detect.hpp"
#include "dataset/background_generator.hpp"
#include "hog/cell_plane.hpp"
#include "image/transform.hpp"

namespace {

using namespace hdface;
using Clock = std::chrono::steady_clock;

double best_of(std::size_t reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

bool maps_identical(const pipeline::DetectionMap& a,
                    const pipeline::DetectionMap& b) {
  return a.steps_x == b.steps_x && a.steps_y == b.steps_y &&
         a.predictions == b.predictions && a.scores == b.scores;
}

// FNV-1a over the full map content (geometry, predictions, score bit
// patterns). CI diffs this hash between HDFACE_KERNEL_BACKEND=scalar and
// the host's best SIMD backend: equal hashes prove the backends produce the
// same detection map bit for bit.
std::uint64_t map_hash(const pipeline::DetectionMap& m) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFULL;
      h *= 1099511628211ULL;
    }
  };
  mix(m.steps_x);
  mix(m.steps_y);
  for (const int p : m.predictions) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)));
  }
  for (const double s : m.scores) mix(std::bit_cast<std::uint64_t>(s));
  return h;
}

// The engine's per-window salt (pipeline/parallel_detect.cpp): the encode-only
// loop below must replay the exact stream the per_window scan uses so the
// measured stage cost is the real one.
constexpr std::uint64_t kWindowStreamSalt = 0xBA7C4ED0ULL;

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 2048));
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 100));
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 2));
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());

  bench::print_header("Cell-plane encode cache",
                      "HDFace (DAC'22) §4 encode stage, Fig 6 scan workload");

  const std::size_t window = 32;
  const std::size_t stride = 4;
  const std::vector<double> scales = {1.0, 0.75, 0.5};

  // Reference multiscale scene: two faces (one full-size, one half-size that
  // only the 0.5 pyramid level sees at window resolution) in mixed clutter.
  image::Image scene(128, 96, 0.5f);
  core::Rng rng(0xCACE);
  dataset::render_background(scene, dataset::BackgroundKind::kMixed, rng);
  image::paste(scene, dataset::render_face_window(window, 21), 8, 48);
  image::paste(scene, dataset::render_face_window(2 * window, 22), 56, 8);

  // FACE2-style training windows at the detector's 32px geometry (make_face2
  // renders at the Table 1 48px resolution, which this window cannot tile).
  auto train_cfg = dataset::face2_config(n_train, 42);
  train_cfg.image_size = window;
  const auto train = make_face_dataset(train_cfg);
  api::Detector det = api::DetectorBuilder()
                          .window(window)
                          .dim(dim)
                          .config(bench::hdface_config(dim))
                          .build();
  std::printf("training (D=%zu, %zu windows)...\n", dim, train.size());
  det.fit(train);

  pipeline::HdFacePipeline& pipe = *det.pipeline();
  const auto pyramid = pipeline::build_pyramid(scene, window, scales);

  std::size_t windows_total = 0;
  for (const auto& level : pyramid.levels) {
    windows_total += ((level.width() - window) / stride + 1) *
                     ((level.height() - window) / stride + 1);
  }
  std::printf("scene %zux%zu, %zu pyramid levels, %zu windows total, "
              "%zu hardware core(s)\n\n",
              scene.width(), scene.height(), pyramid.levels.size(),
              windows_total, hw);

  // --- encode stage only (no classification) -------------------------------
  pipe.prepare_concurrent();
  const std::uint64_t seed_base =
      core::mix64(pipe.config().seed, kWindowStreamSalt);
  const std::size_t grid_step =
      std::gcd(stride, pipe.hd_extractor()->config().hog.cell_size);

  const double t_enc_window = best_of(reps, [&] {
    core::StochasticContext scratch = pipe.fork_context(seed_base);
    image::Image patch;
    for (const auto& level : pyramid.levels) {
      const std::size_t sx_n = (level.width() - window) / stride + 1;
      const std::size_t sy_n = (level.height() - window) / stride + 1;
      for (std::size_t idx = 0; idx < sx_n * sy_n; ++idx) {
        scratch.reseed(core::mix64(seed_base, idx));
        image::crop_into(level, (idx % sx_n) * stride, (idx / sx_n) * stride,
                         window, window, patch);
        (void)pipe.encode_image(patch, scratch);
      }
    }
  });

  pipeline::EncodeCacheStats stats;
  const double t_enc_plane = best_of(reps, [&] {
    stats = {};
    for (std::size_t li = 0; li < pyramid.levels.size(); ++li) {
      pipeline::ParallelDetectConfig cfg;
      cfg.threads = 1;
      cfg.scale_index = li;
      cfg.cache_stats = &stats;
      const auto plane = pipeline::build_scene_cell_plane(
          pipe, pyramid.levels[li], grid_step, cfg);
      const std::size_t sx_n = (pyramid.levels[li].width() - window) / stride + 1;
      const std::size_t sy_n = (pyramid.levels[li].height() - window) / stride + 1;
      for (std::size_t idx = 0; idx < sx_n * sy_n; ++idx) {
        (void)pipe.hd_extractor()->extract_from_plane(
            plane, (idx % sx_n) * stride, (idx / sx_n) * stride, nullptr);
      }
    }
  });
  const double encode_speedup = t_enc_window / t_enc_plane;
  // The manual assembly loop above bypasses detect_windows_parallel, so tally
  // its window-side stats from geometry (exact: every window reads every slot).
  stats.slot_reads = windows_total * pipe.hd_extractor()->slots();
  stats.windows_assembled = windows_total;

  // --- end-to-end multiscale detect ----------------------------------------
  api::DetectOptions per_window;
  per_window.threads = 1;
  per_window.stride = stride;
  per_window.scales = scales;
  const double t_det_window =
      best_of(reps, [&] { (void)det.detect(scene, per_window); });

  api::DetectOptions cell_plane = per_window;
  cell_plane.encode_mode = pipeline::EncodeMode::kCellPlane;
  const double t_det_plane =
      best_of(reps, [&] { (void)det.detect(scene, cell_plane); });
  const double detect_speedup = t_det_window / t_det_plane;

  // --- cell-plane determinism across thread counts -------------------------
  bool identical = true;
  pipeline::DetectionMap base;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    api::DetectOptions opts;
    opts.threads = threads;
    opts.stride = stride;
    opts.encode_mode = pipeline::EncodeMode::kCellPlane;
    auto map = det.detect_map(scene, opts);
    if (threads == 1u) {
      base = std::move(map);
    } else {
      identical = identical && maps_identical(base, map);
    }
  }

  util::Table table({"stage", "per_window ms", "cell_plane ms", "speedup"});
  char a[64], b[64], s[32];
  std::snprintf(a, sizeof a, "%.1f", t_enc_window);
  std::snprintf(b, sizeof b, "%.1f", t_enc_plane);
  std::snprintf(s, sizeof s, "%.1fx", encode_speedup);
  table.add_row({"encode", a, b, s});
  std::snprintf(a, sizeof a, "%.1f", t_det_window);
  std::snprintf(b, sizeof b, "%.1f", t_det_plane);
  std::snprintf(s, sizeof s, "%.1fx", detect_speedup);
  table.add_row({"detect (e2e)", a, b, s});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("cells computed %llu, cached slot reads %llu (%zu windows)\n",
              static_cast<unsigned long long>(stats.cells_computed),
              static_cast<unsigned long long>(stats.slot_reads), windows_total);
  std::printf("cell-plane maps at threads {1,4,8}: %s\n",
              identical ? "bit-identical" : "MISMATCH");
  const std::uint64_t hash = map_hash(base);
  std::printf("map hash (threads=1 cell-plane, backend %s): %016llx\n",
              std::string(core::kernels::backend_name(
                              core::kernels::active().backend))
                  .c_str(),
              static_cast<unsigned long long>(hash));

  FILE* json = std::fopen("bench_out/encode_cache.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n"
                 "  \"scene\": [%zu, %zu],\n"
                 "  \"window\": %zu,\n"
                 "  \"stride\": %zu,\n"
                 "  \"scales\": [1.0, 0.75, 0.5],\n"
                 "  \"dim\": %zu,\n"
                 "  \"windows_total\": %zu,\n"
                 "  \"hardware_threads\": %zu,\n"
                 "  \"reps\": %zu,\n"
                 "  \"encode_per_window_ms\": %.3f,\n"
                 "  \"encode_cell_plane_ms\": %.3f,\n"
                 "  \"encode_speedup\": %.3f,\n"
                 "  \"detect_per_window_ms\": %.3f,\n"
                 "  \"detect_cell_plane_ms\": %.3f,\n"
                 "  \"detect_speedup\": %.3f,\n"
                 "  \"cells_computed\": %llu,\n"
                 "  \"slot_reads\": %llu,\n"
                 "  \"cell_plane_bit_identical_threads_1_4_8\": %s,\n"
                 "  \"kernel_backend\": \"%s\",\n"
                 "  \"map_hash\": \"%016llx\"\n"
                 "}\n",
                 scene.width(), scene.height(), window, stride, dim,
                 windows_total, hw, reps, t_enc_window, t_enc_plane,
                 encode_speedup, t_det_window, t_det_plane, detect_speedup,
                 static_cast<unsigned long long>(stats.cells_computed),
                 static_cast<unsigned long long>(stats.slot_reads),
                 identical ? "true" : "false",
                 std::string(core::kernels::backend_name(
                                 core::kernels::active().backend))
                     .c_str(),
                 static_cast<unsigned long long>(hash));
    std::fclose(json);
    std::printf("written: bench_out/encode_cache.json\n");
  }
  // CI gate: the cache must actually be faster and stay deterministic.
  return (identical && encode_speedup > 1.0) ? 0 : 1;
}
