// Fig 7 — speedup and energy efficiency of HDFace vs the DNN on the ARM A53
// CPU and the Kintex-7 FPGA, for training and inference.
//
// The pipelines are instrumented with exact operation counts (core/op_counter)
// and the counts are mapped through the platform cost models in src/perf —
// the offline substitution for the authors' Raspberry Pi + power meter and
// Vivado testbed (DESIGN.md §3).
//
// Accounting conventions:
//  * train/epoch = one training epoch per image INCLUDING feature extraction
//    (the paper's own Fig 5 heatmap compares epochs this way: 0.9 s vs 5.4 s,
//    a 6:1 ratio matching its Fig 7 train speedup);
//  * train total = feature extraction once + all learning epochs (DNN: 30
//    epochs of fwd/bwd/update on cached features; HDFace: 10 adaptive HDC
//    passes) — the deployment-relevant total;
//  * inference = feature extraction + classification (DNN forward pass;
//    HDFace binary Hamming similarity search);
//  * results are reported at bench scale (Table-1-shaped 48x48 windows) and
//    extrapolated to the paper's 512x512 FACE2 scale, where pixel-dependent
//    costs grow with the image area and the DNN input layer grows with the
//    HOG descriptor length. Ratios are per image, platform-model based.
//
// Also reproduces the §2 motivation: HOG's share of a classical HDC training
// pipeline (feature extraction + HDC learning).

#include <cstdio>

#include "common.hpp"
#include "perf/cycle_sim.hpp"
#include "perf/platform.hpp"
#include "util/csv.hpp"

namespace {

using namespace hdface;
using core::OpCounter;
using core::OpKind;

constexpr std::size_t kDnnEpochs = 30;
constexpr std::size_t kHdcEpochs = 10;

// Analytic MLP op counts (avoids materializing paper-scale weight matrices).
OpCounter mlp_forward_ops(const std::vector<std::size_t>& layers) {
  OpCounter c;
  for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
    const auto macs = static_cast<std::uint64_t>(layers[l]) * layers[l + 1];
    c.add(OpKind::kFloatMul, macs);
    c.add(OpKind::kFloatAdd, macs + layers[l + 1]);
    c.add(OpKind::kFloatCmp, layers[l + 1]);
  }
  c.add(OpKind::kFloatTrig, layers.back());
  return c;
}

OpCounter mlp_train_step_ops(const std::vector<std::size_t>& layers) {
  OpCounter c = mlp_forward_ops(layers);
  std::uint64_t params = 0;
  for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
    const auto macs = static_cast<std::uint64_t>(layers[l]) * layers[l + 1];
    c.add(OpKind::kFloatMul, 2 * macs);
    c.add(OpKind::kFloatAdd, 2 * macs);
    params += macs + layers[l + 1];
  }
  c.add(OpKind::kFloatMul, 2 * params);
  c.add(OpKind::kFloatAdd, 2 * params);
  return c;
}

OpCounter scaled(const OpCounter& c, double factor) {
  OpCounter out;
  for (std::size_t k = 0; k < core::kOpKindCount; ++k) {
    out.counts[k] = static_cast<std::uint64_t>(
        static_cast<double>(c.counts[k]) * factor);
  }
  return out;
}

struct MeasuredCosts {
  OpCounter hd_feature;   // HD-HOG hyperspace extraction, per image
  OpCounter hdc_update;   // adaptive HDC update, per image per epoch
  OpCounter hog_float;    // classical HOG, per image
  std::size_t hog_dim = 0;
  std::size_t classes = 0;
  std::size_t dim = 0;
};

MeasuredCosts measure(const bench::Workload& w, std::size_t dim,
                      std::size_t probe) {
  MeasuredCosts m;
  m.classes = w.classes();
  m.dim = dim;
  const std::size_t n = w.image_size();

  auto cfg = bench::hdface_config(dim);
  pipeline::HdFacePipeline pipe(cfg, n, n, w.classes());
  OpCounter features;
  OpCounter learning;
  pipe.set_counters(&features, &learning);
  dataset::Dataset sample;
  sample.name = w.train.name;
  sample.class_names = w.train.class_names;
  for (std::size_t i = 0; i < probe; ++i) {
    sample.images.push_back(w.train.images[i]);
    sample.labels.push_back(w.train.labels[i]);
  }
  const auto encoded = pipe.encode_dataset(sample);
  m.hd_feature = scaled(features, 1.0 / static_cast<double>(probe));
  learning.reset();
  pipe.fit_features(encoded, sample.labels);
  m.hdc_update =
      scaled(learning, 1.0 / static_cast<double>(probe * cfg.epochs));

  hog::HogExtractor hog(cfg.hog);
  OpCounter hog_ops;
  for (std::size_t i = 0; i < probe; ++i) {
    (void)hog.extract(w.train.images[i], &hog_ops);
  }
  m.hog_float = scaled(hog_ops, 1.0 / static_cast<double>(probe));
  m.hog_dim = hog.feature_size(n, n);
  return m;
}

// Binary Hamming similarity search over the class prototypes.
OpCounter hamming_search_ops(std::size_t dim, std::size_t classes) {
  OpCounter c;
  const std::uint64_t words = (dim + 63) / 64;
  c.add(OpKind::kWordLogic, words * classes);
  c.add(OpKind::kPopcount, words * classes);
  return c;
}

struct PhaseCosts {
  OpCounter hd_epoch;    // one epoch incl. extraction
  OpCounter hd_total;    // extraction once + all HDC epochs
  OpCounter hd_infer;
  OpCounter dnn_epoch;
  OpCounter dnn_total;
  OpCounter dnn_infer;
};

// pixel_scale scales extraction costs (image area ratio); hog_dim is the
// descriptor length at that scale (DNN input width).
PhaseCosts compose(const MeasuredCosts& m, double pixel_scale,
                   std::size_t hog_dim) {
  PhaseCosts p;
  const std::vector<std::size_t> layers = {hog_dim, 1024, 1024, m.classes};

  const OpCounter hd_feat = scaled(m.hd_feature, pixel_scale);
  const OpCounter hog = scaled(m.hog_float, pixel_scale);
  const OpCounter dnn_step = mlp_train_step_ops(layers);

  p.hd_epoch = hd_feat;
  p.hd_epoch.merge(m.hdc_update);
  p.hd_total = hd_feat;
  p.hd_total.merge(scaled(m.hdc_update, static_cast<double>(kHdcEpochs)));
  p.hd_infer = hd_feat;
  p.hd_infer.merge(hamming_search_ops(m.dim, m.classes));

  p.dnn_epoch = hog;
  p.dnn_epoch.merge(dnn_step);
  p.dnn_total = hog;
  p.dnn_total.merge(scaled(dnn_step, static_cast<double>(kDnnEpochs)));
  p.dnn_infer = hog;
  p.dnn_infer.merge(mlp_forward_ops(layers));
  return p;
}

double ratio(double a, double b) { return b > 0 ? a / b : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto probe = static_cast<std::size_t>(args.get_int("probe", 6));

  bench::print_header(
      "Fig 7 — HDFace vs DNN efficiency on CPU and FPGA (cost model)",
      "HDFace (DAC'22) Figure 7 (a) training, (b) inference; §2 motivation");

  std::vector<bench::Workload> workloads;
  workloads.push_back(bench::make_emotion(probe + 2, 2));
  workloads.push_back(bench::make_face1(probe + 2, 2));
  workloads.push_back(bench::make_face2(probe + 2, 2));

  const auto& cpu = perf::arm_a53();
  const auto& fpga = perf::kintex7_fpga();

  util::Table table({"dataset", "scale", "phase", "platform", "speedup (x)",
                     "energy eff (x)"});
  util::CsvWriter csv("bench_out/fig7_efficiency.csv",
                      {"dataset", "scale", "phase", "platform", "speedup",
                       "energy_eff"});
  double sums[3][2] = {};
  double esums[3][2] = {};
  std::size_t count_rows = 0;

  for (const auto& w : workloads) {
    const MeasuredCosts m = measure(w, 4096, probe);

    // §2 motivation: share of HOG in a classical "HOG + HDC learning"
    // training pipeline (per image: float HOG + kHdcEpochs HDC updates).
    {
      OpCounter hdc_learn_total =
          scaled(m.hdc_update, static_cast<double>(kHdcEpochs));
      const double hog_s = cpu.estimate(m.hog_float).seconds;
      const double learn_s = cpu.estimate(hdc_learn_total).seconds;
      // At the paper's image sizes the HOG term scales with pixel count
      // while the HDC learning term does not — that is where §2's ~85%
      // figure comes from.
      const double n_now = static_cast<double>(w.image_size());
      const double paper_edge = (w.name == "EMOTION") ? 48.0
                                : (w.name == "FACE1") ? 1024.0
                                                      : 512.0;
      const double scale_up = (paper_edge * paper_edge) / (n_now * n_now);
      std::printf(
          "  [%s] HOG share of classical HOG+HDC training: %.0f%% at bench "
          "scale, %.0f%% at paper scale\n",
          w.name.c_str(), 100.0 * hog_s / (hog_s + learn_s),
          100.0 * hog_s * scale_up / (hog_s * scale_up + learn_s));
    }

    // Bench scale and paper-scale extrapolation.
    const std::size_t n = w.image_size();
    const double paper_n = (w.name == "EMOTION") ? 48.0
                           : (w.name == "FACE1") ? 1024.0
                                                 : 512.0;
    const double area_ratio = (paper_n * paper_n) / static_cast<double>(n * n);
    const auto paper_hog_dim = static_cast<std::size_t>(
        static_cast<double>(m.hog_dim) * area_ratio);
    const struct {
      const char* name;
      double pixel_scale;
      std::size_t hog_dim;
    } scales[] = {{"bench", 1.0, m.hog_dim},
                  {"paper", area_ratio, paper_hog_dim}};

    for (const auto& s : scales) {
      const PhaseCosts p = compose(m, s.pixel_scale, s.hog_dim);
      const OpCounter* hd_phase[3] = {&p.hd_epoch, &p.hd_total, &p.hd_infer};
      const OpCounter* dnn_phase[3] = {&p.dnn_epoch, &p.dnn_total, &p.dnn_infer};
      const char* phase_name[3] = {"train/epoch", "train total", "inference"};
      const perf::PlatformModel* platforms[2] = {&cpu, &fpga};
      const char* platform_name[2] = {"CPU", "FPGA"};
      for (int ph = 0; ph < 3; ++ph) {
        for (int pl = 0; pl < 2; ++pl) {
          const auto hd_cost = platforms[pl]->estimate(*hd_phase[ph]);
          const auto dnn_cost = platforms[pl]->estimate(*dnn_phase[ph]);
          const double speedup = ratio(dnn_cost.seconds, hd_cost.seconds);
          const double energy =
              ratio(dnn_cost.micro_joules, hd_cost.micro_joules);
          if (std::string(s.name) == "paper") {
            sums[ph][pl] += speedup;
            esums[ph][pl] += energy;
          }
          table.add_row({w.name, s.name, phase_name[ph], platform_name[pl],
                         util::Table::num(speedup, 2),
                         util::Table::num(energy, 2)});
          csv.add_row({w.name, s.name, phase_name[ph], platform_name[pl],
                       std::to_string(speedup), std::to_string(energy)});
        }
      }
    }
    ++count_rows;
  }
  const double nw = static_cast<double>(count_rows);
  const char* avg_phase_name[3] = {"train/epoch", "train total", "inference"};
  for (int ph = 0; ph < 3; ++ph) {
    for (int pl = 0; pl < 2; ++pl) {
      table.add_row({"AVERAGE", "paper", avg_phase_name[ph],
                     pl == 0 ? "CPU" : "FPGA",
                     util::Table::num(sums[ph][pl] / nw, 2),
                     util::Table::num(esums[ph][pl] / nw, 2)});
    }
  }
  std::printf("\n%s", table.to_string().c_str());

  // Cycle-level FPGA classification latency (the paper's "cycle-accurate
  // simulator" role): one window through the pipelined datapath.
  {
    util::Table sim_table({"window", "D", "cycles", "us @200MHz", "bottleneck"});
    const auto& dp = perf::kintex7_reference_datapath();
    for (const std::size_t d : {1024u, 4096u, 10240u}) {
      const auto sim = perf::make_classification_pipeline(dp, d, 48, 4, 8, 2);
      const auto rep = sim.run(dp.device().clock_hz);
      sim_table.add_row({"48x48", std::to_string(d),
                         std::to_string(rep.total_cycles),
                         util::Table::num(rep.seconds * 1e6, 1),
                         rep.bottleneck});
    }
    std::printf("\ncycle-level FPGA window classification (pipeline simulator):\n%s",
                sim_table.to_string().c_str());
  }

  std::printf(
      "paper: train 6.1x/3.0x (CPU), 4.6x/12.1x (FPGA); inference 1.4x/1.7x\n"
      "(CPU), 2.9x/2.6x (FPGA); training HOG share ~85%% (§2). Shape to check\n"
      "at paper scale: HDFace wins training clearly on both platforms, wins\n"
      "or ties inference, and the FPGA energy ratio is the largest gain.\n"
      "csv written: bench_out/fig7_efficiency.csv\n");
  return 0;
}
