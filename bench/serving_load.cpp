// Detection-as-a-service under load: latency-vs-offered-load curves.
//
// Timing lives entirely inside serve/load_gen.cpp (which carries the
// wall-clock justification); detection results stay seed-pure: the
// verification phase proves every served response bit-identical to a direct
// Detector::detect call on the same deterministic request stream.
//
// Three phases, all drawing from one seed-pure RequestFactory:
//   1. verify  — serve the full request mix concurrently, then replay every
//                request id through direct detect(); detections must match
//                bit-for-bit (the engine's per-window seeding contract lifted
//                through the queue/worker machinery).
//   2. closed  — sweep client concurrency (1, 2, 4, ...); offered load adapts
//                to the server, tracing the throughput ceiling.
//   3. open    — sweep seeded-Poisson arrival rates around the measured
//                ceiling; rejections are not retried, so kQueueFull rate and
//                tail latency vs offered rps are the saturation picture.
//
// Latency quantiles come from the server's merged worker-shard histograms
// (exact merge — see util/latency_histogram.hpp). Every run also gates on
// queue-accounting conservation. Results: bench_out/serving.json.
//
// Usage:
//   ./build/bench/serving_load [--dim 2048] [--train 80] [--window 16]
//                              [--requests 48] [--workers 2] [--depth 8]
//                              [--tenants 2] [--max-conc 8]

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/detector.hpp"
#include "common.hpp"
#include "hog/hd_hog.hpp"
#include "serve/load_gen.hpp"
#include "serve/server.hpp"
#include "util/mutex.hpp"

namespace {

using namespace hdface;

struct QuantilesMs {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

QuantilesMs quantiles_ms(const util::LatencyHistogram& h) {
  constexpr double kNsPerMs = 1e6;
  QuantilesMs q;
  q.p50 = static_cast<double>(h.quantile(0.50)) / kNsPerMs;
  q.p99 = static_cast<double>(h.quantile(0.99)) / kNsPerMs;
  q.p999 = static_cast<double>(h.quantile(0.999)) / kNsPerMs;
  q.mean = h.mean() / kNsPerMs;
  q.max = static_cast<double>(h.max()) / kNsPerMs;
  return q;
}

bool detections_identical(const std::vector<pipeline::Detection>& a,
                          const std::vector<pipeline::Detection>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].x != b[i].x || a[i].y != b[i].y || a[i].size != b[i].size ||
        a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

// Phase 1: serve every request with a concurrent worker pool, then replay
// the identical stream through direct detect(). Bit-identity per request id.
struct VerifyResult {
  std::uint64_t requests = 0;
  std::uint64_t compared = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t serve_errors = 0;
  bool conserved = false;
  bool bit_identical() const {
    return mismatches == 0 && serve_errors == 0 && compared == requests;
  }
};

VerifyResult run_verification(const api::Detector& detector,
                              const serve::RequestFactory& factory,
                              std::size_t requests, std::size_t workers,
                              std::size_t queue_depth) {
  serve::ServerConfig server_cfg;
  server_cfg.queue_depth = queue_depth;
  server_cfg.workers = workers;
  serve::DetectionServer server(detector, server_cfg);

  std::map<std::uint64_t, api::Response> served;
  util::Mutex served_mutex;
  std::uint64_t serve_errors = 0;

  // Closed-loop submission from `workers` client threads: ids are statically
  // partitioned (client c owns ids c, c+K, ...), so every id is served exactly
  // once regardless of scheduling.
  const std::size_t n_clients = std::max<std::size_t>(1, workers);
  std::vector<std::thread> clients;
  clients.reserve(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      for (std::uint64_t i = c; i < requests; i += n_clients) {
        const api::Request request = factory.make(i);
        for (;;) {
          auto submission = server.submit(request);
          if (!submission.admitted()) {
            // hdlint: allow(sleep-as-sync) — rejection backoff pacing only;
            // the loop re-submits and correctness never rides on the nap.
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            continue;
          }
          auto outcome = submission.response.get();
          const util::MutexLock lock(served_mutex);
          if (outcome.ok()) {
            served.emplace(i, std::move(outcome).take());
          } else {
            serve_errors += 1;
          }
          break;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.shutdown();

  VerifyResult result;
  result.requests = requests;
  result.serve_errors = serve_errors;
  result.conserved = server.stats().conserved();

  api::Detector direct = detector;  // shares the trained pipeline
  for (std::uint64_t i = 0; i < requests; ++i) {
    const auto it = served.find(i);
    if (it == served.end()) continue;
    auto expected = direct.detect(factory.make(i));
    result.compared += 1;
    if (!expected.ok() ||
        !detections_identical(it->second.detections,
                              expected.value().detections)) {
      result.mismatches += 1;
      std::printf("  MISMATCH at request %" PRIu64 " (%s)\n", i,
                  std::string(serve::mix_kind_name(factory.kind_of(i))).c_str());
    }
  }
  return result;
}

void print_report_row(util::Table& table, const std::string& label,
                      const serve::LoadReport& report) {
  const QuantilesMs e2e = quantiles_ms(report.server.e2e);
  char buf[6][32];
  std::snprintf(buf[0], sizeof buf[0], "%.1f", report.achieved_rps);
  std::snprintf(buf[1], sizeof buf[1], "%" PRIu64, report.completed);
  std::snprintf(buf[2], sizeof buf[2], "%" PRIu64, report.rejected);
  std::snprintf(buf[3], sizeof buf[3], "%.2f", e2e.p50);
  std::snprintf(buf[4], sizeof buf[4], "%.2f", e2e.p99);
  std::snprintf(buf[5], sizeof buf[5], "%.2f", e2e.p999);
  table.add_row({label, buf[0], buf[1], buf[2], buf[3], buf[4], buf[5],
                 report.server.conserved() ? "yes" : "NO"});
}

void json_report(FILE* f, const serve::LoadReport& r, int indent) {
  const QuantilesMs e2e = quantiles_ms(r.server.e2e);
  const QuantilesMs wait = quantiles_ms(r.server.queue_wait);
  const QuantilesMs exec = quantiles_ms(r.server.execute);
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::fprintf(f,
               "%s\"offered\": %" PRIu64 ", \"admitted\": %" PRIu64
               ", \"rejected\": %" PRIu64 ", \"completed\": %" PRIu64
               ", \"errors\": %" PRIu64 ", \"retries\": %" PRIu64 ",\n"
               "%s\"duration_s\": %.4f, \"achieved_rps\": %.2f,\n"
               "%s\"e2e_ms\": {\"p50\": %.4f, \"p99\": %.4f, \"p999\": %.4f, "
               "\"mean\": %.4f, \"max\": %.4f},\n"
               "%s\"queue_wait_ms\": {\"p50\": %.4f, \"p99\": %.4f, "
               "\"p999\": %.4f},\n"
               "%s\"execute_ms\": {\"p50\": %.4f, \"p99\": %.4f, "
               "\"p999\": %.4f},\n"
               "%s\"histogram_count\": %" PRIu64 ", \"conserved\": %s",
               pad.c_str(), r.offered, r.admitted, r.rejected, r.completed,
               r.errors, r.retries, pad.c_str(), r.duration_s, r.achieved_rps,
               pad.c_str(), e2e.p50, e2e.p99, e2e.p999, e2e.mean, e2e.max,
               pad.c_str(), wait.p50, wait.p99, wait.p999, pad.c_str(),
               exec.p50, exec.p99, exec.p999, pad.c_str(),
               r.server.e2e.count(),
               r.server.conserved() ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 2048));
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 80));
  const auto window = static_cast<std::size_t>(args.get_int("window", 16));
  const auto requests = static_cast<std::size_t>(args.get_int("requests", 48));
  const auto workers = static_cast<std::size_t>(args.get_int("workers", 2));
  const auto depth = static_cast<std::size_t>(args.get_int("depth", 8));
  const auto tenants = static_cast<std::size_t>(args.get_int("tenants", 2));
  const auto max_conc = static_cast<std::size_t>(args.get_int("max-conc", 8));

  bench::print_header("Detection-as-a-service: load, admission, tail latency",
                      "HDFace (DAC'22) robustness claim under concurrent load");

  // Train a small face/no-face model; serving latency, not accuracy, is the
  // subject here.
  dataset::FaceDatasetConfig data_cfg;
  data_cfg.image_size = window;
  data_cfg.num_samples = n_train;
  api::Detector det = api::DetectorBuilder()
                          .window(window)
                          .dim(dim)
                          .hd_hog_mode(hog::HdHogMode::kDecodeShortcut)
                          .epochs(5)
                          .build();
  std::printf("training (D=%zu, window %zu, %zu samples)...\n", dim, window,
              n_train);
  det.fit(dataset::make_face_dataset(data_cfg));

  serve::LoadGenConfig load_cfg;
  load_cfg.requests = requests;
  load_cfg.tenants = tenants;
  load_cfg.stride = std::max<std::size_t>(1, window / 2);
  const serve::RequestFactory factory(window, load_cfg);

  std::size_t mix_counts[3] = {0, 0, 0};
  for (std::uint64_t i = 0; i < requests; ++i) {
    mix_counts[static_cast<std::size_t>(factory.kind_of(i))] += 1;
  }
  std::printf("mix over %zu requests: %zu single-window, %zu multiscale, "
              "%zu faulted\n\n",
              requests, mix_counts[0], mix_counts[1], mix_counts[2]);

  // --- phase 1: served == direct, bit for bit ------------------------------
  std::printf("[1/3] verification: served vs direct detect, %zu workers...\n",
              workers);
  const VerifyResult verify =
      run_verification(det, factory, requests, workers, depth);
  std::printf("  %" PRIu64 "/%" PRIu64 " compared, %" PRIu64
              " mismatch(es), %" PRIu64 " serve error(s), conserved: %s\n",
              verify.compared, verify.requests, verify.mismatches,
              verify.serve_errors, verify.conserved ? "yes" : "NO");
  std::printf("  bit-identical: %s\n\n",
              verify.bit_identical() ? "yes" : "NO");

  // --- phase 2: closed-loop concurrency sweep ------------------------------
  std::printf("[2/3] closed loop: concurrency sweep to saturation...\n");
  std::vector<std::pair<std::size_t, serve::LoadReport>> closed_runs;
  util::Table closed_table({"clients", "rps", "done", "rej", "p50 ms",
                            "p99 ms", "p999 ms", "conserved"});
  double peak_rps = 0.0;
  for (std::size_t conc = 1; conc <= max_conc; conc *= 2) {
    serve::ServerConfig server_cfg;
    server_cfg.queue_depth = depth;
    server_cfg.workers = workers;
    serve::DetectionServer server(det, server_cfg);
    serve::LoadGenConfig run_cfg = load_cfg;
    run_cfg.concurrency = conc;
    auto report = serve::run_closed_loop(server, factory, run_cfg);
    server.shutdown();
    report.server = server.stats();  // post-drain snapshot: in_flight == 0
    peak_rps = std::max(peak_rps, report.achieved_rps);
    print_report_row(closed_table, std::to_string(conc), report);
    closed_runs.emplace_back(conc, std::move(report));
  }
  std::printf("%s\n", closed_table.to_string().c_str());

  // --- phase 3: open-loop rate sweep around the measured ceiling -----------
  std::printf("[3/3] open loop: offered-rate sweep around %.1f rps...\n",
              peak_rps);
  const double fractions[] = {0.25, 0.5, 1.0, 2.0};
  std::vector<serve::LoadReport> open_runs;
  util::Table open_table({"offered rps", "rps", "done", "rej", "p50 ms",
                          "p99 ms", "p999 ms", "conserved"});
  for (const double frac : fractions) {
    const double rate = std::max(1.0, peak_rps * frac);
    serve::ServerConfig server_cfg;
    server_cfg.queue_depth = depth;
    server_cfg.workers = workers;
    serve::DetectionServer server(det, server_cfg);
    serve::LoadGenConfig run_cfg = load_cfg;
    run_cfg.offered_rps = rate;
    auto report = serve::run_open_loop(server, factory, run_cfg);
    server.shutdown();
    report.server = server.stats();
    char label[32];
    std::snprintf(label, sizeof label, "%.1f", rate);
    print_report_row(open_table, label, report);
    open_runs.push_back(std::move(report));
  }
  std::printf("%s\n", open_table.to_string().c_str());

  bool conserved_all = verify.conserved;
  for (const auto& [conc, report] : closed_runs) {
    conserved_all = conserved_all && report.server.conserved();
  }
  for (const auto& report : open_runs) {
    conserved_all = conserved_all && report.server.conserved();
  }

  FILE* json = std::fopen("bench_out/serving.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n"
                 "  \"window\": %zu,\n"
                 "  \"dim\": %zu,\n"
                 "  \"requests\": %zu,\n"
                 "  \"workers\": %zu,\n"
                 "  \"queue_depth\": %zu,\n"
                 "  \"tenants\": %zu,\n"
                 "  \"seed\": %" PRIu64 ",\n"
                 "  \"mix\": {\"single_window\": %zu, \"multiscale_scene\": "
                 "%zu, \"faulted_query\": %zu},\n",
                 window, dim, requests, workers, depth, tenants, load_cfg.seed,
                 mix_counts[0], mix_counts[1], mix_counts[2]);
    std::fprintf(json,
                 "  \"verification\": {\"requests\": %" PRIu64
                 ", \"compared\": %" PRIu64 ", \"mismatches\": %" PRIu64
                 ", \"serve_errors\": %" PRIu64
                 ", \"conserved\": %s, \"bit_identical\": %s},\n",
                 verify.requests, verify.compared, verify.mismatches,
                 verify.serve_errors, verify.conserved ? "true" : "false",
                 verify.bit_identical() ? "true" : "false");
    std::fprintf(json, "  \"closed_loop\": [\n");
    for (std::size_t i = 0; i < closed_runs.size(); ++i) {
      std::fprintf(json, "    {\"concurrency\": %zu,\n",
                   closed_runs[i].first);
      json_report(json, closed_runs[i].second, 5);
      std::fprintf(json, "}%s\n", i + 1 < closed_runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"open_loop\": [\n");
    for (std::size_t i = 0; i < open_runs.size(); ++i) {
      std::fprintf(json, "    {\"offered_rps\": %.2f,\n",
                   open_runs[i].offered_rps);
      json_report(json, open_runs[i], 5);
      std::fprintf(json, "}%s\n", i + 1 < open_runs.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"peak_closed_loop_rps\": %.2f,\n"
                 "  \"conserved_all\": %s,\n"
                 "  \"bit_identical\": %s\n"
                 "}\n",
                 peak_rps, conserved_all ? "true" : "false",
                 verify.bit_identical() ? "true" : "false");
    std::fclose(json);
    std::printf("written: bench_out/serving.json\n");
  }

  if (!verify.bit_identical()) {
    std::printf("FAIL: served results are not bit-identical to direct detect\n");
    return 1;
  }
  if (!conserved_all) {
    std::printf("FAIL: queue accounting not conserved\n");
    return 1;
  }
  std::printf("serving contract holds: bit-identical results, conserved "
              "accounting\n");
  return 0;
}
