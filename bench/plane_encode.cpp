// Plane-encode floor: lazy cell materialization driven by the cascade
// prescreen + the fused batched per-cell kernel, against the eager
// reference-chain baseline (DESIGN.md §14).
//
// hdlint: allow-file(wall-clock) — this bench *measures* elapsed time; the
// timings are reported output and never influence what the detector computes.
//
// Workload: a sparse scene (flat background, a few pasted faces — the
// geometry the paper's holographic scan targets: faces are rare, background
// dominates). The bench
//   1. trains a detector and calibrates a prescreen-carrying cascade table
//      over mixed-background calibration scenes (the training distribution),
//   2. times the cold end-to-end scan (plane encode + window scan) on the
//      sparse scene in three configurations, cascade enabled in all three:
//        baseline    eager plane, reference per-pixel cell chain
//        eager+fused eager plane, fused batched cell kernel
//        lazy+fused  lazy plane (prescreen-driven materialization) + fused
//      All three produce bit-identical DetectionMaps — the fused kernel and
//      the lazy schedule are pure performance choices.
//   3. checks map-hash identity lazy vs eager and across threads {1, 4, 8}
//      for both plane modes (and thread-parity of the per-window encode,
//      which is its own deterministic stream),
//   4. reports the materialized-cell fraction, prescreen-forced cells, and
//      plane hit rate from EncodeCacheStats.
// Results land in bench_out/plane_encode.json; CI (plane-smoke) gates with
// jq on speedup >= 2, materialized_fraction < 0.6, and the identity flags.
// The exit code enforces the correctness half (identities).
//
// Usage:
//   ./build/bench/plane_encode [--dim 4096] [--train 400] [--epochs 30]
//                              [--window 32] [--stride 8]
//                              [--scene-width 384] [--scene-height 288]
//                              [--faces 2] [--reps 2] [--slack 0.001]
//                              [--calib-scenes 2] [--prescreen-fraction 0.25]

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "api/detector.hpp"
#include "common.hpp"
#include "core/kernels/kernels.hpp"
#include "hog/cell_plane.hpp"
#include "pipeline/cascade.hpp"
#include "pipeline/parallel_detect.hpp"

namespace {

using namespace hdface;
using Clock = std::chrono::steady_clock;

double best_of(std::size_t reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

// FNV-1a over the full map content — the digest bench/cascade.cpp and
// bench/encode_cache.cpp publish, so hashes are comparable across benches.
std::uint64_t map_hash(const pipeline::DetectionMap& m) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFULL;
      h *= 1099511628211ULL;
    }
  };
  mix(m.steps_x);
  mix(m.steps_y);
  for (const int p : m.predictions) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)));
  }
  for (const double s : m.scores) mix(std::bit_cast<std::uint64_t>(s));
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 400));
  const auto epochs = static_cast<std::size_t>(args.get_int("epochs", 30));
  const auto window = static_cast<std::size_t>(args.get_int("window", 32));
  const auto stride = static_cast<std::size_t>(args.get_int("stride", 8));
  const auto scene_w =
      static_cast<std::size_t>(args.get_int("scene-width", 384));
  const auto scene_h =
      static_cast<std::size_t>(args.get_int("scene-height", 288));
  const auto faces = static_cast<std::size_t>(args.get_int("faces", 2));
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 2));
  const double slack = args.get_double("slack", 0.001);
  const auto n_calib =
      static_cast<std::size_t>(args.get_int("calib-scenes", 2));
  const double prescreen_fraction =
      args.get_double("prescreen-fraction", 0.25);

  bench::print_header("Plane-encode floor: lazy cells + fused kernel",
                      "prescreen-driven lazy materialization (DESIGN.md §14), "
                      "sparse-scene Fig 6 scan workload");

  auto det_cfg = bench::hdface_config(dim);
  det_cfg.epochs = epochs;
  api::Detector det = api::DetectorBuilder()
                          .window(window)
                          .dim(dim)
                          .config(det_cfg)
                          .build();
  auto train_cfg = dataset::face2_config(n_train, 42);
  train_cfg.image_size = window;
  const auto train = make_face_dataset(train_cfg);
  std::printf("training (D=%zu, %zu windows of %zupx)...\n", dim, train.size(),
              window);
  det.fit(train);
  det.pipeline()->mutable_classifier().set_binary_override(
      det.pipeline()->classifier().binary_prototypes());

  // Prescreen calibration runs on mixed-background scenes (the training
  // distribution — see bench/cascade.cpp on why); the thresholds transfer to
  // the sparse eval scene because both floors are positive-window minima.
  const auto calib_scenes = pipeline::cascade_calibration_scenes(
      n_calib, window, scene_w, scene_h, faces, 0xCAFE);
  pipeline::CascadeCalibrationConfig cc;
  cc.stage_fractions = {0.0625, 0.125, 0.25, 0.5};
  cc.slack = slack;
  cc.window = window;
  cc.stride = stride;
  cc.prescreen = true;
  cc.prescreen_fraction = prescreen_fraction;
  const pipeline::CascadeTable table =
      pipeline::calibrate_cascade(*det.pipeline(), calib_scenes, cc);
  std::printf(
      "prescreen: %zu words, reject margin < %+.5f or spread < %.4f "
      "(vmax scale %.4f)\n",
      table.prescreen_words, table.prescreen_reject_below,
      table.prescreen_spread_below, table.prescreen_vmax);

  // Sparse eval scene: flat background + `faces` pasted training-style faces.
  // This is the lazy plane's home turf — almost every cell belongs only to
  // prescreen-rejected windows.
  image::Image scene(scene_w, scene_h);
  for (float& p : scene.pixels()) p = 0.5f;
  auto face_cfg = dataset::face2_config(faces + 1, 0x5EED);
  face_cfg.image_size = window;
  const auto face_imgs = make_face_dataset(face_cfg);
  for (std::size_t f = 0; f < faces; ++f) {
    const std::size_t fx =
        ((f + 1) * scene_w / (faces + 1)) / stride * stride;
    const std::size_t fy = (scene_h / 2) / stride * stride;
    for (std::size_t y = 0; y < window; ++y) {
      for (std::size_t x = 0; x < window; ++x) {
        scene.at(fx + x, fy + y) = face_imgs.images[f].at(x, y);
      }
    }
  }

  pipeline::Cascade cascade(det.pipeline()->classifier(), table);
  const auto scan_cfg = [&](std::size_t threads, pipeline::PlaneMode mode,
                            bool reference, bool with_cascade) {
    pipeline::ParallelDetectConfig cfg;
    cfg.threads = threads;
    cfg.encode_mode = pipeline::EncodeMode::kCellPlane;
    cfg.plane_mode = mode;
    cfg.reference_cell_chain = reference;
    if (with_cascade) cfg.cascade = &cascade;
    return cfg;
  };
  auto& pl = *det.pipeline();

  // --- cold end-to-end timings, cascade enabled ----------------------------
  pipeline::DetectionMap map_baseline;
  const double t_baseline = best_of(reps, [&] {
    auto cfg = scan_cfg(1, pipeline::PlaneMode::kEager, true, true);
    map_baseline =
        pipeline::detect_windows_parallel(pl, scene, window, stride, 1, cfg);
  });
  pipeline::DetectionMap map_eager;
  const double t_eager_fused = best_of(reps, [&] {
    auto cfg = scan_cfg(1, pipeline::PlaneMode::kEager, false, true);
    map_eager =
        pipeline::detect_windows_parallel(pl, scene, window, stride, 1, cfg);
  });
  pipeline::DetectionMap map_lazy;
  pipeline::EncodeCacheStats estats;
  pipeline::CascadeStats cstats;
  const double t_lazy = best_of(reps, [&] {
    auto cfg = scan_cfg(1, pipeline::PlaneMode::kLazy, false, true);
    estats = {};
    cstats = {};
    cfg.cache_stats = &estats;
    cfg.cascade_stats = &cstats;
    map_lazy =
        pipeline::detect_windows_parallel(pl, scene, window, stride, 1, cfg);
  });
  const double speedup = t_baseline / t_lazy;
  const double fused_speedup = t_baseline / t_eager_fused;
  const std::uint64_t h_eager = map_hash(map_eager);
  const std::uint64_t h_lazy = map_hash(map_lazy);
  bool identical = map_hash(map_baseline) == h_eager && h_eager == h_lazy;

  // --- thread parity: hashes must not move at any thread count -------------
  const std::size_t thread_counts[] = {1, 4, 8};
  bool thread_parity = true;
  for (const std::size_t t : thread_counts) {
    for (const pipeline::PlaneMode mode :
         {pipeline::PlaneMode::kEager, pipeline::PlaneMode::kLazy}) {
      auto cfg = scan_cfg(t, mode, false, true);
      const auto map =
          pipeline::detect_windows_parallel(pl, scene, window, stride, 1, cfg);
      thread_parity = thread_parity && map_hash(map) == h_lazy;
    }
  }
  // The per-window encode is its own deterministic stream (not bit-identical
  // to the plane modes by design) — pin its thread parity against itself.
  std::uint64_t h_per_window = 0;
  bool per_window_parity = true;
  for (const std::size_t t : thread_counts) {
    pipeline::ParallelDetectConfig cfg;
    cfg.threads = t;
    cfg.encode_mode = pipeline::EncodeMode::kPerWindow;
    const auto map =
        pipeline::detect_windows_parallel(pl, scene, window, stride, 1, cfg);
    if (h_per_window == 0) h_per_window = map_hash(map);
    per_window_parity = per_window_parity && map_hash(map) == h_per_window;
  }

  const std::size_t windows_total = map_lazy.steps_x * map_lazy.steps_y;
  const double frac = estats.cells_total == 0
                          ? 1.0
                          : static_cast<double>(estats.cells_computed) /
                                static_cast<double>(estats.cells_total);
  const double hit_rate =
      estats.ensure_checks == 0
          ? 0.0
          : 1.0 - static_cast<double>(estats.cells_computed) /
                      static_cast<double>(estats.ensure_checks);

  std::printf("cold e2e, cascade on: baseline (eager+reference) %.1f ms, "
              "eager+fused %.1f ms, lazy+fused %.1f ms\n",
              t_baseline, t_eager_fused, t_lazy);
  std::printf("speedup %.2fx (fused alone %.2fx)\n", speedup, fused_speedup);
  std::printf("windows %zu, prescreen rejected %llu of %llu\n", windows_total,
              static_cast<unsigned long long>(cstats.prescreen_rejected),
              static_cast<unsigned long long>(cstats.prescreen_entered));
  std::printf("cells: %llu materialized of %llu (%.3f), %llu forced by "
              "prescreen, plane hit rate %.3f\n",
              static_cast<unsigned long long>(estats.cells_computed),
              static_cast<unsigned long long>(estats.cells_total), frac,
              static_cast<unsigned long long>(estats.cells_forced_prescreen),
              hit_rate);
  std::printf("maps: baseline/eager/lazy %s, threads {1,4,8} %s, per-window "
              "thread parity %s\n",
              identical ? "bit-identical" : "MISMATCH",
              thread_parity ? "bit-identical" : "MISMATCH",
              per_window_parity ? "bit-identical" : "MISMATCH");

  FILE* json = std::fopen("bench_out/plane_encode.json", "w");
  if (json) {
    std::fprintf(
        json,
        "{\n"
        "  \"scene\": [%zu, %zu],\n"
        "  \"window\": %zu,\n"
        "  \"stride\": %zu,\n"
        "  \"dim\": %zu,\n"
        "  \"faces\": %zu,\n"
        "  \"reps\": %zu,\n"
        "  \"windows_total\": %zu,\n"
        "  \"prescreen_words\": %zu,\n"
        "  \"prescreen_rejected\": %llu,\n"
        "  \"prescreen_entered\": %llu,\n"
        "  \"baseline_ms\": %.3f,\n"
        "  \"eager_fused_ms\": %.3f,\n"
        "  \"lazy_fused_ms\": %.3f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"fused_speedup\": %.3f,\n"
        "  \"cells_total\": %llu,\n"
        "  \"cells_computed\": %llu,\n"
        "  \"cells_forced_prescreen\": %llu,\n"
        "  \"materialized_fraction\": %.4f,\n"
        "  \"plane_hit_rate\": %.4f,\n"
        "  \"lazy_eager_bit_identical\": %s,\n"
        "  \"thread_parity_bit_identical\": %s,\n"
        "  \"per_window_thread_parity\": %s,\n"
        "  \"map_hash\": \"%016llx\",\n"
        "  \"kernel_backend\": \"%s\"\n"
        "}\n",
        scene_w, scene_h, window, stride, dim, faces, reps, windows_total,
        table.prescreen_words,
        static_cast<unsigned long long>(cstats.prescreen_rejected),
        static_cast<unsigned long long>(cstats.prescreen_entered), t_baseline,
        t_eager_fused, t_lazy, speedup, fused_speedup,
        static_cast<unsigned long long>(estats.cells_total),
        static_cast<unsigned long long>(estats.cells_computed),
        static_cast<unsigned long long>(estats.cells_forced_prescreen), frac,
        hit_rate, identical ? "true" : "false",
        thread_parity ? "true" : "false",
        per_window_parity ? "true" : "false",
        static_cast<unsigned long long>(h_lazy),
        std::string(
            core::kernels::backend_name(core::kernels::active().backend))
            .c_str());
    std::fclose(json);
    std::printf("written: bench_out/plane_encode.json\n");
  }
  // CI gate: correctness is non-negotiable (identities); speedup and
  // materialized fraction are gated from the JSON by the plane-smoke job.
  return (identical && thread_parity && per_window_parity) ? 0 : 1;
}
