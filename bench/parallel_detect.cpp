// Parallel batched detection engine: wall-clock and determinism check.
//
// hdlint: allow-file(wall-clock) — this bench *measures* elapsed time; the
// timings are reported output and never influence what the detector computes.
//
// A fig6-style clutter scene (several planted faces) is scanned three ways:
//   legacy   — the seed's serial SlidingWindowDetector::detect (one RNG chain
//              threaded through the whole scan),
//   engine@1 — the batched engine pinned to one thread,
//   engine@N — the batched engine on all hardware cores.
// The engine@1 and engine@N maps must be bit-identical (the per-window
// seeding contract); the speedup engine@1 / engine@N is the headline number.
// Results land in bench_out/parallel_detect.json.
//
// Usage:
//   ./build/bench/parallel_detect [--dim 4096] [--train 150] [--reps 3]
//                                 [--threads N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "api/detector.hpp"
#include "common.hpp"
#include "dataset/background_generator.hpp"
#include "image/transform.hpp"
#include "pipeline/sliding_window.hpp"

namespace {

using namespace hdface;
using Clock = std::chrono::steady_clock;

double best_of(std::size_t reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

bool maps_identical(const pipeline::DetectionMap& a,
                    const pipeline::DetectionMap& b) {
  return a.steps_x == b.steps_x && a.steps_y == b.steps_y &&
         a.predictions == b.predictions && a.scores == b.scores;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 150));
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 3));
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const auto n_threads =
      static_cast<std::size_t>(args.get_int("threads", static_cast<int>(hw)));

  bench::print_header("Parallel batched detection engine",
                      "HDFace (DAC'22) §4 'fully parallel' scan, Fig 6 scene");

  const std::size_t window = 48;
  const std::size_t stride = 8;  // dense scan: plenty of windows to batch

  // Fig6-style scene, scaled up so the scan has real work: 4 planted faces in
  // mixed clutter, 288x192 = ~570 windows at stride 8.
  image::Image scene(6 * window, 4 * window, 0.5f);
  core::Rng rng(0x5CE2E);
  dataset::render_background(scene, dataset::BackgroundKind::kMixed, rng);
  const std::size_t face_xy[4][2] = {{0, 0}, {4 * window, window / 2},
                                     {2 * window, 2 * window},
                                     {window / 2, 3 * window}};
  for (int i = 0; i < 4; ++i) {
    image::paste(scene, dataset::render_face_window(window, 11 + i),
                 static_cast<std::ptrdiff_t>(face_xy[i][0]),
                 static_cast<std::ptrdiff_t>(face_xy[i][1]));
  }

  auto face_data = bench::make_face2(n_train, 10);
  api::Detector det = api::DetectorBuilder()
                          .window(window)
                          .dim(dim)
                          .config(bench::hdface_config(dim))
                          .build();
  std::printf("training (D=%zu, %zu windows)...\n", dim, face_data.train.size());
  det.fit(face_data.train);

  const auto steps_x = (scene.width() - window) / stride + 1;
  const auto steps_y = (scene.height() - window) / stride + 1;
  std::printf("scene %zux%zu, %zu windows, %zu hardware core(s)\n\n",
              scene.width(), scene.height(), steps_x * steps_y, hw);

  // Legacy serial path (the seed behavior, for reference only — its random
  // stream differs from the engine's by design).
  pipeline::SlidingWindowDetector legacy(det.pipeline(), window, stride);
  const double t_legacy =
      best_of(reps, [&] { (void)legacy.detect(scene); });

  api::DetectOptions one;
  one.threads = 1;
  one.stride = stride;
  pipeline::DetectionMap map_one;
  const double t_one = best_of(reps, [&] { map_one = det.detect_map(scene, one); });

  api::DetectOptions many = one;
  many.threads = n_threads;
  pipeline::DetectionMap map_many;
  const double t_many =
      best_of(reps, [&] { map_many = det.detect_map(scene, many); });

  // Cell-plane encode mode (a different — deterministic — random stream than
  // per_window; compared for speed and its own bit-identity, not map
  // equality).
  api::DetectOptions cache_one = one;
  cache_one.encode_mode = pipeline::EncodeMode::kCellPlane;
  pipeline::DetectionMap map_cache_one;
  const double t_cache_one =
      best_of(reps, [&] { map_cache_one = det.detect_map(scene, cache_one); });

  api::DetectOptions cache_many = cache_one;
  cache_many.threads = n_threads;
  pipeline::DetectionMap map_cache_many;
  const double t_cache_many =
      best_of(reps, [&] { map_cache_many = det.detect_map(scene, cache_many); });

  const bool identical = maps_identical(map_one, map_many);
  const bool cache_identical = maps_identical(map_cache_one, map_cache_many);
  const double speedup = t_one / t_many;
  const double cache_speedup = t_one / t_cache_one;

  util::Table table({"path", "threads", "best ms", "speedup vs engine@1"});
  char buf[64];
  char spd[32];
  std::snprintf(buf, sizeof buf, "%.1f", t_legacy);
  table.add_row({"legacy serial", "1", buf, "-"});
  std::snprintf(buf, sizeof buf, "%.1f", t_one);
  table.add_row({"engine", "1", buf, "1.00x"});
  std::snprintf(buf, sizeof buf, "%.1f", t_many);
  std::snprintf(spd, sizeof spd, "%.2fx", speedup);
  table.add_row({"engine", std::to_string(n_threads), buf, spd});
  std::snprintf(buf, sizeof buf, "%.1f", t_cache_one);
  std::snprintf(spd, sizeof spd, "%.2fx", cache_speedup);
  table.add_row({"engine cell-plane", "1", buf, spd});
  std::snprintf(buf, sizeof buf, "%.1f", t_cache_many);
  std::snprintf(spd, sizeof spd, "%.2fx", t_one / t_cache_many);
  table.add_row({"engine cell-plane", std::to_string(n_threads), buf, spd});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("engine@1 vs engine@%zu maps: %s\n", n_threads,
              identical ? "bit-identical" : "MISMATCH");
  std::printf("cell-plane@1 vs cell-plane@%zu maps: %s\n", n_threads,
              cache_identical ? "bit-identical" : "MISMATCH");

  std::size_t positives = 0;
  for (const int p : map_many.predictions) positives += (p == 1);
  std::printf("%zu/%zu windows classified face\n", positives,
              map_many.predictions.size());

  FILE* json = std::fopen("bench_out/parallel_detect.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n"
                 "  \"scene\": [%zu, %zu],\n"
                 "  \"window\": %zu,\n"
                 "  \"stride\": %zu,\n"
                 "  \"windows\": %zu,\n"
                 "  \"dim\": %zu,\n"
                 "  \"hardware_threads\": %zu,\n"
                 "  \"bench_threads\": %zu,\n"
                 "  \"reps\": %zu,\n"
                 "  \"legacy_serial_ms\": %.3f,\n"
                 "  \"engine_1thread_ms\": %.3f,\n"
                 "  \"engine_nthread_ms\": %.3f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"maps_bit_identical\": %s,\n"
                 "  \"cellplane_1thread_ms\": %.3f,\n"
                 "  \"cellplane_nthread_ms\": %.3f,\n"
                 "  \"cellplane_speedup_vs_perwindow\": %.3f,\n"
                 "  \"cellplane_maps_bit_identical\": %s\n"
                 "}\n",
                 scene.width(), scene.height(), window, stride,
                 steps_x * steps_y, dim, hw, n_threads, reps, t_legacy, t_one,
                 t_many, speedup, identical ? "true" : "false", t_cache_one,
                 t_cache_many, cache_speedup,
                 cache_identical ? "true" : "false");
    std::fclose(json);
    std::printf("written: bench_out/parallel_detect.json\n");
  }
  return (identical && cache_identical) ? 0 : 1;
}
