// Table 2 — robustness of the DNN (16/8/4-bit weights) and HDFace (both
// configurations, D in {1k, 4k, 10k}) to random bit errors.
//
// Error model per paper §6.6:
//   DNN            — flips in the quantized weight memory.
//   HDFace+HoG+Learn — the fully hyperspace pipeline stores only binary
//                      hypervectors; flips land in the feature hypervectors
//                      and the binarized class prototypes.
//   HDFace+Learn   — HOG runs on the original float representation; flips
//                      land in the float descriptor words before encoding
//                      (the configuration that loses all robustness).
// Cells report quality LOSS relative to the family's best clean accuracy,
// matching the paper's table convention.

#include <cstdio>

#include "common.hpp"
#include "learn/quantized_mlp.hpp"
#include "pipeline/features.hpp"
#include "pipeline/robustness.hpp"
#include "util/csv.hpp"

namespace {

using namespace hdface;

constexpr double kRates[] = {0.0, 0.01, 0.02, 0.04, 0.08, 0.12, 0.14};
constexpr std::uint64_t kSeeds[] = {11, 22, 33};

std::vector<std::string> loss_row(const std::string& name,
                                  const std::vector<double>& accs,
                                  double reference, util::CsvWriter& csv) {
  std::vector<std::string> row = {name};
  std::vector<std::string> csv_row = {name};
  for (double a : accs) {
    const double loss = std::max(0.0, reference - a);
    row.push_back(util::Table::percent(loss));
    csv_row.push_back(std::to_string(loss));
  }
  csv.add_row(csv_row);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 300));
  const auto n_test = static_cast<std::size_t>(args.get_int("test", 150));

  bench::print_header("Table 2 — robustness to random bit errors",
                      "HDFace (DAC'22) Table 2");

  auto w = bench::make_face2(n_train, n_test);
  const std::size_t n = w.image_size();

  util::Table table({"method", "0%", "1%", "2%", "4%", "8%", "12%", "14%"});
  util::CsvWriter csv("bench_out/table2_robustness.csv",
                      {"method", "r0", "r1", "r2", "r4", "r8", "r12", "r14"});

  // ---- DNN at three precisions -------------------------------------------
  {
    auto cfg = bench::dnn_config();
    pipeline::DnnPipeline dnn(cfg, n, n, w.classes());
    const auto train_f = dnn.extract_features(w.train);
    const auto test_f = dnn.extract_features(w.test);
    dnn.fit_features(train_f, w.train.labels);
    const double float_acc = dnn.evaluate_features(test_f, w.test.labels);
    std::printf("  DNN float accuracy: %.3f\n", float_acc);
    for (int bits : {16, 8, 4}) {
      learn::QuantizedMlp q(dnn.mutable_mlp(), bits);
      std::vector<double> accs;
      for (double rate : kRates) {
        double acc = 0.0;
        for (auto seed : kSeeds) {
          acc += pipeline::dnn_accuracy_under_errors(q, test_f, w.test.labels,
                                                     rate, seed);
        }
        accs.push_back(acc / std::size(kSeeds));
      }
      table.add_row(loss_row("DNN " + std::to_string(bits) + "-bit", accs,
                             float_acc, csv));
      std::printf("  DNN %d-bit swept\n", bits);
    }
  }

  // ---- HDFace, fully hyperspace (HD-HOG + HDC learning) -------------------
  {
    // Reference = family best clean accuracy (paper: D=10k/4k rows at 0%).
    std::vector<std::vector<double>> all_accs;
    std::vector<std::size_t> dims = {10240, 4096, 1024};
    double best_clean = 0.0;
    for (auto dim : dims) {
      auto cfg = bench::hdface_config(dim, pipeline::HdFaceMode::kHdHog,
                                      hog::HdHogMode::kDecodeShortcut);
      pipeline::HdFacePipeline pipe(cfg, n, n, w.classes());
      pipe.fit(w.train);
      const auto test_features = pipe.encode_dataset(w.test);
      std::vector<double> accs;
      for (double rate : kRates) {
        double acc = 0.0;
        for (auto seed : kSeeds) {
          acc += pipeline::hdc_binary_accuracy_under_errors(
              pipe.classifier(), test_features, w.test.labels, rate, seed);
        }
        accs.push_back(acc / std::size(kSeeds));
      }
      best_clean = std::max(best_clean, accs.front());
      all_accs.push_back(std::move(accs));
      std::printf("  HDFace+HoG+Learn D=%zu swept\n", dim);
    }
    for (std::size_t i = 0; i < dims.size(); ++i) {
      table.add_row(loss_row("HDFace+HoG+Learn D=" + std::to_string(dims[i]),
                             all_accs[i], best_clean, csv));
    }
  }

  // ---- HDFace with HOG on the original representation ---------------------
  {
    hog::HogConfig hog_cfg;
    hog_cfg.cell_size = 4;
    hog_cfg.bins = 8;
    hog::HogExtractor hog(hog_cfg);
    const auto train_f = pipeline::extract_hog_features(w.train, hog);
    const auto test_f = pipeline::extract_hog_features(w.test, hog);

    std::vector<std::vector<double>> all_accs;
    std::vector<std::size_t> dims = {10240, 4096, 1024};
    double best_clean = 0.0;
    for (auto dim : dims) {
      learn::EncoderConfig ec;
      ec.dim = dim;
      ec.input_dim = train_f.front().size();
      ec.gamma = 1.0;
      learn::NonlinearEncoder encoder(ec);
      encoder.calibrate(train_f);
      std::vector<core::Hypervector> encoded;
      encoded.reserve(train_f.size());
      for (const auto& f : train_f) encoded.push_back(encoder.encode(f));
      learn::HdcConfig hc;
      hc.dim = dim;
      hc.classes = w.classes();
      hc.epochs = 10;
      learn::HdcClassifier model(hc);
      model.fit(encoded, w.train.labels);

      std::vector<double> accs;
      for (double rate : kRates) {
        double acc = 0.0;
        for (auto seed : kSeeds) {
          acc += pipeline::hdc_orig_rep_accuracy_under_errors(
              model, encoder, test_f, w.test.labels, rate, seed);
        }
        accs.push_back(acc / std::size(kSeeds));
      }
      best_clean = std::max(best_clean, accs.front());
      all_accs.push_back(std::move(accs));
      std::printf("  HDFace+Learn (orig HOG) D=%zu swept\n", dim);
    }
    for (std::size_t i = 0; i < dims.size(); ++i) {
      table.add_row(loss_row("HDFace+Learn D=" + std::to_string(dims[i]),
                             all_accs[i], best_clean, csv));
    }
  }

  std::printf("\nquality loss vs family-best clean accuracy:\n%s",
              table.to_string().c_str());
  std::printf(
      "paper shape: HDFace+HoG+Learn stays within ~2%% loss through 14%% bit\n"
      "error (larger D = more robust); the DNN and the original-representation\n"
      "HOG configuration degrade by an order of magnitude more.\n"
      "csv written: bench_out/table2_robustness.csv\n");
  return 0;
}
