// Fig 5a — impact of hypervector dimensionality on HDFace accuracy and
// training performance.
//
// Sweeps D from 1k to 10k for both pre-processing (HD-HOG) and learning, and
// reports test accuracy plus measured wall-clock training time per epoch
// (the paper's heatmap series). Expected shape: accuracy rises with D and
// saturates, training cost grows linearly with D.

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"

namespace {
using namespace hdface;
}

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 250));
  const auto n_test = static_cast<std::size_t>(args.get_int("test", 120));

  bench::print_header(
      "Fig 5a — dimensionality vs HDFace accuracy & training time",
      "HDFace (DAC'22) Figure 5a (accuracy curve + training-time heatmap row)");

  // FACE2 runs the fully faithful hyperspace pipeline; EMOTION (7-way, more
  // samples needed) uses the decode-shortcut extractor so the sweep fits a
  // single-core box — its D-dependence (gradient decode noise, level
  // resolution, learner capacity) is preserved.
  auto face = bench::make_face2(n_train, n_test);
  auto emotion = bench::make_emotion(350, n_test);

  util::Table table({"dataset", "D", "accuracy", "feature s/img", "train s/epoch"});
  util::CsvWriter csv("bench_out/fig5a_dimensionality.csv",
                      {"dataset", "dim", "accuracy", "feature_s_per_img",
                       "train_s_per_epoch"});

  for (const std::size_t dim : {1024u, 2048u, 4096u, 8192u, 10240u}) {
    for (const auto* wp : {&face, &emotion}) {
      const auto& w = *wp;
      const bool faithful = (wp == &face);
      auto cfg = bench::hdface_config(dim, pipeline::HdFaceMode::kHdHog,
                                      faithful ? hog::HdHogMode::kFaithful
                                               : hog::HdHogMode::kDecodeShortcut);
      const std::size_t n = w.image_size();
      pipeline::HdFacePipeline pipe(cfg, n, n, w.classes());

      util::Stopwatch sw;
      const auto train_features = pipe.encode_dataset(w.train);
      const double feat_s = sw.seconds() / static_cast<double>(w.train.size());

      sw.reset();
      pipe.fit_features(train_features, w.train.labels);
      const double train_s =
          sw.seconds() / static_cast<double>(cfg.epochs) +
          feat_s * static_cast<double>(w.train.size()) /
              static_cast<double>(cfg.epochs);

      const double acc = pipe.evaluate(w.test);
      table.add_row({w.name, std::to_string(dim), util::Table::percent(acc),
                     util::Table::num(feat_s, 3), util::Table::num(train_s, 2)});
      csv.add_row({w.name, std::to_string(dim), std::to_string(acc),
                   std::to_string(feat_s), std::to_string(train_s)});
      std::printf("  %s D=%zu acc=%.3f\n", w.name.c_str(), dim, acc);
    }
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "paper shape: accuracy increases with D and saturates (paper: at ~4k;\n"
      "measured saturation point may sit at 4k-10k on the synthetic data);\n"
      "training time grows ~linearly with D.\ncsv written: bench_out/fig5a_dimensionality.csv\n");
  return 0;
}
