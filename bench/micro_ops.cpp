// Microkernel benchmarks (google-benchmark) for the HDC substrate: the raw
// host-side throughput of the primitives behind every other experiment.

#include <benchmark/benchmark.h>

#include "core/accumulator.hpp"
#include "core/item_memory.hpp"
#include "core/stochastic.hpp"
#include "hog/hd_hog.hpp"
#include "image/image.hpp"
#include "learn/hdc_model.hpp"

namespace {

using namespace hdface;

void BM_Bind(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  core::Rng rng(1);
  const auto a = core::Hypervector::random(dim, rng);
  const auto b = core::Hypervector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a ^ b);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Bind)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Similarity(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  core::Rng rng(2);
  const auto a = core::Hypervector::random(dim, rng);
  const auto b = core::Hypervector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::similarity(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Similarity)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Construct(benchmark::State& state) {
  core::StochasticContext ctx(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.construct(0.37));
  }
}
BENCHMARK(BM_Construct)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_WeightedAverage(benchmark::State& state) {
  core::StochasticContext ctx(static_cast<std::size_t>(state.range(0)), 4);
  const auto a = ctx.construct(0.5);
  const auto b = ctx.construct(-0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.weighted_average(a, b, 0.5));
  }
}
BENCHMARK(BM_WeightedAverage)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Multiply(benchmark::State& state) {
  core::StochasticContext ctx(static_cast<std::size_t>(state.range(0)), 5);
  const auto a = ctx.construct(0.5);
  const auto b = ctx.construct(-0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.multiply(a, b));
  }
}
BENCHMARK(BM_Multiply)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Sqrt(benchmark::State& state) {
  core::StochasticContext ctx(static_cast<std::size_t>(state.range(0)), 6);
  const auto v = ctx.construct(0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.sqrt(v));
  }
}
BENCHMARK(BM_Sqrt)->Arg(1024)->Arg(4096);

void BM_Divide(benchmark::State& state) {
  core::StochasticContext ctx(static_cast<std::size_t>(state.range(0)), 7);
  const auto a = ctx.construct(0.3);
  const auto b = ctx.construct(0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.divide(a, b));
  }
}
BENCHMARK(BM_Divide)->Arg(1024)->Arg(4096);

void BM_AccumulatorBundle(benchmark::State& state) {
  const std::size_t dim = 4096;
  core::Rng rng(8);
  std::vector<core::Hypervector> items;
  for (int i = 0; i < 64; ++i) items.push_back(core::Hypervector::random(dim, rng));
  for (auto _ : state) {
    core::Accumulator acc(dim);
    for (const auto& v : items) acc.add(v);
    core::Rng tie(9);
    benchmark::DoNotOptimize(acc.threshold(tie));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_AccumulatorBundle);

void BM_ItemMemoryLookup(benchmark::State& state) {
  core::StochasticContext ctx(4096, 10);
  core::LevelItemMemory mem(ctx, 256, 0.0, 1.0);
  double v = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.at_value(v));
    v += 0.001;
    if (v > 1.0) v = 0.0;
  }
}
BENCHMARK(BM_ItemMemoryLookup);

void BM_HdHogPixel(benchmark::State& state) {
  core::StochasticContext ctx(static_cast<std::size_t>(state.range(0)), 11);
  hog::HdHogConfig cfg;
  cfg.hog.cell_size = 4;
  hog::HdHogExtractor hd(ctx, cfg, 16, 16);
  image::Image img(16, 16, 0.5f);
  core::Rng rng(12);
  for (auto& p : img.pixels()) p = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    auto g = hd.pixel_gradient(img, 8, 8);
    benchmark::DoNotOptimize(hd.pixel_magnitude(g));
    benchmark::DoNotOptimize(hd.pixel_bin(g));
  }
}
BENCHMARK(BM_HdHogPixel)->Arg(1024)->Arg(4096);

void BM_HdcPredict(benchmark::State& state) {
  const std::size_t dim = 4096;
  learn::HdcConfig cfg;
  cfg.dim = dim;
  cfg.classes = 7;
  learn::HdcClassifier model(cfg);
  core::Rng rng(13);
  std::vector<core::Hypervector> features;
  std::vector<int> labels;
  for (int i = 0; i < 35; ++i) {
    features.push_back(core::Hypervector::random(dim, rng));
    labels.push_back(i % 7);
  }
  model.fit(features, labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(features[0]));
  }
}
BENCHMARK(BM_HdcPredict);

void BM_HdcPredictBinary(benchmark::State& state) {
  const std::size_t dim = 4096;
  learn::HdcConfig cfg;
  cfg.dim = dim;
  cfg.classes = 7;
  learn::HdcClassifier model(cfg);
  core::Rng rng(14);
  std::vector<core::Hypervector> features;
  std::vector<int> labels;
  for (int i = 0; i < 35; ++i) {
    features.push_back(core::Hypervector::random(dim, rng));
    labels.push_back(i % 7);
  }
  model.fit(features, labels);
  const auto protos = model.binary_prototypes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        learn::HdcClassifier::predict_binary(protos, features[0]));
  }
}
BENCHMARK(BM_HdcPredictBinary);

}  // namespace

BENCHMARK_MAIN();
