// Microkernel benchmarks (google-benchmark) for the HDC substrate: the raw
// host-side throughput of the primitives behind every other experiment.
//
// hdlint: allow-file(wall-clock) — this bench *measures* elapsed time; the
// timings feed bench_out/micro_ops.json, never an encoding decision.
//
// Besides the historical google-benchmark rows, the main() registers one row
// per compiled-and-supported kernel backend (scalar vs AVX2 vs AVX-512 vs
// NEON) for the three packed-word hot loops — pairwise Hamming, SoA
// multi-prototype Hamming (core::PrototypeBlock), and the Accumulator's
// weighted-bundling add_xor — and then self-times the same loops to emit a
// machine-readable report at bench_out/micro_ops.json, including the
// headline `hamming_many_speedup_best_vs_scalar` the CI perf gate reads.
// Every backend is bit-identical (see core/kernels/kernels.hpp), so the
// rows differ in speed only.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/accumulator.hpp"
#include "core/item_memory.hpp"
#include "core/kernels/kernels.hpp"
#include "core/prototype_block.hpp"
#include "core/stochastic.hpp"
#include "hog/cell_plane.hpp"
#include "hog/gradient.hpp"
#include "hog/hd_hog.hpp"
#include "image/image.hpp"
#include "learn/hdc_model.hpp"

namespace {

using namespace hdface;
using Clock = std::chrono::steady_clock;

void BM_Bind(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  core::Rng rng(1);
  const auto a = core::Hypervector::random(dim, rng);
  const auto b = core::Hypervector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a ^ b);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Bind)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Similarity(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  core::Rng rng(2);
  const auto a = core::Hypervector::random(dim, rng);
  const auto b = core::Hypervector::random(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::similarity(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Similarity)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Construct(benchmark::State& state) {
  core::StochasticContext ctx(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.construct(0.37));
  }
}
BENCHMARK(BM_Construct)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_WeightedAverage(benchmark::State& state) {
  core::StochasticContext ctx(static_cast<std::size_t>(state.range(0)), 4);
  const auto a = ctx.construct(0.5);
  const auto b = ctx.construct(-0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.weighted_average(a, b, 0.5));
  }
}
BENCHMARK(BM_WeightedAverage)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Multiply(benchmark::State& state) {
  core::StochasticContext ctx(static_cast<std::size_t>(state.range(0)), 5);
  const auto a = ctx.construct(0.5);
  const auto b = ctx.construct(-0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.multiply(a, b));
  }
}
BENCHMARK(BM_Multiply)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Sqrt(benchmark::State& state) {
  core::StochasticContext ctx(static_cast<std::size_t>(state.range(0)), 6);
  const auto v = ctx.construct(0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.sqrt(v));
  }
}
BENCHMARK(BM_Sqrt)->Arg(1024)->Arg(4096);

void BM_Divide(benchmark::State& state) {
  core::StochasticContext ctx(static_cast<std::size_t>(state.range(0)), 7);
  const auto a = ctx.construct(0.3);
  const auto b = ctx.construct(0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.divide(a, b));
  }
}
BENCHMARK(BM_Divide)->Arg(1024)->Arg(4096);

void BM_AccumulatorBundle(benchmark::State& state) {
  const std::size_t dim = 4096;
  core::Rng rng(8);
  std::vector<core::Hypervector> items;
  for (int i = 0; i < 64; ++i) items.push_back(core::Hypervector::random(dim, rng));
  for (auto _ : state) {
    core::Accumulator acc(dim);
    for (const auto& v : items) acc.add(v);
    core::Rng tie(9);
    benchmark::DoNotOptimize(acc.threshold(tie));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_AccumulatorBundle);

void BM_ItemMemoryLookup(benchmark::State& state) {
  core::StochasticContext ctx(4096, 10);
  core::LevelItemMemory mem(ctx, 256, 0.0, 1.0);
  double v = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.at_value(v));
    v += 0.001;
    if (v > 1.0) v = 0.0;
  }
}
BENCHMARK(BM_ItemMemoryLookup);

void BM_HdHogPixel(benchmark::State& state) {
  core::StochasticContext ctx(static_cast<std::size_t>(state.range(0)), 11);
  hog::HdHogConfig cfg;
  cfg.hog.cell_size = 4;
  hog::HdHogExtractor hd(ctx, cfg, 16, 16);
  image::Image img(16, 16, 0.5f);
  core::Rng rng(12);
  for (auto& p : img.pixels()) p = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    auto g = hd.pixel_gradient(img, 8, 8);
    benchmark::DoNotOptimize(hd.pixel_magnitude(g));
    benchmark::DoNotOptimize(hd.pixel_bin(g));
  }
}
BENCHMARK(BM_HdHogPixel)->Arg(1024)->Arg(4096);

void BM_HdcPredict(benchmark::State& state) {
  const std::size_t dim = 4096;
  learn::HdcConfig cfg;
  cfg.dim = dim;
  cfg.classes = 7;
  learn::HdcClassifier model(cfg);
  core::Rng rng(13);
  std::vector<core::Hypervector> features;
  std::vector<int> labels;
  for (int i = 0; i < 35; ++i) {
    features.push_back(core::Hypervector::random(dim, rng));
    labels.push_back(i % 7);
  }
  model.fit(features, labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(features[0]));
  }
}
BENCHMARK(BM_HdcPredict);

void BM_HdcPredictBinary(benchmark::State& state) {
  const std::size_t dim = 4096;
  learn::HdcConfig cfg;
  cfg.dim = dim;
  cfg.classes = 7;
  learn::HdcClassifier model(cfg);
  core::Rng rng(14);
  std::vector<core::Hypervector> features;
  std::vector<int> labels;
  for (int i = 0; i < 35; ++i) {
    features.push_back(core::Hypervector::random(dim, rng));
    labels.push_back(i % 7);
  }
  model.fit(features, labels);
  const auto protos = model.binary_prototypes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        learn::HdcClassifier::predict_binary(protos, features[0]));
  }
}
BENCHMARK(BM_HdcPredictBinary);

// --- per-backend kernel rows --------------------------------------------------

constexpr std::size_t kKernelDims[] = {1024, 2048, 4096, 10240};
// Prototype lanes for the SoA hamming_many rows (a multi-class associative
// memory; 16 keeps two full cache lines of lanes in flight).
constexpr std::size_t kProtoCount = 16;

std::vector<core::kernels::Backend> usable_backends() {
  std::vector<core::kernels::Backend> out;
  for (const core::kernels::KernelTable* t : core::kernels::compiled_tables()) {
    if (core::kernels::backend_supported(t->backend)) out.push_back(t->backend);
  }
  return out;  // scalar first (compiled_tables() contract)
}

struct KernelFixture {
  core::Hypervector a;
  core::Hypervector b;
  core::PrototypeBlock block;
  std::vector<std::size_t> dists;
  core::Accumulator acc;

  explicit KernelFixture(std::size_t dim)
      : a(core::Hypervector(dim)), b(core::Hypervector(dim)), acc(dim) {
    core::Rng rng(0x3157 + dim);
    a = core::Hypervector::random(dim, rng);
    b = core::Hypervector::random(dim, rng);
    std::vector<core::Hypervector> protos;
    protos.reserve(kProtoCount);
    for (std::size_t c = 0; c < kProtoCount; ++c) {
      protos.push_back(core::Hypervector::random(dim, rng));
    }
    block = core::PrototypeBlock(protos);
    dists.assign(kProtoCount, 0);
  }

  void hamming() { benchmark::DoNotOptimize(core::hamming(a, b)); }
  void hamming_many() {
    block.hamming_many(a, std::span<std::size_t>(dists));
    benchmark::DoNotOptimize(dists.data());
  }
  void add_xor() {
    acc.add_xor(a, b, 0.75);
    benchmark::DoNotOptimize(acc);
  }
};

void register_backend_rows() {
  using core::kernels::Backend;
  for (const Backend backend : usable_backends()) {
    const std::string suffix(core::kernels::backend_name(backend));
    const auto add = [&](const char* kernel, auto member) {
      benchmark::RegisterBenchmark(
          ("BM_Kernel_" + std::string(kernel) + "<" + suffix + ">").c_str(),
          [backend, member](benchmark::State& state) {
            KernelFixture fix(static_cast<std::size_t>(state.range(0)));
            const core::kernels::ScopedBackend forced(backend);
            for (auto _ : state) (fix.*member)();
            state.SetItemsProcessed(state.iterations() * state.range(0));
          })
          ->Arg(1024)->Arg(2048)->Arg(4096)->Arg(10240);
    };
    add("hamming", &KernelFixture::hamming);
    add("hamming_many", &KernelFixture::hamming_many);
    add("add_xor", &KernelFixture::add_xor);
  }
}

// --- self-timed JSON report ---------------------------------------------------

// Median-of-three timing with geometric iteration growth until the sample
// window passes 10ms; plenty for loops in the ns–µs range.
template <typename F>
double ns_per_op(F&& f) {
  const auto sample = [&](std::size_t iters) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) f();
    return std::chrono::duration<double, std::nano>(Clock::now() - t0).count() /
           static_cast<double>(iters);
  };
  std::size_t iters = 8;
  for (;;) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) f();
    const double window =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
    if (window >= 1e7 || iters >= (std::size_t{1} << 26)) break;
    iters *= 4;
  }
  double best = sample(iters);
  for (int rep = 0; rep < 2; ++rep) best = std::min(best, sample(iters));
  return best;
}

struct ReportRow {
  std::string kernel;
  std::string backend;
  std::size_t dim;
  double ns;
};

// --- per-stage cell-chain rows ------------------------------------------------

// Cost decomposition of the faithful per-cell encode chain (the plane-encode
// floor bench/plane_encode attacks): the per-pixel hyperspace gradient, the
// magnitude/orientation-bin compare chain, and the per-window level-bind /
// accumulate tail that runs on cached cells — plus the whole-cell cost on
// both batched implementations (reference per-pixel chain vs the fused word
// kernels, bit-identical by contract).
struct CellChainReport {
  double gradient_ns = 0.0;               // per pixel
  double angle_bin_ns = 0.0;              // per pixel (magnitude + bin)
  double level_bind_accumulate_ns = 0.0;  // per window, from a cached plane
  double cell_reference_ns = 0.0;         // per cell, reference chain
  double cell_fused_ns = 0.0;             // per cell, fused batched kernel
  double fused_speedup = 0.0;
};

CellChainReport time_cell_chain(std::size_t dim) {
  core::StochasticContext ctx(dim, 0xC311);
  ctx.warm_pool();
  hog::HdHogConfig cfg;
  cfg.hog.cell_size = 4;
  cfg.hog.bins = 8;
  hog::HdHogExtractor hd(ctx, cfg, 16, 16);
  image::Image img(64, 64);
  core::Rng rng(0xBEEF);
  for (float& p : img.pixels()) p = static_cast<float>(rng.uniform());

  CellChainReport r;
  core::StochasticContext fork = ctx.fork(0x9E11);
  r.gradient_ns = ns_per_op([&] {
    benchmark::DoNotOptimize(hd.pixel_gradient(img, 8, 8, fork));
  });
  const auto grad = hd.pixel_gradient(img, 8, 8, fork);
  r.angle_bin_ns = ns_per_op([&] {
    benchmark::DoNotOptimize(hd.pixel_magnitude(grad, fork));
    benchmark::DoNotOptimize(hd.pixel_bin(grad, fork));
  });

  // Whole-cell raw-value pass, reference vs fused, same reseed stream so both
  // time the identical workload (and the fused path stays on its contract:
  // faithful mode, pooled context, no counter).
  const hog::LevelIndexPlane levels =
      hog::build_level_index_plane(img, hd.item_memory());
  std::vector<double> out(cfg.hog.bins);
  r.cell_reference_ns = ns_per_op([&] {
    core::StochasticContext cell_ctx = ctx.fork(0xCE11);
    hd.cell_raw_values(img, &levels, 8, 8, cell_ctx, out.data(),
                       /*force_reference=*/true);
    benchmark::DoNotOptimize(out.data());
  });
  r.cell_fused_ns = ns_per_op([&] {
    core::StochasticContext cell_ctx = ctx.fork(0xCE11);
    hd.cell_raw_values(img, &levels, 8, 8, cell_ctx, out.data());
    benchmark::DoNotOptimize(out.data());
  });
  if (r.cell_fused_ns > 0.0) {
    r.fused_speedup = r.cell_reference_ns / r.cell_fused_ns;
  }

  // Per-window tail on a cached plane: vmax normalization, histogram level
  // lookup, key bind + weighted accumulate. Consumes no RNG.
  hog::CellPlane plane = hog::make_cell_plane_geometry(
      img.width(), img.height(), cfg.hog.cell_size, cfg.hog.bins,
      cfg.hog.cell_size, 0);
  for (std::size_t gy = 0; gy < plane.grid_y; ++gy) {
    for (std::size_t gx = 0; gx < plane.grid_x; ++gx) {
      core::StochasticContext cell_ctx =
          ctx.fork(hog::cell_plane_seed(0xC311, 0, gx, gy));
      hd.cell_raw_values(img, &levels, gx * plane.grid_step,
                         gy * plane.grid_step, cell_ctx,
                         plane.mutable_cell(gx, gy));
    }
  }
  r.level_bind_accumulate_ns = ns_per_op([&] {
    benchmark::DoNotOptimize(hd.extract_from_plane(plane, 8, 8, nullptr));
  });
  return r;
}

void write_report(const std::string& path) {
  using core::kernels::Backend;
  const auto backends = usable_backends();
  std::vector<ReportRow> rows;
  // best-vs-scalar speedup per dim for the SoA hamming_many hot loop (the
  // CI perf gate's headline number is the max across dims).
  double headline = 0.0;
  for (const std::size_t dim : kKernelDims) {
    double scalar_many = 0.0;
    double best_many = 0.0;
    for (const Backend backend : backends) {
      KernelFixture fix(dim);
      const core::kernels::ScopedBackend forced(backend);
      const double h = ns_per_op([&] { fix.hamming(); });
      const double m = ns_per_op([&] { fix.hamming_many(); });
      const double x = ns_per_op([&] { fix.add_xor(); });
      const std::string name(core::kernels::backend_name(backend));
      rows.push_back({"hamming", name, dim, h});
      rows.push_back({"hamming_many", name, dim, m});
      rows.push_back({"add_xor", name, dim, x});
      if (backend == Backend::kScalar) scalar_many = m;
      if (best_many == 0.0 || m < best_many) best_many = m;
    }
    if (scalar_many > 0.0 && best_many > 0.0) {
      headline = std::max(headline, scalar_many / best_many);
    }
  }

  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream out(path);
  out << "{\n  \"auto_backend\": \""
      << core::kernels::backend_name(core::kernels::active().backend)
      << "\",\n  \"proto_count\": " << kProtoCount << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"backend\": \""
        << r.backend << "\", \"dim\": " << r.dim << ", \"ns_per_op\": " << r.ns
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  const CellChainReport chain = time_cell_chain(4096);
  out << "  ],\n  \"cell_chain\": {\n"
      << "    \"dim\": 4096,\n"
      << "    \"gradient_ns_per_pixel\": " << chain.gradient_ns << ",\n"
      << "    \"angle_bin_ns_per_pixel\": " << chain.angle_bin_ns << ",\n"
      << "    \"level_bind_accumulate_ns_per_window\": "
      << chain.level_bind_accumulate_ns << ",\n"
      << "    \"cell_reference_ns\": " << chain.cell_reference_ns << ",\n"
      << "    \"cell_fused_ns\": " << chain.cell_fused_ns << ",\n"
      << "    \"fused_speedup\": " << chain.fused_speedup << "\n"
      << "  },\n  \"hamming_many_speedup_best_vs_scalar\": " << headline
      << "\n}\n";
  std::cout << "kernel report: " << path
            << "  hamming_many_speedup_best_vs_scalar=" << headline
            << "  cell_fused_speedup=" << chain.fused_speedup << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_backend_rows();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_report("bench_out/micro_ops.json");
  return 0;
}
