// Extractor-generality ablation: the paper (§2) argues its stochastic
// arithmetic generalizes across the classical feature extractors — HOG,
// HAAR-like features and LBP "operate over a similar set of arithmetic
// operations". This bench trains the same HDC learner on all three, in both
// the classical-features+encoder configuration and the fully hyperspace
// configuration, on the FACE2 workload.

#include <cstdio>

#include "common.hpp"
#include "hog/haar.hpp"
#include "hog/lbp.hpp"
#include "pipeline/features.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace hdface;

// Train/evaluate the HDC classifier on precomputed binary features.
double hdc_on_features(const std::vector<core::Hypervector>& train_f,
                       const std::vector<int>& train_y,
                       const std::vector<core::Hypervector>& test_f,
                       const std::vector<int>& test_y, std::size_t dim,
                       std::size_t classes) {
  learn::HdcConfig hc;
  hc.dim = dim;
  hc.classes = classes;
  hc.epochs = 10;
  learn::HdcClassifier model(hc);
  model.fit(train_f, train_y);
  return model.evaluate(test_f, test_y);
}

// Classical float features → calibrated encoder → HDC.
double encoder_path(const std::vector<std::vector<float>>& train_f,
                    const std::vector<int>& train_y,
                    const std::vector<std::vector<float>>& test_f,
                    const std::vector<int>& test_y, std::size_t dim,
                    std::size_t classes) {
  learn::EncoderConfig ec;
  ec.dim = dim;
  ec.input_dim = train_f.front().size();
  ec.gamma = 1.0;
  learn::NonlinearEncoder encoder(ec);
  encoder.calibrate(train_f);
  std::vector<core::Hypervector> etrain;
  std::vector<core::Hypervector> etest;
  for (const auto& f : train_f) etrain.push_back(encoder.encode(f));
  for (const auto& f : test_f) etest.push_back(encoder.encode(f));
  return hdc_on_features(etrain, train_y, etest, test_y, dim, classes);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 250));
  const auto n_test = static_cast<std::size_t>(args.get_int("test", 120));
  const std::size_t dim = 4096;

  bench::print_header(
      "Ablation — feature-extractor generality (HOG / HAAR / LBP)",
      "paper §2: the HDC arithmetic generalizes across extraction mechanisms");

  auto w = bench::make_face2(n_train, n_test);
  const std::size_t n = w.image_size();
  core::StochasticContext ctx(dim, 0xE87);

  util::Table table({"extractor", "classical + encoder + HDC", "fully hyperspace + HDC"});

  // --- HOG -------------------------------------------------------------------
  {
    hog::HogConfig hc;
    hc.cell_size = 4;
    hog::HogExtractor classical(hc);
    const auto train_f = pipeline::extract_hog_features(w.train, classical);
    const auto test_f = pipeline::extract_hog_features(w.test, classical);
    const double enc = encoder_path(train_f, w.train.labels, test_f,
                                    w.test.labels, dim, w.classes());

    hog::HdHogConfig hd_cfg;
    hd_cfg.hog = hc;
    hd_cfg.hog.block_normalize = false;
    hd_cfg.mode = hog::HdHogMode::kDecodeShortcut;
    hog::HdHogExtractor hd(ctx, hd_cfg, n, n);
    std::vector<core::Hypervector> htrain;
    std::vector<core::Hypervector> htest;
    for (const auto& img : w.train.images) htrain.push_back(hd.extract(img));
    for (const auto& img : w.test.images) htest.push_back(hd.extract(img));
    const double hyper = hdc_on_features(htrain, w.train.labels, htest,
                                         w.test.labels, dim, w.classes());
    table.add_row({"HOG", util::Table::percent(enc), util::Table::percent(hyper)});
    std::printf("  HOG done\n");
  }

  // --- HAAR ------------------------------------------------------------------
  {
    hog::HaarConfig hc;
    hc.patch_sizes = {8, 16};
    hc.stride = 8;
    hog::HaarExtractor classical(hc, n, n);
    std::vector<std::vector<float>> train_f;
    std::vector<std::vector<float>> test_f;
    for (const auto& img : w.train.images) train_f.push_back(classical.extract(img));
    for (const auto& img : w.test.images) test_f.push_back(classical.extract(img));
    const double enc = encoder_path(train_f, w.train.labels, test_f,
                                    w.test.labels, dim, w.classes());

    hog::HdHaarExtractor hd(ctx, hc, n, n);
    std::vector<core::Hypervector> htrain;
    std::vector<core::Hypervector> htest;
    for (const auto& img : w.train.images) htrain.push_back(hd.extract(img));
    for (const auto& img : w.test.images) htest.push_back(hd.extract(img));
    const double hyper = hdc_on_features(htrain, w.train.labels, htest,
                                         w.test.labels, dim, w.classes());
    table.add_row({"HAAR", util::Table::percent(enc), util::Table::percent(hyper)});
    std::printf("  HAAR done\n");
  }

  // --- LBP -------------------------------------------------------------------
  {
    hog::LbpConfig lc;
    lc.cell_size = 8;
    lc.bins = 32;
    hog::LbpExtractor classical(lc);
    std::vector<std::vector<float>> train_f;
    std::vector<std::vector<float>> test_f;
    for (const auto& img : w.train.images) train_f.push_back(classical.extract(img));
    for (const auto& img : w.test.images) test_f.push_back(classical.extract(img));
    const double enc = encoder_path(train_f, w.train.labels, test_f,
                                    w.test.labels, dim, w.classes());

    hog::HdLbpExtractor hd(ctx, lc, n, n);
    std::vector<core::Hypervector> htrain;
    std::vector<core::Hypervector> htest;
    for (const auto& img : w.train.images) htrain.push_back(hd.extract(img));
    for (const auto& img : w.test.images) htest.push_back(hd.extract(img));
    const double hyper = hdc_on_features(htrain, w.train.labels, htest,
                                         w.test.labels, dim, w.classes());
    table.add_row({"LBP", util::Table::percent(enc), util::Table::percent(hyper)});
    std::printf("  LBP done\n");
  }

  std::printf("\nFACE2, D=4k, same HDC learner everywhere:\n%s",
              table.to_string().c_str());
  std::printf("expected: every extractor supports hyperspace processing at\n"
              "accuracy comparable to its classical form (paper §2's premise).\n");
  return 0;
}
