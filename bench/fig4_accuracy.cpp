// Fig 4 (and Table 1) — HDFace classification accuracy against DNN and SVM
// on the three workloads, with HDC in both configurations of §6.2:
//   HDC(orig)  — classical HOG on the original representation + nonlinear
//                encoder + HDC learning,
//   HDFace     — HOG fully in hyperspace (stochastic HD-HOG), features fed
//                directly to the HDC learner (no encoding module).
//
// All learners consume the same HOG geometry. The paper's claim under test:
// HDC accuracy is comparable to DNN/SVM, and the stochastic hyperdimensional
// feature extraction matches feature extraction in the original space.

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace hdface;
using bench::Workload;

struct Row {
  std::string dataset;
  double dnn = 0;
  double svm = 0;
  double hdc_orig = 0;
  double hdface = 0;
};

Row evaluate(const Workload& w) {
  Row row;
  row.dataset = w.name;
  const std::size_t n = w.image_size();
  util::Stopwatch sw;
  {
    pipeline::DnnPipeline dnn(bench::dnn_config(), n, n, w.classes());
    dnn.fit(w.train);
    row.dnn = dnn.evaluate(w.test);
    std::printf("  [%s] DNN        %.3f  (%.0fs)\n", w.name.c_str(), row.dnn,
                sw.seconds());
  }
  sw.reset();
  {
    pipeline::SvmPipeline svm(bench::svm_config(), n, n, w.classes());
    svm.fit(w.train);
    row.svm = svm.evaluate(w.test);
    std::printf("  [%s] SVM        %.3f  (%.0fs)\n", w.name.c_str(), row.svm,
                sw.seconds());
  }
  sw.reset();
  {
    auto cfg = bench::hdface_config(4096, pipeline::HdFaceMode::kOrigHogEncoder);
    pipeline::HdFacePipeline hdc(cfg, n, n, w.classes());
    hdc.fit(w.train);
    row.hdc_orig = hdc.evaluate(w.test);
    std::printf("  [%s] HDC(orig)  %.3f  (%.0fs)\n", w.name.c_str(), row.hdc_orig,
                sw.seconds());
  }
  sw.reset();
  {
    auto cfg = bench::hdface_config(4096, pipeline::HdFaceMode::kHdHog,
                                    hog::HdHogMode::kFaithful);
    pipeline::HdFacePipeline hdface(cfg, n, n, w.classes());
    hdface.fit(w.train);
    row.hdface = hdface.evaluate(w.test);
    std::printf("  [%s] HDFace     %.3f  (%.0fs)\n", w.name.c_str(), row.hdface,
                sw.seconds());
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 300));
  const auto n_test = static_cast<std::size_t>(args.get_int("test", 140));

  bench::print_header("Fig 4 — classification accuracy vs state of the art",
                      "HDFace (DAC'22) Figure 4 + Table 1 dataset summary");

  std::vector<Workload> workloads;
  workloads.push_back(bench::make_emotion(
      std::max<std::size_t>(n_train, 350), n_test));
  workloads.push_back(bench::make_face1(n_train, n_test));
  workloads.push_back(bench::make_face2(n_train, n_test));

  // Table 1 analogue.
  util::Table t1({"dataset", "n (window)", "k", "train size", "test size"});
  for (const auto& w : workloads) {
    t1.add_row({w.name,
                std::to_string(w.image_size()) + "x" + std::to_string(w.image_size()),
                std::to_string(w.classes()), std::to_string(w.train.size()),
                std::to_string(w.test.size())});
  }
  std::printf("\nTable 1 (scaled; paper: EMOTION 48x48/36685, FACE1 1024x1024/40172,"
              "\n         FACE2 512x512/522441 — see DESIGN.md substitutions):\n%s\n",
              t1.to_string().c_str());

  util::Table table({"dataset", "DNN", "SVM", "HDC(orig-HOG+enc)", "HDFace(HD-HOG)"});
  util::CsvWriter csv("bench_out/fig4_accuracy.csv",
                      {"dataset", "dnn", "svm", "hdc_orig", "hdface"});
  for (const auto& w : workloads) {
    const Row r = evaluate(w);
    table.add_row({r.dataset, util::Table::percent(r.dnn),
                   util::Table::percent(r.svm), util::Table::percent(r.hdc_orig),
                   util::Table::percent(r.hdface)});
    csv.add_row({r.dataset, std::to_string(r.dnn), std::to_string(r.svm),
                 std::to_string(r.hdc_orig), std::to_string(r.hdface)});
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "paper shape: HDC within a few points of DNN, above SVM on average;\n"
      "stochastic HD-HOG close to HOG-on-original-space. See EXPERIMENTS.md\n"
      "for the measured-vs-paper discussion.\ncsv written: bench_out/fig4_accuracy.csv\n");
  return 0;
}
