// Fig 2 — relative error of stochastic construction, weighted average and
// multiplication as a function of hypervector dimensionality.
//
// The paper reports that relative error shrinks as D grows (binomial noise
// ~1/√D); this bench regenerates the three panels plus the derived sqrt and
// divide operations, and prints RMS relative error per dimensionality.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/stochastic.hpp"
#include "util/csv.hpp"

namespace {

using hdface::core::StochasticContext;

constexpr double kValues[] = {-0.9, -0.6, -0.3, -0.1, 0.1, 0.3, 0.6, 0.9};
constexpr int kTrials = 12;

double rel_err(double got, double want) {
  return std::fabs(got - want) / std::max(0.05, std::fabs(want));
}

struct ErrRow {
  double construct = 0;
  double average = 0;
  double multiply = 0;
  double sqrt_ = 0;
  double divide = 0;
};

ErrRow measure(std::size_t dim) {
  ErrRow row;
  int nc = 0;
  int na = 0;
  int nm = 0;
  int ns = 0;
  int nd = 0;
  for (int t = 0; t < kTrials; ++t) {
    StochasticContext ctx(dim, 0x0F16 + static_cast<std::uint64_t>(t));
    for (double a : kValues) {
      const double e = rel_err(ctx.decode(ctx.construct(a)), a);
      row.construct += e * e;
      ++nc;
      if (a > 0) {
        const double s =
            rel_err(ctx.decode(ctx.sqrt(ctx.construct(a))), std::sqrt(a));
        row.sqrt_ += s * s;
        ++ns;
      }
      for (double b : kValues) {
        const double avg = rel_err(
            ctx.decode(ctx.weighted_average(ctx.construct(a), ctx.construct(b), 0.5)),
            (a + b) / 2.0);
        row.average += avg * avg;
        ++na;
        const double mul = rel_err(
            ctx.decode(ctx.multiply(ctx.construct(a), ctx.construct(b))), a * b);
        row.multiply += mul * mul;
        ++nm;
        if (std::fabs(a) <= std::fabs(b)) {
          const double div = rel_err(
              ctx.decode(ctx.divide(ctx.construct(a), ctx.construct(b))), a / b);
          row.divide += div * div;
          ++nd;
        }
      }
    }
  }
  row.construct = std::sqrt(row.construct / nc);
  row.average = std::sqrt(row.average / na);
  row.multiply = std::sqrt(row.multiply / nm);
  row.sqrt_ = std::sqrt(row.sqrt_ / ns);
  row.divide = std::sqrt(row.divide / nd);
  return row;
}

}  // namespace

int main() {
  hdface::bench::print_header(
      "Fig 2 — stochastic arithmetic relative error vs dimensionality",
      "HDFace (DAC'22) Figure 2 (a) construction, (b) average, (c) multiplication"
      " — plus the derived sqrt/divide");

  hdface::util::Table table(
      {"D", "construct", "average", "multiply", "sqrt", "divide"});
  hdface::util::CsvWriter csv("bench_out/fig2_arith_error.csv",
                              {"dim", "construct", "average", "multiply", "sqrt",
                               "divide"});
  for (const std::size_t dim : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    const ErrRow row = measure(dim);
    table.add_row({std::to_string(dim), hdface::util::Table::num(row.construct, 4),
                   hdface::util::Table::num(row.average, 4),
                   hdface::util::Table::num(row.multiply, 4),
                   hdface::util::Table::num(row.sqrt_, 4),
                   hdface::util::Table::num(row.divide, 4)});
    csv.add_row({std::to_string(dim), std::to_string(row.construct),
                 std::to_string(row.average), std::to_string(row.multiply),
                 std::to_string(row.sqrt_), std::to_string(row.divide)});
    std::printf("D=%zu done\n", dim);
  }
  std::printf("\nRMS relative error (trials x value grid):\n%s",
              table.to_string().c_str());
  std::printf("expected shape: every column shrinks ~1/sqrt(D) as in Fig 2.\n");
  std::printf("csv written: bench_out/fig2_arith_error.csv\n");
  return 0;
}
