// Fig 5b — impact of the DNN configuration (hidden-layer sizes) on accuracy
// and training performance.
//
// The paper sweeps the two hidden layers of its 4-layer network and finds
// accuracy saturating at 1024x1024, still slightly below HDFace's best. This
// bench sweeps the same axis (scaled) and prints accuracy + measured
// training time per epoch, then compares against HDFace's best configuration.

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"

namespace {
using namespace hdface;
}

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n_train = static_cast<std::size_t>(args.get_int("train", 350));
  const auto n_test = static_cast<std::size_t>(args.get_int("test", 140));

  bench::print_header(
      "Fig 5b — DNN hidden-size sweep vs accuracy & training time",
      "HDFace (DAC'22) Figure 5b (accuracy bars + training-time heatmap row)");

  auto w = bench::make_emotion(n_train, n_test);
  const std::size_t n = w.image_size();

  util::Table table({"hidden", "accuracy", "train s/epoch", "params"});
  util::CsvWriter csv("bench_out/fig5b_dnn_config.csv",
                      {"hidden", "accuracy", "train_s_per_epoch", "params"});

  double best_dnn = 0.0;
  for (const std::size_t h : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    auto cfg = bench::dnn_config({h, h});
    pipeline::DnnPipeline dnn(cfg, n, n, w.classes());
    const auto train_features = dnn.extract_features(w.train);
    const auto test_features = dnn.extract_features(w.test);
    util::Stopwatch sw;
    dnn.fit_features(train_features, w.train.labels);
    const double epoch_s = sw.seconds() / static_cast<double>(cfg.epochs);
    const double acc = dnn.evaluate_features(test_features, w.test.labels);
    best_dnn = std::max(best_dnn, acc);
    table.add_row({std::to_string(h) + "x" + std::to_string(h),
                   util::Table::percent(acc), util::Table::num(epoch_s, 3),
                   std::to_string(dnn.mlp().num_parameters())});
    csv.add_row({std::to_string(h), std::to_string(acc), std::to_string(epoch_s),
                 std::to_string(dnn.mlp().num_parameters())});
    std::printf("  hidden %zux%zu acc=%.3f\n", h, h, acc);
  }

  // HDFace best configuration for the comparison sentence in the paper.
  auto hd_cfg = bench::hdface_config(4096, pipeline::HdFaceMode::kHdHog,
                                     hog::HdHogMode::kDecodeShortcut);
  pipeline::HdFacePipeline hd(hd_cfg, n, n, w.classes());
  const auto hd_features = hd.encode_dataset(w.train);
  util::Stopwatch sw;
  hd.fit_features(hd_features, w.train.labels);
  const double hd_epoch_s = sw.seconds() / static_cast<double>(hd_cfg.epochs);
  const double hd_acc = hd.evaluate(w.test);

  std::printf("\n%s", table.to_string().c_str());
  std::printf("HDFace best (D=4k): acc=%s, learn %ss/epoch\n",
              util::Table::percent(hd_acc).c_str(),
              util::Table::num(hd_epoch_s, 3).c_str());
  std::printf(
      "paper shape: DNN accuracy saturates with hidden size; HDFace's HDC\n"
      "learning epoch is much cheaper than a DNN epoch at saturation.\n"
      "csv written: bench_out/fig5b_dnn_config.csv\n");
  return 0;
}
