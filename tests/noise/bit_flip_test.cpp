#include "noise/bit_flip.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace hdface::noise {
namespace {

TEST(BitFlip, ZeroRateIsIdentity) {
  core::Rng rng(1);
  const auto v = core::Hypervector::random(1024, rng);
  core::Rng noise_rng(2);
  EXPECT_EQ(flip_bits(v, 0.0, noise_rng), v);
}

TEST(BitFlip, FlipFractionMatchesRate) {
  core::Rng rng(3);
  const auto v = core::Hypervector::random(20000, rng);
  core::Rng noise_rng(4);
  const auto noisy = flip_bits(v, 0.1, noise_rng);
  const double frac = static_cast<double>(hamming(v, noisy)) / 20000.0;
  EXPECT_NEAR(frac, 0.1, 0.01);
}

TEST(BitFlip, SimilarityAttenuationMatchesTheory) {
  core::Rng rng(5);
  const auto v = core::Hypervector::random(20000, rng);
  core::Rng noise_rng(6);
  const auto noisy = flip_bits(v, 0.08, noise_rng);
  EXPECT_NEAR(similarity(v, noisy), expected_similarity_after_flips(0.08), 0.02);
}

TEST(BitFlip, DeterministicPerRngSeed) {
  core::Rng rng(7);
  const auto v = core::Hypervector::random(512, rng);
  core::Rng n1(42);
  core::Rng n2(42);
  EXPECT_EQ(flip_bits(v, 0.2, n1), flip_bits(v, 0.2, n2));
}

TEST(FlipFloatBits, ZeroRateKeepsValues) {
  std::vector<float> v = {1.0f, -2.5f, 0.125f};
  core::Rng rng(8);
  flip_float_bits(v, 0.0, rng);
  EXPECT_FLOAT_EQ(v[0], 1.0f);
  EXPECT_FLOAT_EQ(v[1], -2.5f);
}

TEST(FlipFloatBits, HighRateScramblesValues) {
  std::vector<float> v(100, 0.5f);
  core::Rng rng(9);
  flip_float_bits(v, 0.3, rng);
  int changed = 0;
  for (float x : v) {
    if (x != 0.5f) ++changed;
  }
  EXPECT_GT(changed, 90);
}

TEST(FlipFloatBits, ExponentFlipsProduceLargeExcursions) {
  // The core fragility of positional float encodings: at a small flip rate
  // some values jump by orders of magnitude (or become non-finite).
  std::vector<float> v(2000, 0.5f);
  core::Rng rng(10);
  flip_float_bits(v, 0.02, rng);
  bool large_excursion = false;
  for (float x : v) {
    if (!std::isfinite(x) || std::fabs(x) > 100.0f) {
      large_excursion = true;
      break;
    }
  }
  EXPECT_TRUE(large_excursion);
}

TEST(FlipFixedBits, StaysWithinQuantizedRange) {
  std::vector<std::int32_t> w = {3, -7, 120, -128};
  core::Rng rng(11);
  flip_fixed_bits(w, 8, 0.5, rng);
  for (auto x : w) {
    EXPECT_GE(x, -128);
    EXPECT_LE(x, 127);
  }
}

TEST(FlipFixedBits, SignExtensionAfterMsbFlip) {
  std::vector<std::int32_t> w = {0};
  // Flip everything deterministically by brute force: with rate 1 every bit
  // of the low nibble flips → 0b1111 → −1 in 4-bit two's complement.
  core::Rng rng(12);
  flip_fixed_bits(w, 4, 1.0, rng);
  EXPECT_EQ(w[0], -1);
}

TEST(FlipImageBits, FractionOfPixelsChanges) {
  image::Image img(64, 64, 0.5f);
  core::Rng rng(13);
  const auto noisy = flip_image_bits(img, 0.05, rng);
  // Compare in byte space: the injection itself re-quantizes to 8 bits.
  int changed = 0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    if (image::to_u8(noisy.pixels()[i]) != image::to_u8(img.pixels()[i])) {
      ++changed;
    }
  }
  // 8 bits per pixel, 5% per-bit → 1 − 0.95⁸ ≈ 34% of pixels touched.
  EXPECT_GT(changed, 800);
  EXPECT_LT(changed, 2000);
}

TEST(FlipImageBits, StaysInValidRange) {
  image::Image img(16, 16, 0.3f);
  core::Rng rng(14);
  const auto noisy = flip_image_bits(img, 0.5, rng);
  EXPECT_GE(noisy.min(), 0.0f);
  EXPECT_LE(noisy.max(), 1.0f);
}

}  // namespace
}  // namespace hdface::noise
