#include "noise/fault_model.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "noise/bit_flip.hpp"

namespace hdface::noise {
namespace {

constexpr std::size_t kDim = 65536;

core::Hypervector random_vector(std::uint64_t seed, std::size_t dim = kDim) {
  core::Rng rng(seed);
  return core::Hypervector::random(dim, rng);
}

double disturbed_fraction(const core::Hypervector& clean,
                          const core::Hypervector& faulted) {
  return static_cast<double>(core::hamming(clean, faulted)) /
         static_cast<double>(clean.dim());
}

// ---- statistical signatures -------------------------------------------------

struct KindCase {
  FaultKind kind;
  double rate;
};

class FaultMaskSignature : public ::testing::TestWithParam<KindCase> {};

TEST_P(FaultMaskSignature, DisturbedFractionWithinBinomialBounds) {
  const auto [kind, rate] = GetParam();
  const FaultModel model{kind, rate};
  const auto v = random_vector(0xBEEF);
  core::Rng rng(0xF001);
  const auto faulted = sample_fault_mask(model, kDim, rng).applied(v);

  const double p = expected_disturbed_fraction(model);
  // Word bursts disturb in 64-bit blocks, so the effective trial count is the
  // word count, not the bit count; stuck-at compounds two Bernoulli draws
  // (selection and the stored bit) but the variance bound p(1-p)/n still
  // holds per bit.
  const double n = kind == FaultKind::kWordBurst
                       ? static_cast<double>(kDim) / 64.0
                       : static_cast<double>(kDim);
  const double sigma = std::sqrt(p * (1.0 - p) / n);
  EXPECT_NEAR(disturbed_fraction(v, faulted), p, 5.0 * sigma + 1e-12)
      << fault_kind_name(kind) << " rate " << rate;
}

TEST_P(FaultMaskSignature, SimilarityMatchesExpectation) {
  const auto [kind, rate] = GetParam();
  const FaultModel model{kind, rate};
  const auto v = random_vector(0xCAFE);
  core::Rng rng(0xF002);
  const auto faulted = sample_fault_mask(model, kDim, rng).applied(v);
  const double p = expected_disturbed_fraction(model);
  const double n = kind == FaultKind::kWordBurst
                       ? static_cast<double>(kDim) / 64.0
                       : static_cast<double>(kDim);
  // δ = 1 − 2·fraction, so its deviation is twice the fraction's.
  const double sigma = 2.0 * std::sqrt(p * (1.0 - p) / n);
  EXPECT_NEAR(core::similarity(v, faulted),
              expected_similarity_after_fault(model), 5.0 * sigma + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FaultMaskSignature,
    ::testing::Values(KindCase{FaultKind::kTransientFlip, 0.02},
                      KindCase{FaultKind::kTransientFlip, 0.10},
                      KindCase{FaultKind::kStuckAtZero, 0.10},
                      KindCase{FaultKind::kStuckAtOne, 0.10},
                      KindCase{FaultKind::kWordBurst, 0.10},
                      KindCase{FaultKind::kStuckAtZero, 0.30},
                      KindCase{FaultKind::kWordBurst, 0.30}));

// ---- algebraic properties ---------------------------------------------------

TEST(FaultMask, ZeroRateIsIdentityForEveryKind) {
  const auto v = random_vector(1, 4096);
  for (const auto kind :
       {FaultKind::kTransientFlip, FaultKind::kStuckAtZero,
        FaultKind::kStuckAtOne, FaultKind::kWordBurst}) {
    core::Rng rng(2);
    EXPECT_EQ(sample_fault_mask({kind, 0.0}, 4096, rng).applied(v), v);
  }
}

TEST(FaultMask, StuckAtFaultsAreIdempotent) {
  // A stuck cell reads the stuck value no matter how often the fault
  // "re-applies" — the mask algebra must share that fixed point.
  const auto v = random_vector(3, 8192);
  for (const auto kind : {FaultKind::kStuckAtZero, FaultKind::kStuckAtOne}) {
    core::Rng rng(4);
    const auto mask = sample_fault_mask({kind, 0.25}, 8192, rng);
    const auto once = mask.applied(v);
    EXPECT_EQ(mask.applied(once), once) << fault_kind_name(kind);
  }
}

TEST(FaultMask, FlipKindsAreSelfInverse) {
  const auto v = random_vector(5, 8192);
  for (const auto kind : {FaultKind::kTransientFlip, FaultKind::kWordBurst}) {
    core::Rng rng(6);
    const auto mask = sample_fault_mask({kind, 0.25}, 8192, rng);
    EXPECT_EQ(mask.applied(mask.applied(v)), v) << fault_kind_name(kind);
  }
}

TEST(FaultMask, StuckValuesActuallyStick) {
  const auto v = random_vector(7, 8192);
  core::Rng rng(8);
  const auto stuck0 = sample_fault_mask({FaultKind::kStuckAtZero, 0.3}, 8192, rng);
  auto faulted = stuck0.applied(v);
  EXPECT_EQ(faulted & stuck0.clear, core::Hypervector(8192));
  const auto stuck1 = sample_fault_mask({FaultKind::kStuckAtOne, 0.3}, 8192, rng);
  faulted = stuck1.applied(v);
  EXPECT_EQ(faulted & stuck1.set, stuck1.set);
}

TEST(FaultMask, WordBurstFailsWholeWords) {
  core::Rng rng(9);
  const auto mask = sample_fault_mask({FaultKind::kWordBurst, 0.3}, 4096, rng);
  for (const std::uint64_t w : mask.flip.words()) {
    EXPECT_TRUE(w == 0 || w == ~0ULL);
  }
  EXPECT_GT(mask.flip.popcount(), 0u);  // rate 0.3 over 64 words
}

TEST(FaultMask, TailBitsNeverLeak) {
  // dim 100 leaves 28 dead bits in the tail word; a full-rate stuck-at-one
  // fault must set exactly the 100 live bits and nothing more, and a burst
  // pattern's tail word must be pre-masked.
  const std::size_t dim = 100;
  auto v = random_vector(10, dim);
  core::Rng rng(11);
  const auto mask = sample_fault_mask({FaultKind::kStuckAtOne, 1.0}, dim, rng);
  mask.apply(v);
  EXPECT_EQ(v.popcount(), dim);
  core::Rng rng2(12);
  const auto burst = sample_fault_mask({FaultKind::kWordBurst, 1.0}, dim, rng2);
  EXPECT_EQ(burst.flip.popcount(), dim);
}

TEST(FaultMask, Validates) {
  core::Rng rng(13);
  EXPECT_THROW(sample_fault_mask({FaultKind::kTransientFlip, 0.5}, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(sample_fault_mask({FaultKind::kTransientFlip, -0.1}, 64, rng),
               std::invalid_argument);
  EXPECT_THROW(sample_fault_mask({FaultKind::kTransientFlip, 1.5}, 64, rng),
               std::invalid_argument);
}

// ---- seed schedule ----------------------------------------------------------

TEST(FaultSeedSchedule, PureFunctionOfIdentity) {
  EXPECT_EQ(fault_seed(1, FaultTarget::kItemMemory, 7),
            fault_seed(1, FaultTarget::kItemMemory, 7));
  EXPECT_NE(fault_seed(1, FaultTarget::kItemMemory, 7),
            fault_seed(1, FaultTarget::kHistogramMemory, 7));
  EXPECT_NE(fault_seed(1, FaultTarget::kItemMemory, 7),
            fault_seed(1, FaultTarget::kItemMemory, 8));
  EXPECT_NE(fault_seed(1, FaultTarget::kItemMemory, 7),
            fault_seed(2, FaultTarget::kItemMemory, 7));
}

TEST(FaultSeedSchedule, PatternsIndependentOfSamplingOrder) {
  // The schedule is what makes injection bit-identical across thread counts:
  // every element's pattern comes from its own Rng chain, so drawing the
  // elements in any order (as different chunkings would) changes nothing.
  const FaultModel model{FaultKind::kTransientFlip, 0.1};
  std::vector<core::Hypervector> forward;
  for (std::uint64_t i = 0; i < 8; ++i) {
    core::Rng rng(fault_seed(42, FaultTarget::kQuery, i));
    forward.push_back(sample_fault_mask(model, 2048, rng).flip);
  }
  for (std::uint64_t i = 8; i-- > 0;) {
    core::Rng rng(fault_seed(42, FaultTarget::kQuery, i));
    EXPECT_EQ(sample_fault_mask(model, 2048, rng).flip, forward[i]);
  }
}

TEST(ApplyQueryFault, TransientVariesPerWindowPersistentDoesNot) {
  FaultPlan plan;
  plan.model = {FaultKind::kTransientFlip, 0.1};
  const auto v = random_vector(14, 4096);
  auto a = v;
  auto b = v;
  apply_query_fault(plan, 0, a);
  apply_query_fault(plan, 1, b);
  EXPECT_NE(a, b);  // fresh soft error per query

  plan.model = {FaultKind::kStuckAtOne, 0.1};
  auto c = v;
  auto d = v;
  apply_query_fault(plan, 0, c);
  apply_query_fault(plan, 1, d);
  EXPECT_EQ(c, d);  // one faulty query buffer, same cells every window
}

TEST(ApplyQueryFault, RespectsPlanGating) {
  FaultPlan plan;
  plan.model = {FaultKind::kTransientFlip, 0.1};
  plan.queries = false;
  const auto v = random_vector(15, 4096);
  auto w = v;
  apply_query_fault(plan, 3, w);
  EXPECT_EQ(w, v);
}

// ---- legacy injector properties (noise/bit_flip.hpp) ------------------------

class FlipBitsRate : public ::testing::TestWithParam<double> {};

TEST_P(FlipBitsRate, FlipFractionWithinBinomialBounds) {
  const double rate = GetParam();
  const auto v = random_vector(16);
  core::Rng rng(17);
  const auto noisy = flip_bits(v, rate, rng);
  const double sigma =
      std::sqrt(rate * (1.0 - rate) / static_cast<double>(kDim));
  EXPECT_NEAR(disturbed_fraction(v, noisy), rate, 5.0 * sigma + 1e-12);
  EXPECT_NEAR(core::similarity(v, noisy), expected_similarity_after_flips(rate),
              10.0 * sigma + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Rates, FlipBitsRate,
                         ::testing::Values(0.01, 0.05, 0.10, 0.25));

TEST(FlipFixedBits, DeterministicPerSeedAndBounded) {
  std::vector<std::int32_t> a(256);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int32_t>(i) - 128;
  }
  auto b = a;
  core::Rng r1(18);
  core::Rng r2(18);
  flip_fixed_bits(a, 8, 0.2, r1);
  flip_fixed_bits(b, 8, 0.2, r2);
  EXPECT_EQ(a, b);
  int changed = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], -128);
    EXPECT_LE(a[i], 127);
    if (a[i] != static_cast<std::int32_t>(i) - 128) ++changed;
  }
  // 8 bits at 20% per bit: P(word untouched) = 0.8^8 ≈ 17%.
  EXPECT_GT(changed, 150);
}

}  // namespace
}  // namespace hdface::noise
